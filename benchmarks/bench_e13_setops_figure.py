"""E13 — Figures 1-2: anatomy of A|_h, A ∧_h B and A ¬_h B under a random member.

The paper's two figures illustrate how a set A splits, under a hash function
and threshold σ, into the low-hashing part, the colliding part and the
collision-free part.  This benchmark regenerates the quantitative version of
the figures: the average sizes of the three parts over random family members,
compared with their first-order predictions σ|A|/λ and 2βσ|A|/λ.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit, run_once
from repro.hashing.representative import RepresentativeHashFamily
from repro.hashing.setops import colliding_part, low_part, unique_part

LAM = 20000
TRIALS = 40


def measure():
    family = RepresentativeHashFamily(
        universe_label="e13", universe_size=10 ** 9, lam=LAM,
        alpha=0.05, beta=0.25, nu=0.1, seed=13,
    )
    sigma = family.sigma
    rng = random.Random(0)
    rows = []
    scenarios = {
        "Fig. 1 (B = A)": (set(range(500)), set(range(500))),
        "Fig. 2 (B ≠ A, heavy overlap)": (set(range(500)), set(range(250, 750))),
        "Fig. 2 (B ≠ A, light overlap)": (set(range(500)), set(range(450, 950))),
    }
    for label, (a, b) in scenarios.items():
        low_sizes, collide_sizes, unique_sizes = [], [], []
        for _ in range(TRIALS):
            h = family.member(family.sample_index(rng))
            low_sizes.append(len(low_part(h, a, sigma)))
            collide_sizes.append(len(colliding_part(h, a, b, sigma)))
            unique_sizes.append(len(unique_part(h, a, b, sigma)))
        predicted_low = sigma * len(a) / LAM
        rows.append({
            "scenario": label,
            "predicted |A|_h| (σ|A|/λ)": round(predicted_low, 1),
            "measured |A|_h|": round(sum(low_sizes) / TRIALS, 1),
            "measured |A ∧ B|": round(sum(collide_sizes) / TRIALS, 1),
            "measured |A ¬ B|": round(sum(unique_sizes) / TRIALS, 1),
        })
    return rows


def test_e13_set_operator_figure(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E13 — Figures 1-2: sizes of A|_h, A ∧ B, A ¬ B", rows)
    for row in rows:
        # Concentration of |A|_h| around σ|A|/λ.
        assert abs(row["measured |A|_h|"] - row["predicted |A|_h| (σ|A|/λ)"]) \
            <= 0.35 * row["predicted |A|_h| (σ|A|/λ)"]
        # Partition identity: collide + unique = low part (the table rounds to
        # one decimal, so allow the rounding slack).
        assert abs(row["measured |A ∧ B|"] + row["measured |A ¬ B|"] - row["measured |A|_h|"]) <= 0.3

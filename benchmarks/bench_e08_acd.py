"""E8 — Section 4.2 / Definition 6: O(1)-round almost-clique decomposition.

On planted almost-clique instances of growing size we measure: how many of
the planted cliques the CONGEST decomposition recovers, whether the output
satisfies the Definition 6 properties, and the number of rounds (which must
not grow with n or Δ).  Both the EstimateSimilarity-based buddy test and the
uniform Algorithm 6 variant are exercised.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.congest import Network
from repro.core import ColoringParameters
from repro.core.acd import compute_acd
from repro.graphs import planted_almost_cliques, validate_acd
from repro.graphs.properties import acd_report_is_clean


def recovered_fraction(acd, planted) -> float:
    if not planted.cliques:
        return 1.0
    recovered = 0
    for truth in planted.cliques:
        best = max(
            (len(members & truth) / len(truth) for members in acd.cliques.values()),
            default=0.0,
        )
        recovered += best >= 0.8
    return recovered / len(planted.cliques)


def measure():
    rows = []
    for uniform in (False, True):
        implementation = "uniform buddy (Alg. 6)" if uniform else "EstimateSimilarity buddy"
        params = ColoringParameters.small(seed=8, uniform=uniform)
        for num_cliques, clique_size in ((3, 14), (4, 20)):
            planted = planted_almost_cliques(
                num_cliques=num_cliques, clique_size=clique_size,
                num_sparse=2 * num_cliques, seed=clique_size,
            )
            net = Network(planted.graph)
            acd = compute_acd(net, params)
            report = validate_acd(
                planted.graph,
                sparse_nodes=acd.sparse_nodes,
                uneven_nodes=acd.uneven_nodes,
                almost_cliques=list(acd.cliques.values()),
                eps_sparse=params.sparsity_eps,
                eps_clique=2 * params.acd_eps,
            )
            rows.append({
                "implementation": implementation,
                "planted": f"{num_cliques}x{clique_size}",
                "cliques found": len(acd.cliques),
                "planted recovered": round(recovered_fraction(acd, planted), 2),
                "Def. 6 clean": acd_report_is_clean(report),
                "rounds": acd.rounds_used,
            })
    return rows


def test_e08_almost_clique_decomposition(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E8 — O(1)-round almost-clique decomposition", rows)
    for row in rows:
        assert row["planted recovered"] >= 0.6
        assert row["Def. 6 clean"]
    # Rounds are O(1): growing the instance does not grow the round count much.
    sims = [r for r in rows if r["implementation"] == "EstimateSimilarity buddy"]
    assert sims[-1]["rounds"] <= sims[0]["rounds"] + 10

"""E4 — Lemmas 4-5: sparsity estimation accuracy in O(1) rounds.

Every node of a random graph and of a planted almost-clique graph estimates
its global and local sparsity; we report the fraction of nodes whose estimate
falls within the permitted ``ε·Δ`` (resp. ``ε·d_v``) window and the number of
CONGEST rounds the whole procedure used.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.congest import Network
from repro.graphs import (
    exact_global_sparsity,
    exact_local_sparsity,
    gnp_graph,
    planted_almost_cliques,
)
from repro.sampling import estimate_global_sparsity, estimate_local_sparsity

EPS = 0.4


def measure():
    rows = []
    workloads = {
        "G(100, 0.1)": gnp_graph(100, 0.1, seed=4),
        "planted cliques": planted_almost_cliques(3, 16, num_sparse=20, seed=4).graph,
    }
    for name, graph in workloads.items():
        net = Network(graph)
        global_est = estimate_global_sparsity(net, eps=EPS, seed=5)
        delta = max(d for _, d in graph.degree())
        within_global = sum(
            1 for v in graph.nodes()
            if abs(global_est[v] - exact_global_sparsity(graph, v)) <= EPS * delta
        ) / graph.number_of_nodes()

        local_est = estimate_local_sparsity(net, eps=EPS, seed=6)
        reliable = [v for v in graph.nodes() if local_est.reliable[v] and graph.degree(v) > 0]
        within_local = sum(
            1 for v in reliable
            if abs(local_est[v] - exact_local_sparsity(graph, v)) <= EPS * graph.degree(v) + 1
        ) / max(1, len(reliable))

        rows.append({
            "workload": name,
            "eps": EPS,
            "global: within εΔ": round(within_global, 3),
            "local: within εd (reliable nodes)": round(within_local, 3),
            "reliable nodes": f"{len(reliable)}/{graph.number_of_nodes()}",
            "rounds (global)": global_est.rounds_used,
            "rounds (local)": local_est.rounds_used,
        })
    return rows


def test_e04_sparsity_estimation(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E4 — Lemmas 4-5: sparsity estimation accuracy", rows)
    for row in rows:
        assert row["global: within εΔ"] >= 0.9
        assert row["local: within εd (reliable nodes)"] >= 0.8
        assert row["rounds (global)"] <= 40

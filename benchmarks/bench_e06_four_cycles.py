"""E6 — Theorem 3: local 4-cycle-richness detection on wedge pairs.

Planted complete-bipartite blocks produce wedges lying in many 4-cycles; the
background wedges lie in almost none.  We measure how well the flagged wedges
line up with the planted blocks and that the round count stays constant.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.congest import Network
from repro.graphs.generators import four_cycle_rich_graph
from repro.sampling import detect_four_cycle_rich_pairs
from repro.sampling.four_cycles import true_four_cycle_count

EPS = 0.3


def measure():
    rows = []
    for n, side in ((100, 9), (180, 11)):
        planted = four_cycle_rich_graph(
            n=n, background_p=0.02, planted_blocks=2, side_size=side, seed=n
        )
        net = Network(planted.graph)
        result = detect_four_cycle_rich_pairs(net, eps=EPS, seed=n)
        hits = misses = false_alarms = rich = poor = 0
        for (center, u, w), estimate in result.estimates.items():
            count = true_four_cycle_count(net, center, u, w)
            flagged = (center, u, w) in result.flagged
            if count >= 2 * result.threshold:
                rich += 1
                hits += flagged
                misses += not flagged
            elif count <= 0.25 * result.threshold:
                poor += 1
                false_alarms += flagged
        rows.append({
            "n": n,
            "threshold εΔ": round(result.threshold, 1),
            "wedges examined": len(result.estimates),
            "recall on rich wedges": round(hits / max(1, rich), 3),
            "false positive rate": round(false_alarms / max(1, poor), 3),
            "rounds": result.rounds_used,
        })
    return rows


def test_e06_four_cycle_detection(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E6 — Theorem 3: local 4-cycle detection", rows)
    for row in rows:
        assert row["recall on rich wedges"] >= 0.7
        assert row["false positive rate"] <= 0.1

"""Benchmark harness package (one module per experiment in EXPERIMENTS.md)."""

"""E9 — Theorem 1: D1LC round complexity scales like poly(log log n), not log n.

We solve (degree+1)-list-coloring on random graphs of growing size under full
CONGEST accounting and record the rounds of the randomized part, the fallback
share, and the maximum per-edge message size (which must stay within the
O(log n) budget).  The paper's claim is an O(log^5 log n) bound — on the sizes
a simulation can reach, the observable shape is a round count that grows very
slowly with n (far slower than the Johansson baseline's Θ(log n), see E11) and
never violates the bandwidth.

The workload now lives in the experiment subsystem: this benchmark is a thin
wrapper over the ``e09``-tagged scenarios of the ``scaling`` suite
(``repro suite run scaling`` sweeps the same points).
"""

from __future__ import annotations

import math

from benchmarks.conftest import emit, run_once
from repro.experiments import get_suite, run_scenarios


def measure():
    specs = [spec for spec in get_suite("scaling") if "e09" in spec.tags]
    result = run_scenarios(specs, suite="scaling")
    rows = []
    for trial in result.rows():
        rows.append({
            "n": trial["n"],
            "log2(n)": round(math.log2(trial["n"]), 1),
            "valid": trial["valid"],
            "randomized rounds": trial["randomized_rounds"],
            "total rounds": trial["rounds"],
            "fallback nodes": trial["fallback_nodes"],
            "max bits/edge/round": trial["max_edge_bits"],
            "budget": trial["bandwidth_bits"],
        })
    return rows


def test_e09_d1lc_round_scaling(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E9 — Theorem 1: D1LC rounds vs n (CONGEST)", rows)
    assert all(row["valid"] for row in rows)
    assert all(row["max bits/edge/round"] <= row["budget"] for row in rows)
    # Shape: quadrupling n leaves the randomized round count within a small
    # constant factor (poly(log log n) growth is invisible at these sizes).
    assert rows[-1]["randomized rounds"] <= 2.5 * max(1, rows[0]["randomized rounds"])

"""E9 — Theorem 1: D1LC round complexity scales like poly(log log n), not log n.

We solve (degree+1)-list-coloring on random graphs of growing size under full
CONGEST accounting and record the rounds of the randomized part, the fallback
share, and the maximum per-edge message size (which must stay within the
O(log n) budget).  The paper's claim is an O(log^5 log n) bound — on the sizes
a simulation can reach, the observable shape is a round count that grows very
slowly with n (far slower than the Johansson baseline's Θ(log n), see E11) and
never violates the bandwidth.
"""

from __future__ import annotations

import math

from benchmarks.conftest import emit, run_once
from repro.core import ColoringParameters, solve_d1lc
from repro.graphs import degree_plus_one_lists, gnp_graph

SIZES = (60, 120, 240)
AVG_DEGREE = 10


def measure():
    rows = []
    for n in SIZES:
        graph = gnp_graph(n, min(0.5, AVG_DEGREE / n), seed=n)
        lists = degree_plus_one_lists(graph, seed=n)
        result = solve_d1lc(graph, lists, params=ColoringParameters.small(seed=n))
        rows.append({
            "n": n,
            "log2(n)": round(math.log2(n), 1),
            "valid": result.is_valid,
            "randomized rounds": result.randomized_rounds,
            "total rounds": result.rounds,
            "fallback nodes": result.fallback_nodes,
            "max bits/edge/round": result.max_edge_bits,
            "budget": result.bandwidth_bits,
        })
    return rows


def test_e09_d1lc_round_scaling(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E9 — Theorem 1: D1LC rounds vs n (CONGEST)", rows)
    assert all(row["valid"] for row in rows)
    assert all(row["max bits/edge/round"] <= row["budget"] for row in rows)
    # Shape: quadrupling n leaves the randomized round count within a small
    # constant factor (poly(log log n) growth is invisible at these sizes).
    assert rows[-1]["randomized rounds"] <= 2.5 * max(1, rows[0]["randomized rounds"])

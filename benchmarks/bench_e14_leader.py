"""E14 — Lemma 12 / Appendix D.1: the (e + a + κ)-leader has near-minimal slackability.

For planted almost-cliques we compare the slackability proxy of the node the
CONGEST procedure elects against the best achievable value within the clique,
and check that low-slack cliques classify themselves as such.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.congest import Network
from repro.core import ColoringInstance, ColoringParameters
from repro.core.acd import compute_acd
from repro.core.leader import select_leaders
from repro.core.slack import generate_slack
from repro.core.state import ColoringState
from repro.graphs import degree_plus_one_lists, exact_local_sparsity, planted_almost_cliques


def measure():
    rows = []
    for dropout in (0.05, 0.15):
        planted = planted_almost_cliques(
            num_cliques=3, clique_size=18, num_sparse=8, dropout=dropout, seed=int(dropout * 100)
        )
        graph = planted.graph
        lists = degree_plus_one_lists(graph, seed=1)
        params = ColoringParameters.small(seed=14)
        network = Network(graph)
        state = ColoringState(ColoringInstance.d1lc(graph, lists), network, params)
        acd = compute_acd(network, params)
        generate_slack(state)
        leaders = select_leaders(state, acd)
        for cid, info in leaders.items():
            members = acd.cliques[cid]
            # The exact proxy the leader minimises, recomputed centrally.
            def aggregate(v):
                neighbors = network.neighbors(v)
                return (len(neighbors - members)
                        + max(0, len(members) - 1 - len(neighbors & members))
                        + state.chromatic_slack[v])
            best = min(aggregate(v) for v in members)
            leader_sparsity = exact_local_sparsity(graph, info.leader)
            rows.append({
                "dropout": dropout,
                "clique": f"{cid} (size {info.clique_size})",
                "leader aggregate e+a+κ": aggregate(info.leader),
                "best aggregate in clique": best,
                "leader exact sparsity": round(leader_sparsity, 2),
                "classified low-slack": info.low_slack,
                "slackability estimate": round(info.slackability_estimate, 2),
            })
    return rows


def test_e14_leader_selection(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E14 — Lemma 12: leader slackability vs best in clique", rows)
    for row in rows:
        # Lemma 12 shape: the elected leader exactly minimises the aggregate,
        # and planted (dense) cliques classify as low-slack.
        assert row["leader aggregate e+a+κ"] == row["best aggregate in clique"]
        assert row["classified low-slack"]

"""E7 — Lemma 6: MultiTrial success probability vs number of tried colors.

Nodes with slack linear in their degree run one MultiTrial(x) for increasing
``x``; Lemma 6 promises a per-node coloring probability of at least
``1 − (7/8)^x − 2ν`` in a single O(log n)-bit round.  We measure the fraction
of nodes colored by one invocation and the number of CONGEST rounds it took,
for both the representative-hash implementation (Algorithm 4) and the uniform
one (Algorithm 5).
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.congest import Network
from repro.core import ColoringInstance, ColoringParameters
from repro.core.multitrial import multi_trial
from repro.core.state import ColoringState
from repro.graphs import gnp_graph, numeric_degree_lists


def fresh_state(graph, uniform: bool, seed: int) -> ColoringState:
    delta = max(d for _, d in graph.degree())
    lists = numeric_degree_lists(graph, extra=3 * delta)
    instance = ColoringInstance.d1lc(graph, lists)
    network = Network(graph)
    params = ColoringParameters.small(seed=seed, uniform=uniform)
    return ColoringState(instance, network, params)


def measure():
    graph = gnp_graph(120, 0.1, seed=7)
    rows = []
    for uniform in (False, True):
        implementation = "uniform (Alg. 5)" if uniform else "representative (Alg. 4)"
        for tries in (1, 2, 4, 8, 16):
            state = fresh_state(graph, uniform, seed=100 + tries)
            before = state.network.rounds_used
            colored = multi_trial(state, tries)
            rows.append({
                "implementation": implementation,
                "x (colors tried)": tries,
                "paper: success >=": round(1 - (7 / 8) ** tries, 3),
                "measured colored fraction": round(len(colored) / graph.number_of_nodes(), 3),
                "rounds": state.network.rounds_used - before,
            })
    return rows


def test_e07_multitrial_success_probability(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E7 — Lemma 6: MultiTrial success probability vs x", rows)
    # Shape: success grows with x and reaches near-1 for x = 16, with a
    # constant number of rounds per invocation.
    for implementation in ("representative (Alg. 4)", "uniform (Alg. 5)"):
        series = [r for r in rows if r["implementation"] == implementation]
        assert series[-1]["measured colored fraction"] >= 0.85
        assert series[-1]["measured colored fraction"] >= series[0]["measured colored fraction"] - 0.05
        assert all(r["rounds"] <= 30 for r in series)

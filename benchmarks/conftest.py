"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment of EXPERIMENTS.md (the quantitative
content of a theorem/lemma of the paper).  ``pytest-benchmark`` provides the
wall-clock measurement; the paper-relevant series (rounds, bits, success
probabilities, estimation errors) are printed to stdout with
:func:`repro.metrics.format_table` and attached to ``benchmark.extra_info`` so
they appear in ``--benchmark-json`` exports.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

import pytest

from repro.metrics import format_table


def emit(benchmark, title: str, rows: Sequence[Mapping[str, object]]) -> None:
    """Print an experiment table and attach it to the benchmark record."""
    text = format_table(rows, title=title)
    print("\n" + text)
    if benchmark is not None:
        benchmark.extra_info["table"] = [dict(row) for row in rows]
        benchmark.extra_info["title"] = title


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

"""Run every experiment's ``measure()`` and write JSON perf snapshots.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py            # all experiments
    PYTHONPATH=src python benchmarks/run_all.py e12 e16    # a subset
    PYTHONPATH=src python benchmarks/run_all.py --suite smoke --workers 4

Each experiment module exposes ``measure()`` (the paper-relevant series
without the pytest-benchmark harness).  This driver times each one, prints
its table, and writes:

* ``BENCH_all.json`` — wall-clock + rows for every experiment that ran;
* ``BENCH_transport.json`` — the transport-engine snapshot (E12 on both
  backends plus the E16 dict-vs-batch comparison), the perf gate for the
  Topology/Transport/Ledger engine.

Snapshots land in the repository root (or ``--out DIR``).

The scenario-level workloads live in :mod:`repro.experiments`; E09, E11, E12
and E16 above are thin wrappers over its suites, and ``--suite NAME``
delegates to the subsystem's parallel runner and artifact store directly
(the ``BENCH_suite.json`` it writes is the committed regression baseline —
see ``repro suite compare``).
"""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

EXPERIMENTS = {
    "e01": "bench_e01_representative_hash",
    "e02": "bench_e02_estimate_similarity",
    "e03": "bench_e03_joint_sample",
    "e04": "bench_e04_sparsity",
    "e05": "bench_e05_triangles",
    "e06": "bench_e06_four_cycles",
    "e07": "bench_e07_multitrial",
    "e08": "bench_e08_acd",
    "e09": "bench_e09_d1lc_rounds",
    "e10": "bench_e10_high_degree",
    "e11": "bench_e11_d1c_vs_baseline",
    "e12": "bench_e12_bandwidth",
    "e13": "bench_e13_setops_figure",
    "e14": "bench_e14_leader",
    "e15": "bench_e15_putaside",
    "e16": "bench_e16_transport",
}


def run_measure(module_name: str, **kwargs):
    module = importlib.import_module(f"benchmarks.{module_name}")
    start = time.perf_counter()
    rows = module.measure(**kwargs)
    elapsed = time.perf_counter() - start
    return rows, elapsed


def transport_snapshot(reuse: dict = None) -> dict:
    """Time the transport-sensitive workloads on both backends.

    ``reuse`` maps experiment keys to already-measured ``{seconds, rows}``
    entries from the main loop (e12 runs on the default batch backend there),
    so a default invocation never measures the same workload twice.
    """
    reuse = reuse or {}
    snapshot: dict = {"experiments": {}}
    timings = {}
    for backend in ("dict", "batch"):
        if backend == "batch" and "e12" in reuse:
            entry = reuse["e12"]
        else:
            rows, elapsed = run_measure("bench_e12_bandwidth", backend=backend)
            entry = {"seconds": round(elapsed, 3), "rows": rows}
        timings[backend] = entry["seconds"]
        snapshot["experiments"][f"e12[{backend}]"] = entry
    snapshot["e12_dict_over_batch"] = round(
        timings["dict"] / max(timings["batch"], 1e-9), 3
    )
    if "e16" in reuse:
        entry = reuse["e16"]
    else:
        rows, elapsed = run_measure("bench_e16_transport")
        entry = {"seconds": round(elapsed, 3), "rows": rows}
    snapshot["experiments"]["e16"] = entry
    snapshot["e16_speedups"] = {row["workload"]: row["speedup"] for row in entry["rows"]}
    return snapshot


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("experiments", nargs="*",
                        help="experiment keys (e01..e16); default: all")
    parser.add_argument("--out", type=Path, default=REPO_ROOT,
                        help="directory for the JSON snapshots")
    parser.add_argument("--skip-transport", action="store_true",
                        help="skip the BENCH_transport.json snapshot")
    parser.add_argument("--suite", default=None,
                        help="run a scenario suite via repro.experiments instead "
                             "of the e* measure() modules")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for --suite")
    parser.add_argument("--shards", type=int, default=None,
                        help="shard-count override for --suite (bit-identical "
                             "aggregates for any value)")
    args = parser.parse_args(argv)

    if args.suite:
        from repro.experiments import run_suite, write_suite_artifacts

        result = run_suite(args.suite, workers=args.workers, shards=args.shards)
        paths = write_suite_artifacts(result, args.out)
        peak = max((s.peak_rss_mb for s in result.scenarios), default=0.0)
        print(f"suite '{args.suite}': {len(result.rows())} trials in "
              f"{result.wall_s}s (peak RSS {peak} MiB); wrote {paths['suite']}")
        return 0

    keys = args.experiments or sorted(EXPERIMENTS)
    unknown = [k for k in keys if k not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; choose from {sorted(EXPERIMENTS)}")

    from repro.experiments import canonical_dumps
    from repro.metrics import format_table

    all_results = {}
    for key in keys:
        rows, elapsed = run_measure(EXPERIMENTS[key])
        all_results[key] = {"seconds": round(elapsed, 3), "rows": rows}
        print(format_table(rows, title=f"{key} ({elapsed:.2f}s)"))
        print()

    args.out.mkdir(parents=True, exist_ok=True)
    (args.out / "BENCH_all.json").write_text(canonical_dumps(all_results))
    print(f"wrote {args.out / 'BENCH_all.json'}")

    if not args.skip_transport:
        snapshot = transport_snapshot(reuse=all_results)
        (args.out / "BENCH_transport.json").write_text(canonical_dumps(snapshot))
        print(f"wrote {args.out / 'BENCH_transport.json'} "
              f"(e12 dict/batch wall-clock ratio: {snapshot['e12_dict_over_batch']})")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT))
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main())

"""E11 — Corollary 1: D1C pipeline vs the classical O(log n) random-trial baseline.

The paper's improvement is asymptotic (log^3 log n vs log n); at simulation
scale the informative comparison is the *growth*: the baseline's round count
keeps creeping up with n while the pipeline's randomized round count stays
essentially flat, and both stay within the CONGEST bandwidth.

The workload now lives in the experiment subsystem: this benchmark is a thin
wrapper over the ``e11``-tagged scenario pairs of the ``coloring`` suite.
Pipeline and baseline scenarios share graph family, parameters, and base
seed, so the runner's seed derivation hands both solvers the *same* graphs —
a controlled head-to-head.
"""

from __future__ import annotations

import math

from benchmarks.conftest import emit, run_once
from repro.experiments import get_suite, run_scenarios


def measure():
    specs = [spec for spec in get_suite("coloring") if "e11" in spec.tags]
    result = run_scenarios(specs, suite="coloring")
    by_kind = {}
    for spec in specs:
        kind = "pipeline" if "pipeline" in spec.tags else "baseline"
        trial = result.rows_for(spec.name)[0]
        by_kind.setdefault(trial["n"], {})[kind] = trial
    rows = []
    for n in sorted(by_kind):
        pipeline, baseline = by_kind[n]["pipeline"], by_kind[n]["baseline"]
        rows.append({
            "n": n,
            "log2(n)": round(math.log2(n), 1),
            "pipeline randomized rounds": pipeline["randomized_rounds"],
            "pipeline total rounds": pipeline["rounds"],
            "baseline rounds": baseline["rounds"],
            "pipeline valid": pipeline["valid"],
            "baseline valid": baseline["valid"],
        })
    return rows


def test_e11_d1c_vs_baseline(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E11 — Corollary 1: D1C pipeline vs Johansson baseline", rows)
    assert all(row["pipeline valid"] and row["baseline valid"] for row in rows)
    pipeline_growth = rows[-1]["pipeline randomized rounds"] / max(1, rows[0]["pipeline randomized rounds"])
    baseline_growth = rows[-1]["baseline rounds"] / max(1, rows[0]["baseline rounds"])
    # Shape: the pipeline's rounds grow no faster than the baseline's as n grows
    # (asymptotically log^3 log n vs log n).
    assert pipeline_growth <= baseline_growth + 1.0

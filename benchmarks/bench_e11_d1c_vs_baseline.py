"""E11 — Corollary 1: D1C pipeline vs the classical O(log n) random-trial baseline.

The paper's improvement is asymptotic (log^3 log n vs log n); at simulation
scale the informative comparison is the *growth*: the baseline's round count
keeps creeping up with n while the pipeline's randomized round count stays
essentially flat, and both stay within the CONGEST bandwidth.
"""

from __future__ import annotations

import math

from benchmarks.conftest import emit, run_once
from repro.baselines import johansson_coloring
from repro.core import ColoringParameters, solve_d1c
from repro.graphs import gnp_graph

SIZES = (60, 120, 240, 480)
AVG_DEGREE = 8


def measure():
    rows = []
    for n in SIZES:
        graph = gnp_graph(n, min(0.5, AVG_DEGREE / n), seed=n)
        pipeline = solve_d1c(graph, params=ColoringParameters.small(seed=n))
        baseline = johansson_coloring(graph, seed=n)
        rows.append({
            "n": n,
            "log2(n)": round(math.log2(n), 1),
            "pipeline randomized rounds": pipeline.randomized_rounds,
            "pipeline total rounds": pipeline.rounds,
            "baseline rounds": baseline.rounds,
            "pipeline valid": pipeline.is_valid,
            "baseline valid": baseline.is_valid,
        })
    return rows


def test_e11_d1c_vs_baseline(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E11 — Corollary 1: D1C pipeline vs Johansson baseline", rows)
    assert all(row["pipeline valid"] and row["baseline valid"] for row in rows)
    pipeline_growth = rows[-1]["pipeline randomized rounds"] / max(1, rows[0]["pipeline randomized rounds"])
    baseline_growth = rows[-1]["baseline rounds"] / max(1, rows[0]["baseline rounds"])
    # Shape: the pipeline's rounds grow no faster than the baseline's as n grows
    # (asymptotically log^3 log n vs log n).
    assert pipeline_growth <= baseline_growth + 1.0

"""E15 — Algorithm 13 / Appendix D.2: put-aside sets provide Θ(ℓ) slack and get colored.

For low-slack planted cliques we measure the size of the put-aside sets
relative to ℓ, verify their mutual non-adjacency across cliques, and confirm
that the end-of-phase centralised coloring completes them without conflicts.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.congest import Network
from repro.core import ColoringInstance, ColoringParameters
from repro.core.acd import compute_acd
from repro.core.dense_phase import run_dense_phase
from repro.core.leader import select_leaders
from repro.core.putaside import compute_put_aside
from repro.core.slack import generate_slack
from repro.core.state import ColoringState
from repro.graphs import degree_plus_one_lists, planted_almost_cliques


def measure():
    rows = []
    for clique_size in (16, 24):
        planted = planted_almost_cliques(
            num_cliques=3, clique_size=clique_size, num_sparse=6, seed=clique_size
        )
        graph = planted.graph
        lists = degree_plus_one_lists(graph, seed=2)
        params = ColoringParameters.small(seed=15)
        network = Network(graph)
        state = ColoringState(ColoringInstance.d1lc(graph, lists), network, params)
        acd = compute_acd(network, params)
        leaders = select_leaders(state, acd)
        generate_slack(state, acd.dense_nodes)
        put_aside = compute_put_aside(state, leaders)
        ell = params.ell(state.instance.max_degree())

        cross_edges = 0
        all_members = {cid: members for cid, members in put_aside.items()}
        for cid, members in all_members.items():
            for other_cid, other_members in all_members.items():
                if cid == other_cid:
                    continue
                cross_edges += sum(
                    len(network.neighbors(v) & other_members) for v in members
                )

        # Run the rest of the dense phase so the put-aside sets are colored at the end.
        outcome = run_dense_phase(state, acd)
        put_aside_nodes = set().union(*outcome.put_aside.values()) if outcome.put_aside else set()
        rows.append({
            "clique size": clique_size,
            "ell": round(ell, 1),
            "put-aside sets": len(put_aside),
            "avg |P_C|": round(sum(len(m) for m in put_aside.values()) / max(1, len(put_aside)), 1),
            "cap 2ℓ": round(2 * ell, 1),
            "cross-clique adjacencies": cross_edges,
            "put-aside all colored": all(state.is_colored(v) for v in put_aside_nodes),
            "coloring proper": state.report().is_proper,
        })
    return rows


def test_e15_put_aside_sets(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E15 — Algorithm 13 / Appendix D.2: put-aside sets", rows)
    for row in rows:
        assert row["avg |P_C|"] <= row["cap 2ℓ"] + 1
        assert row["cross-clique adjacencies"] == 0
        assert row["put-aside all colored"]
        assert row["coloring proper"]

"""Sharded-vs-serial head-to-head on the ``massive`` suite.

For each selected scenario this driver runs the workload twice — serial
execution on ``--backend`` (slot by default, columnar for the flat-array
core) and ``--shards N`` partition-parallel execution — verifies the two
aggregates are **byte-identical** (the sharded layer's core contract), and
records both wall-clocks plus peak RSS::

    PYTHONPATH=src python benchmarks/bench_massive.py --smoke          # n=50k tier
    PYTHONPATH=src python benchmarks/bench_massive.py --tier n200k    # n=200k tier
    PYTHONPATH=src python benchmarks/bench_massive.py --smoke --backend columnar
    PYTHONPATH=src python benchmarks/bench_massive.py --only massive-ring-n200000-d1c
    PYTHONPATH=src python benchmarks/bench_massive.py --tier n500k --progress --trace /tmp/traces

The snapshot lands in ``BENCH_massive_smoke.json`` (or ``--out DIR``): one
entry per scenario with ``serial_wall_s``, ``sharded_wall_s``, ``speedup``,
``aggregates_identical``, per-leg ``*_peak_rss_mb``, and — in every row —
the ``backend`` it ran on and the ``cpus`` the machine offered at the time:
sharded wall-clock only beats serial when the machine actually has cores to
fan out over, and rows from different machines/backends can end up merged
into one snapshot, so each row carries its own provenance.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SNAPSHOT_FILENAME = "BENCH_massive_smoke.json"
SCHEMA = "repro-massive/1"


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _children_peak_rss_mb() -> float:
    """Peak RSS over *reaped* child processes (the forked sweep workers)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return round(peak / (1024.0 * 1024.0), 1)


def _leg_main(conn, name: str, shards, workers: int, backend: str = "slot",
              progress: bool = False, trace_dir=None) -> None:
    """Run one (scenario, shard-setting) leg and report back over a pipe."""
    from repro.experiments import aggregate_suite, canonical_dumps, run_suite
    from repro.shard import shutdown_pool

    progress_cb = None
    if progress:
        from repro.obs import Heartbeat, current_rss_mb

        heartbeat = Heartbeat(interval_s=0.0)
        leg = "serial" if shards is None else f"shards={shards}"
        started = time.perf_counter()

        def progress_cb(row):
            heartbeat.beat(
                f"[massive {leg}] {row['scenario']} trial {row['trial']}: "
                f"rounds={row.get('rounds', '-')} "
                f"elapsed={round(time.perf_counter() - started, 1)}s "
                f"rss={current_rss_mb()}MiB"
            )

    result = run_suite("massive", workers=workers, backend=backend,
                       only=[name], shards=shards, progress=progress_cb,
                       trace_dir=trace_dir)
    shutdown_pool()  # reap the sweep workers so RUSAGE_CHILDREN sees them
    conn.send({
        "aggregate": canonical_dumps(aggregate_suite(result)),
        "row": result.scenarios[0].rows[0],
        "peak_rss_mb": result.scenarios[0].peak_rss_mb,
        "worker_peak_rss_mb": _children_peak_rss_mb(),
    })
    conn.close()


def _measure_leg(name: str, shards, workers: int, backend: str = "slot",
                 progress: bool = False, trace_dir=None):
    """One leg in a forked subprocess, so per-leg RSS is honest.

    ``ru_maxrss`` is a process-lifetime high-water mark; measured in-process
    it would echo whichever earlier leg or scenario peaked highest.  A
    forked child starts a fresh counter (its high-water begins at the
    parent's *current* RSS, which between legs is small), so each leg's
    peak — and, for sharded legs, its reaped sweep workers' peak — is its
    own.  Falls back to in-process measurement where fork is unavailable,
    with exactly that lifetime caveat.
    """
    import multiprocessing

    start = time.perf_counter()
    if "fork" in multiprocessing.get_all_start_methods():
        ctx = multiprocessing.get_context("fork")
        parent, child = ctx.Pipe()
        proc = ctx.Process(target=_leg_main,
                           args=(child, name, shards, workers, backend,
                                 progress, trace_dir))
        proc.start()
        child.close()
        try:
            payload = parent.recv()
        except EOFError:
            raise RuntimeError(f"benchmark leg for {name!r} died") from None
        finally:
            proc.join()
            parent.close()
    else:  # pragma: no cover - fork-less platforms
        conn_payload = {}

        class _Inline:
            def send(self, value):
                conn_payload.update(value)

            def close(self):
                pass

        _leg_main(_Inline(), name, shards, workers, backend, progress,
                  trace_dir)
        payload = conn_payload
    return round(time.perf_counter() - start, 2), payload


def run_head_to_head(names, shards: int, workers: int = 1,
                     backend: str = "slot", progress: bool = False,
                     trace_dir=None):
    entries = {}
    cpus = _cpus()
    # Each leg traces into its own subdirectory — both legs emit
    # TRACE_<scenario>.jsonl, and the serial-vs-sharded pair is exactly what
    # `repro trace compare` wants to diff afterwards.
    serial_traces = Path(trace_dir) / "serial" if trace_dir else None
    sharded_traces = Path(trace_dir) / f"shards{shards}" if trace_dir else None
    for name in names:
        print(f"[{name}] serial {backend} ...", flush=True)
        serial_s, serial = _measure_leg(name, None, workers, backend,
                                        progress, serial_traces)
        print(f"[{name}] serial {serial_s}s; sharded x{shards} ...", flush=True)
        sharded_s, sharded = _measure_leg(name, shards, workers, backend,
                                          progress, sharded_traces)
        identical = serial["aggregate"] == sharded["aggregate"]
        row = serial["row"]
        entries[name] = {
            "n": row["n"],
            "m": row["m"],
            "valid": bool(row.get("valid")),
            "rounds": row.get("rounds"),
            "backend": backend,
            "cpus": cpus,
            "serial_wall_s": serial_s,
            "sharded_wall_s": sharded_s,
            "speedup": round(serial_s / max(sharded_s, 1e-9), 3),
            "shards": shards,
            "aggregates_identical": identical,
            "serial_peak_rss_mb": serial["peak_rss_mb"],
            "sharded_peak_rss_mb": sharded["peak_rss_mb"],
            "sharded_worker_peak_rss_mb": sharded["worker_peak_rss_mb"],
        }
        status = "IDENTICAL" if identical else "DRIFT (BUG)"
        print(f"[{name}] sharded {sharded_s}s "
              f"(speedup {entries[name]['speedup']}x, aggregates {status})",
              flush=True)
        if not identical:
            raise SystemExit(
                f"{name}: sharded aggregate differs from serial — the "
                "determinism contract is broken; not writing a snapshot"
            )
    return entries


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="run the massive-smoke tier (n=50 000)")
    parser.add_argument("--tier", choices=["massive-smoke", "n200k", "n500k"],
                        default=None, help="run every scenario with this tag")
    parser.add_argument("--only", action="append", default=None,
                        metavar="SCENARIO", help="explicit scenario (repeatable)")
    parser.add_argument("--shards", type=int, default=max(2, _cpus()),
                        help="shard count for the sharded leg "
                             "(default: max(2, available cpus))")
    parser.add_argument("--workers", type=int, default=1,
                        help="trial worker processes (scenarios are single-"
                             "trial, so 1 is the honest timing setting)")
    parser.add_argument("--backend", choices=["dict", "batch", "slot", "columnar"],
                        default="slot",
                        help="transport backend for both legs (default: slot; "
                             "columnar needs numpy)")
    parser.add_argument("--out", type=Path, default=REPO_ROOT,
                        help="directory for the snapshot")
    parser.add_argument("--progress", action="store_true",
                        help="emit a heartbeat line to stderr per completed "
                             "trial on both legs (observation-only; the "
                             "500k legs are long — this shows they're alive)")
    parser.add_argument("--trace", type=Path, default=None, metavar="DIR",
                        help="write TRACE_<scenario>.jsonl round traces under "
                             "DIR/serial and DIR/shards<N> (observation-only: "
                             "aggregates stay byte-identical)")
    args = parser.parse_args(argv)

    from repro.experiments import canonical_dumps, get_suite

    specs = get_suite("massive")
    if args.only:
        known = {spec.name for spec in specs}
        unknown = set(args.only) - known
        if unknown:
            parser.error(f"unknown scenarios: {sorted(unknown)}")
        names = list(args.only)
    else:
        if args.smoke and args.tier and args.tier != "massive-smoke":
            parser.error("--smoke conflicts with --tier " + args.tier)
        tier = args.tier
        if tier is None and args.smoke:
            tier = "massive-smoke"
        if tier is None:
            parser.error("select scenarios with --smoke, --tier or --only")
        names = [spec.name for spec in specs if tier in spec.tags]
    if not names:
        parser.error("no scenarios selected")

    entries = run_head_to_head(names, shards=args.shards, workers=args.workers,
                               backend=args.backend, progress=args.progress,
                               trace_dir=args.trace)
    out_path = args.out / SNAPSHOT_FILENAME
    snapshot = {"schema": SCHEMA, "cpus": _cpus(), "scenarios": entries}
    if out_path.exists():
        # Merge over earlier tiers so one committed snapshot can hold the
        # smoke and the n>=200k head-to-heads at once.
        try:
            existing = json.loads(out_path.read_text())
        except ValueError:
            existing = None
        if isinstance(existing, dict) and existing.get("schema") == SCHEMA:
            merged = dict(existing.get("scenarios", {}))
            merged.update(entries)
            snapshot["scenarios"] = merged
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(canonical_dumps(snapshot))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_ROOT))
    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.exit(main())

"""E16 — Transport engine: Dict vs Batch vs Slot transport wall-clock.

All backends charge byte-identical ledgers (enforced by the equivalence
suite in ``tests/test_transport_equivalence.py``); this benchmark measures
what the batching buys in wall-clock on the largest seed workload
(the n=240 D1LC instance of E9) plus a raw exchange/broadcast microbench.
The table also re-asserts the ledger equality end to end, so a perf run
doubles as a fidelity check.

The pipeline workload is the ``e16``-tagged scenario of the ``scaling``
suite, run through the experiment subsystem once per backend; the metric
equality check across backends is exactly what lets the suite's aggregate
snapshot omit the backend knob.
"""

from __future__ import annotations

import time
from dataclasses import replace

from benchmarks.conftest import emit, run_once
from repro.congest import Message, Network
from repro.experiments import get_suite, run_scenarios
from repro.graphs import gnp_graph

N = 240
AVG_DEGREE = 10
BACKENDS = ("dict", "batch", "slot")

#: ``coloring_sha`` fingerprints the exact node->color assignment, so the
#: cross-backend check is as strong as the old ``a.coloring == b.coloring``.
METRIC_KEYS = ("valid", "rounds", "total_bits", "max_edge_bits", "colors_used",
               "coloring_sha")


def _pipeline_row():
    (spec,) = [s for s in get_suite("scaling") if "e16" in s.tags]
    timings = {}
    trials = {}
    for backend in BACKENDS:
        result = run_scenarios([replace(spec, backend=backend)], suite="scaling")
        trial = result.rows_for(spec.name)[0]
        timings[backend] = trial["wall_s"]
        trials[backend] = trial
    a = trials["dict"]
    for backend in BACKENDS[1:]:
        b = trials[backend]
        assert all(a[key] == b[key] for key in METRIC_KEYS), backend
    return {
        "workload": f"D1LC gnp n={a['n']}",
        "dict s": round(timings["dict"], 3),
        "batch s": round(timings["batch"], 3),
        "slot s": round(timings["slot"], 3),
        "speedup": round(timings["dict"] / max(timings["slot"], 1e-9), 2),
        "ledgers equal": True,
        "rounds": a["rounds"],
    }


def _microbench_row(rounds: int = 60):
    graph = gnp_graph(N, min(0.5, AVG_DEGREE / N), seed=N)
    timings = {}
    ledgers = {}
    for backend in BACKENDS:
        network = Network(graph, bandwidth_bits=256, backend=backend)
        payloads = {
            v: Message(content=v, bits=8, label="micro") for v in network.nodes
        }
        start = time.perf_counter()
        for _ in range(rounds):
            network.broadcast(payloads, label="micro:bcast")
            network.exchange(
                {(u, v): Message(content=1, bits=4, label="m")
                 for u in network.nodes for v in network.neighbors(u)},
                label="micro:exch",
            )
        timings[backend] = time.perf_counter() - start
        ledgers[backend] = (network.ledger.rounds, network.ledger.total_bits,
                            network.ledger.max_edge_bits)
    assert all(ledgers[b] == ledgers["dict"] for b in BACKENDS[1:])
    return {
        "workload": f"raw bcast+exch n={N} x{rounds}",
        "dict s": round(timings["dict"], 3),
        "batch s": round(timings["batch"], 3),
        "slot s": round(timings["slot"], 3),
        "speedup": round(timings["dict"] / max(timings["slot"], 1e-9), 2),
        "ledgers equal": True,
        "rounds": ledgers["dict"][0],
    }


def measure():
    return [_pipeline_row(), _microbench_row()]


def test_e16_transport_backends(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E16 — transport backends: identical ledgers, wall-clock "
                    "dict vs batch vs slot", rows)
    # The fast backends must never lose badly on the raw primitive path.
    micro = rows[1]
    assert micro["batch s"] <= micro["dict s"] * 1.5
    assert micro["slot s"] <= micro["dict s"] * 1.5

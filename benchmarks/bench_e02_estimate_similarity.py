"""E2 — Lemma 2: EstimateSimilarity accuracy and message cost.

For a sweep of overlap fractions and accuracies ε we measure the estimation
error of Algorithm 1 relative to the permitted ``ε·max(|S_u|, |S_v|)`` and the
number of bits exchanged (which Lemma 2 bounds by
``O(ε^{-4} log(1/ν) + log log|U| + log max(|S_u|,|S_v|))``).
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit, run_once
from repro.sampling import SimilarityParameters, estimate_similarity

SET_SIZE = 600
TRIALS = 20


def overlapping_sets(overlap: int):
    shared = set(range(overlap))
    left = shared | {10 ** 6 + i for i in range(SET_SIZE - overlap)}
    right = shared | {2 * 10 ** 6 + i for i in range(SET_SIZE - overlap)}
    return left, right


def measure():
    rows = []
    for eps in (0.5, 0.3, 0.2):
        params = SimilarityParameters(eps=eps, nu=0.1, max_scale=4, sigma_cap=4096, seed=1)
        for overlap_fraction in (0.75, 0.5, 0.25, 0.05):
            overlap = int(overlap_fraction * SET_SIZE)
            left, right = overlapping_sets(overlap)
            errors, bits = [], []
            within = 0
            for trial in range(TRIALS):
                result = estimate_similarity(left, right, params, rng=random.Random(trial))
                error = abs(result.estimate - overlap)
                errors.append(error)
                bits.append(result.bits_exchanged)
                within += error <= eps * SET_SIZE
            rows.append({
                "eps": eps,
                "true |Su∩Sv|": overlap,
                "mean estimate error": round(sum(errors) / TRIALS, 1),
                "allowed (eps*max)": round(eps * SET_SIZE, 1),
                "fraction within bound": round(within / TRIALS, 2),
                "bits per run": bits[0],
            })
    return rows


def test_e02_estimate_similarity_accuracy(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E2 — Lemma 2: EstimateSimilarity error vs ε·max(|Su|,|Sv|)", rows)
    # Shape: the overwhelming majority of runs respect the Lemma 2 bound, and
    # the message cost grows as ε shrinks (the ε^{-4} dependence).
    for row in rows:
        assert row["fraction within bound"] >= 0.8
    loose = next(r for r in rows if r["eps"] == 0.5)
    tight = next(r for r in rows if r["eps"] == 0.2)
    assert tight["bits per run"] >= loose["bits per run"]

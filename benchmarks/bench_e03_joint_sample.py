"""E3 — Lemma 3: JointSample agreement probability.

Two endpoints with intersection at least ``ε·max(|S_u|, |S_v|)`` should output
the *same* intersection element with probability at least ``1 − 5ε/4 − ν``.
We sweep the overlap fraction and measure the empirical agreement rate.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.sampling import SimilarityParameters
from repro.sampling.joint_sample import agreement_rate

SET_SIZE = 500
TRIALS = 40
EPS, NU = 0.3, 0.1


def overlapping_sets(overlap: int):
    shared = set(range(overlap))
    left = shared | {10 ** 6 + i for i in range(SET_SIZE - overlap)}
    right = shared | {2 * 10 ** 6 + i for i in range(SET_SIZE - overlap)}
    return left, right


def measure():
    params = SimilarityParameters(eps=EPS, nu=NU, max_scale=4, sigma_cap=4096, seed=2)
    rows = []
    for overlap_fraction in (0.9, 0.6, 0.3, 0.1):
        overlap = int(overlap_fraction * SET_SIZE)
        left, right = overlapping_sets(overlap)
        rate = agreement_rate(left, right, trials=TRIALS, params=params, seed=3)
        rows.append({
            "overlap fraction": overlap_fraction,
            "above eps threshold": overlap >= EPS * SET_SIZE,
            "paper: agreement >=": round(1 - 5 * EPS / 4 - NU, 3),
            "measured agreement": round(rate, 3),
        })
    return rows


def test_e03_joint_sample_agreement(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E3 — Lemma 3: JointSample agreement probability", rows)
    for row in rows:
        if row["above eps threshold"]:
            assert row["measured agreement"] >= row["paper: agreement >="] - 0.1

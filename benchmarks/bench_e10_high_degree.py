"""E10 — Theorem 1, high-degree regime: rounds independent of the degree.

The paper's strongest statement is for graphs of minimum degree ``log^7 n``:
the algorithm then finishes in ``O(log* n)`` rounds.  The observable shape at
simulation scale: raising the (minimum) degree of the instance does not raise
the round count of the randomized part — slack is easier to generate, so if
anything the pipeline finishes sooner and sends fewer nodes to the fallback.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.core import ColoringParameters, solve_d1c
from repro.graphs import gnp_graph

N = 100


def measure():
    rows = []
    for p in (0.08, 0.16, 0.32, 0.5):
        graph = gnp_graph(N, p, seed=int(p * 100))
        degrees = [d for _, d in graph.degree()]
        result = solve_d1c(graph, params=ColoringParameters.small(seed=int(p * 100)))
        rows.append({
            "edge prob p": p,
            "min degree": min(degrees),
            "avg degree": round(sum(degrees) / len(degrees), 1),
            "valid": result.is_valid,
            "randomized rounds": result.randomized_rounds,
            "fallback nodes": result.fallback_nodes,
        })
    return rows


def test_e10_high_degree_regime(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E10 — Theorem 1: rounds vs degree (high-degree regime)", rows)
    assert all(row["valid"] for row in rows)
    # Rounds do not grow with the degree.
    assert rows[-1]["randomized rounds"] <= 2.0 * max(1, rows[0]["randomized rounds"])
    # Dense instances leave (at most) as many nodes to the fallback as sparse ones.
    assert rows[-1]["fallback nodes"] <= rows[0]["fallback nodes"] + 5

"""E5 — Theorem 2: local triangle-richness detection.

Planted instance: a sparse background plus dense communities whose edges sit
in many triangles.  Every edge decides locally whether it is in ≥ εΔ
triangles; we measure recall on clearly-rich edges, false positives on
clearly-poor edges, and the (constant) number of rounds.
"""

from __future__ import annotations

from benchmarks.conftest import emit, run_once
from repro.congest import Network
from repro.graphs.generators import triangle_rich_graph
from repro.sampling import detect_triangle_rich_edges
from repro.sampling.triangles import true_triangle_count

EPS = 0.3


def measure():
    rows = []
    for n, cliques in ((120, 3), (240, 4)):
        planted = triangle_rich_graph(
            n=n, background_p=0.02, planted_cliques=cliques, clique_size=14, seed=n
        )
        net = Network(planted.graph)
        result = detect_triangle_rich_edges(net, eps=EPS, seed=n)
        hits = misses = false_alarms = 0
        rich = poor = 0
        for u, v in planted.graph.edges():
            count = true_triangle_count(net, u, v)
            flagged = result.is_flagged(u, v)
            if count >= 2 * result.threshold:
                rich += 1
                hits += flagged
                misses += not flagged
            elif count <= 0.25 * result.threshold:
                poor += 1
                false_alarms += flagged
        rows.append({
            "n": n,
            "threshold εΔ": round(result.threshold, 1),
            "recall on rich edges": round(hits / max(1, rich), 3),
            "false positive rate": round(false_alarms / max(1, poor), 3),
            "rounds": result.rounds_used,
        })
    return rows


def test_e05_triangle_detection(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E5 — Theorem 2: local triangle detection", rows)
    for row in rows:
        assert row["recall on rich edges"] >= 0.8
        assert row["false positive rate"] <= 0.1
    # Rounds do not grow with n (Theorem 2: O(ε^-4) rounds).
    assert rows[-1]["rounds"] <= rows[0]["rounds"] + 5

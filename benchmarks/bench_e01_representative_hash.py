"""E1 — Lemma 1 / Claim 1: a random family member is (A, B)-good w.p. >= 1 - ν.

For several set-size regimes (|A| above and below the αλ threshold) we draw
random members of a representative family and measure how often the two
Lemma 1 properties hold:

* ``|A|_h^{<=σ}`` within ``(1 ± β)·σ|A|/λ``   (resp. ``<= σα(1+β)``),
* ``|A ∧_h B| <= 2βσ|A|/λ``                    (resp. ``<= 2σαβ``).

Paper claim: at least a ``1 − ν`` fraction of the family is good for every
fixed (A, B).  Measured: the fraction of sampled members that are good.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit, run_once
from repro.hashing.representative import RepresentativeHashFamily
from repro.hashing.setops import colliding_part, low_part


ALPHA, BETA, NU = 0.05, 0.25, 0.1
LAM = 4000
TRIALS = 60


def measure():
    family = RepresentativeHashFamily(
        universe_label="e1", universe_size=10 ** 9, lam=LAM,
        alpha=ALPHA, beta=BETA, nu=NU, seed=1,
    )
    sigma = family.sigma
    rows = []
    regimes = {
        "|A| = 4αλ (large)": int(4 * ALPHA * LAM),
        "|A| = αλ (threshold)": int(ALPHA * LAM),
        "|A| = αλ/4 (small)": int(ALPHA * LAM / 4),
    }
    rng = random.Random(0)
    for label, size_a in regimes.items():
        a = set(range(size_a))
        b = set(range(size_a // 2, size_a // 2 + int(BETA * LAM * 0.8)))
        good = 0
        for _ in range(TRIALS):
            h = family.member(family.sample_index(rng))
            low = len(low_part(h, a, sigma))
            collisions = len(colliding_part(h, a, b, sigma))
            if size_a >= ALPHA * LAM:
                expected = sigma * size_a / LAM
                size_ok = abs(low - expected) <= BETA * expected
                coll_ok = collisions <= 2 * BETA * expected
            else:
                size_ok = low <= sigma * ALPHA * (1 + BETA)
                coll_ok = collisions <= 2 * sigma * ALPHA * BETA + 2
            good += size_ok and coll_ok
        rows.append({
            "regime": label,
            "|A|": size_a,
            "sigma": sigma,
            "paper: good fraction >=": 1 - NU,
            "measured good fraction": round(good / TRIALS, 3),
        })
    return rows


def test_e01_representative_hash_family_goodness(benchmark):
    rows = run_once(benchmark, measure)
    emit(benchmark, "E1 — Lemma 1: fraction of (A,B)-good members", rows)
    # Shape check: the measured good fraction respects the 1-ν claim (with a
    # small allowance for the capped simulation-scale family).
    for row in rows:
        assert row["measured good fraction"] >= 1 - NU - 0.15

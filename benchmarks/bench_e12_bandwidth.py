"""E12 — Bandwidth ablation: hashed primitives vs their naive counterparts.

Two head-to-head comparisons at a strict ``log2 n``-bit budget:

* MultiTrial (Algorithm 4) vs a naive variant that lists its x tried colors
  verbatim — the naive cost grows with ``x·log|C|`` while the hashed cost is a
  fixed ``σ``-bit indicator;
* the O(1)-round ACD of Section 4.2 vs a naive ACD that ships entire
  neighbourhoods (Θ(Δ·log n) bits per edge).

This is the experiment that shows *why* the paper's techniques are needed in
CONGEST at all.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import emit, run_once
from repro.baselines import naive_compute_acd, naive_multi_trial
from repro.congest import Network
from repro.core import ColoringInstance, ColoringParameters
from repro.core.acd import compute_acd
from repro.core.multitrial import multi_trial
from repro.core.state import ColoringState
from repro.graphs import gnp_graph, numeric_degree_lists, planted_almost_cliques


def multitrial_rows(backend: str = "batch"):
    graph = gnp_graph(100, 0.12, seed=12)
    delta = max(d for _, d in graph.degree())
    budget = max(8, int(math.log2(graph.number_of_nodes())) + 1)
    rows = []
    for tries in (4, 16, 32):
        results = {}
        for label, runner in (("hashed MultiTrial", multi_trial), ("naive MultiTrial", naive_multi_trial)):
            lists = numeric_degree_lists(graph, extra=3 * delta)
            instance = ColoringInstance.d1lc(graph, lists)
            network = Network(graph, bandwidth_bits=budget, backend=backend)
            state = ColoringState(instance, network, ColoringParameters.small(seed=tries))
            colored = runner(state, tries)
            results[label] = (network.rounds_used, len(colored))
        rows.append({
            "experiment": "MultiTrial",
            "x / workload": tries,
            "hashed rounds": results["hashed MultiTrial"][0],
            "naive rounds": results["naive MultiTrial"][0],
            "hashed colored": results["hashed MultiTrial"][1],
            "naive colored": results["naive MultiTrial"][1],
        })
    return rows


def acd_rows(backend: str = "batch"):
    rows = []
    for clique_size in (16, 32, 48):
        planted = planted_almost_cliques(
            num_cliques=3, clique_size=clique_size, num_sparse=10, seed=clique_size
        )
        budget = max(8, int(math.log2(planted.graph.number_of_nodes())) + 1)
        params = ColoringParameters.small(seed=clique_size)
        hashed_net = Network(planted.graph, bandwidth_bits=budget, backend=backend)
        naive_net = Network(planted.graph, bandwidth_bits=budget, backend=backend)
        hashed = compute_acd(hashed_net, params)
        naive = naive_compute_acd(naive_net, params)
        edges = planted.graph.number_of_edges()
        rows.append({
            "experiment": "ACD",
            "x / workload": f"Δ≈{clique_size}",
            "hashed rounds": hashed.rounds_used,
            "naive rounds": naive.rounds_used,
            "hashed colored": len(hashed.cliques),
            "naive colored": len(naive.cliques),
            "hashed bits/edge": round(hashed_net.ledger.total_bits / edges),
            "naive bits/edge": round(naive_net.ledger.total_bits / edges),
        })
    return rows


def measure(backend: str = "batch"):
    return multitrial_rows(backend) + acd_rows(backend)


@pytest.mark.parametrize("backend", ["dict", "batch"])
def test_e12_bandwidth_ablation(benchmark, backend):
    rows = run_once(benchmark, lambda: measure(backend))
    emit(benchmark, "E12 — bandwidth ablation: hashed vs naive primitives "
                    f"(rounds at a strict log n budget; backend={backend}; "
                    "'colored' = nodes colored / cliques found)",
         rows)
    multitrial = [r for r in rows if r["experiment"] == "MultiTrial"]
    # The naive cost grows with x; the hashed cost stays flat.
    naive_growth = multitrial[-1]["naive rounds"] - multitrial[0]["naive rounds"]
    hashed_growth = multitrial[-1]["hashed rounds"] - multitrial[0]["hashed rounds"]
    assert hashed_growth <= naive_growth
    # The naive ACD ships Θ(Δ·log n) bits per edge — growing with Δ — while the
    # hashed ACD's per-edge cost saturates at the (Δ-independent) σ window.
    acd = [r for r in rows if r["experiment"] == "ACD"]
    naive_bits_growth = acd[-1]["naive bits/edge"] / max(1, acd[0]["naive bits/edge"])
    hashed_bits_growth = acd[-1]["hashed bits/edge"] / max(1, acd[0]["hashed bits/edge"])
    assert hashed_bits_growth <= naive_bits_growth + 0.5

"""E12 — Bandwidth ablation: hashed primitives vs their naive counterparts.

Two head-to-head comparisons at a strict ``log2 n``-bit budget:

* MultiTrial (Algorithm 4) vs a naive variant that lists its x tried colors
  verbatim — the naive cost grows with ``x·log|C|`` while the hashed cost is a
  fixed ``σ``-bit indicator;
* the O(1)-round ACD of Section 4.2 vs a naive ACD that ships entire
  neighbourhoods (Θ(Δ·log n) bits per edge).

This is the experiment that shows *why* the paper's techniques are needed in
CONGEST at all.

The workload now lives in the experiment subsystem: this benchmark is a thin
wrapper over the ``e12``-tagged scenarios of the ``bandwidth`` suite.  Hashed
and naive variants share family parameters and base seed, so the runner hands
both the same graphs and the same solver randomness.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from benchmarks.conftest import emit, run_once
from repro.experiments import get_suite, run_scenarios


def _paired_rows(result, specs, kind: str, workload_of):
    """Pair each hashed scenario with its naive twin into one table row."""
    pairs = {}
    for spec in specs:
        trial = result.rows_for(spec.name)[0]
        variant = "hashed" if "hashed" in spec.tags else "naive"
        pairs.setdefault(workload_of(spec, trial), {})[variant] = trial
    rows = []
    for workload, variants in pairs.items():
        hashed, naive = variants["hashed"], variants["naive"]
        row = {
            "experiment": kind,
            "x / workload": workload,
            "hashed rounds": hashed["rounds"],
            "naive rounds": naive["rounds"],
            "hashed colored": hashed.get("colored", hashed.get("cliques")),
            "naive colored": naive.get("colored", naive.get("cliques")),
        }
        if kind == "ACD":
            row["hashed bits/edge"] = round(hashed["bits_per_edge"])
            row["naive bits/edge"] = round(naive["bits_per_edge"])
        rows.append(row)
    return rows


def measure(backend: str = "batch"):
    specs = [replace(spec, backend=backend)
             for spec in get_suite("bandwidth") if "e12" in spec.tags]
    result = run_scenarios(specs, suite="bandwidth")
    multitrial = [s for s in specs if "multitrial" in s.tags]
    acd = [s for s in specs if "acd" in s.tags]
    rows = _paired_rows(result, multitrial, "MultiTrial",
                        lambda spec, trial: trial["tries"])
    rows += _paired_rows(result, acd, "ACD",
                         lambda spec, trial: f"Δ≈{spec.family_params['clique_size']}")
    return rows


@pytest.mark.parametrize("backend", ["dict", "batch"])
def test_e12_bandwidth_ablation(benchmark, backend):
    rows = run_once(benchmark, lambda: measure(backend))
    emit(benchmark, "E12 — bandwidth ablation: hashed vs naive primitives "
                    f"(rounds at a strict log n budget; backend={backend}; "
                    "'colored' = nodes colored / cliques found)",
         rows)
    multitrial = [r for r in rows if r["experiment"] == "MultiTrial"]
    # The naive cost grows with x; the hashed cost stays flat.
    naive_growth = multitrial[-1]["naive rounds"] - multitrial[0]["naive rounds"]
    hashed_growth = multitrial[-1]["hashed rounds"] - multitrial[0]["hashed rounds"]
    assert hashed_growth <= naive_growth
    # The naive ACD ships Θ(Δ·log n) bits per edge — growing with Δ — while the
    # hashed ACD's per-edge cost saturates at the (Δ-independent) σ window.
    acd = [r for r in rows if r["experiment"] == "ACD"]
    naive_bits_growth = acd[-1]["naive bits/edge"] / max(1, acd[0]["naive bits/edge"])
    hashed_bits_growth = acd[-1]["hashed bits/edge"] / max(1, acd[0]["hashed bits/edge"])
    assert hashed_bits_growth <= naive_bits_growth + 0.5

"""Packaging metadata for the PODC'22 distributed-coloring reproduction.

The offline environment used for this reproduction has setuptools but not the
``wheel`` package, so PEP 517 editable installs (which build a wheel) can
fail; a plain ``setup.py`` keeps ``pip install -e .`` working through the
legacy editable path.  ``numpy`` is a hard requirement: the ``columnar``
transport backend (``repro.congest.columnar``) needs it, and environments
without it fall back to the pure-Python backends with a clean ImportError
only if numpy is genuinely absent — but supported installs ship it.
"""

from setuptools import find_packages, setup

setup(
    name="repro-congestion-coloring",
    version="0.8.0",
    description=(
        "Reproduction of 'Overcoming Congestion in Distributed Coloring' "
        "(Halldorsson, Nolin, Tonoyan; PODC 2022): CONGEST simulator, "
        "representative hashing, and the (degree+1)-list-coloring pipeline"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=[
        "networkx",
        "numpy",
    ],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
        "scale": ["scipy"],
    },
)

"""Legacy setup shim.

The offline environment used for this reproduction has setuptools but not the
``wheel`` package, so PEP 517 editable installs (which build a wheel) fail.
Keeping a ``setup.py`` alongside ``pyproject.toml`` lets ``pip install -e .``
fall back to the legacy editable path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

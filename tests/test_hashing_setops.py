"""Tests for the set operators of Section 3.1 (Proposition 1 invariants)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing.keys import element_key, mix64
from repro.hashing.representative import RepresentativeHashFamily
from repro.hashing.setops import (
    colliding_part,
    hash_image,
    low_part,
    unique_hash_values,
    unique_part,
)


def make_hash(lam: int, seed: int = 0):
    """A deterministic stand-in hash function to [1, lam]."""
    return lambda x: 1 + mix64(seed, element_key(x)) % lam


class TestLowPart:
    def test_threshold_at_lambda_keeps_everything(self):
        h = make_hash(10)
        elements = set(range(50))
        assert low_part(h, elements, 10) == elements

    def test_threshold_zero_keeps_nothing(self):
        h = make_hash(10)
        assert low_part(h, set(range(50)), 0) == set()

    def test_monotone_in_sigma(self):
        h = make_hash(16)
        elements = set(range(40))
        small = low_part(h, elements, 4)
        large = low_part(h, elements, 12)
        assert small <= large

    def test_hash_image(self):
        h = make_hash(8)
        assert hash_image(h, [1, 2, 3]) == {h(1), h(2), h(3)}


class TestCollidingAndUnique:
    def test_disjoint_hashes_have_no_collisions(self):
        h = lambda x: x  # identity: everyone unique
        elements = set(range(1, 20))
        assert colliding_part(h, elements, elements, 100) == set()
        assert unique_part(h, elements, elements, 100) == elements

    def test_everything_collides_with_constant_hash(self):
        h = lambda x: 1
        elements = set(range(10))
        assert colliding_part(h, elements, elements, 5) == elements
        assert unique_part(h, elements, elements, 5) == set()

    def test_single_element_never_collides_with_itself(self):
        h = lambda x: 1
        assert colliding_part(h, {"a"}, {"a"}, 5) == set()
        assert unique_part(h, {"a"}, {"a"}, 5) == {"a"}

    def test_collision_against_other_set(self):
        h = lambda x: 1 if x in ("a", "b") else 2
        assert colliding_part(h, {"a"}, {"b"}, 5) == {"a"}
        assert colliding_part(h, {"a"}, {"c"}, 5) == set()

    def test_unique_hash_values_maps_to_preimages(self):
        h = lambda x: {1: 1, 2: 1, 3: 2}[x]
        mapping = unique_hash_values(h, {1, 2, 3}, sigma=5)
        assert mapping == {2: 3}


# --------------------------------------------------------------------------- #
# Proposition 1 as property-based tests.
# --------------------------------------------------------------------------- #

small_sets = st.sets(st.integers(min_value=0, max_value=200), min_size=0, max_size=40)


@settings(max_examples=60, deadline=None)
@given(a=small_sets, b=small_sets, lam=st.integers(min_value=2, max_value=64),
       sigma=st.integers(min_value=1, max_value=64), seed=st.integers(0, 5))
def test_proposition1_image_of_collisions_at_most_half(a, b, lam, sigma, seed):
    """Eq. (1): |h(A ∧ A)| <= |A ∧ A| / 2."""
    h = make_hash(lam, seed)
    collisions = colliding_part(h, a, a, sigma)
    assert len(hash_image(h, collisions)) <= len(collisions) / 2 or not collisions


@settings(max_examples=60, deadline=None)
@given(a=small_sets, extra=small_sets, lam=st.integers(min_value=2, max_value=64),
       sigma=st.integers(min_value=1, max_value=64), seed=st.integers(0, 5))
def test_proposition1_unique_part_injective(a, extra, lam, sigma, seed):
    """Eq. (2): when A ⊆ B, |h(A ¬ B)| = |A ¬ B|."""
    h = make_hash(lam, seed)
    b = a | extra
    survivors = unique_part(h, a, b, sigma)
    assert len(hash_image(h, survivors)) == len(survivors)


@settings(max_examples=60, deadline=None)
@given(a=small_sets, b=small_sets, extra=small_sets,
       lam=st.integers(min_value=2, max_value=64),
       sigma=st.integers(min_value=1, max_value=64), seed=st.integers(0, 5))
def test_proposition1_monotonicity(a, b, extra, lam, sigma, seed):
    """Eq. (3): B ⊆ C implies A ∧ B ⊆ A ∧ C and A ¬ C ⊆ A ¬ B."""
    h = make_hash(lam, seed)
    c = b | extra
    assert colliding_part(h, a, b, sigma) <= colliding_part(h, a, c, sigma)
    assert unique_part(h, a, c, sigma) <= unique_part(h, a, b, sigma)


@settings(max_examples=60, deadline=None)
@given(a=small_sets, b=small_sets, lam=st.integers(min_value=2, max_value=64),
       sigma=st.integers(min_value=1, max_value=64), seed=st.integers(0, 5))
def test_partition_of_low_part(a, b, lam, sigma, seed):
    """A|_h is the disjoint union of A ∧ B and A ¬ B."""
    h = make_hash(lam, seed)
    low = low_part(h, a, sigma)
    collide = colliding_part(h, a, b, sigma)
    unique = unique_part(h, a, b, sigma)
    assert collide | unique == low
    assert collide & unique == set()


class TestWithRepresentativeFamily:
    """The operators compose with actual representative family members."""

    def test_low_part_size_concentrates(self):
        family = RepresentativeHashFamily(
            universe_label="test", universe_size=10 ** 6, lam=1000,
            alpha=0.1, beta=0.3, nu=0.1, seed=1,
        )
        h = family.member(3)
        elements = set(range(500))
        expected = family.sigma * len(elements) / family.lam
        observed = len(low_part(h, elements, family.sigma))
        assert 0.5 * expected <= observed <= 2.0 * expected

"""Integration tests for the full D1LC / D1C / (Δ+1) solvers (Theorem 1, Corollary 1)."""

import networkx as nx
import pytest

from repro.core import ColoringParameters, solve_d1c, solve_d1lc, solve_delta_plus_one
from repro.graphs import (
    degree_plus_one_lists,
    gnp_graph,
    huge_color_space_lists,
    planted_almost_cliques,
    power_law_graph,
    shared_pool_lists,
)


class TestSolveD1C:
    def test_valid_on_random_graph(self, gnp_medium):
        result = solve_d1c(gnp_medium, seed=1)
        assert result.is_valid
        assert result.report.colored_nodes == gnp_medium.number_of_nodes()

    def test_valid_on_power_law_graph(self, powerlaw_small):
        result = solve_d1c(powerlaw_small, seed=2)
        assert result.is_valid

    def test_valid_on_clique(self):
        result = solve_d1c(nx.complete_graph(25), seed=3)
        assert result.is_valid

    def test_valid_on_path_and_isolated_nodes(self):
        g = nx.path_graph(10)
        g.add_nodes_from(range(100, 105))
        result = solve_d1c(g, seed=4)
        assert result.is_valid

    def test_valid_on_empty_graph(self):
        g = nx.empty_graph(5)
        result = solve_d1c(g, seed=5)
        assert result.is_valid

    def test_deterministic_given_seed(self, gnp_small):
        a = solve_d1c(gnp_small, seed=9)
        b = solve_d1c(gnp_small, seed=9)
        assert a.coloring == b.coloring
        assert a.rounds == b.rounds

    def test_bandwidth_never_exceeded(self, gnp_medium):
        result = solve_d1c(gnp_medium, seed=6)
        assert result.max_edge_bits <= result.bandwidth_bits

    def test_rounds_by_phase_cover_total(self, gnp_medium):
        result = solve_d1c(gnp_medium, seed=7)
        assert sum(result.rounds_by_phase.values()) == result.rounds
        assert result.randomized_rounds <= result.rounds

    def test_summary_contents(self, gnp_small):
        summary = solve_d1c(gnp_small, seed=8).summary()
        assert summary["valid"]
        assert summary["mode"] == "congest"
        assert summary["nodes"] == gnp_small.number_of_nodes()


class TestSolveD1LC:
    def test_valid_with_arbitrary_lists(self, planted_graph, d1lc_lists):
        result = solve_d1lc(planted_graph, d1lc_lists, seed=1)
        assert result.is_valid
        for v, color in result.coloring.items():
            assert color in d1lc_lists[v]

    def test_valid_with_adversarial_shared_pool(self, gnp_small):
        lists = shared_pool_lists(gnp_small, seed=2)
        result = solve_d1lc(gnp_small, lists, seed=2)
        assert result.is_valid

    def test_valid_with_huge_color_space(self, gnp_small):
        """Appendix D.3: colors of hundreds of bits still respect the bandwidth."""
        lists = huge_color_space_lists(gnp_small, color_space_bits=200, seed=3)
        result = solve_d1lc(gnp_small, lists, seed=3)
        assert result.is_valid
        assert result.max_edge_bits <= result.bandwidth_bits
        assert result.bandwidth_bits < 200

    def test_most_nodes_colored_by_randomized_part(self, planted_graph, d1lc_lists):
        result = solve_d1lc(planted_graph, d1lc_lists, seed=4)
        assert result.fallback_nodes <= 0.25 * planted_graph.number_of_nodes()

    def test_local_mode(self, gnp_small):
        result = solve_d1lc(gnp_small, mode="local", seed=5)
        assert result.is_valid
        assert result.mode == "local"

    def test_uniform_implementation(self, gnp_small):
        params = ColoringParameters.small(seed=6, uniform=True)
        result = solve_d1lc(gnp_small, params=params)
        assert result.is_valid

    def test_paper_parameters_still_valid_on_tiny_graph(self):
        g = gnp_graph(30, 0.2, seed=7)
        result = solve_d1lc(g, params=ColoringParameters.paper(seed=7))
        assert result.is_valid


class TestSolveDeltaPlusOne:
    def test_valid_and_uses_at_most_delta_plus_one_colors(self, gnp_medium):
        result = solve_delta_plus_one(gnp_medium, seed=1)
        assert result.is_valid
        delta = max(d for _, d in gnp_medium.degree())
        assert set(result.coloring.values()) <= set(range(delta + 1))

    def test_valid_on_planted_cliques(self, planted_graph):
        result = solve_delta_plus_one(planted_graph, seed=2)
        assert result.is_valid


class TestRoundComplexityShape:
    """The headline claim: rounds grow like poly(log log n), not like log n or Δ."""

    def test_rounds_grow_slowly_with_n(self):
        sizes = [40, 160]
        rounds = []
        for n in sizes:
            g = gnp_graph(n, min(0.3, 8.0 / n), seed=n)
            rounds.append(solve_d1c(g, seed=n).randomized_rounds)
        # Quadrupling n should not quadruple the randomized round count.
        assert rounds[1] <= 2.5 * max(1, rounds[0])

    def test_rounds_do_not_scale_with_degree(self):
        """Doubling the degree should leave the round count roughly unchanged."""
        small_deg = solve_d1c(gnp_graph(60, 0.12, seed=1), seed=1).randomized_rounds
        large_deg = solve_d1c(gnp_graph(60, 0.4, seed=1), seed=1).randomized_rounds
        assert large_deg <= 2.5 * max(1, small_deg)

    def test_dense_graph_beats_naive_color_broadcast_bound(self, planted_graph):
        """Rounds stay far below Δ (what a neighborhood-exchange ACD would cost)."""
        result = solve_d1c(planted_graph, seed=3)
        delta = max(d for _, d in planted_graph.degree())
        assert result.randomized_rounds <= 20 * delta  # loose sanity ceiling
        assert result.max_edge_bits <= result.bandwidth_bits

"""Tests for the error-correcting code used by the uniform Buddy test."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing.ecc import ErrorCorrectingCode, hamming_distance
from repro.hashing.keys import element_key, mix64


class TestHammingDistance:
    def test_identical(self):
        assert hamming_distance([0, 1, 1], [0, 1, 1]) == 0

    def test_all_different(self):
        assert hamming_distance([0, 0, 0], [1, 1, 1]) == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hamming_distance([0, 1], [0, 1, 1])


class TestErrorCorrectingCode:
    def test_codeword_length(self):
        code = ErrorCorrectingCode(word_bits=16, expansion=3)
        assert len(code.encode("node-7")) == 48

    def test_codewords_are_bits(self):
        code = ErrorCorrectingCode(word_bits=16)
        assert set(code.encode(42)) <= {0, 1}

    def test_deterministic(self):
        a = ErrorCorrectingCode(word_bits=16, seed=3)
        b = ErrorCorrectingCode(word_bits=16, seed=3)
        assert a.encode("v") == b.encode("v")

    def test_different_seeds_differ(self):
        a = ErrorCorrectingCode(word_bits=16, seed=3)
        b = ErrorCorrectingCode(word_bits=16, seed=4)
        assert a.encode("v") != b.encode("v")

    def test_identical_words_identical_codewords(self):
        code = ErrorCorrectingCode(word_bits=24)
        assert code.relative_distance(123, 123) == 0.0

    def test_distinct_words_far_apart(self):
        """The Algorithm 6 requirement: distinct IDs differ in a constant fraction."""
        code = ErrorCorrectingCode(word_bits=32, seed=1)
        for u in range(20):
            for w in range(u + 1, 20):
                assert code.relative_distance(u, w) >= 0.25

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ErrorCorrectingCode(word_bits=0)
        with pytest.raises(ValueError):
            ErrorCorrectingCode(word_bits=8, expansion=1)

    @settings(max_examples=50, deadline=None)
    @given(u=st.integers(min_value=0, max_value=10 ** 9),
           w=st.integers(min_value=0, max_value=10 ** 9))
    def test_distance_property_random_pairs(self, u, w):
        code = ErrorCorrectingCode(word_bits=24, seed=7)
        if u == w:
            assert code.relative_distance(u, w) == 0.0
        else:
            assert code.relative_distance(u, w) >= 0.2


class TestKeys:
    def test_element_key_stable_for_ints(self):
        assert element_key(5) == 5

    def test_element_key_stable_for_strings(self):
        assert element_key("abc") == element_key("abc")

    def test_element_key_tuple_differs_from_parts(self):
        assert element_key((1, 2)) != element_key(1)

    def test_mix64_avalanche(self):
        assert mix64(1, 2) != mix64(1, 3)
        assert mix64(1, 2) != mix64(2, 1)

    def test_mix64_range(self):
        assert 0 <= mix64(123456789, 987654321) < 2 ** 64


class TestDistanceUnderFaultCorruption:
    """The code's distance property under the fault layer's bit-flip operator.

    Algorithm 6's analysis needs two things from the ``[3b, b, b/2]`` code
    once the channel flips bits at rate ``q``:

    * corrupted codewords are still *uniquely decodable* for small ``q``:
      the corrupted word stays far closer to its original than to any other
      codeword (inter-codeword distance is ~1/2, corruption moves ~q); and
    * corruption is *detected* (the received word differs from the sent
      codeword) at rate ``1 - (1-q)^{3b}`` — the per-word detection rate the
      eps-Buddy comparison of random positions relies on.
    """

    WORD_BITS = 24

    def _corrupted(self, code, word, rate, seed):
        from repro.faults import corrupt_bits

        return corrupt_bits(code.encode(word), rate, seed=seed)

    def test_unique_decoding_survives_five_percent_noise(self):
        code = ErrorCorrectingCode(word_bits=self.WORD_BITS, seed=3)
        words = list(range(40))
        codewords = {w: code.encode(w) for w in words}
        for word in words:
            corrupted, _ = self._corrupted(code, word, 0.05, seed=word + 1)
            own = hamming_distance(corrupted, codewords[word])
            rival = min(hamming_distance(corrupted, codewords[other])
                        for other in words if other != word)
            assert own < rival, word
            # Far inside the unique-decoding radius (~b/4 of 3b positions).
            assert own / code.codeword_bits < 0.25

    def test_detection_rate_matches_binomial_model(self):
        code = ErrorCorrectingCode(word_bits=self.WORD_BITS, seed=3)
        rate = 0.02
        trials = 400
        detected = 0
        total_flips = 0
        for word in range(trials):
            corrupted, flips = self._corrupted(code, word, rate, seed=word)
            assert (corrupted != code.encode(word)) == (flips > 0)
            detected += flips > 0
            total_flips += flips
        expected_detect = 1 - (1 - rate) ** code.codeword_bits
        assert abs(detected / trials - expected_detect) < 0.08
        expected_flips = rate * code.codeword_bits
        assert abs(total_flips / trials - expected_flips) < 0.5

    @settings(max_examples=40, deadline=None)
    @given(word=st.integers(min_value=0, max_value=10 ** 9),
           seed=st.integers(min_value=0, max_value=10 ** 6))
    def test_corruption_preserves_codeword_shape(self, word, seed):
        from repro.faults import corrupt_bits

        code = ErrorCorrectingCode(word_bits=16, seed=11)
        codeword = code.encode(word)
        corrupted, flips = corrupt_bits(codeword, 0.1, seed=seed)
        assert len(corrupted) == len(codeword)
        assert set(corrupted) <= {0, 1}
        assert hamming_distance(corrupted, codeword) == flips
        # Determinism: the operator is a pure function of (bits, rate, seed).
        assert corrupt_bits(codeword, 0.1, seed=seed) == (corrupted, flips)

"""Tests for the error-correcting code used by the uniform Buddy test."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hashing.ecc import ErrorCorrectingCode, hamming_distance
from repro.hashing.keys import element_key, mix64


class TestHammingDistance:
    def test_identical(self):
        assert hamming_distance([0, 1, 1], [0, 1, 1]) == 0

    def test_all_different(self):
        assert hamming_distance([0, 0, 0], [1, 1, 1]) == 3

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            hamming_distance([0, 1], [0, 1, 1])


class TestErrorCorrectingCode:
    def test_codeword_length(self):
        code = ErrorCorrectingCode(word_bits=16, expansion=3)
        assert len(code.encode("node-7")) == 48

    def test_codewords_are_bits(self):
        code = ErrorCorrectingCode(word_bits=16)
        assert set(code.encode(42)) <= {0, 1}

    def test_deterministic(self):
        a = ErrorCorrectingCode(word_bits=16, seed=3)
        b = ErrorCorrectingCode(word_bits=16, seed=3)
        assert a.encode("v") == b.encode("v")

    def test_different_seeds_differ(self):
        a = ErrorCorrectingCode(word_bits=16, seed=3)
        b = ErrorCorrectingCode(word_bits=16, seed=4)
        assert a.encode("v") != b.encode("v")

    def test_identical_words_identical_codewords(self):
        code = ErrorCorrectingCode(word_bits=24)
        assert code.relative_distance(123, 123) == 0.0

    def test_distinct_words_far_apart(self):
        """The Algorithm 6 requirement: distinct IDs differ in a constant fraction."""
        code = ErrorCorrectingCode(word_bits=32, seed=1)
        for u in range(20):
            for w in range(u + 1, 20):
                assert code.relative_distance(u, w) >= 0.25

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ErrorCorrectingCode(word_bits=0)
        with pytest.raises(ValueError):
            ErrorCorrectingCode(word_bits=8, expansion=1)

    @settings(max_examples=50, deadline=None)
    @given(u=st.integers(min_value=0, max_value=10 ** 9),
           w=st.integers(min_value=0, max_value=10 ** 9))
    def test_distance_property_random_pairs(self, u, w):
        code = ErrorCorrectingCode(word_bits=24, seed=7)
        if u == w:
            assert code.relative_distance(u, w) == 0.0
        else:
            assert code.relative_distance(u, w) >= 0.2


class TestKeys:
    def test_element_key_stable_for_ints(self):
        assert element_key(5) == 5

    def test_element_key_stable_for_strings(self):
        assert element_key("abc") == element_key("abc")

    def test_element_key_tuple_differs_from_parts(self):
        assert element_key((1, 2)) != element_key(1)

    def test_mix64_avalanche(self):
        assert mix64(1, 2) != mix64(1, 3)
        assert mix64(1, 2) != mix64(2, 1)

    def test_mix64_range(self):
        assert 0 <= mix64(123456789, 987654321) < 2 ** 64

"""Cross-backend equivalence: Dict, Batch, Slot and Columnar must agree.

The paper-fidelity contract (DESIGN.md) is that the transport backend is a
performance choice only: for the same inputs and seeds, every backend must
deliver the same payloads and charge byte-identical ledgers — same rounds,
labels, message counts, total bits and per-round maxima.  This suite checks
that contract at the primitive level and end-to-end on several graph
families, including small instances of the ``scale`` suite's families
(geometric, power-law, ring-of-cliques).  The numpy-backed ``columnar``
backend joins the matrix whenever numpy is importable (it is an optional
runtime dependency of that backend only).
"""

import networkx as nx
import pytest

from repro.baselines import johansson_coloring
from repro.congest import Message, Network, Simulator
from repro.congest.columnar import HAVE_NUMPY
from repro.congest.transport import EMPTY_INBOX
from repro.core import solve_d1c, solve_d1lc
from repro.graphs import (
    degree_plus_one_lists,
    gnp_graph,
    planted_almost_cliques,
    power_law_graph,
    random_geometric_graph,
    ring_of_cliques,
)
from repro.graphs.generators import triangle_rich_graph
from repro.metrics.ledger import CounterLedger, RecordingLedger

_COLUMNAR = ("columnar",) if HAVE_NUMPY else ()
BACKENDS = ("dict", "batch", "slot") + _COLUMNAR
FAST_BACKENDS = ("batch", "slot") + _COLUMNAR  # vs the "dict" reference


def ledger_tuple(network: Network):
    ledger = network.ledger
    return (ledger.rounds, ledger.total_bits, ledger.total_messages,
            ledger.max_edge_bits)


def assert_identical_ledgers(*networks: Network):
    reference = networks[0]
    for other in networks[1:]:
        assert ledger_tuple(other) == ledger_tuple(reference), other.backend
        assert other.ledger.records == reference.ledger.records, other.backend


def all_networks(graph, **kwargs):
    return tuple(Network(graph, backend=b, **kwargs) for b in BACKENDS)


class TestPrimitiveEquivalence:
    def test_exchange(self):
        for net in all_networks(nx.cycle_graph(6), bandwidth_bits=64):
            delivered = net.exchange(
                {(0, 1): 5, (1, 0): Message(content="x", bits=9), (2, 3): (1, 2)},
                label="t",
            )
            assert delivered[(1, 0)] == "x"
        nets = all_networks(nx.cycle_graph(6), bandwidth_bits=64)
        for net in nets:
            net.exchange({(0, 1): 5, (2, 3): [7, 8]}, label="t")
            net.exchange({}, label="empty")
        assert_identical_ledgers(*nets)

    def test_broadcast_inboxes_and_ledger(self):
        nets = all_networks(nx.star_graph(5), bandwidth_bits=64)
        inboxes = []
        for net in nets:
            inbox = net.broadcast({0: Message(content=3, bits=4), 1: 2}, label="b")
            inboxes.append({v: dict(box) for v, box in inbox.items()})
        assert all(snapshot == inboxes[0] for snapshot in inboxes[1:])
        assert_identical_ledgers(*nets)

    def test_broadcast_inbox_ordering_matches(self):
        """Per-receiver sender order must match across backends: seeded
        algorithms iterate inbox.items() and consume randomness in order."""
        graph = nx.complete_graph(5)
        orders = []
        for net in all_networks(graph, bandwidth_bits=64):
            inbox = net.broadcast({3: "c", 1: "a", 2: "b"}, label="b")
            orders.append({v: list(box) for v, box in inbox.items()})
        assert all(order == orders[0] for order in orders[1:])

    def test_broadcast_restricted_recipients(self):
        nets = all_networks(nx.cycle_graph(5), bandwidth_bits=64)
        for net in nets:
            inbox = net.broadcast({0: 7}, senders_only_to={0: [1]}, label="b")
            assert dict(inbox[1]) == {0: 7}
            assert dict(inbox[4]) == {}
        assert_identical_ledgers(*nets)

    def test_exchange_chunked(self):
        msgs = {
            (0, 1): Message(content="long", bits=50),
            (1, 2): Message(content="short", bits=7),
            (2, 3): Message(content="empty", bits=0),
        }
        nets = all_networks(nx.path_graph(5), bandwidth_bits=8)
        for net in nets:
            delivered = net.exchange_chunked(msgs, label="c")
            assert delivered[(0, 1)] == "long"
        assert_identical_ledgers(*nets)

    def test_broadcast_chunked(self):
        nets = all_networks(nx.star_graph(4), bandwidth_bits=8)
        for net in nets:
            net.broadcast_chunked({0: Message(content="hub", bits=21)}, label="bc")
        assert_identical_ledgers(*nets)

    def test_silent_round(self):
        nets = all_networks(nx.path_graph(3))
        for net in nets:
            net.charge_silent_round(label="s")
        assert_identical_ledgers(*nets)

    def test_isolated_sender_contributes_no_messages(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_node(2)  # isolated
        nets = all_networks(graph, bandwidth_bits=64)
        for net in nets:
            inbox = net.broadcast({2: Message(content="big", bits=999), 0: 1},
                                  label="b")
            assert dict(inbox[1]) == {0: 1}
        # The isolated sender's oversized payload is never charged (it has no
        # recipients), so max_edge_bits must not pick it up on any backend.
        assert_identical_ledgers(*nets)
        assert nets[0].ledger.max_edge_bits == 1


class TestEmptyInboxContract:
    """Regression tests for the shared-empty-inbox invariant."""

    def test_silent_nodes_share_the_immutable_empty_inbox(self):
        for net in all_networks(nx.path_graph(4), bandwidth_bits=64):
            inbox = net.broadcast({0: 1}, label="b")
            assert inbox[3] is EMPTY_INBOX, net.backend

    def test_empty_inbox_stays_immutable(self):
        assert len(EMPTY_INBOX) == 0
        with pytest.raises(TypeError):
            EMPTY_INBOX["intruder"] = 1  # type: ignore[index]
        with pytest.raises(AttributeError):
            EMPTY_INBOX.clear()  # type: ignore[attr-defined]
        assert len(EMPTY_INBOX) == 0


#: Small instances of every family the equivalence contract must hold on,
#: including the ``scale`` suite's families at test-sized n.
GRAPH_FAMILIES = {
    "gnp": lambda: gnp_graph(60, 0.12, seed=5),
    "planted-cliques": lambda: planted_almost_cliques(
        num_cliques=3, clique_size=12, num_sparse=8, seed=3
    ).graph,
    "triangle-rich": lambda: triangle_rich_graph(
        n=50, planted_cliques=2, clique_size=8, seed=7
    ).graph,
    "cycle": lambda: nx.cycle_graph(30),
    "geometric": lambda: random_geometric_graph(40, 0.25, seed=11),
    "power-law": lambda: power_law_graph(40, 3, seed=13),
    "ring-of-cliques": lambda: ring_of_cliques(4, 6),
}


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
    def test_d1c_identical_across_backends(self, family):
        graph = GRAPH_FAMILIES[family]()
        results = {
            backend: solve_d1c(graph, seed=11, backend=backend)
            for backend in BACKENDS
        }
        a = results["dict"]
        assert a.is_valid
        for backend in FAST_BACKENDS:
            b = results[backend]
            assert a.coloring == b.coloring, backend
            assert a.rounds == b.rounds, backend
            assert a.total_bits == b.total_bits, backend
            assert a.max_edge_bits == b.max_edge_bits, backend
            assert a.rounds_by_phase == b.rounds_by_phase, backend
            assert b.is_valid, backend

    @pytest.mark.parametrize("family", ["gnp", "geometric", "ring-of-cliques"])
    def test_d1lc_identical_across_backends(self, family):
        graph = GRAPH_FAMILIES[family]()
        lists = degree_plus_one_lists(graph, seed=9)
        results = {
            backend: solve_d1lc(graph, lists, seed=4, backend=backend)
            for backend in BACKENDS
        }
        a = results["dict"]
        for backend in FAST_BACKENDS:
            b = results[backend]
            assert a.coloring == b.coloring, backend
            assert (a.rounds, a.total_bits, a.max_edge_bits) == (
                b.rounds, b.total_bits, b.max_edge_bits
            ), backend

    def test_johansson_identical_across_backends(self):
        graph = gnp_graph(40, 0.2, seed=2)
        results = {
            backend: johansson_coloring(graph, seed=6, backend=backend)
            for backend in BACKENDS
        }
        a = results["dict"]
        for backend in FAST_BACKENDS:
            b = results[backend]
            assert a.coloring == b.coloring, backend
            assert (a.rounds, a.total_bits) == (b.rounds, b.total_bits), backend

    def test_simulator_identical_across_backends(self):
        from repro.congest import NodeProgram

        class FloodMin(NodeProgram):
            def init(self, ctx):
                ctx.state["best"] = ctx.node
                ctx.state["changed"] = True

            def step(self, ctx, inbox):
                for value in inbox.values():
                    if value < ctx.state["best"]:
                        ctx.state["best"] = value
                        ctx.state["changed"] = True
                if not ctx.state["changed"]:
                    ctx.state.halt(ctx.state["best"])
                    return {}
                ctx.state["changed"] = False
                return {u: ctx.state["best"] for u in ctx.neighbors}

            def finish(self, ctx):
                return ctx.state["best"]

        nets = all_networks(nx.random_regular_graph(3, 12, seed=1))
        outputs = []
        for net in nets:
            outputs.append(Simulator(net, FloodMin(), seed=5).run().outputs)
        assert all(out == outputs[0] for out in outputs[1:])
        assert_identical_ledgers(*nets)


#: Fault plans the equivalence matrix runs under; the fault-free plan is the
#: existing end-to-end tests above.  Perturbations are deterministic pure
#: functions of (master seed, round, edge), so every backend — including the
#: columnar core, whose fault runs keep the reference delivery path — must
#: stay byte-identical under them.
FAULT_PLANS = {
    "drop": {"drop": 0.05},
    "corrupt": {"corrupt": 1e-3},
    "crash": {"crash": {3: (5,), 7: (9,)}},
}


class TestFaultedEquivalence:
    @pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
    @pytest.mark.parametrize("plan", sorted(FAULT_PLANS))
    def test_faulted_d1c_identical_across_backends(self, family, plan):
        graph = GRAPH_FAMILIES[family]()
        results = {
            backend: solve_d1c(graph, seed=11, backend=backend,
                               faults=FAULT_PLANS[plan], fault_seed=13)
            for backend in BACKENDS
        }
        a = results["dict"]
        for backend in FAST_BACKENDS:
            b = results[backend]
            assert a.coloring == b.coloring, backend
            assert (a.rounds, a.total_bits, a.max_edge_bits) == (
                b.rounds, b.total_bits, b.max_edge_bits
            ), backend
            assert a.fault_stats == b.fault_stats, backend


class TestLedgerBackends:
    def test_counters_match_records(self):
        graph = gnp_graph(40, 0.15, seed=8)
        full = solve_d1c(graph, seed=3, backend="batch", ledger="records")
        lean = solve_d1c(graph, seed=3, backend="batch", ledger="counters")
        assert full.coloring == lean.coloring
        assert (full.rounds, full.total_bits, full.max_edge_bits) == (
            lean.rounds, lean.total_bits, lean.max_edge_bits
        )
        assert full.rounds_by_phase == lean.rounds_by_phase

    def test_counter_ledger_keeps_no_records(self):
        net = Network(nx.path_graph(4), ledger="counters")
        net.exchange({(0, 1): 1}, label="a")
        assert isinstance(net.ledger, CounterLedger)
        assert list(net.ledger.records) == []
        assert net.ledger.rounds == 1

    def test_counter_ledger_records_cannot_leak_shared_state(self):
        # `records` returns the module-level immutable empty tuple: a caller
        # that tries to mutate it fails loudly instead of corrupting a list
        # shared by every CounterLedger access.
        net = Network(nx.path_graph(4), ledger="counters")
        records = net.ledger.records
        assert records is net.ledger.records  # no fresh allocation per access
        with pytest.raises((AttributeError, TypeError)):
            records.append("bogus")
        other = Network(nx.path_graph(3), ledger="counters")
        assert other.ledger.records == ()

    def test_shared_ledger_instance(self):
        shared = RecordingLedger()
        net1 = Network(nx.path_graph(3), ledger=shared)
        net2 = Network(nx.path_graph(3), ledger=shared)
        net1.exchange({(0, 1): 1})
        net2.exchange({(1, 2): 1})
        assert shared.rounds == 2

    def test_unknown_ledger_kind_rejected(self):
        with pytest.raises(ValueError):
            Network(nx.path_graph(3), ledger="weird")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Network(nx.path_graph(3), backend="weird")


class TestChunkedAccountingOracle:
    """Independent oracle: the arithmetic chunked accounting shared by all
    backends must match a literal chunk-by-chunk simulation of the streams
    (the pre-refactor implementation), so a bug in the arithmetic cannot
    hide behind cross-backend agreement."""

    @staticmethod
    def simulate_rounds(sizes, budget):
        """Literal simulation: every still-streaming edge sends one
        budget-sized chunk per round (zero-bit messages occupy round 1)."""
        remaining = dict(sizes)
        records = []
        total_rounds = max(
            [1] + [-(-bits // budget) for bits in sizes.values() if bits > 0]
        )
        for r in range(total_rounds):
            count = bits_sum = max_bits = 0
            for edge, left in remaining.items():
                if left <= 0 and r > 0:
                    continue
                sent = min(left, budget)
                remaining[edge] = left - sent
                count += 1
                bits_sum += sent
                max_bits = max(max_bits, sent)
            records.append((count, bits_sum, max_bits))
        return records

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("trial", range(20))
    def test_matches_literal_simulation(self, backend, trial):
        import random

        rng = random.Random(trial)
        budget = rng.choice([1, 3, 8, 17])
        graph = nx.cycle_graph(8)
        edges = [(v, (v + 1) % 8) for v in range(8)]
        sizes = {e: rng.choice([0, 1, budget - 1, budget, budget + 1,
                                3 * budget, rng.randrange(0, 6 * budget + 1)])
                 for e in rng.sample(edges, rng.randrange(1, len(edges) + 1))}
        net = Network(graph, bandwidth_bits=budget, backend=backend)
        net.exchange_chunked(
            {e: Message(content="x", bits=b) for e, b in sizes.items()}, label="o"
        )
        got = [(r.message_count, r.total_bits, r.max_edge_bits)
               for r in net.ledger.records]
        assert got == self.simulate_rounds(sizes, budget)


class TestSlotSizingCacheInvalidation:
    """The slot backend's pooled payload-sizing cache is keyed by ``id()``.

    The cache must be invalidated between rounds: an ``id()`` key is only
    meaningful while the round's message mapping keeps the payload alive,
    and a program that mutates a payload object and re-sends it next round
    must be charged the *new* size, not a stale cached one.
    """

    def test_mutated_payload_resized_next_round(self):
        graph = nx.path_graph(3)
        net = Network(graph, mode="local", backend="slot", ledger="records")
        payload = [1, 1]
        net.exchange({(0, 1): payload}, label="r0")
        first_bits = net.ledger.records[-1].total_bits
        payload.extend([1, 1, 1, 1])  # same object, bigger payload
        net.exchange({(0, 1): payload}, label="r1")
        second_bits = net.ledger.records[-1].total_bits
        from repro.congest.bandwidth import payload_bits

        assert first_bits != second_bits
        assert second_bits == payload_bits(payload)

    def test_recycled_id_cannot_reuse_stale_size(self):
        # A fresh object that happens to land on a previous round's id()
        # must be re-sized.  Force the scenario deterministically: send one
        # object, drop it, and keep sending new objects until the allocator
        # recycles the address — every delivery must charge the true size.
        graph = nx.path_graph(3)
        net = Network(graph, mode="local", backend="slot", ledger="records")
        from repro.congest.bandwidth import payload_bits

        stale = [255] * 4
        stale_id = id(stale)
        net.exchange({(0, 1): stale}, label="warm")
        assert net.ledger.records[-1].total_bits == payload_bits(stale)
        del stale
        for trial in range(64):
            probe = [1]  # 9 bits, much smaller than the 40-bit warm payload
            net.exchange({(0, 1): probe}, label=f"probe{trial}")
            assert net.ledger.records[-1].total_bits == payload_bits(probe)
            if id(probe) == stale_id:
                break  # the recycled-address case was genuinely exercised

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_broadcast_resizes_mutated_payload_every_round(self, backend):
        graph = ring_of_cliques(3, 4)
        net = Network(graph, mode="local", backend=backend, ledger="records")
        payload = {"colors": [1, 2]}
        sender = next(iter(graph.nodes()))
        net.broadcast({sender: payload}, label="r0")
        before = net.ledger.records[-1].max_edge_bits
        payload["colors"].extend(range(16))
        net.broadcast({sender: payload}, label="r1")
        after = net.ledger.records[-1].max_edge_bits
        from repro.congest.bandwidth import payload_bits

        assert after > before
        assert after == payload_bits(payload)

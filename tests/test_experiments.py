"""Tests for the experiment orchestration subsystem (repro.experiments)."""

import dataclasses
import json

import pytest

from repro.experiments import (
    Finding,
    GRAPH_FAMILIES,
    SOLVERS,
    ScenarioSpec,
    aggregate_suite,
    canonical_dumps,
    compare_rss,
    compare_summaries,
    compare_timing,
    derive_seed,
    gate_passes,
    get_suite,
    load_suite_summary,
    load_suite_timing,
    load_trial_rows,
    merge_timing,
    profile_filename,
    run_scenarios,
    run_suite,
    run_trial,
    suite_names,
    timing_summary,
    trial_seeds,
    validate_spec,
    write_suite_artifacts,
    write_trial_rows,
)
from repro.experiments.artifacts import SCHEMA, TIMING_SCHEMA
from repro.metrics.report import aggregate_rows, mean, median, percentile, summary_stats


TINY_SPECS = [
    ScenarioSpec("tiny-d1c", "gnp", "d1c", family_params={"n": 30, "p": 0.15}, trials=2),
    ScenarioSpec("tiny-johansson", "gnp", "johansson",
                 family_params={"n": 30, "p": 0.15}, trials=2),
]


class TestRegistry:
    def test_expected_suites_exist(self):
        assert suite_names() == [
            "bandwidth", "coloring", "detection", "massive", "robustness",
            "scale", "scaling", "smoke"
        ]

    @pytest.mark.parametrize(
        "name", ["bandwidth", "coloring", "detection", "massive", "robustness",
                 "scale", "scaling", "smoke"])
    def test_every_suite_resolves_and_validates(self, name):
        specs = get_suite(name)
        assert specs
        for spec in specs:
            validate_spec(spec)  # raises on any registry inconsistency
            assert spec.family in GRAPH_FAMILIES
            assert spec.solver in SOLVERS

    def test_scenario_names_unique_per_suite(self):
        for name in suite_names():
            names = [spec.name for spec in get_suite(name)]
            assert len(names) == len(set(names))

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            get_suite("nope")

    def test_new_graph_families_registered(self):
        assert "random_geometric" in GRAPH_FAMILIES
        assert "ring_of_cliques" in GRAPH_FAMILIES
        graph, truth = GRAPH_FAMILIES["random_geometric"](seed=3, n=20, radius=0.3)
        assert graph.number_of_nodes() == 20 and truth is None
        graph, _ = GRAPH_FAMILIES["ring_of_cliques"](seed=0, num_cliques=3, clique_size=4)
        assert graph.number_of_nodes() == 12

    def test_scale_suite_shape(self):
        specs = get_suite("scale")
        assert {spec.solver for spec in specs} == {"d1lc", "d1c"}
        assert {spec.family for spec in specs} >= {
            "gnp_avg_degree", "power_law", "random_geometric", "ring_of_cliques"
        }
        assert all("scale" in spec.tags for spec in specs)
        assert all(spec.trials == 1 for spec in specs)
        assert any("n50k" in spec.tags for spec in specs)
        # The slot backend must be a valid override for every scale scenario.
        for spec in specs:
            validate_spec(dataclasses.replace(spec, backend="slot"))

    def test_slot_backend_is_registered(self):
        validate_spec(dataclasses.replace(TINY_SPECS[0], backend="slot"))

    def test_validate_spec_rejects_bad_fields(self):
        good = TINY_SPECS[0]
        for bad in (
            dataclasses.replace(good, family="nope"),
            dataclasses.replace(good, solver="nope"),
            dataclasses.replace(good, backend="nope"),
            dataclasses.replace(good, ledger="nope"),
            dataclasses.replace(good, mode="nope"),
            dataclasses.replace(good, trials=0),
        ):
            with pytest.raises(ValueError):
                validate_spec(bad)


class TestSeedDerivation:
    def test_derive_seed_is_stable_across_calls(self):
        assert derive_seed("a", 1, 2) == derive_seed("a", 1, 2)
        assert derive_seed("a", 1, 2) != derive_seed("a", 1, 3)

    def test_trials_get_distinct_seeds(self):
        spec = TINY_SPECS[0]
        seeds = {trial_seeds(spec, t) for t in range(8)}
        assert len(seeds) == 8

    def test_head_to_head_scenarios_share_graph_and_solver_seeds(self):
        """Pipeline vs baseline on the same family+params+seed see identical inputs."""
        d1c, johansson = TINY_SPECS
        assert trial_seeds(d1c, 0) == trial_seeds(johansson, 0)

    def test_performance_knobs_do_not_change_seeds(self):
        spec = TINY_SPECS[0]
        tweaked = dataclasses.replace(spec, backend="dict", ledger="records")
        assert trial_seeds(spec, 1) == trial_seeds(tweaked, 1)

    def test_family_params_change_graph_seed(self):
        spec = TINY_SPECS[0]
        other = dataclasses.replace(spec, family_params={"n": 31, "p": 0.15})
        assert trial_seeds(spec, 0)[0] != trial_seeds(other, 0)[0]


class TestRunner:
    def test_run_trial_row_schema(self):
        row = run_trial(TINY_SPECS[0], 0)
        for key in ("scenario", "trial", "n", "m", "valid", "rounds",
                    "bits_per_edge", "colors_used", "wall_s"):
            assert key in row
        assert row["valid"] is True

    def test_parallel_results_identical_to_serial(self):
        serial = run_scenarios(TINY_SPECS, workers=1, suite="tiny")
        parallel = run_scenarios(TINY_SPECS, workers=2, suite="tiny")
        assert canonical_dumps(aggregate_suite(serial)) == \
            canonical_dumps(aggregate_suite(parallel))
        # Trial rows match too, apart from the machine-state fields
        # (wall-clock and the process RSS high-water mark).
        for a, b in zip(serial.rows(), parallel.rows()):
            a, b = dict(a), dict(b)
            a.pop("wall_s"), b.pop("wall_s")
            a.pop("peak_rss_mb"), b.pop("peak_rss_mb")
            assert a == b

    def test_backend_does_not_change_aggregates(self):
        batch = run_scenarios(TINY_SPECS, suite="tiny")
        for backend in ("dict", "slot"):
            other_specs = [dataclasses.replace(s, backend=backend)
                           for s in TINY_SPECS]
            other = run_scenarios(other_specs, suite="tiny")
            assert aggregate_suite(batch) == aggregate_suite(other), backend

    def test_run_suite_only_filter(self):
        result = run_suite("smoke", only=["gnp-d1c"], trials=1)
        assert [s.spec.name for s in result.scenarios] == ["gnp-d1c"]
        with pytest.raises(ValueError, match="no scenarios named"):
            run_suite("smoke", only=["missing-scenario"])

    def test_profile_dir_writes_hotspot_files(self, tmp_path):
        result = run_scenarios(TINY_SPECS[:1], suite="tiny", profile_dir=tmp_path)
        assert [s.spec.name for s in result.scenarios] == ["tiny-d1c"]
        profile = tmp_path / profile_filename("tiny-d1c")
        assert profile.exists()
        text = profile.read_text()
        assert "cumulative" in text  # sorted by cumulative time
        assert "solve_instance" in text or "solve_d1c" in text

    def test_aggregate_contains_no_timing(self):
        result = run_scenarios(TINY_SPECS[:1], suite="tiny")
        text = canonical_dumps(aggregate_suite(result))
        assert "wall" not in text and "backend" not in text


class TestArtifacts:
    def test_trial_rows_round_trip(self, tmp_path):
        result = run_scenarios(TINY_SPECS[:1], suite="tiny")
        path = tmp_path / "trials.jsonl"
        write_trial_rows(path, result.rows())
        assert load_trial_rows(path) == [json.loads(json.dumps(r)) for r in result.rows()]

    def test_write_and_load_suite_artifacts(self, tmp_path):
        result = run_scenarios(TINY_SPECS, suite="tiny")
        paths = write_suite_artifacts(result, tmp_path)
        summary = load_suite_summary(paths["suite"])
        assert summary["schema"] == SCHEMA
        assert summary["suite"] == "tiny"
        assert set(summary["scenarios"]) == {"tiny-d1c", "tiny-johansson"}
        assert summary == aggregate_suite(result)
        timing = json.loads(paths["timing"].read_text())
        assert timing["schema"] == TIMING_SCHEMA
        assert set(timing["suites"]["tiny"]["scenarios"]) == set(summary["scenarios"])

    def test_timing_file_merges_across_suites(self, tmp_path):
        path = tmp_path / "timing.json"
        merge_timing(path, {"suite": "alpha", "total_wall_s": 1.0,
                            "scenarios": {"a": 1.0}})
        merge_timing(path, {"suite": "beta", "total_wall_s": 2.0,
                            "scenarios": {"b": 2.0}})
        # Re-running a suite replaces its own entry, keeps the others.
        merge_timing(path, {"suite": "alpha", "total_wall_s": 0.5,
                            "scenarios": {"a": 0.5}})
        data = load_suite_timing(path)
        assert set(data["suites"]) == {"alpha", "beta"}
        assert load_suite_timing(path, suite="alpha")["total_wall_s"] == 0.5
        with pytest.raises(ValueError, match="no timing entry"):
            load_suite_timing(path, suite="gamma")

    def test_merge_timing_overwrites_legacy_file(self, tmp_path):
        path = tmp_path / "timing.json"
        path.write_text(json.dumps({"suite": "old", "total_wall_s": 9}))
        merge_timing(path, {"suite": "alpha", "total_wall_s": 1.0,
                            "scenarios": {}})
        assert set(load_suite_timing(path)["suites"]) == {"alpha"}

    def test_load_timing_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9", "suites": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_suite_timing(path)

    def test_timing_summary_round_trips_through_artifacts(self, tmp_path):
        result = run_scenarios(TINY_SPECS[:1], suite="tiny")
        paths = write_suite_artifacts(result, tmp_path)
        entry = load_suite_timing(paths["timing"], suite="tiny")
        assert entry == {k: v for k, v in timing_summary(result).items()
                         if k != "suite"}

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9", "scenarios": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_suite_summary(path)


class TestAggregationHelpers:
    def test_mean_median_percentile(self):
        values = [4, 1, 3, 2]
        assert mean(values) == 2.5
        assert median(values) == 2.5
        assert median([3, 1, 2]) == 2
        assert percentile(values, 95) == 4
        assert percentile(values, 0) == 1

    def test_summary_stats_keys(self):
        stats = summary_stats([1, 2, 3])
        assert set(stats) == {"mean", "median", "p95", "min", "max"}

    def test_empty_rejected(self):
        for fn in (mean, median):
            with pytest.raises(ValueError):
                fn([])

    def test_aggregate_rows_skips_bools_and_strings(self):
        rows = [{"rounds": 3, "valid": True, "name": "x", "wall_s": 0.5},
                {"rounds": 5, "valid": False, "name": "y", "wall_s": 0.7}]
        stats = aggregate_rows(rows, exclude=("wall_s",))
        assert set(stats) == {"rounds"}
        assert stats["rounds"]["mean"] == 4


class TestCompare:
    def _summary(self):
        result = run_scenarios(TINY_SPECS, suite="tiny")
        return aggregate_suite(result)

    def test_identical_summaries_pass(self):
        summary = self._summary()
        findings = compare_summaries(summary, summary)
        assert findings == [] and gate_passes(findings)

    def test_round_regression_fails_gate(self):
        baseline = self._summary()
        fresh = json.loads(json.dumps(baseline))
        metric = fresh["scenarios"]["tiny-d1c"]["metrics"]["rounds"]
        metric["mean"] = metric["mean"] * 1.5
        findings = compare_summaries(baseline, fresh, max_regression=0.10)
        assert not gate_passes(findings)
        assert any(f.metric == "rounds" and f.severity == "fail" for f in findings)

    def test_small_drift_is_informational(self):
        baseline = self._summary()
        fresh = json.loads(json.dumps(baseline))
        fresh["scenarios"]["tiny-d1c"]["metrics"]["rounds"]["mean"] *= 1.05
        findings = compare_summaries(baseline, fresh, max_regression=0.10)
        assert gate_passes(findings)
        assert any(f.severity == "info" for f in findings)

    def test_validity_drift_fails_gate(self):
        baseline = self._summary()
        fresh = json.loads(json.dumps(baseline))
        fresh["scenarios"]["tiny-d1c"]["valid_trials"] -= 1
        findings = compare_summaries(baseline, fresh)
        assert not gate_passes(findings)
        assert any(f.metric == "valid_trials" for f in findings)

    def test_scenario_set_mismatch_fails_gate(self):
        baseline = self._summary()
        fresh = json.loads(json.dumps(baseline))
        del fresh["scenarios"]["tiny-johansson"]
        fresh["scenarios"]["brand-new"] = baseline["scenarios"]["tiny-d1c"]
        findings = compare_summaries(baseline, fresh)
        assert not gate_passes(findings)
        kinds = {(f.scenario, f.severity) for f in findings}
        assert ("tiny-johansson", "fail") in kinds
        assert ("brand-new", "fail") in kinds

    def test_metric_set_mismatch_fails_gate(self):
        baseline = self._summary()
        fresh = json.loads(json.dumps(baseline))
        del fresh["scenarios"]["tiny-d1c"]["metrics"]["total_bits"]
        findings = compare_summaries(baseline, fresh)
        assert not gate_passes(findings)
        assert any(f.metric == "total_bits" and "missing" in f.detail for f in findings)

    def test_non_mean_stat_drift_is_surfaced(self):
        baseline = self._summary()
        fresh = json.loads(json.dumps(baseline))
        fresh["scenarios"]["tiny-d1c"]["metrics"]["rounds"]["max"] += 1
        findings = compare_summaries(baseline, fresh)
        assert gate_passes(findings)  # the gate keys off the mean ...
        assert any(f.metric == "rounds" and "max" in f.detail for f in findings)

    def test_suite_mismatch_fails_gate(self):
        baseline = self._summary()
        fresh = json.loads(json.dumps(baseline))
        fresh["suite"] = "other"
        findings = compare_summaries(baseline, fresh)
        assert findings == [Finding("fail", "-", "suite",
                                    "suite mismatch: baseline='tiny' fresh='other'")]


class TestTimingGate:
    BASE = {"total_wall_s": 10.0, "scenarios": {"a": 4.0, "b": 6.0}}

    def test_within_budget_is_silent(self):
        fresh = {"total_wall_s": 11.0, "scenarios": {"a": 4.4, "b": 6.6}}
        findings = compare_timing(self.BASE, fresh, budget=0.25)
        assert findings == [] and gate_passes(findings)

    def test_speedup_is_never_flagged(self):
        fresh = {"total_wall_s": 2.0, "scenarios": {"a": 0.5, "b": 1.5}}
        assert compare_timing(self.BASE, fresh, budget=0.25) == []

    def test_over_budget_warns_but_passes_the_gate(self):
        fresh = {"total_wall_s": 20.0, "scenarios": {"a": 9.0, "b": 6.0}}
        findings = compare_timing(self.BASE, fresh, budget=0.25)
        assert any(f.severity == "warn" and f.scenario == "a" for f in findings)
        assert any(f.metric == "total_wall_s" for f in findings)
        assert gate_passes(findings)  # warnings are soft by design

    def test_strict_timing_fails_the_gate(self):
        fresh = {"total_wall_s": 20.0, "scenarios": {"a": 9.0, "b": 6.0}}
        findings = compare_timing(self.BASE, fresh, budget=0.25, strict=True)
        assert not gate_passes(findings)

    def test_scenario_set_differences_are_informational(self):
        fresh = {"total_wall_s": 10.0, "scenarios": {"a": 4.0, "c": 1.0}}
        findings = compare_timing(self.BASE, fresh, budget=0.25, strict=True)
        assert {f.severity for f in findings} == {"info"}
        assert gate_passes(findings)


class TestRssGate:
    BASE = {"total_wall_s": 10.0, "scenarios": {"a": 4.0, "b": 6.0},
            "peak_rss_mb": {"a": 100.0, "b": 400.0}}

    def test_within_budget_is_silent(self):
        fresh = {"peak_rss_mb": {"a": 110.0, "b": 440.0}}
        findings = compare_rss(self.BASE, fresh, budget=0.25)
        assert findings == [] and gate_passes(findings)

    def test_memory_win_is_never_flagged(self):
        fresh = {"peak_rss_mb": {"a": 10.0, "b": 40.0}}
        assert compare_rss(self.BASE, fresh, budget=0.25) == []

    def test_over_budget_warns_but_passes_the_gate(self):
        fresh = {"peak_rss_mb": {"a": 200.0, "b": 400.0}}
        findings = compare_rss(self.BASE, fresh, budget=0.25)
        assert any(f.severity == "warn" and f.scenario == "a"
                   and "memory budget" in f.detail for f in findings)
        assert gate_passes(findings)

    def test_strict_rss_fails_the_gate(self):
        fresh = {"peak_rss_mb": {"a": 200.0, "b": 400.0}}
        findings = compare_rss(self.BASE, fresh, budget=0.25, strict=True)
        assert not gate_passes(findings)

    def test_baseline_without_rss_map_is_informational(self):
        stale = {"total_wall_s": 10.0, "scenarios": {"a": 4.0}}
        findings = compare_rss(stale, {"peak_rss_mb": {"a": 1.0}},
                               budget=0.25, strict=True)
        assert [f.severity for f in findings] == ["info"]
        assert "peak_rss_mb" in findings[0].detail
        assert gate_passes(findings)

    def test_scenario_set_differences_are_informational(self):
        fresh = {"peak_rss_mb": {"a": 100.0, "c": 1.0}}
        findings = compare_rss(self.BASE, fresh, budget=0.25, strict=True)
        assert {f.severity for f in findings} == {"info"}
        assert gate_passes(findings)


class TestSpecParamValidation:
    """Typo'd param keys must fail at construction, not at run time.

    A misspelled key used to change the graph-seed derivation silently
    (every family_params key feeds canonical_params) while the builder never
    saw it — the scenario quietly ran a different workload than it named.
    """

    def test_unknown_family_param_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown family_params.*nn"):
            ScenarioSpec("typo", "gnp", "d1c", family_params={"nn": 30})

    def test_unknown_solver_param_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown solver_params.*tries"):
            ScenarioSpec("typo", "gnp", "d1c", solver_params={"tries": 4})

    def test_unknown_fault_param_rejected_at_construction(self):
        with pytest.raises(ValueError, match="dorp"):
            ScenarioSpec("typo", "gnp", "d1c", faults={"dorp": 0.1})

    def test_replace_revalidates(self):
        good = TINY_SPECS[0]
        with pytest.raises(ValueError, match="unknown family_params"):
            dataclasses.replace(good, family_params={"n": 30, "q": 0.5})

    def test_unknown_family_defers_to_validate_spec(self):
        # Construction cannot know an unknown family's key set; validate_spec
        # still rejects the spec itself.
        spec = ScenarioSpec("odd", "no-such-family", "d1c",
                            family_params={"whatever": 1})
        with pytest.raises(ValueError, match="unknown graph family"):
            validate_spec(spec)

    def test_every_registered_family_and_solver_has_a_key_set(self):
        from repro.experiments import FAMILY_PARAM_KEYS, SOLVER_PARAM_KEYS

        assert set(FAMILY_PARAM_KEYS) == set(GRAPH_FAMILIES)
        assert set(SOLVER_PARAM_KEYS) == set(SOLVERS)


class TestFaultedScenarios:
    FAULTED = ScenarioSpec("tiny-d1c-faulted", "gnp", "d1c",
                           family_params={"n": 30, "p": 0.15},
                           faults={"drop": 0.1}, trials=2)

    def test_faults_do_not_change_trial_seeds(self):
        clean = dataclasses.replace(self.FAULTED, faults={})
        assert trial_seeds(self.FAULTED, 0) == trial_seeds(clean, 0)

    def test_fault_rows_add_outcome_columns(self):
        row = run_trial(self.FAULTED, 0)
        for key in ("delivered_messages", "dropped_messages",
                    "corrupted_messages", "crashed_nodes"):
            assert key in row
        assert row["dropped_messages"] > 0
        clean_row = run_trial(dataclasses.replace(self.FAULTED, faults={}), 0)
        assert "dropped_messages" not in clean_row

    def test_aggregate_records_canonical_fault_plan(self):
        result = run_scenarios([self.FAULTED], suite="tiny")
        summary = aggregate_suite(result)
        entry = summary["scenarios"]["tiny-d1c-faulted"]
        assert entry["faults"] == {"drop": 0.1}
        assert "dropped_messages" in entry["metrics"]
        clean = aggregate_suite(run_scenarios(TINY_SPECS[:1], suite="tiny"))
        assert "faults" not in clean["scenarios"]["tiny-d1c"]

    def test_parallel_equals_serial_under_faults(self):
        specs = [self.FAULTED,
                 dataclasses.replace(self.FAULTED, name="tiny-corrupt",
                                     faults={"corrupt": 1e-3})]
        serial = run_scenarios(specs, workers=1, suite="tiny")
        parallel = run_scenarios(specs, workers=2, suite="tiny")
        assert canonical_dumps(aggregate_suite(serial)) == \
            canonical_dumps(aggregate_suite(parallel))

    def test_backend_override_keeps_faulted_aggregate(self):
        base = run_scenarios([self.FAULTED], suite="tiny")
        for backend in ("dict", "slot"):
            other = run_scenarios(
                [dataclasses.replace(self.FAULTED, backend=backend)],
                suite="tiny")
            assert aggregate_suite(base) == aggregate_suite(other), backend

    def test_compare_rejects_fault_plan_drift(self):
        baseline = aggregate_suite(run_scenarios([self.FAULTED], suite="tiny"))
        fresh = json.loads(json.dumps(baseline))
        fresh["scenarios"]["tiny-d1c-faulted"]["faults"] = {"drop": 0.2}
        findings = compare_summaries(baseline, fresh)
        assert not gate_passes(findings)
        assert any(f.metric == "faults" for f in findings)

    def test_robustness_suite_shape(self):
        specs = get_suite("robustness")
        assert len(specs) >= 12
        axes = {tag for spec in specs for tag in spec.tags}
        assert {"robustness", "drop", "corrupt", "crash", "throttle",
                "clean"} <= axes
        assert {spec.solver for spec in specs} == {"d1c", "d1lc"}
        assert len({spec.family for spec in specs}) >= 3
        faulted = [spec for spec in specs if spec.faults]
        assert len(faulted) == len(specs) - 1  # one clean reference scenario


class TestSeedOverride:
    def test_seed_override_recorded_in_aggregate(self):
        result = run_suite("smoke", only=["gnp-d1c"], trials=1, seed=7)
        summary = aggregate_suite(result)
        assert summary["seed_override"] == 7
        default = run_suite("smoke", only=["gnp-d1c"], trials=1)
        assert "seed_override" not in aggregate_suite(default)

    def test_seed_override_changes_sampled_workload(self):
        a = run_suite("smoke", only=["gnp-d1c"], trials=1, seed=7)
        b = run_suite("smoke", only=["gnp-d1c"], trials=1, seed=8)
        sha = lambda r: r.rows()[0]["coloring_sha"]
        assert sha(a) != sha(b)

    def test_compare_refuses_mismatched_seed_override(self):
        with_seed = aggregate_suite(
            run_suite("smoke", only=["gnp-d1c"], trials=1, seed=7))
        without = aggregate_suite(
            run_suite("smoke", only=["gnp-d1c"], trials=1))
        findings = compare_summaries(without, with_seed)
        assert not gate_passes(findings)
        assert findings[0].metric == "seed"
        # Matching overrides gate normally.
        assert compare_summaries(with_seed, with_seed) == []


class TestPeakRss:
    """Per-scenario peak RSS rides in the timing artifact, never the aggregate."""

    def test_trial_rows_carry_peak_rss(self):
        row = run_trial(TINY_SPECS[0], 0)
        assert row["peak_rss_mb"] > 0

    def test_timing_summary_reports_scenario_maximum(self):
        result = run_scenarios(TINY_SPECS, suite="tiny")
        timing = timing_summary(result)
        assert set(timing["peak_rss_mb"]) == {"tiny-d1c", "tiny-johansson"}
        for scenario in result.scenarios:
            expected = max(r["peak_rss_mb"] for r in scenario.rows)
            assert timing["peak_rss_mb"][scenario.spec.name] == expected

    def test_timing_artifact_gains_peak_rss_column(self, tmp_path):
        result = run_scenarios(TINY_SPECS, suite="tiny")
        paths = write_suite_artifacts(result, tmp_path)
        entry = load_suite_timing(paths["timing"], suite="tiny")
        assert set(entry["peak_rss_mb"]) == set(entry["scenarios"])
        assert all(v > 0 for v in entry["peak_rss_mb"].values())

    def test_aggregate_stays_free_of_machine_state(self):
        result = run_scenarios(TINY_SPECS, suite="tiny")
        text = canonical_dumps(aggregate_suite(result))
        assert "peak_rss_mb" not in text
        assert "wall_s" not in text

    def test_merge_timing_preserves_entries_without_rss(self, tmp_path):
        # Older (pre-column) entries merge untouched next to new ones.
        path = tmp_path / "timing.json"
        merge_timing(path, {"suite": "legacy", "total_wall_s": 1.0,
                            "scenarios": {"a": 1.0}})
        merge_timing(path, {"suite": "fresh", "total_wall_s": 2.0,
                            "scenarios": {"b": 2.0},
                            "peak_rss_mb": {"b": 64.0}})
        data = load_suite_timing(path)
        assert "peak_rss_mb" not in data["suites"]["legacy"]
        assert data["suites"]["fresh"]["peak_rss_mb"] == {"b": 64.0}

"""Tests for TryColor / TryRandomColor / GenerateSlack (Algorithms 10-12)."""

import networkx as nx
import pytest

from repro.congest import Network
from repro.core import ColoringInstance, ColoringParameters
from repro.core.slack import generate_slack, try_color, try_random_color
from repro.core.state import ColoringState
from repro.graphs import degree_plus_one_lists, huge_color_space_lists


def make_state(graph, params=None, lists=None, seed=1):
    instance = (
        ColoringInstance.d1c(graph)
        if lists is None
        else ColoringInstance.d1lc(graph, lists)
    )
    network = Network(graph)
    return ColoringState(
        instance, network, (params or ColoringParameters.small()).with_seed(seed)
    )


class TestTryColor:
    def test_non_conflicting_proposals_all_succeed(self):
        g = nx.path_graph(4)
        state = make_state(g)
        colored = try_color(state, {0: 0, 1: 1, 2: 0, 3: 1})
        assert colored == {0, 1, 2, 3}
        assert state.report().is_valid

    def test_conflicting_neighbors_both_fail(self):
        g = nx.path_graph(2)
        state = make_state(g)
        colored = try_color(state, {0: 0, 1: 0})
        assert colored == set()

    def test_priority_breaks_conflicts(self):
        g = nx.path_graph(2)
        state = make_state(g)
        colored = try_color(state, {0: 0, 1: 0}, priority={0: 0, 1: 1})
        assert colored == {0}
        assert not state.is_colored(1)

    def test_result_never_conflicts(self, gnp_small):
        state = make_state(gnp_small)
        proposals = {v: 0 for v in gnp_small.nodes()}  # everyone tries color 0
        try_color(state, proposals)
        assert state.report().is_proper

    def test_adopted_colors_removed_from_neighbor_palettes(self):
        g = nx.path_graph(3)
        state = make_state(g)
        try_color(state, {0: 0})
        assert 0 not in state.palettes[1]
        assert 0 in state.palettes[2]  # not a neighbour of node 0

    def test_colored_nodes_do_not_propose_again(self):
        g = nx.path_graph(3)
        state = make_state(g)
        try_color(state, {0: 0})
        colored = try_color(state, {0: 1})
        assert colored == set()

    def test_proposal_outside_palette_ignored(self):
        g = nx.path_graph(3)
        state = make_state(g)
        colored = try_color(state, {0: 999})
        assert colored == set()

    def test_empty_proposals_charge_rounds_for_synchrony(self):
        g = nx.path_graph(3)
        state = make_state(g)
        before = state.network.rounds_used
        try_color(state, {})
        assert state.network.rounds_used == before + 2

    def test_rounds_per_invocation_constant(self, gnp_small):
        state = make_state(gnp_small)
        before = state.network.rounds_used
        try_color(state, {v: 0 for v in list(gnp_small.nodes())[:10]})
        assert state.network.rounds_used - before == 2

    def test_chromatic_slack_tracked_when_requested(self):
        g = nx.path_graph(2)
        lists = {0: {10, 11}, 1: {20, 21}}
        state = make_state(g, lists=lists)
        try_color(state, {0: 10}, track_chromatic_slack=True)
        # Node 1's original palette does not contain 10, so it gains slack.
        assert state.chromatic_slack[1] == 1

    def test_works_with_huge_color_spaces(self, gnp_small):
        lists = huge_color_space_lists(gnp_small, color_space_bits=200, seed=3)
        state = make_state(gnp_small, lists=lists)
        proposals = {v: sorted(state.palettes[v])[0] for v in gnp_small.nodes()}
        try_color(state, proposals)
        assert state.report().is_proper
        assert state.network.ledger.max_edge_bits <= state.network.bandwidth_bits


class TestTryRandomColor:
    def test_colors_most_nodes_on_easy_instances(self, gnp_small):
        lists = degree_plus_one_lists(gnp_small, seed=5)
        state = make_state(gnp_small, lists=lists)
        colored = try_random_color(state, gnp_small.nodes())
        assert len(colored) >= 0.3 * gnp_small.number_of_nodes()
        assert state.report().is_proper

    def test_skips_colored_nodes(self):
        g = nx.path_graph(3)
        state = make_state(g)
        state.adopt(0, 0)
        colored = try_random_color(state, [0])
        assert colored == set()

    def test_deterministic_given_seed(self, gnp_small):
        a = make_state(gnp_small, seed=9)
        b = make_state(gnp_small, seed=9)
        assert try_random_color(a, gnp_small.nodes()) == try_random_color(b, gnp_small.nodes())


class TestGenerateSlack:
    def test_participation_probability_roughly_pg(self, gnp_medium):
        params = ColoringParameters.small(seed=2)
        state = make_state(gnp_medium, params=params)
        colored = generate_slack(state)
        n = gnp_medium.number_of_nodes()
        # At most p_g fraction participate, so at most that many get colored.
        assert len(colored) <= 0.3 * n
        assert state.report().is_proper

    def test_generates_chromatic_slack_on_list_instances(self, gnp_medium):
        lists = degree_plus_one_lists(gnp_medium, seed=7)
        state = make_state(gnp_medium, lists=lists, seed=3)
        generate_slack(state)
        total_slack = sum(state.chromatic_slack.values())
        assert total_slack > 0

    def test_restricted_to_given_nodes(self, gnp_medium):
        state = make_state(gnp_medium, seed=4)
        subset = set(list(gnp_medium.nodes())[:10])
        colored = generate_slack(state, subset)
        assert colored <= subset

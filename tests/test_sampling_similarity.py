"""Tests for EstimateSimilarity (Algorithm 1, Lemma 2)."""

import random

import pytest

from repro.congest import Network
from repro.sampling import SimilarityParameters, estimate_similarity, estimate_similarity_on_edges


def overlapping_sets(size: int, overlap: int):
    """Two sets of the given size sharing exactly ``overlap`` elements."""
    shared = set(range(overlap))
    left = shared | {10_000 + i for i in range(size - overlap)}
    right = shared | {20_000 + i for i in range(size - overlap)}
    return left, right


class TestParameters:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimilarityParameters(eps=0.0)
        with pytest.raises(ValueError):
            SimilarityParameters(eps=1.0)
        with pytest.raises(ValueError):
            SimilarityParameters(nu=0.0)
        with pytest.raises(ValueError):
            SimilarityParameters(scale_constant=0.0)

    def test_scale_factor_shrinks_with_set_size(self):
        params = SimilarityParameters(eps=0.25, nu=0.05)
        assert params.scale_factor(10) > params.scale_factor(10_000)

    def test_scale_factor_is_one_for_huge_sets(self):
        params = SimilarityParameters(eps=0.3, nu=0.1)
        assert params.scale_factor(10 ** 9) == 1

    def test_max_scale_cap(self):
        params = SimilarityParameters(eps=0.2, nu=0.05, max_scale=3)
        assert params.scale_factor(5) == 3

    def test_family_lambda_follows_algorithm1(self):
        params = SimilarityParameters(eps=0.25, nu=0.1)
        family = params.family(100)
        assert family.lam == int(8 * 100 / 0.25)

    def test_practical_preset_has_caps(self):
        params = SimilarityParameters.practical()
        assert params.sigma_cap is not None
        assert params.max_scale is not None


class TestTwoPartyEstimate:
    def test_empty_set_gives_zero(self):
        result = estimate_similarity(set(), {1, 2, 3})
        assert result.estimate == 0.0

    def test_identical_sets(self):
        elements = set(range(600))
        params = SimilarityParameters(eps=0.3, nu=0.1, max_scale=4, sigma_cap=2048, seed=1)
        result = estimate_similarity(elements, elements, params, rng=random.Random(0))
        assert abs(result.estimate - 600) <= 0.3 * 600

    def test_disjoint_sets(self):
        left = set(range(0, 500))
        right = set(range(1000, 1500))
        params = SimilarityParameters(eps=0.3, nu=0.1, max_scale=4, sigma_cap=2048, seed=1)
        result = estimate_similarity(left, right, params, rng=random.Random(0))
        assert result.estimate <= 0.3 * 500

    def test_lemma2_accuracy_partial_overlap(self):
        """The estimate is within eps*max(|Su|,|Sv|) for most random hash draws."""
        left, right = overlapping_sets(size=500, overlap=250)
        params = SimilarityParameters(eps=0.3, nu=0.1, max_scale=4, sigma_cap=2048, seed=2)
        good = 0
        trials = 15
        for trial in range(trials):
            result = estimate_similarity(left, right, params, rng=random.Random(trial))
            if result.error_against(250) <= 0.3 * 500:
                good += 1
        assert good >= 0.8 * trials

    def test_bits_exchanged_matches_sigma_and_index(self):
        left, right = overlapping_sets(size=300, overlap=100)
        params = SimilarityParameters(eps=0.3, nu=0.1, max_scale=2, sigma_cap=512, seed=3)
        result = estimate_similarity(left, right, params, rng=random.Random(0))
        assert result.bits_exchanged == 2 * result.sigma + params.family(
            300 * result.scale_factor
        ).index_bits

    def test_bits_do_not_depend_on_universe_elements(self):
        """Communication is logarithmic in the universe: huge elements cost the same."""
        small_left, small_right = overlapping_sets(size=200, overlap=100)
        big_left = {x * 2 ** 50 for x in small_left}
        big_right = {x * 2 ** 50 for x in small_right}
        params = SimilarityParameters(eps=0.3, nu=0.1, max_scale=2, sigma_cap=512, seed=4)
        r_small = estimate_similarity(small_left, small_right, params, rng=random.Random(0))
        r_big = estimate_similarity(big_left, big_right, params, rng=random.Random(0))
        assert r_small.bits_exchanged == r_big.bits_exchanged

    def test_estimate_scales_down_with_scale_factor(self):
        """Scaling the sets up by k (step 3) does not inflate the estimate."""
        left, right = overlapping_sets(size=40, overlap=20)
        params = SimilarityParameters(eps=0.4, nu=0.1, max_scale=6, sigma_cap=2048, seed=5)
        result = estimate_similarity(left, right, params, rng=random.Random(1))
        assert result.scale_factor > 1
        assert result.estimate <= 40 + 0.4 * 40


class TestOnEdges:
    def test_constant_round_count(self, congest_network):
        sets = {v: set(congest_network.neighbors(v)) for v in congest_network.nodes}
        before = congest_network.rounds_used
        estimate_similarity_on_edges(
            congest_network, sets, params=SimilarityParameters.practical(seed=1)
        )
        rounds = congest_network.rounds_used - before
        # index round + ceil(sigma / bandwidth) chunked rounds: constant, well
        # below anything proportional to n or Delta.
        assert rounds <= 2 + 2048 // congest_network.bandwidth_bits + 2

    def test_results_for_all_requested_edges(self, congest_network):
        sets = {v: set(congest_network.neighbors(v)) for v in congest_network.nodes}
        edges = list(congest_network.graph.edges())[:10]
        results = estimate_similarity_on_edges(
            congest_network, sets, edges=edges,
            params=SimilarityParameters.practical(seed=2),
        )
        assert set(results) == {tuple(e) for e in edges}

    def test_empty_sets_give_zero_estimates(self, congest_network):
        sets = {v: set() for v in congest_network.nodes}
        results = estimate_similarity_on_edges(
            congest_network, sets, params=SimilarityParameters.practical(seed=3)
        )
        assert all(r.estimate == 0.0 for r in results.values())

    def test_bandwidth_never_exceeded(self, congest_network):
        sets = {v: set(congest_network.neighbors(v)) for v in congest_network.nodes}
        estimate_similarity_on_edges(
            congest_network, sets, params=SimilarityParameters.practical(seed=4)
        )
        assert congest_network.ledger.max_edge_bits <= congest_network.bandwidth_bits

    def test_accuracy_on_shared_neighborhoods(self):
        """Edges inside a clique report large intersections, cross edges small ones."""
        import networkx as nx

        g = nx.complete_graph(20)
        g.add_edge(100, 0)
        g.add_edge(100, 101)
        g.add_edge(101, 1)
        net = Network(g)
        sets = {v: set(net.neighbors(v)) for v in net.nodes}
        results = estimate_similarity_on_edges(
            net, sets, params=SimilarityParameters.practical(eps=0.3, seed=5)
        )
        clique_edge = results[(0, 1)] if (0, 1) in results else results[(1, 0)]
        cross_edge = results[(100, 101)] if (100, 101) in results else results[(101, 100)]
        assert clique_edge.estimate > 10
        assert cross_edge.estimate < 5

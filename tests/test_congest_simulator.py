"""Tests for the generic per-node-program simulator."""

import networkx as nx
import pytest

from repro.congest import Network, NodeProgram, NodeState, Simulator


class FloodMin(NodeProgram):
    """Every node learns the minimum identifier in its connected component."""

    def init(self, ctx):
        ctx.state["best"] = ctx.node
        ctx.state["changed"] = True

    def step(self, ctx, inbox):
        for value in inbox.values():
            if value < ctx.state["best"]:
                ctx.state["best"] = value
                ctx.state["changed"] = True
        if not ctx.state["changed"]:
            ctx.state.halt(ctx.state["best"])
            return {}
        ctx.state["changed"] = False
        return {u: ctx.state["best"] for u in ctx.neighbors}

    def finish(self, ctx):
        return ctx.state["best"]


class CountNeighbors(NodeProgram):
    """One-round program: every node reports its degree."""

    def step(self, ctx, inbox):
        ctx.state.halt(ctx.degree)
        return {}


class TestSimulator:
    def test_flood_min_on_path(self):
        net = Network(nx.path_graph(8))
        result = Simulator(net, FloodMin(), seed=1).run()
        assert all(value == 0 for value in result.outputs.values())

    def test_flood_min_round_count_tracks_diameter(self):
        net = Network(nx.path_graph(10))
        result = Simulator(net, FloodMin(), seed=1).run()
        # Information must travel across the path: at least diameter rounds.
        assert result.rounds >= 7

    def test_flood_min_respects_components(self):
        g = nx.disjoint_union(nx.path_graph(3), nx.path_graph(3))
        net = Network(g)
        result = Simulator(net, FloodMin(), seed=1).run()
        assert result.outputs[0] == 0
        assert result.outputs[3] == 3

    def test_single_round_program(self):
        net = Network(nx.star_graph(4))
        result = Simulator(net, CountNeighbors(), seed=0).run()
        assert result.outputs[0] == 4
        assert all(result.outputs[leaf] == 1 for leaf in range(1, 5))

    def test_max_rounds_cap(self):
        class NeverHalts(NodeProgram):
            def step(self, ctx, inbox):
                return {u: 1 for u in ctx.neighbors}

        net = Network(nx.path_graph(4))
        result = Simulator(net, NeverHalts(), seed=0).run(max_rounds=5)
        assert result.rounds == 5
        assert not result.all_halted()

    def test_per_node_rng_is_deterministic(self):
        class RandomOutput(NodeProgram):
            def step(self, ctx, inbox):
                ctx.state.halt(ctx.rng.random())
                return {}

        net1 = Network(nx.path_graph(5))
        net2 = Network(nx.path_graph(5))
        out1 = Simulator(net1, RandomOutput(), seed=3).run().outputs
        out2 = Simulator(net2, RandomOutput(), seed=3).run().outputs
        assert out1 == out2

    def test_base_program_step_is_abstract(self):
        net = Network(nx.path_graph(3))
        with pytest.raises(NotImplementedError):
            Simulator(net, NodeProgram(), seed=0).step()


class TestNodeState:
    def test_mapping_interface(self):
        state = NodeState(node="v")
        state["x"] = 1
        assert state["x"] == 1
        assert "x" in state
        assert state.get("missing", 9) == 9

    def test_halt_records_output(self):
        state = NodeState(node="v")
        state.halt("done")
        assert state.halted
        assert state.output == "done"

"""Tests for the generic per-node-program simulator."""

import networkx as nx
import pytest

from repro.congest import Network, NodeProgram, NodeState, Simulator


class FloodMin(NodeProgram):
    """Every node learns the minimum identifier in its connected component."""

    def init(self, ctx):
        ctx.state["best"] = ctx.node
        ctx.state["changed"] = True

    def step(self, ctx, inbox):
        for value in inbox.values():
            if value < ctx.state["best"]:
                ctx.state["best"] = value
                ctx.state["changed"] = True
        if not ctx.state["changed"]:
            ctx.state.halt(ctx.state["best"])
            return {}
        ctx.state["changed"] = False
        return {u: ctx.state["best"] for u in ctx.neighbors}

    def finish(self, ctx):
        return ctx.state["best"]


class CountNeighbors(NodeProgram):
    """One-round program: every node reports its degree."""

    def step(self, ctx, inbox):
        ctx.state.halt(ctx.degree)
        return {}


class TestSimulator:
    def test_flood_min_on_path(self):
        net = Network(nx.path_graph(8))
        result = Simulator(net, FloodMin(), seed=1).run()
        assert all(value == 0 for value in result.outputs.values())

    def test_flood_min_round_count_tracks_diameter(self):
        net = Network(nx.path_graph(10))
        result = Simulator(net, FloodMin(), seed=1).run()
        # Information must travel across the path: at least diameter rounds.
        assert result.rounds >= 7

    def test_flood_min_respects_components(self):
        g = nx.disjoint_union(nx.path_graph(3), nx.path_graph(3))
        net = Network(g)
        result = Simulator(net, FloodMin(), seed=1).run()
        assert result.outputs[0] == 0
        assert result.outputs[3] == 3

    def test_single_round_program(self):
        net = Network(nx.star_graph(4))
        result = Simulator(net, CountNeighbors(), seed=0).run()
        assert result.outputs[0] == 4
        assert all(result.outputs[leaf] == 1 for leaf in range(1, 5))

    def test_max_rounds_cap(self):
        class NeverHalts(NodeProgram):
            def step(self, ctx, inbox):
                return {u: 1 for u in ctx.neighbors}

        net = Network(nx.path_graph(4))
        result = Simulator(net, NeverHalts(), seed=0).run(max_rounds=5)
        assert result.rounds == 5
        assert not result.all_halted()

    def test_per_node_rng_is_deterministic(self):
        class RandomOutput(NodeProgram):
            def step(self, ctx, inbox):
                ctx.state.halt(ctx.rng.random())
                return {}

        net1 = Network(nx.path_graph(5))
        net2 = Network(nx.path_graph(5))
        out1 = Simulator(net1, RandomOutput(), seed=3).run().outputs
        out2 = Simulator(net2, RandomOutput(), seed=3).run().outputs
        assert out1 == out2

    def test_base_program_step_is_abstract(self):
        net = Network(nx.path_graph(3))
        with pytest.raises(NotImplementedError):
            Simulator(net, NodeProgram(), seed=0).step()


class TestNodeState:
    def test_mapping_interface(self):
        state = NodeState(node="v")
        state["x"] = 1
        assert state["x"] == 1
        assert "x" in state
        assert state.get("missing", 9) == 9

    def test_halt_records_output(self):
        state = NodeState(node="v")
        state.halt("done")
        assert state.halted
        assert state.output == "done"


class TestActiveSetMaintenance:
    """The active set is maintained incrementally: halted nodes never step
    again and the driver stops as soon as the set drains (no O(n) rescans)."""

    def test_halted_nodes_never_step_again(self):
        calls = []

        class HaltAtOwnRound(NodeProgram):
            def step(self, ctx, inbox):
                calls.append(ctx.node)
                if ctx.round_index >= ctx.node:
                    ctx.state.halt(ctx.round_index)
                return {}

        net = Network(nx.path_graph(4))
        result = Simulator(net, HaltAtOwnRound(), seed=0).run()
        # Node v steps in rounds 0..v exactly, so it appears v+1 times.
        assert all(calls.count(v) == v + 1 for v in range(4))
        assert result.all_halted()
        assert result.rounds == 4

    def test_step_returns_false_once_everyone_halted(self):
        class HaltImmediately(NodeProgram):
            def step(self, ctx, inbox):
                ctx.state.halt("done")
                return {}

        net = Network(nx.path_graph(3))
        sim = Simulator(net, HaltImmediately(), seed=0)
        assert sim.step() is False  # everyone halted during the round
        assert sim.step() is False  # and the set stays drained
        assert net.ledger.rounds == 1  # the drained round charges nothing new

    def test_node_halting_in_init_never_steps(self):
        stepped = []

        class EvenNodesQuitInInit(NodeProgram):
            def init(self, ctx):
                if ctx.node % 2 == 0:
                    ctx.state.halt("early")

            def step(self, ctx, inbox):
                stepped.append(ctx.node)
                ctx.state.halt("late")
                return {}

        net = Network(nx.path_graph(4))
        result = Simulator(net, EvenNodesQuitInInit(), seed=0).run()
        assert sorted(stepped) == [1, 3]
        assert result.outputs[0] == "early" and result.outputs[1] == "late"


class TestInboxContract:
    """Programs always receive a private mutable inbox dict; pooled inboxes
    must never leak one node's (possibly mutated) mail into another round."""

    def test_inbox_is_a_private_mutable_dict(self):
        class Mutator(NodeProgram):
            def step(self, ctx, inbox):
                assert isinstance(inbox, dict)
                inbox["scribble"] = ctx.node  # mutation must be allowed
                inbox.clear()
                if ctx.round_index == 2:
                    ctx.state.halt(True)
                    return {}
                return {u: ctx.node for u in ctx.neighbors}

        net = Network(nx.path_graph(4))
        result = Simulator(net, Mutator(), seed=0).run()
        assert all(result.outputs.values())

    def test_mutating_the_inbox_does_not_corrupt_later_rounds(self):
        seen = {}

        class ClearAndRecord(NodeProgram):
            def step(self, ctx, inbox):
                seen.setdefault(ctx.node, []).append(dict(inbox))
                inbox.clear()          # hostile mutation of the pooled dict
                inbox["junk"] = -1
                if ctx.round_index == 2:
                    ctx.state.halt(True)
                    return {}
                return {u: (ctx.node, ctx.round_index) for u in ctx.neighbors}

        net = Network(nx.path_graph(3))
        Simulator(net, ClearAndRecord(), seed=0).run()
        # Round 0 inboxes are empty; later rounds hold exactly last round's
        # mail — never the "junk" entry a neighbour (or the node itself)
        # planted in a pooled dict.
        assert seen[1][0] == {}
        assert seen[1][1] == {0: (0, 0), 2: (2, 0)}
        assert seen[1][2] == {0: (0, 1), 2: (2, 1)}
        assert all("junk" not in box for boxes in seen.values() for box in boxes)

    def test_empty_inboxes_are_not_shared_between_nodes(self):
        boxes = {}

        class Grab(NodeProgram):
            def step(self, ctx, inbox):
                boxes[ctx.node] = inbox
                ctx.state.halt(True)
                return {}

        net = Network(nx.path_graph(3))
        Simulator(net, Grab(), seed=0).run()
        ids = {id(box) for box in boxes.values()}
        assert len(ids) == len(boxes)


class TestContextReuse:
    def test_context_objects_are_reused_across_rounds(self):
        seen = []

        class Probe(NodeProgram):
            def step(self, ctx, inbox):
                seen.append((ctx.node, id(ctx), ctx.round_index))
                if ctx.round_index >= 2:
                    ctx.state.halt(ctx.round_index)
                return {}

        net = Network(nx.path_graph(3))
        Simulator(net, Probe(), seed=0).run()
        ids_per_node = {}
        for node, ctx_id, _ in seen:
            ids_per_node.setdefault(node, set()).add(ctx_id)
        # One ProgramContext per node, reused every round.
        assert all(len(ids) == 1 for ids in ids_per_node.values())
        rounds_for_zero = [r for node, _, r in seen if node == 0]
        assert rounds_for_zero == [0, 1, 2]

    def test_init_and_step_share_context(self):
        class Probe(NodeProgram):
            def init(self, ctx):
                ctx.state["init_ctx"] = id(ctx)

            def step(self, ctx, inbox):
                ctx.state.halt(id(ctx) == ctx.state["init_ctx"])
                return {}

        net = Network(nx.path_graph(3))
        result = Simulator(net, Probe(), seed=0).run()
        assert all(result.outputs.values())

"""Sharded execution: byte-identity with serial runs for any shard count.

The contract under test (DESIGN.md "Sharded execution invariants"): slicing
a run over shard workers is a pure execution choice — ledgers, outputs,
states, colorings, fault counters and halting behavior must match a serial
slot-backend run bit for bit, for shards ∈ {1, 2, 4, 7}, on fault-free
networks and under drop/corrupt/crash fault plans, on both worker runtimes.
"""

from __future__ import annotations

import pytest

import networkx as nx

import repro.shard.sweep as sweep_mod
from repro.congest import Network, NodeProgram, Simulator
from repro.congest.columnar import HAVE_NUMPY
from repro.core import solve_d1c, solve_d1lc
from repro.experiments import (
    aggregate_suite, canonical_dumps, run_scenarios,
)
from repro.experiments.spec import ScenarioSpec
from repro.graphs import gnp_fast_graph, ring_of_cliques
from repro.sampling import estimate_similarity_on_edges
from repro.sampling.similarity import SimilarityParameters
from repro.shard import (
    ShardPlan, ShardedSimulator, make_simulator, partition_weights,
)

SHARD_COUNTS = (1, 2, 4, 7)

#: Serial backends the sharded execution must stay byte-identical to.  The
#: columnar core joins whenever numpy is importable: slot == columnar ==
#: sharded closes the three-way equivalence triangle.
SERIAL_BACKENDS = ("slot",) + (("columnar",) if HAVE_NUMPY else ())


# --------------------------------------------------------------------------- #
# Node programs exercising distinct execution shapes
# --------------------------------------------------------------------------- #

class FloodMin(NodeProgram):
    """Deterministic flood; every node halts in the same round."""

    def init(self, ctx):
        ctx.state["best"] = ctx.node

    def step(self, ctx, inbox):
        best = ctx.state["best"]
        for value in inbox.values():
            if value < best:
                best = value
        ctx.state["best"] = best
        if ctx.round_index >= 6:
            ctx.state.halt(best)
            return None
        return {u: best for u in ctx.neighbors}


class RandomGossip(NodeProgram):
    """Per-node randomness: sharding must preserve every node's rng stream."""

    def init(self, ctx):
        ctx.state["trace"] = [ctx.rng.randrange(1000)]

    def step(self, ctx, inbox):
        ctx.state["trace"].append(
            ctx.rng.randrange(1000) + sum(v for v in inbox.values())
        )
        if ctx.round_index >= 4:
            ctx.state.halt(tuple(ctx.state["trace"]))
            return None
        return {u: ctx.state["trace"][-1] % 7 for u in ctx.neighbors}


class StaggeredHalt(NodeProgram):
    """Nodes halt at different rounds, draining some shards before others —
    the coordinator's absorb path (a drained shard still participating in
    live rounds) is what keeps clocks and cut deliveries aligned."""

    def step(self, ctx, inbox):
        if ctx.round_index >= (hash(ctx.node) % 5):
            ctx.state.halt(("done", len(inbox)))
            return None
        return {u: 1 for u in ctx.neighbors}


def _families():
    return [
        ("gnp_fast", gnp_fast_graph(60, avg_degree=6.0, seed=3)),
        ("geometric", nx.random_geometric_graph(60, 0.22, seed=5)),
        ("ring_of_cliques", ring_of_cliques(6, 6)),
    ]


def _run_serial(graph, program_cls, seed=7, faults=None, backend="slot"):
    net = Network(graph, backend=backend, ledger="records", faults=faults,
                  fault_seed=13)
    result = Simulator(net, program_cls(), seed=seed).run()
    return result, net


def _run_sharded(graph, program_cls, shards, workers, seed=7, faults=None):
    net = Network(graph, backend="slot", ledger="records", faults=faults,
                  fault_seed=13)
    sim = ShardedSimulator(net, program_cls(), seed=seed, shards=shards,
                           workers=workers)
    return sim.run(), net


def _ledger_records(net):
    return [(r.label, r.message_count, r.total_bits, r.max_edge_bits)
            for r in net.ledger.records]


def _assert_equivalent(graph, program_cls, shards, workers, faults=None,
                       serial_backend="slot"):
    serial, net0 = _run_serial(graph, program_cls, faults=faults,
                               backend=serial_backend)
    sharded, net1 = _run_sharded(graph, program_cls, shards, workers,
                                 faults=faults)
    assert sharded.outputs == serial.outputs
    assert sharded.rounds == serial.rounds
    assert sharded.halted == serial.halted
    assert _ledger_records(net1) == _ledger_records(net0)
    assert net1.fault_stats == net0.fault_stats
    assert {v: (s.halted, s.output) for v, s in sharded.states.items()} == \
        {v: (s.halted, s.output) for v, s in serial.states.items()}


# --------------------------------------------------------------------------- #
# Shard plans and the cut-edge routing table
# --------------------------------------------------------------------------- #

class TestShardPlan:
    def test_bounds_cover_slot_range_contiguously(self):
        graph = gnp_fast_graph(50, avg_degree=5.0, seed=1)
        topology = Network(graph).topology
        for shards in SHARD_COUNTS:
            plan = ShardPlan(topology, shards)
            assert plan.bounds[0] == 0 and plan.bounds[-1] == 50
            assert list(plan.bounds) == sorted(set(plan.bounds))
            covered = [s for shard in range(plan.shards)
                       for s in plan.slot_range(shard)]
            assert covered == list(range(50))
            assert [plan.owner[i] for i in range(50)] == \
                [plan.shard_of_slot(i) for i in range(50)]

    def test_cut_edges_match_bruteforce_when_boundary_slices_a_clique(self):
        # ring_of_cliques(4, 6): 24 nodes in 4 cliques of 6.  Three CSR-
        # balanced shards put boundaries at slots 8 and 16 — inside cliques
        # 2 and 3 — so intra-clique edges are sliced across the partition.
        graph = ring_of_cliques(4, 6)
        topology = Network(graph).topology
        plan = ShardPlan(topology, 3)
        clique_of = lambda slot: slot // 6
        sliced = [b for b in plan.bounds[1:-1] if b % 6]
        assert sliced, "expected at least one boundary inside a clique"

        index_of = topology.node_index
        expected = {s: set() for s in range(plan.shards)}
        for u, v in graph.edges():
            iu, iv = index_of[u], index_of[v]
            if plan.owner[iu] != plan.owner[iv]:
                expected[plan.owner[iu]].add((iu, iv))
                expected[plan.owner[iv]].add((iv, iu))
        for s in range(plan.shards):
            assert set(plan.cut_edges_of(s)) == expected[s]
        # The sliced cliques contribute intra-clique cut edges.
        assert any(clique_of(a) == clique_of(b)
                   for s in range(plan.shards)
                   for a, b in plan.cut_edges_of(s))
        summary = plan.cut_summary()
        assert summary["cut_edges"] == \
            sum(len(v) for v in expected.values()) // 2

    def test_flood_crosses_sliced_clique_boundary(self):
        # End to end across the cut: the global minimum floods through
        # boundary-sliced cliques identically for every shard count.
        graph = ring_of_cliques(4, 6)
        for shards in (2, 3, 7):
            _assert_equivalent(graph, FloodMin, shards, "thread")

    def test_plan_validation(self):
        topology = Network(gnp_fast_graph(10, avg_degree=3.0, seed=0)).topology
        with pytest.raises(ValueError):
            ShardPlan(topology, 0)
        assert ShardPlan(topology, 99).shards == 10  # clamped to n

    def test_partition_weights_balanced_and_contiguous(self):
        weights = [5, 1, 1, 1, 5, 1, 1, 1, 5, 1]
        bounds = partition_weights(weights, 3)
        assert bounds[0] == 0 and bounds[-1] == len(weights)
        assert bounds == sorted(bounds)
        chunk_weights = [sum(weights[bounds[i]:bounds[i + 1]])
                         for i in range(3)]
        assert max(chunk_weights) <= sum(weights)  # sanity
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))


# --------------------------------------------------------------------------- #
# ShardedSimulator equivalence
# --------------------------------------------------------------------------- #

class TestShardedSimulatorEquivalence:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("program_cls", [FloodMin, RandomGossip,
                                             StaggeredHalt])
    def test_fault_free_families_thread(self, shards, program_cls):
        for _name, graph in _families():
            _assert_equivalent(graph, program_cls, shards, "thread")

    @pytest.mark.parametrize("shards", (2, 7))
    def test_fault_free_fork_runtime(self, shards):
        for _name, graph in _families():
            _assert_equivalent(graph, RandomGossip, shards, "fork")

    @pytest.mark.parametrize("backend", SERIAL_BACKENDS)
    @pytest.mark.parametrize("program_cls", [FloodMin, RandomGossip,
                                             StaggeredHalt])
    def test_serial_backend_matches_sharded(self, backend, program_cls):
        # slot == columnar == sharded: any serial backend's run must match
        # the partitioned execution byte for byte.
        for _name, graph in _families():
            _assert_equivalent(graph, program_cls, 4, "thread",
                               serial_backend=backend)

    @pytest.mark.parametrize("backend", SERIAL_BACKENDS)
    @pytest.mark.parametrize("faults", [
        {"drop": 0.15},
        {"corrupt": 0.02},
        {"crash": {2: (5, 11)}},
    ])
    def test_serial_backend_matches_sharded_under_faults(self, backend,
                                                         faults):
        for _name, graph in _families():
            _assert_equivalent(graph, FloodMin, 3, "thread", faults=faults,
                               serial_backend=backend)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("faults", [
        {"drop": 0.15},
        {"corrupt": 0.02},
        {"drop": 0.1, "corrupt": 0.01},
    ])
    def test_drop_corrupt_fault_plans(self, shards, faults):
        for _name, graph in _families():
            _assert_equivalent(graph, FloodMin, shards, "thread",
                               faults=faults)

    def test_drop_corrupt_fork_runtime(self):
        graph = ring_of_cliques(6, 6)
        _assert_equivalent(graph, FloodMin, 4, "fork",
                           faults={"drop": 0.1, "corrupt": 0.01})

    def test_crash_schedule_draining_a_whole_shard(self):
        # Crash every node of the first shard mid-run: its worker must keep
        # absorbing rounds (clock ticks, cut mail counted) while the rest
        # finish — and the round count must match serial exactly.
        graph = ring_of_cliques(6, 6)
        net = Network(graph)
        plan = ShardPlan(net.topology, 4)
        first = [net.topology.node_at(i) for i in plan.slot_range(0)]
        faults = {"crash": {2: tuple(first)}}
        for shards in (2, 4):
            _assert_equivalent(graph, FloodMin, shards, "thread",
                               faults=faults)

    def test_everyone_halts_in_init(self):
        class HaltInInit(NodeProgram):
            def init(self, ctx):
                ctx.state.halt("immediately")

            def step(self, ctx, inbox):  # pragma: no cover - never runs
                raise AssertionError("no rounds should execute")

        graph = gnp_fast_graph(20, avg_degree=4.0, seed=2)
        serial, net0 = _run_serial(graph, HaltInInit)
        sharded, net1 = _run_sharded(graph, HaltInInit, 4, "thread")
        assert sharded.rounds == serial.rounds == 0
        assert sharded.outputs == serial.outputs
        assert net1.ledger.rounds == net0.ledger.rounds == 0

    def test_max_rounds_cap(self):
        class NeverHalts(NodeProgram):
            def step(self, ctx, inbox):
                return {u: 0 for u in ctx.neighbors}

        graph = ring_of_cliques(4, 5)
        net = Network(graph, backend="slot")
        result = ShardedSimulator(net, NeverHalts(), shards=3,
                                  workers="thread").run(max_rounds=5)
        assert result.rounds == 5
        assert not result.halted
        assert net.ledger.rounds == 5

    def test_protocol_error_propagates(self):
        from repro.congest import ProtocolError

        class SendsOffGraph(NodeProgram):
            def step(self, ctx, inbox):
                return {"no-such-node": 1}

        net = Network(ring_of_cliques(4, 5), backend="slot")
        sim = ShardedSimulator(net, SendsOffGraph(), shards=3,
                               workers="thread")
        with pytest.raises(ProtocolError):
            sim.run()

    def test_bandwidth_exceeded_propagates(self):
        from repro.congest import BandwidthExceeded

        class TooChatty(NodeProgram):
            def step(self, ctx, inbox):
                return {u: tuple(range(4096)) for u in ctx.neighbors}

        for workers in ("thread", "fork"):
            net = Network(ring_of_cliques(4, 5), backend="slot")
            sim = ShardedSimulator(net, TooChatty(), shards=3, workers=workers)
            with pytest.raises(BandwidthExceeded):
                sim.run()

    def test_make_simulator_dispatch(self):
        net = Network(ring_of_cliques(3, 4))
        assert isinstance(make_simulator(net, FloodMin(), shards=1), Simulator)
        sharded = make_simulator(net, FloodMin(), shards=3, workers="thread")
        assert isinstance(sharded, ShardedSimulator)

    def test_crash_plan_requires_fresh_clock(self):
        net = Network(ring_of_cliques(3, 4), faults={"crash": {1: (0,)}})
        net.charge_silent_round()
        with pytest.raises(ValueError):
            ShardedSimulator(net, FloodMin(), shards=2, workers="thread")


# --------------------------------------------------------------------------- #
# Solver-side sharding: the similarity sweep and the suite aggregates
# --------------------------------------------------------------------------- #

class TestShardedSweep:
    def test_sweep_results_identical(self, monkeypatch):
        monkeypatch.setattr(sweep_mod, "MIN_SHARDED_WORK", 0)
        graph = ring_of_cliques(5, 7)
        sets = {v: set(graph.neighbors(v)) for v in graph.nodes()}
        params = SimilarityParameters.practical(eps=0.3, seed=4)

        def sweep(shards):
            net = Network(graph, backend="slot", shards=shards)
            return estimate_similarity_on_edges(
                net, sets, params=params, seed=9), net

        base, net0 = sweep(1)
        for shards in (2, 4, 7):
            got, net1 = sweep(shards)
            assert got.keys() == base.keys()
            for edge in base:
                assert got[edge] == base[edge], edge
            assert (net1.ledger.rounds, net1.ledger.total_bits) == \
                (net0.ledger.rounds, net0.ledger.total_bits)

    def test_small_sweeps_stay_serial(self):
        # Below the work gate the pool is never engaged (the decision is a
        # pure function of the workload, so a run shards deterministically).
        net = Network(ring_of_cliques(3, 4), shards=4)
        sets = {v: set(net.neighbors(v)) for v in net.nodes}
        results = estimate_similarity_on_edges(net, sets, seed=1)
        assert results  # computed, serially, with identical semantics

    @pytest.mark.parametrize("backend", SERIAL_BACKENDS)
    @pytest.mark.parametrize("solver", [solve_d1c, solve_d1lc])
    def test_solver_bytes_identical(self, monkeypatch, solver, backend):
        monkeypatch.setattr(sweep_mod, "MIN_SHARDED_WORK", 0)
        graph = gnp_fast_graph(70, avg_degree=7.0, seed=6)
        base = solver(graph, seed=11, backend="slot")
        for shards in (2, 7):
            got = solver(graph, seed=11, backend=backend, shards=shards)
            assert got.coloring == base.coloring
            assert (got.rounds, got.total_bits, got.max_edge_bits) == \
                (base.rounds, base.total_bits, base.max_edge_bits)

    @pytest.mark.parametrize("backend", SERIAL_BACKENDS)
    def test_solver_bytes_identical_under_faults(self, monkeypatch, backend):
        monkeypatch.setattr(sweep_mod, "MIN_SHARDED_WORK", 0)
        graph = ring_of_cliques(6, 6)
        base = solve_d1c(graph, seed=3, backend="slot",
                         faults={"drop": 0.05, "corrupt": 1e-3})
        got = solve_d1c(graph, seed=3, backend=backend, shards=3,
                        faults={"drop": 0.05, "corrupt": 1e-3})
        assert got.coloring == base.coloring
        assert got.fault_stats == base.fault_stats

    def test_suite_aggregate_bytes_identical(self, monkeypatch):
        monkeypatch.setattr(sweep_mod, "MIN_SHARDED_WORK", 0)
        specs = [
            ScenarioSpec("tiny-d1c", "gnp_fast", "d1c",
                         family_params={"n": 40, "avg_degree": 5.0}, trials=2),
            ScenarioSpec("tiny-ring-d1lc", "ring_of_cliques", "d1lc",
                         family_params={"num_cliques": 4, "clique_size": 6}),
        ]
        from dataclasses import replace

        serial = run_scenarios(specs, suite="tiny")
        sharded = run_scenarios([replace(s, shards=3) for s in specs],
                                suite="tiny")
        assert canonical_dumps(aggregate_suite(serial)) == \
            canonical_dumps(aggregate_suite(sharded))

    def test_network_rejects_bad_shards(self):
        with pytest.raises(ValueError):
            Network(ring_of_cliques(3, 4), shards=0)


class TestShardCli:
    def test_color_command_accepts_shards(self, capsys):
        from repro.cli import main

        assert main(["color", "--n", "40", "--p", "0.12", "--problem", "d1c",
                     "--shards", "2"]) == 0
        assert "coloring run" in capsys.readouterr().out

    def test_suite_run_shards_override(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["suite", "run", "smoke", "--only", "gnp-d1c",
                     "--shards", "2", "--out", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "BENCH_suite.json").exists()


class TestComputePool:
    def test_wave_error_drains_pipes_and_pool_stays_usable(self):
        from repro.shard.pool import ShardComputePool, register_task

        register_task("maybe_fail",
                      lambda payload: payload if payload != "bad"
                      else (_ for _ in ()).throw(ValueError("boom")))
        pool = ShardComputePool(2)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                pool.run("maybe_fail", ["ok", "bad"])
            # Every pipe was drained before the raise: the next run's
            # results must match its own tasks, not stale leftovers.
            assert pool.run("maybe_fail", ["a", "b"]) == ["a", "b"]
        finally:
            pool.shutdown()

    def test_more_chunks_than_workers_dispatches_in_waves(self):
        from repro.shard.pool import ShardComputePool, register_task

        register_task("echo", lambda payload: payload * 2)
        pool = ShardComputePool(2)
        try:
            assert pool.run("echo", [1, 2, 3, 4, 5]) == [2, 4, 6, 8, 10]
        finally:
            pool.shutdown()

    def test_shutdown_pool_is_replaced_on_next_get(self):
        from repro.shard.pool import get_pool

        pool = get_pool(2)
        if pool.pid is None:  # fork-less fallback
            pytest.skip("fork unavailable")
        pool.shutdown()
        fresh = get_pool(2)
        assert fresh is not pool and fresh.size == 2
        from repro.shard.pool import shutdown_pool
        shutdown_pool()

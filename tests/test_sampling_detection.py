"""Tests for local triangle and 4-cycle detection (Theorems 2 and 3)."""

import networkx as nx
import pytest

from repro.congest import Network
from repro.graphs.generators import four_cycle_rich_graph, triangle_rich_graph
from repro.sampling import detect_four_cycle_rich_pairs, detect_triangle_rich_edges
from repro.sampling.four_cycles import true_four_cycle_count
from repro.sampling.triangles import true_triangle_count


class TestTriangleDetection:
    def test_clique_edges_are_flagged(self):
        g = nx.complete_graph(20)
        net = Network(g)
        result = detect_triangle_rich_edges(net, eps=0.3, seed=1)
        # Every edge of K20 is in 18 triangles >= 0.3 * 19.
        flagged_fraction = len(result.flagged) / g.number_of_edges()
        assert flagged_fraction >= 0.9

    def test_triangle_free_graph_not_flagged(self):
        g = nx.complete_bipartite_graph(10, 10)
        net = Network(g)
        result = detect_triangle_rich_edges(net, eps=0.3, seed=2)
        assert len(result.flagged) <= 0.05 * g.number_of_edges()

    def test_planted_instance_recall_and_precision(self):
        planted = triangle_rich_graph(n=80, background_p=0.02, planted_cliques=2,
                                      clique_size=12, seed=3)
        net = Network(planted.graph)
        eps = 0.3
        result = detect_triangle_rich_edges(net, eps=eps, seed=3)
        threshold = result.threshold
        # Score against the actual triangle counts (the planted edges are the
        # ones far above threshold, background edges far below).
        hits, misses, false_alarms = 0, 0, 0
        for u, v in planted.graph.edges():
            count = true_triangle_count(net, u, v)
            flagged = result.is_flagged(u, v)
            if count >= 2 * threshold and not flagged:
                misses += 1
            elif count >= 2 * threshold:
                hits += 1
            elif count <= 0.25 * threshold and flagged:
                false_alarms += 1
        assert hits > 0
        assert misses <= 0.2 * max(1, hits + misses)
        assert false_alarms <= 0.1 * planted.graph.number_of_edges()

    def test_round_count_independent_of_size(self):
        small = Network(nx.complete_graph(12))
        large = Network(triangle_rich_graph(n=100, seed=5).graph)
        r_small = detect_triangle_rich_edges(small, eps=0.3, seed=6).rounds_used
        r_large = detect_triangle_rich_edges(large, eps=0.3, seed=6).rounds_used
        assert r_large <= 3 * max(1, r_small) + 20

    def test_true_triangle_count_helper(self):
        g = nx.complete_graph(4)
        net = Network(g)
        assert true_triangle_count(net, 0, 1) == 2

    def test_explicit_delta_threshold(self):
        g = nx.complete_graph(10)
        net = Network(g)
        result = detect_triangle_rich_edges(net, eps=0.5, delta=100, seed=7)
        # threshold 50 is unreachable in K10, nothing should be flagged.
        assert result.threshold == 50
        assert not result.flagged


class TestFourCycleDetection:
    def test_bipartite_block_wedges_flagged(self):
        g = nx.complete_bipartite_graph(8, 8)
        net = Network(g)
        result = detect_four_cycle_rich_pairs(net, eps=0.3, seed=1)
        # Wedges centred on a left vertex with two right neighbours lie in
        # many 4-cycles (every other left vertex closes one).
        flagged_count = len(result.flagged)
        assert flagged_count > 0

    def test_tree_has_no_four_cycles(self):
        g = nx.balanced_tree(3, 3)
        net = Network(g)
        result = detect_four_cycle_rich_pairs(net, eps=0.3, seed=2)
        assert len(result.flagged) <= 0.02 * len(result.estimates) + 1

    def test_true_four_cycle_count_helper(self):
        g = nx.cycle_graph(4)
        net = Network(g)
        assert true_four_cycle_count(net, 0, 1, 3) == 1

    def test_planted_instance(self):
        planted = four_cycle_rich_graph(n=60, background_p=0.02, planted_blocks=1,
                                        side_size=8, seed=4)
        net = Network(planted.graph)
        result = detect_four_cycle_rich_pairs(net, eps=0.3, seed=4)
        rich_hits = sum(
            1 for (center, u, w) in result.flagged if center in planted.rich_centers
        )
        assert rich_hits >= 0.5 * max(1, len(result.flagged))

    def test_estimates_cover_all_wedges_of_requested_nodes(self):
        g = nx.star_graph(5)
        net = Network(g)
        result = detect_four_cycle_rich_pairs(net, eps=0.3, nodes=[0], seed=5)
        assert len(result.estimates) == 5 * 4 // 2

    def test_bandwidth_respected(self):
        g = nx.complete_bipartite_graph(6, 6)
        net = Network(g)
        detect_four_cycle_rich_pairs(net, eps=0.3, seed=6)
        assert net.ledger.max_edge_bits <= net.bandwidth_bits

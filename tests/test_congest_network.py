"""Tests for the CONGEST network simulator: rounds, bandwidth, errors."""

import networkx as nx
import pytest

from repro.congest import (
    BandwidthExceeded,
    Message,
    Network,
    ProtocolError,
    payload_bits,
)


@pytest.fixture(params=["dict", "batch"])
def backend(request) -> str:
    return request.param


@pytest.fixture
def square(backend) -> Network:
    return Network(nx.cycle_graph(4), bandwidth_bits=16, backend=backend)


class TestConstruction:
    def test_default_bandwidth_scales_with_log_n(self):
        small = Network(nx.path_graph(8))
        large = Network(nx.path_graph(1024))
        assert large.bandwidth_bits > small.bandwidth_bits

    def test_explicit_bandwidth(self):
        net = Network(nx.path_graph(4), bandwidth_bits=10)
        assert net.bandwidth_bits == 10

    def test_self_loops_rejected(self):
        g = nx.Graph()
        g.add_edge(1, 1)
        with pytest.raises(ProtocolError):
            Network(g)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Network(nx.path_graph(3), mode="weird")

    def test_views(self, square):
        assert square.number_of_nodes == 4
        assert square.degree(0) == 2
        assert square.max_degree() == 2
        assert square.are_adjacent(0, 1)
        assert not square.are_adjacent(0, 2)

    def test_neighbors_of_missing_node(self, square):
        with pytest.raises(ProtocolError):
            square.neighbors("nope")


class TestExchange:
    def test_delivery_and_round_count(self, square):
        delivered = square.exchange({(0, 1): 5, (1, 0): 7})
        assert delivered == {(0, 1): 5, (1, 0): 7}
        assert square.rounds_used == 1

    def test_each_exchange_is_one_round(self, square):
        square.exchange({(0, 1): 1})
        square.exchange({(1, 2): 1})
        square.exchange({})
        assert square.rounds_used == 3

    def test_non_edge_rejected(self, square):
        with pytest.raises(ProtocolError):
            square.exchange({(0, 2): 1})

    def test_self_message_rejected(self, square):
        with pytest.raises(ProtocolError):
            square.exchange({(0, 0): 1})

    def test_bandwidth_enforced(self, square):
        big = Message(content="x", bits=17)
        with pytest.raises(BandwidthExceeded):
            square.exchange({(0, 1): big})

    def test_bandwidth_not_enforced_in_local_mode(self):
        net = Network(nx.path_graph(4), mode="local", bandwidth_bits=4)
        delivered = net.exchange({(0, 1): Message(content="big", bits=10_000)})
        assert delivered[(0, 1)] == "big"

    def test_message_unwrapped_on_delivery(self, square):
        delivered = square.exchange({(0, 1): Message(content=("a", "b"), bits=4)})
        assert delivered[(0, 1)] == ("a", "b")

    def test_ledger_totals(self, square):
        square.exchange({(0, 1): Message(content=1, bits=5), (2, 3): Message(content=1, bits=7)})
        assert square.ledger.total_bits == 12
        assert square.ledger.max_edge_bits == 7
        assert square.ledger.total_messages == 2


class TestBroadcast:
    def test_reaches_all_neighbors(self, square):
        inbox = square.broadcast({0: 42})
        assert inbox[1][0] == 42
        assert inbox[3][0] == 42
        assert inbox[2] == {}

    def test_broadcast_is_one_round(self, square):
        square.broadcast({0: 1, 1: 2, 2: 3})
        assert square.rounds_used == 1

    def test_restricted_recipients(self, square):
        inbox = square.broadcast({0: 9}, senders_only_to={0: [1]})
        assert inbox[1][0] == 9
        assert inbox[3] == {}

    def test_restricted_to_non_neighbor_rejected(self, square):
        with pytest.raises(ProtocolError):
            square.broadcast({0: 9}, senders_only_to={0: [2]})


class TestChunkedExchange:
    def test_large_message_costs_multiple_rounds(self, backend):
        net = Network(nx.path_graph(3), bandwidth_bits=8, backend=backend)
        net.exchange_chunked({(0, 1): Message(content="big", bits=33)})
        assert net.rounds_used == 5  # ceil(33 / 8)

    def test_small_message_costs_one_round(self, backend):
        net = Network(nx.path_graph(3), bandwidth_bits=8, backend=backend)
        net.exchange_chunked({(0, 1): Message(content="ok", bits=8)})
        assert net.rounds_used == 1

    def test_local_mode_single_round(self, backend):
        net = Network(nx.path_graph(3), mode="local", bandwidth_bits=8, backend=backend)
        net.exchange_chunked({(0, 1): Message(content="big", bits=1000)})
        assert net.rounds_used == 1

    def test_empty_still_charges_a_round(self, backend):
        net = Network(nx.path_graph(3), bandwidth_bits=8, backend=backend)
        net.exchange_chunked({})
        assert net.rounds_used == 1

    def test_parallel_streams_share_rounds(self, backend):
        net = Network(nx.cycle_graph(4), bandwidth_bits=8, backend=backend)
        net.exchange_chunked({
            (0, 1): Message(content="a", bits=24),
            (2, 3): Message(content="b", bits=16),
        })
        assert net.rounds_used == 3  # dominated by the 24-bit message

    def test_total_bits_preserved(self, backend):
        net = Network(nx.path_graph(3), bandwidth_bits=8, backend=backend)
        net.exchange_chunked({(0, 1): Message(content="a", bits=20)})
        assert net.ledger.total_bits == 20

    def test_non_edge_rejected(self, backend):
        net = Network(nx.path_graph(4), bandwidth_bits=8, backend=backend)
        with pytest.raises(ProtocolError):
            net.exchange_chunked({(0, 3): Message(content="a", bits=4)})

    def test_broadcast_chunked(self, backend):
        net = Network(nx.star_graph(3), bandwidth_bits=8, backend=backend)
        inbox = net.broadcast_chunked({0: Message(content="hub", bits=20)})
        assert all(inbox[leaf][0] == "hub" for leaf in (1, 2, 3))
        assert net.rounds_used == 3


class TestSilentRoundsAndSummary:
    def test_silent_round_advances_counter(self, square):
        square.charge_silent_round()
        assert square.rounds_used == 1
        assert square.ledger.total_bits == 0

    def test_summary_fields(self, square):
        square.exchange({(0, 1): 3})
        summary = square.summary()
        assert summary["nodes"] == 4
        assert summary["rounds"] == 1
        assert summary["mode"] == "congest"

    def test_rounds_by_label(self, square):
        square.exchange({(0, 1): 1}, label="phase-a")
        square.exchange({(0, 1): 1}, label="phase-a")
        square.exchange({(0, 1): 1}, label="phase-b")
        counts = square.ledger.rounds_by_label()
        assert counts == {"phase-a": 2, "phase-b": 1}


class TestPayloadBits:
    def test_primitives(self):
        assert payload_bits(None) == 1
        assert payload_bits(True) == 1
        assert payload_bits(0) == 1
        assert payload_bits(255) == 8
        assert payload_bits(1.5) == 64

    def test_string(self):
        assert payload_bits("ab") == 16

    def test_collections(self):
        assert payload_bits([1, 1]) > 2  # includes a length header
        assert payload_bits((255, 255)) == payload_bits([255, 255])

    def test_message_overrides(self):
        assert payload_bits(Message(content=[1] * 1000, bits=3)) == 3

    def test_unknown_type_rejected(self):
        class Strange:
            pass

        with pytest.raises(TypeError):
            payload_bits(Strange())

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            Message(content=1, bits=-1)


class TestChunkedLocalAccounting:
    """Regression: LOCAL-mode exchange_chunked must charge exactly one round
    with the true per-edge sizes — the same record exchange() would produce."""

    MESSAGES = {
        (0, 1): Message(content="a", bits=1000),
        (1, 2): Message(content="b", bits=3),
        (2, 3): Message(content="c", bits=0),
    }

    def test_local_chunked_matches_exchange_record(self, backend):
        chunked = Network(nx.path_graph(4), mode="local", bandwidth_bits=8, backend=backend)
        plain = Network(nx.path_graph(4), mode="local", bandwidth_bits=8, backend=backend)
        chunked.exchange_chunked(dict(self.MESSAGES), label="x")
        plain.exchange(dict(self.MESSAGES), label="x")
        assert chunked.ledger.records == plain.ledger.records

    def test_local_chunked_counts_every_message(self, backend):
        net = Network(nx.path_graph(4), mode="local", bandwidth_bits=8, backend=backend)
        net.exchange_chunked(dict(self.MESSAGES), label="x")
        assert net.ledger.rounds == 1
        assert net.ledger.total_messages == 3  # zero-bit messages count too
        assert net.ledger.total_bits == 1003
        assert net.ledger.max_edge_bits == 1000

    def test_congest_chunked_counts_zero_bit_message_once(self, backend):
        net = Network(nx.path_graph(4), bandwidth_bits=8, backend=backend)
        net.exchange_chunked(
            {(0, 1): Message(content="a", bits=16), (2, 3): Message(content="z", bits=0)},
            label="x",
        )
        assert net.ledger.rounds == 2
        # Round 1 carries both messages (the zero-bit one occupies its edge
        # exactly once); round 2 carries only the second chunk.
        assert [r.message_count for r in net.ledger.records] == [2, 1]
        assert net.ledger.total_bits == 16


class TestBackendSelection:
    def test_default_backend_is_batch(self):
        assert Network(nx.path_graph(3)).backend == "batch"

    def test_backend_recorded_in_summary(self, backend):
        net = Network(nx.path_graph(3), backend=backend)
        assert net.summary()["backend"] == backend

    def test_transport_instance_passthrough_adopts_wiring(self):
        from repro.congest import DictTransport, Topology
        from repro.metrics.ledger import RecordingLedger

        graph = nx.path_graph(3)
        shared_ledger = RecordingLedger()
        custom = DictTransport(Topology(graph), "local", 8, shared_ledger)
        net = Network(graph, mode="local", backend=custom)
        # The facade must describe the transport that actually runs...
        assert net.transport is custom
        assert net.ledger is shared_ledger
        assert net.mode == "local"
        assert net.bandwidth_bits == 8
        assert net.topology is custom.topology
        # ...and its accounting must reach Network-level views.
        net.exchange({(0, 1): 5})
        assert net.rounds_used == 1
        assert net.summary()["rounds"] == 1

    def test_transport_instance_conflicts_rejected(self):
        from repro.congest import DictTransport, Topology
        from repro.metrics.ledger import RecordingLedger

        graph = nx.path_graph(3)
        custom = DictTransport(Topology(graph), "local", 8, RecordingLedger())
        with pytest.raises(ValueError):  # default mode is congest
            Network(graph, backend=custom)
        with pytest.raises(ValueError):  # different graph entirely
            Network(nx.path_graph(3), mode="local", backend=custom)
        with pytest.raises(ValueError):  # conflicting explicit budget
            Network(graph, mode="local", bandwidth_bits=99, backend=custom)
        with pytest.raises(ValueError):  # conflicting ledger kind
            Network(graph, mode="local", ledger="counters", backend=custom)

    def test_message_subclass_unwrapped_on_both_backends(self, backend):
        class Tagged(Message):
            pass

        net = Network(nx.path_graph(3), bandwidth_bits=16, backend=backend)
        delivered = net.exchange({(0, 1): Tagged(content="payload", bits=4)})
        assert delivered[(0, 1)] == "payload"
        assert net.ledger.total_bits == 4

    def test_ledger_kind_matching_transport_is_accepted(self):
        from repro.congest import DictTransport, Topology
        from repro.metrics.ledger import CounterLedger, RecordingLedger

        graph = nx.path_graph(3)
        recording = DictTransport(Topology(graph), "local", 8, RecordingLedger())
        # Matching kind names (including the alias) are fine...
        Network(graph, mode="local", ledger="records", backend=recording)
        Network(graph, mode="local", ledger="full", backend=recording)
        # ...but asking for round history on a counters-only transport is not.
        counting = DictTransport(Topology(graph), "local", 8, CounterLedger())
        with pytest.raises(ValueError):
            Network(graph, mode="local", ledger="records", backend=counting)

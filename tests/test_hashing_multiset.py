"""Tests for representative multisets / averaging samplers (Appendix B)."""

import random

import pytest

from repro.hashing.multiset import (
    AveragingSampler,
    RepresentativeMultisetFamily,
    recommended_sample_count,
)


class TestAveragingSampler:
    def test_points_in_domain(self):
        sampler = AveragingSampler(seed=1, index=2, domain_size=100, count=50)
        points = sampler.points()
        assert len(points) == 50
        assert all(1 <= p <= 100 for p in points)

    def test_points_deterministic(self):
        a = AveragingSampler(seed=1, index=2, domain_size=100, count=50)
        b = AveragingSampler(seed=1, index=2, domain_size=100, count=50)
        assert a.points() == b.points()

    def test_empirical_mean_requires_full_domain(self):
        sampler = AveragingSampler(seed=1, index=0, domain_size=10, count=5)
        with pytest.raises(ValueError):
            sampler.empirical_mean([1.0] * 5)

    def test_empirical_mean_of_constant_function(self):
        sampler = AveragingSampler(seed=1, index=0, domain_size=10, count=5)
        assert sampler.empirical_mean([0.5] * 10) == pytest.approx(0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AveragingSampler(seed=0, index=0, domain_size=0, count=5)
        with pytest.raises(ValueError):
            AveragingSampler(seed=0, index=0, domain_size=5, count=0)


class TestRepresentativeMultisetFamily:
    def test_index_bits_match_random_bits(self):
        family = RepresentativeMultisetFamily(domain_size=1000, count=64, random_bits=20)
        assert family.index_bits == 20

    def test_member_out_of_range(self):
        family = RepresentativeMultisetFamily(domain_size=100, count=8, random_bits=8)
        with pytest.raises(IndexError):
            family.member(family.family_size)

    def test_members_differ(self):
        family = RepresentativeMultisetFamily(domain_size=1000, count=32)
        assert family.member(0).points() != family.member(1).points()

    def test_averaging_property(self):
        """A random member estimates the density of a half-full indicator well."""
        domain = 400
        family = RepresentativeMultisetFamily(domain_size=domain, count=128, seed=3)
        values = [1.0 if i < domain // 2 else 0.0 for i in range(domain)]
        rng = random.Random(0)
        good = 0
        trials = 40
        for _ in range(trials):
            sampler = family.member(family.sample_index(rng))
            if abs(sampler.empirical_mean(values) - 0.5) <= 0.15:
                good += 1
        assert good >= 0.85 * trials

    def test_hitting_property(self):
        """A random member hits any constant-density subset (the MultiTrial use case)."""
        domain = 600
        target = set(range(0, domain, 3))  # density 1/3
        family = RepresentativeMultisetFamily(domain_size=domain, count=64, seed=5)
        rng = random.Random(1)
        for _ in range(30):
            sampler = family.member(family.sample_index(rng))
            hits = sum(1 for p in sampler.points() if (p - 1) in target)
            assert hits >= 8  # expected ~21, allow a wide margin

    def test_invalid_random_bits(self):
        with pytest.raises(ValueError):
            RepresentativeMultisetFamily(domain_size=10, count=4, random_bits=0)
        with pytest.raises(ValueError):
            RepresentativeMultisetFamily(domain_size=10, count=4, random_bits=64)


class TestRecommendedSampleCount:
    def test_grows_with_domain_and_n(self):
        small = recommended_sample_count(64, 100)
        large = recommended_sample_count(2 ** 30, 10 ** 6)
        assert large > small

    def test_floor(self):
        assert recommended_sample_count(2, 2) >= 8

"""Columnar core: kernels, buffers, accounting and masks pinned bit-for-bit.

The columnar backend's contract (DESIGN.md "Columnar core invariants") is
byte-identity with the slot backend.  The end-to-end half of that contract
lives in the four-backend equivalence matrix (``test_transport_equivalence``)
and the shard triangle (``test_shard``); this module pins the *pieces* —
vectorized splitmix64 kernels against the scalar implementations, CSR round
buffers against the slot backend's inbox fill, vectorized chunk accounting
against a literal chunk-by-chunk simulation, fault kernels against
``FaultyTransport``'s live decisions — so a drift in any one layer fails
here with a precise finger instead of as an opaque end-to-end diff.
"""

from __future__ import annotations

import dataclasses
import pickle
import random

import networkx as nx
import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congest import Message, Network
from repro.congest.columnar import HAVE_NUMPY, NUMPY_HINT
from repro.congest.columnar.buffers import CsrRoundBuffer, PackedEdgeBatch
from repro.congest.columnar.faults import (
    corruption_seeds, crash_mask, drop_mask, to_unit_vec,
)
from repro.congest.columnar.kernels import (
    element_keys_array,
    hash_values_vec,
    low_unique_values_vec,
    member_prefixes_vec,
    mix64_step_vec,
    mix64_vec,
    scale_keys_vec,
)
from repro.congest.columnar.state import SlotMasks
from repro.congest.simulator import Simulator
from repro.congest.transport import EMPTY_INBOX
from repro.faults.corruption import to_unit
from repro.faults.transport import _CORRUPT_SALT, _DROP_SALT
from repro.hashing.keys import (
    MIX64_INIT, combine_part_keys, element_key, mix64, mix64_step,
)
from repro.hashing.representative import RepresentativeHashFunction

MASK64 = (1 << 64) - 1

#: Adversarial 64-bit operands: zeros, all-ones, every bit-boundary power of
#: two and its neighbours, plus seeded random draws.
ADVERSARIAL = sorted(set(
    [0, 1, 2, MASK64, MASK64 - 1, (1 << 63), (1 << 63) - 1, (1 << 31),
     (1 << 32), (1 << 32) - 1, (1 << 53), 0x9E3779B97F4A7C15]
    + [random.Random(7).getrandbits(64) for _ in range(40)]
))


# --------------------------------------------------------------------------- #
# Kernel parity vs the scalar splitmix64 implementations
# --------------------------------------------------------------------------- #

class TestKernelParity:
    def test_mix64_step_matches_scalar(self):
        accs = np.array(ADVERSARIAL, dtype=np.uint64)
        vals = np.array(ADVERSARIAL[::-1], dtype=np.uint64)
        got = mix64_step_vec(accs, vals)
        expected = [mix64_step(a, v) for a, v in zip(ADVERSARIAL,
                                                     ADVERSARIAL[::-1])]
        assert got.tolist() == expected

    def test_mix64_chain_matches_scalar(self):
        a = np.array(ADVERSARIAL, dtype=np.uint64)
        b = np.array(ADVERSARIAL[::-1], dtype=np.uint64)
        got = mix64_vec(a, b, np.uint64(0xD809))
        expected = [mix64(x, y, 0xD809) for x, y in zip(ADVERSARIAL,
                                                        ADVERSARIAL[::-1])]
        assert got.tolist() == expected

    def test_scale_keys_match_combine_part_keys(self):
        keys = np.array(ADVERSARIAL, dtype=np.uint64)
        js = np.arange(len(ADVERSARIAL), dtype=np.uint64)
        got = scale_keys_vec(keys, js)
        expected = [combine_part_keys((k, j))
                    for k, j in zip(ADVERSARIAL, range(len(ADVERSARIAL)))]
        assert got.tolist() == expected
        # And combine_part_keys over int parts is element_key of the tuple,
        # closing the loop with the scalar sweep's scaled-element keying.
        assert expected[3] == element_key((ADVERSARIAL[3], 3))

    def test_member_prefixes_match_scalar_prefix(self):
        seeds = ADVERSARIAL[:12]
        indices = list(range(12))
        got = member_prefixes_vec(np.array(seeds, dtype=np.uint64),
                                  np.array(indices, dtype=np.uint64))
        expected = [mix64_step(mix64_step(MIX64_INIT, s), i)
                    for s, i in zip(seeds, indices)]
        assert got.tolist() == expected
        fn = RepresentativeHashFunction(seeds[5], indices[5], lam=97)
        assert int(got[5]) == fn._prefix

    @pytest.mark.parametrize("lam,sigma", [(7, 3), (97, 31), (1 << 20, 4096)])
    def test_low_unique_values_match_scalar(self, lam, sigma):
        rng = random.Random(lam)
        fn = RepresentativeHashFunction(rng.getrandbits(64), 3, lam=lam)
        keys = [rng.getrandbits(64) for _ in range(500)] + ADVERSARIAL[:8]
        # duplicate keys hash identically, stressing the count==1 filter
        keys += keys[:25]
        got = low_unique_values_vec(fn._prefix, keys, sigma, lam)
        assert sorted(got.tolist()) == sorted(fn.low_unique_values(keys, sigma))

    def test_hash_values_match_scalar_draw(self):
        fn = RepresentativeHashFunction(0xDEAD, 2, lam=101)
        keys = np.array(ADVERSARIAL, dtype=np.uint64)
        got = hash_values_vec(np.uint64(fn._prefix), keys, np.uint64(101))
        expected = [1 + mix64_step(fn._prefix, k) % 101 for k in ADVERSARIAL]
        assert got.tolist() == expected

    def test_element_keys_array_matches_scalar(self):
        elements = [0, 1, MASK64, (1, 2), "node", True, -5, (0, "x")]
        got = element_keys_array(elements)
        assert got.tolist() == [element_key(x) for x in elements]

    def test_element_keys_fast_path_excludes_bool(self):
        # True is an int subclass; element_key(True) == 1 must come from the
        # bool branch, not a silent uint64 cast on the int fast path.
        assert element_keys_array([True, False]).tolist() == [1, 0]
        assert element_keys_array([5, 6, 7]).tolist() == [5, 6, 7]


# --------------------------------------------------------------------------- #
# CSR round buffers: write sender-side, read receiver-side in slot order
# --------------------------------------------------------------------------- #

def _slot_vs_columnar_broadcast(graph, values, bandwidth_bits=64):
    nets = [Network(graph, backend=b, bandwidth_bits=bandwidth_bits,
                    ledger="records") for b in ("slot", "columnar")]
    inboxes = [net.broadcast(values, label="b") for net in nets]
    return nets, inboxes


class TestCsrRoundBuffer:
    def test_round_trip_reproduces_slot_inboxes_and_order(self):
        graph = nx.random_geometric_graph(40, 0.3, seed=3)
        values = {v: Message(content=(v, "payload"), bits=17)
                  for v in list(graph.nodes())[::2]}
        nets, (slot_in, col_in) = _slot_vs_columnar_broadcast(graph, values)
        assert {v: dict(b) for v, b in col_in.items()} == \
            {v: dict(b) for v, b in slot_in.items()}
        # insertion order per receiver must match too (seeded algorithms
        # iterate inbox.items() and consume randomness in that order)
        assert {v: list(b) for v, b in col_in.items()} == \
            {v: list(b) for v, b in slot_in.items()}
        assert nets[0].ledger.records == nets[1].ledger.records

    def test_entries_are_sender_major_in_csr_row_order(self):
        graph = nx.complete_graph(5)
        net = Network(graph, backend="columnar")
        topo = net.topology
        indptr = np.asarray(topo.indptr, dtype=np.int64)
        indices = np.asarray(topo.indices, dtype=np.int64)
        senders = np.array([3, 1], dtype=np.int64)  # send order preserved
        buf = CsrRoundBuffer.from_broadcast(indptr, indices, senders,
                                            ["from3", "from1"])
        entries = list(buf.entries())
        assert len(buf) == len(entries) == 8
        expected = [(3, int(r), "from3")
                    for r in indices[indptr[3]:indptr[4]]] + \
                   [(1, int(r), "from1")
                    for r in indices[indptr[1]:indptr[2]]]
        assert entries == expected

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_payload_bytes_survive_round_trip(self, data):
        """Property: zero-bit and max-width payload *bytes* are preserved.

        Every payload object delivered through the columnar broadcast must
        be the identical content object the sender supplied — including
        ``bits=0`` messages (cheapest) and bandwidth-wide messages (widest),
        whose accounting differs but whose bytes must not.
        """
        n = data.draw(st.integers(min_value=4, max_value=20))
        seed = data.draw(st.integers(min_value=0, max_value=999))
        graph = nx.gnp_random_graph(n, 0.4, seed=seed)
        budget = 64
        nodes = list(graph.nodes())
        senders = data.draw(st.lists(st.sampled_from(nodes), unique=True,
                                     min_size=1, max_size=len(nodes)))
        values = {}
        for v in senders:
            payload = data.draw(st.one_of(
                st.binary(min_size=0, max_size=8),
                st.tuples(st.integers(), st.text(max_size=6)),
                st.just(b"\x00" * 8),
            ))
            bits = data.draw(st.sampled_from([0, 1, budget]))
            values[v] = Message(content=payload, bits=bits)
        nets, (slot_in, col_in) = _slot_vs_columnar_broadcast(
            graph, values, bandwidth_bits=budget)
        for v, box in col_in.items():
            assert dict(box) == dict(slot_in[v])
            for sender, content in box.items():
                assert content is values[sender].content
        assert nets[0].ledger.records == nets[1].ledger.records


class TestPackedEdgeBatch:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 31),
                              st.integers(min_value=0, max_value=1 << 31),
                              st.one_of(st.binary(max_size=6), st.integers(),
                                        st.tuples(st.integers()))),
                    min_size=0, max_size=50))
    def test_round_trip_and_pickle(self, triples):
        batch = PackedEdgeBatch.from_triples(triples)
        assert len(batch) == len(triples)
        assert list(batch) == triples
        clone = pickle.loads(pickle.dumps(batch))
        assert clone == batch
        assert list(clone) == triples

    def test_zero_bit_and_max_width_payload_bytes(self):
        wide = b"\xff" * 32
        triples = [(0, 1, b""), (1, 0, wide), (2, 3, ())]
        batch = PackedEdgeBatch.from_triples(triples)
        got = list(batch)
        assert got == triples
        assert got[1][2] is wide  # identical object, not a copy

    def test_truthiness_matches_list_protocol(self):
        assert not PackedEdgeBatch.from_triples([])
        assert PackedEdgeBatch.from_triples([(0, 1, "x")])


# --------------------------------------------------------------------------- #
# Vectorized chunk accounting vs a literal chunk-by-chunk simulation
# --------------------------------------------------------------------------- #

def _simulate_chunk_rounds(sizes, budget):
    """Literal reference: one budget-sized chunk per still-streaming edge."""
    remaining = list(sizes)
    records = []
    total_rounds = max([1] + [-(-b // budget) for b in sizes if b > 0])
    for r in range(total_rounds):
        count = bits_sum = max_bits = 0
        for i, left in enumerate(remaining):
            if left <= 0 and r > 0:
                continue
            sent = min(left, budget)
            remaining[i] = left - sent
            count += 1
            bits_sum += sent
            max_bits = max(max_bits, sent)
        records.append((count, bits_sum, max_bits))
    return records


class TestChunkedAccounting:
    @pytest.mark.parametrize("trial", range(10))
    def test_charge_chunked_sizes_matches_literal_simulation(self, trial):
        rng = random.Random(trial)
        budget = rng.choice([1, 3, 8, 17])
        sizes = [rng.choice([0, 1, budget - 1, budget, budget + 1,
                             3 * budget, rng.randrange(0, 6 * budget + 1)])
                 for _ in range(rng.randrange(1, 2000))]
        net = Network(nx.path_graph(4), backend="columnar",
                      bandwidth_bits=budget, ledger="records")
        net.transport.charge_chunked_sizes("o", np.array(sizes,
                                                         dtype=np.int64))
        got = [(r.message_count, r.total_bits, r.max_edge_bits)
               for r in net.ledger.records]
        assert got == _simulate_chunk_rounds(sizes, budget)

    def test_empty_and_local_records(self):
        net = Network(nx.path_graph(4), backend="columnar", mode="local",
                      ledger="records")
        net.transport.charge_chunked_sizes("empty", np.array([],
                                                             dtype=np.int64))
        net.transport.charge_chunked_sizes("local", np.array([5, 0, 9],
                                                             dtype=np.int64))
        got = [(r.label, r.message_count, r.total_bits, r.max_edge_bits)
               for r in net.ledger.records]
        assert got == [("empty", 0, 0, 0), ("local", 3, 14, 9)]

    def test_vector_path_matches_scalar_path_on_same_sizes(self, monkeypatch):
        import repro.congest.columnar.transport as ct

        rng = random.Random(99)
        graph = nx.path_graph(6)
        sizes = {(i, i + 1): rng.randrange(0, 120) for i in range(5)}
        slot_net = Network(graph, backend="slot", bandwidth_bits=7,
                           ledger="records")
        col_net = Network(graph, backend="columnar", bandwidth_bits=7,
                          ledger="records")
        monkeypatch.setattr(ct, "_VECTOR_MIN_SIZES", 0)  # force the array path
        slot_net.transport._charge_chunked_rounds("c", sizes)
        col_net.transport._charge_chunked_rounds("c", sizes)
        assert col_net.ledger.records == slot_net.ledger.records

    def test_beyond_int64_payload_falls_back_to_scalar(self, monkeypatch):
        import repro.congest.columnar.transport as ct

        monkeypatch.setattr(ct, "_VECTOR_MIN_SIZES", 0)
        sizes = {(0, 1): 1 << 80}  # OverflowError on fromiter
        slot_net = Network(nx.path_graph(3), backend="slot",
                           bandwidth_bits=1 << 70, ledger="records")
        col_net = Network(nx.path_graph(3), backend="columnar",
                          bandwidth_bits=1 << 70, ledger="records")
        slot_net.transport._charge_chunked_rounds("big", sizes)
        col_net.transport._charge_chunked_rounds("big", sizes)
        assert col_net.ledger.records == slot_net.ledger.records


# --------------------------------------------------------------------------- #
# broadcast_discard: accounting-only broadcast
# --------------------------------------------------------------------------- #

class TestBroadcastDiscard:
    def test_ledger_identical_to_full_broadcast(self):
        graph = nx.random_geometric_graph(30, 0.3, seed=2)
        values = {v: Message(content=v, bits=9) for v in graph.nodes()}
        full = Network(graph, backend="columnar", ledger="records")
        lean = Network(graph, backend="columnar", ledger="records")
        full.broadcast(values, label="x")
        assert lean.broadcast_discard(values, label="x") is None
        assert lean.ledger.records == full.ledger.records

    def test_matches_reference_backends(self):
        graph = nx.star_graph(6)
        values = {0: Message(content="hub", bits=12), 3: 7}
        records = []
        for backend in ("dict", "batch", "slot", "columnar"):
            net = Network(graph, backend=backend, ledger="records")
            assert net.broadcast_discard(values, label="d") is None
            records.append(net.ledger.records)
        assert all(r == records[0] for r in records[1:])

    def test_bandwidth_violation_still_raises(self):
        from repro.congest import BandwidthExceeded

        net = Network(nx.path_graph(3), backend="columnar", bandwidth_bits=4)
        with pytest.raises(BandwidthExceeded):
            net.broadcast_discard({0: Message(content="wide", bits=99)})

    def test_unknown_sender_raises_protocol_error(self):
        from repro.congest import ProtocolError

        net = Network(nx.path_graph(3), backend="columnar")
        with pytest.raises(ProtocolError):
            net.broadcast_discard({"ghost": 1})


# --------------------------------------------------------------------------- #
# Fault kernels vs FaultyTransport's live decisions
# --------------------------------------------------------------------------- #

class TestFaultKernels:
    def test_to_unit_vec_matches_scalar(self):
        mixed = np.array(ADVERSARIAL, dtype=np.uint64)
        got = to_unit_vec(mixed)
        assert got.tolist() == [to_unit(m) for m in ADVERSARIAL]

    def test_drop_mask_matches_scalar_formula(self):
        rng = random.Random(5)
        master, round_id, p = rng.getrandbits(31), 7, 0.37
        s_keys = [rng.getrandbits(64) for _ in range(200)]
        r_keys = [rng.getrandbits(64) for _ in range(200)]
        got = drop_mask(master, round_id, s_keys, r_keys, p)
        expected = [to_unit(mix64(master, round_id, sk, rk, _DROP_SALT)) < p
                    for sk, rk in zip(s_keys, r_keys)]
        assert got.tolist() == expected
        assert any(expected) and not all(expected)  # non-degenerate draw

    def test_corruption_seeds_match_scalar_formula(self):
        rng = random.Random(6)
        master, round_id = rng.getrandbits(31), 3
        s_keys = [rng.getrandbits(64) for _ in range(50)]
        r_keys = [rng.getrandbits(64) for _ in range(50)]
        got = corruption_seeds(master, round_id, s_keys, r_keys)
        expected = [mix64(master, round_id, sk, rk, _CORRUPT_SALT)
                    for sk, rk in zip(s_keys, r_keys)]
        assert got.tolist() == expected

    def test_crash_mask(self):
        crashed = np.array([False, True, False, False], dtype=bool)
        senders = np.array([0, 1, 2, 3], dtype=np.int64)
        receivers = np.array([2, 0, 1, 0], dtype=np.int64)
        assert crash_mask(crashed, senders, receivers).tolist() == \
            [False, True, True, False]

    def test_drop_mask_predicts_a_live_faulted_round(self):
        # The kernel must agree with FaultyTransport's actual deliveries,
        # not just its formula on paper.
        graph = nx.random_geometric_graph(40, 0.35, seed=9)
        net = Network(graph, backend="slot", ledger="records",
                      faults={"drop": 0.3}, fault_seed=21)
        messages = {(u, v): (u, v) for u, v in graph.edges()}
        messages.update({(v, u): (v, u) for u, v in graph.edges()})
        round_id = net.ledger.rounds
        delivered = net.exchange(messages, label="live")
        edges = list(messages)
        mask = drop_mask(
            net.transport._master, round_id,
            element_keys_array([e[0] for e in edges]),
            element_keys_array([e[1] for e in edges]),
            0.3,
        )
        for edge, dropped in zip(edges, mask.tolist()):
            assert (edge not in delivered) == dropped, edge
        assert int(mask.sum()) == net.fault_stats["dropped_messages"]


# --------------------------------------------------------------------------- #
# SlotMasks: flat liveness columns stay in sync with the simulator
# --------------------------------------------------------------------------- #

class TestSlotMasks:
    def test_masks_track_halts_during_a_run(self):
        from repro.congest import NodeProgram

        class HaltAtOwnRound(NodeProgram):
            def step(self, ctx, inbox):
                if ctx.round_index >= (hash(ctx.node) % 4):
                    ctx.state.halt("done")
                    return None
                return {u: 1 for u in ctx.neighbors}

        net = Network(nx.random_geometric_graph(25, 0.3, seed=1))
        sim = Simulator(net, HaltAtOwnRound(), seed=2)
        assert sim.slot_masks is not None
        while sim.step():
            assert sim.slot_masks.active_count() == sim.active_count
        assert sim.slot_masks.active_count() == 0
        assert bool(sim.slot_masks.halted.all())
        assert not sim.slot_masks.crashed.any()

    def test_masks_track_crashes(self):
        from repro.congest import NodeProgram

        class Chatter(NodeProgram):
            def step(self, ctx, inbox):
                if ctx.round_index >= 5:
                    ctx.state.halt("done")
                    return None
                return {u: 0 for u in ctx.neighbors}

        graph = nx.path_graph(8)
        net = Network(graph, faults={"crash": {2: (3, 5)}}, fault_seed=4)
        sim = Simulator(net, Chatter(), seed=0)
        result = sim.run()
        assert result.rounds > 2
        slot_of = net.topology.node_index
        assert sim.slot_masks.crashed[slot_of[3]]
        assert sim.slot_masks.crashed[slot_of[5]]
        assert int(sim.slot_masks.crashed.sum()) == 2
        assert bool(sim.slot_masks.halted.all())

    def test_owned_range_marks_foreign_slots_halted(self):
        masks = SlotMasks(10, range(3, 7))
        assert masks.active_count() == 4
        assert masks.halted.tolist() == [True] * 3 + [False] * 4 + [True] * 3


# --------------------------------------------------------------------------- #
# Import gating: numpy-less installs get one clean, actionable error
# --------------------------------------------------------------------------- #

class TestNumpyGating:
    def test_have_numpy_is_true_here(self):
        assert HAVE_NUMPY  # the suite imported numpy above

    def test_require_numpy_raises_the_hint(self, monkeypatch):
        import repro.congest.columnar as pkg

        monkeypatch.setattr(pkg, "HAVE_NUMPY", False)
        with pytest.raises(ImportError, match="backend='slot'"):
            pkg.require_numpy()
        assert "numpy" in NUMPY_HINT and "slot" in NUMPY_HINT

    def test_backend_listing_includes_columnar(self):
        from repro.congest.transport import TRANSPORT_BACKENDS

        assert "columnar" in TRANSPORT_BACKENDS
        net = Network(nx.path_graph(3), backend="columnar")
        assert net.backend == "columnar"

"""Tests for the immutable Topology layer (CSR adjacency, node index)."""

import networkx as nx
import pytest

from repro.congest import Network, ProtocolError, Topology


@pytest.fixture
def topo() -> Topology:
    g = nx.Graph()
    g.add_edges_from([("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
    return Topology(g)


class TestViews:
    def test_nodes_cached_and_stable(self, topo):
        assert topo.nodes is topo.nodes  # no rebuild per access
        assert set(topo.nodes) == {"a", "b", "c", "d"}

    def test_counts(self, topo):
        assert topo.number_of_nodes == 4
        assert topo.number_of_edges == 4

    def test_neighbors_and_degrees(self, topo):
        assert topo.neighbors("c") == frozenset({"a", "b", "d"})
        assert topo.degree("c") == 3
        assert topo.degree("d") == 1
        assert topo.max_degree() == 3

    def test_are_adjacent(self, topo):
        assert topo.are_adjacent("a", "b")
        assert not topo.are_adjacent("a", "d")

    def test_missing_node_raises(self, topo):
        with pytest.raises(ProtocolError):
            topo.neighbors("nope")
        with pytest.raises(ProtocolError):
            topo.degree("nope")

    def test_self_loops_rejected(self):
        g = nx.Graph()
        g.add_edge(1, 1)
        with pytest.raises(ProtocolError):
            Topology(g)

    def test_edges_iterates_each_edge_once(self, topo):
        edges = {frozenset(e) for e in topo.edges()}
        assert edges == {
            frozenset({"a", "b"}),
            frozenset({"b", "c"}),
            frozenset({"c", "a"}),
            frozenset({"c", "d"}),
        }


class TestNodeIndex:
    def test_index_roundtrip(self, topo):
        for v in topo.nodes:
            assert topo.node_at(topo.index_of(v)) == v

    def test_index_is_contiguous(self, topo):
        assert sorted(topo.index_of(v) for v in topo.nodes) == [0, 1, 2, 3]

    def test_missing_lookups_raise(self, topo):
        with pytest.raises(ProtocolError):
            topo.index_of("nope")
        with pytest.raises(ProtocolError):
            topo.node_at(99)

    def test_csr_arrays_consistent(self, topo):
        assert len(topo.indptr) == topo.number_of_nodes + 1
        assert len(topo.indices) == 2 * topo.number_of_edges
        for v in topo.nodes:
            i = topo.index_of(v)
            csr_nbrs = {topo.node_at(j) for j in topo.neighbor_indices(i)}
            assert csr_nbrs == set(topo.neighbors(v))

    def test_empty_graph(self):
        topo = Topology(nx.Graph())
        assert topo.nodes == ()
        assert topo.max_degree() == 0
        assert topo.number_of_edges == 0


class TestNetworkFacade:
    def test_network_exposes_topology(self):
        net = Network(nx.path_graph(5))
        assert net.topology.nodes == net.nodes
        assert net.number_of_edges == 4

    def test_network_nodes_is_cached(self):
        net = Network(nx.path_graph(5))
        assert net.nodes is net.nodes

    def test_network_index_helpers(self):
        net = Network(nx.path_graph(3))
        assert net.node_at(net.index_of(2)) == 2


class TestNodeAtBounds:
    def test_negative_index_rejected(self):
        topo = Topology(nx.path_graph(3))
        with pytest.raises(ProtocolError):
            topo.node_at(-1)

"""Tests for the sparse and dense phases (Algorithms 8 and 9)."""

import networkx as nx
import pytest

from repro.congest import Network
from repro.core import ColoringInstance, ColoringParameters
from repro.core.acd import compute_acd
from repro.core.dense_phase import run_dense_phase
from repro.core.sparse_phase import run_sparse_phase
from repro.core.state import ColoringState
from repro.graphs import degree_plus_one_lists, planted_almost_cliques
from repro.graphs.generators import locally_sparse_graph


def build(graph, seed=1, lists=None):
    lists = lists or degree_plus_one_lists(graph, seed=seed)
    instance = ColoringInstance.d1lc(graph, lists)
    params = ColoringParameters.small(seed=seed)
    network = Network(graph)
    state = ColoringState(instance, network, params)
    acd = compute_acd(network, params)
    return state, acd


class TestSparsePhase:
    def test_colors_most_sparse_nodes(self):
        g = locally_sparse_graph(80, degree=8, seed=2)
        state, acd = build(g, seed=2)
        outcome = run_sparse_phase(state, acd)
        targets = acd.sparse_nodes | acd.uneven_nodes
        colored_targets = {v for v in targets if state.is_colored(v)}
        assert len(colored_targets) >= 0.85 * len(targets)
        assert state.report().is_proper

    def test_leftover_consistent(self):
        g = locally_sparse_graph(60, degree=6, seed=3)
        state, acd = build(g, seed=3)
        outcome = run_sparse_phase(state, acd)
        assert all(not state.is_colored(v) for v in outcome.leftover)
        assert outcome.colored.isdisjoint(outcome.leftover)

    def test_does_not_touch_dense_nodes(self, planted_graph):
        state, acd = build(planted_graph, seed=4)
        run_sparse_phase(state, acd)
        for v in acd.dense_nodes:
            assert not state.is_colored(v)

    def test_start_and_bad_sets_are_sparse_or_uneven(self):
        g = locally_sparse_graph(60, degree=6, seed=5)
        state, acd = build(g, seed=5)
        outcome = run_sparse_phase(state, acd)
        targets = acd.sparse_nodes | acd.uneven_nodes
        assert outcome.start_set <= targets
        assert outcome.bad_set <= targets

    def test_empty_target_set_is_noop(self):
        g = nx.complete_graph(15)
        state, acd = build(g, seed=6)
        if not (acd.sparse_nodes | acd.uneven_nodes):
            outcome = run_sparse_phase(state, acd)
            assert not outcome.colored


class TestDensePhase:
    def test_colors_planted_cliques(self, planted_graph):
        state, acd = build(planted_graph, seed=7)
        outcome = run_dense_phase(state, acd)
        colored_dense = {v for v in acd.dense_nodes if state.is_colored(v)}
        assert len(colored_dense) >= 0.9 * len(acd.dense_nodes)
        assert state.report().is_proper

    def test_outcome_structures_populated(self, planted_graph):
        state, acd = build(planted_graph, seed=8)
        outcome = run_dense_phase(state, acd)
        assert set(outcome.leaders) == set(acd.cliques)
        assert outcome.colored
        assert all(not state.is_colored(v) for v in outcome.leftover)

    def test_noop_without_dense_nodes(self):
        g = locally_sparse_graph(40, degree=5, seed=9)
        state, acd = build(g, seed=9)
        assert not acd.dense_nodes
        outcome = run_dense_phase(state, acd)
        assert not outcome.colored and not outcome.leftover

    def test_put_aside_nodes_end_up_colored(self, planted_graph):
        state, acd = build(planted_graph, seed=10)
        outcome = run_dense_phase(state, acd)
        for members in outcome.put_aside.values():
            assert all(state.is_colored(v) for v in members)

    def test_phases_compose(self, planted_graph):
        """Sparse then dense phase leaves only a small leftover overall."""
        state, acd = build(planted_graph, seed=11)
        run_sparse_phase(state, acd)
        run_dense_phase(state, acd)
        assert len(state.uncolored_nodes()) <= 0.15 * planted_graph.number_of_nodes()
        assert state.report().is_proper

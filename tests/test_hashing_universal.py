"""Tests for the approximately-universal families used for huge color spaces."""

import random

import pytest

from repro.hashing.universal import ApproximatelyUniversalFamily


class TestApproximatelyUniversalFamily:
    def make(self, modulus=10 ** 6, bits=200, seed=0):
        return ApproximatelyUniversalFamily(
            color_space_bits=bits, modulus=modulus, eps=1.0, seed=seed
        )

    def test_values_in_range(self):
        family = self.make(modulus=1000)
        h = family.member(3)
        assert all(0 <= h(x) < 1000 for x in range(500))

    def test_handles_huge_colors(self):
        family = self.make()
        h = family.member(1)
        huge_color = 2 ** 180 + 12345
        assert 0 <= h(huge_color) < family.modulus

    def test_index_bits_small_even_for_huge_spaces(self):
        """Describing a member costs O(log M + log log |C|) bits (App. D.3)."""
        family = self.make(bits=10 ** 6, modulus=10 ** 6)
        assert family.index_bits <= 64

    def test_value_bits(self):
        family = self.make(modulus=2 ** 20)
        assert family.value_bits == 20

    def test_collision_probability_small(self):
        family = self.make(modulus=10 ** 6, seed=4)
        rng = random.Random(0)
        collisions = 0
        trials = 2000
        for _ in range(trials):
            h = family.member(family.sample_index(rng))
            if h(2 ** 100 + 1) == h(2 ** 100 + 2):
                collisions += 1
        assert collisions <= 3

    def test_deterministic(self):
        a, b = self.make(seed=9), self.make(seed=9)
        assert [a.member(2)(x) for x in range(50)] == [b.member(2)(x) for x in range(50)]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ApproximatelyUniversalFamily(color_space_bits=10, modulus=1)
        with pytest.raises(ValueError):
            ApproximatelyUniversalFamily(color_space_bits=10, modulus=100, eps=0)

    def test_out_of_range_index(self):
        family = self.make()
        with pytest.raises(IndexError):
            family.member(family.family_size)

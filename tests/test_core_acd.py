"""Tests for the almost-clique decomposition (Section 4.2, Definition 6)."""

import networkx as nx
import pytest

from repro.congest import Network
from repro.core import ColoringParameters
from repro.core.acd import compute_acd
from repro.graphs import planted_almost_cliques, validate_acd
from repro.graphs.generators import locally_sparse_graph
from repro.graphs.properties import acd_report_is_clean


class TestComputeACD:
    def test_partition_covers_active_nodes(self, planted_graph, small_params):
        net = Network(planted_graph)
        acd = compute_acd(net, small_params)
        covered = acd.sparse_nodes | acd.uneven_nodes | acd.dense_nodes
        assert covered == set(planted_graph.nodes())
        assert not (acd.sparse_nodes & acd.dense_nodes)
        assert not (acd.uneven_nodes & acd.dense_nodes)
        assert not (acd.sparse_nodes & acd.uneven_nodes)

    def test_planted_cliques_recovered(self, planted, small_params):
        net = Network(planted.graph)
        acd = compute_acd(net, small_params)
        assert len(acd.cliques) == len(planted.cliques)
        # Each detected clique is essentially one planted clique.
        for members in acd.cliques.values():
            best_overlap = max(
                len(members & truth) / max(len(members), 1) for truth in planted.cliques
            )
            assert best_overlap >= 0.8

    def test_sparse_graph_has_no_cliques(self, small_params):
        g = locally_sparse_graph(60, degree=6, seed=3)
        net = Network(g)
        acd = compute_acd(net, small_params)
        assert len(acd.cliques) == 0

    def test_clique_graph_is_one_clique(self, small_params):
        g = nx.complete_graph(20)
        net = Network(g)
        acd = compute_acd(net, small_params)
        assert len(acd.cliques) == 1
        assert len(acd.dense_nodes) == 20

    def test_definition6_properties_hold(self, planted_graph, small_params):
        net = Network(planted_graph)
        acd = compute_acd(net, small_params)
        report = validate_acd(
            planted_graph,
            sparse_nodes=acd.sparse_nodes,
            uneven_nodes=acd.uneven_nodes,
            almost_cliques=list(acd.cliques.values()),
            eps_sparse=small_params.sparsity_eps,
            eps_clique=2 * small_params.acd_eps,
        )
        assert acd_report_is_clean(report), report

    def test_constant_rounds(self, planted_graph, small_params):
        net = Network(planted_graph)
        acd = compute_acd(net, small_params)
        # O(1) rounds: a fixed setup plus the chunked sigma-bit indicators.
        assert acd.rounds_used <= 60

    def test_bandwidth_respected(self, planted_graph, small_params):
        net = Network(planted_graph)
        compute_acd(net, small_params)
        assert net.ledger.max_edge_bits <= net.bandwidth_bits

    def test_active_subset_restriction(self, planted, small_params):
        net = Network(planted.graph)
        active = set(planted.cliques[0]) | set(planted.cliques[1])
        acd = compute_acd(net, small_params, active=active)
        covered = acd.sparse_nodes | acd.uneven_nodes | acd.dense_nodes
        assert covered == active

    def test_result_helpers(self, planted_graph, small_params):
        net = Network(planted_graph)
        acd = compute_acd(net, small_params)
        summary = acd.partition_summary()
        assert summary["dense"] == len(acd.dense_nodes)
        if acd.clique_of:
            node = next(iter(acd.clique_of))
            assert node in acd.clique_members(node)

    def test_deterministic_given_seed(self, planted_graph):
        params = ColoringParameters.small(seed=5)
        acd1 = compute_acd(Network(planted_graph), params)
        acd2 = compute_acd(Network(planted_graph), params)
        assert acd1.clique_of == acd2.clique_of
        assert acd1.sparse_nodes == acd2.sparse_nodes


class TestUniformACD:
    def test_uniform_buddy_recovers_planted_cliques(self, planted):
        params = ColoringParameters.small(seed=3, uniform=True)
        net = Network(planted.graph)
        acd = compute_acd(net, params)
        assert len(acd.cliques) >= len(planted.cliques) - 1
        for members in acd.cliques.values():
            best_overlap = max(
                len(members & truth) / max(len(members), 1) for truth in planted.cliques
            )
            assert best_overlap >= 0.7

    def test_uniform_no_false_cliques_on_sparse_graph(self):
        params = ColoringParameters.small(seed=4, uniform=True)
        g = locally_sparse_graph(50, degree=5, seed=5)
        acd = compute_acd(Network(g), params)
        assert len(acd.cliques) == 0

    def test_uniform_bandwidth_respected(self, planted_graph):
        params = ColoringParameters.small(seed=6, uniform=True)
        net = Network(planted_graph)
        compute_acd(net, params)
        assert net.ledger.max_edge_bits <= net.bandwidth_bits

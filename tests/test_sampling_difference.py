"""Tests for difference sampling (two-party and multi-party, Section 2)."""

import random

import networkx as nx
import pytest

from repro.congest import Network
from repro.sampling import SimilarityParameters
from repro.sampling.difference import sample_from_difference, sample_private_elements

PARAMS = SimilarityParameters(eps=0.3, nu=0.1, max_scale=2, sigma_cap=1024, seed=0)


class TestTwoPartyDifference:
    def test_empty_own_set(self):
        result = sample_from_difference(set(), {1, 2, 3})
        assert result.empty

    def test_count_validation(self):
        with pytest.raises(ValueError):
            sample_from_difference({1}, set(), count=0)

    def test_sampled_elements_come_from_own_set(self):
        own = set(range(200))
        other = set(range(100, 300))
        result = sample_from_difference(own, other, count=5, params=PARAMS,
                                        rng=random.Random(1))
        assert all(x in own for x in result.elements)

    def test_sampled_elements_mostly_outside_other(self):
        own = set(range(400))
        other = set(range(200, 600))
        outside = 0
        total = 0
        for trial in range(15):
            result = sample_from_difference(own, other, count=3, params=PARAMS,
                                            rng=random.Random(trial))
            for x in result.elements:
                total += 1
                outside += x not in other
        assert total > 0
        assert outside >= 0.8 * total

    def test_disjoint_other_set_never_blocks(self):
        own = set(range(300))
        other = {10 ** 6 + i for i in range(300)}
        result = sample_from_difference(own, other, count=4, params=PARAMS,
                                        rng=random.Random(2))
        assert len(result.elements) == 4

    def test_subset_relation_yields_few_candidates(self):
        own = set(range(100))
        other = set(range(200))  # own ⊆ other: the true difference is empty
        result = sample_from_difference(own, other, count=4, params=PARAMS,
                                        rng=random.Random(3))
        # Collisions may produce a stray candidate, but not many.
        assert result.candidate_count <= 10

    def test_bits_are_index_plus_sigma(self):
        own = set(range(200))
        other = set(range(100, 300))
        result = sample_from_difference(own, other, params=PARAMS, rng=random.Random(4))
        assert result.bits_exchanged > 0


class TestMultiPartyDifference:
    def test_private_elements_avoid_neighbor_sets(self):
        g = nx.cycle_graph(10)
        net = Network(g)
        sets = {v: set(range(40 * v, 40 * v + 60)) for v in g.nodes()}  # overlapping windows
        samples = sample_private_elements(net, sets, count=3, seed=1)
        violations = 0
        total = 0
        for v, picked in samples.items():
            for x in picked:
                total += 1
                assert x in sets[v]
                violations += any(x in sets[u] for u in net.neighbors(v))
        assert total > 0
        assert violations <= 0.1 * total

    def test_constant_rounds(self):
        g = nx.gnp_random_graph(40, 0.2, seed=2)
        net = Network(g)
        sets = {v: set(range(v, v + 30)) for v in g.nodes()}
        sample_private_elements(net, sets, count=2, seed=2)
        assert net.rounds_used <= 3 + 256 // net.bandwidth_bits + 2

    def test_empty_sets_are_skipped(self):
        g = nx.path_graph(4)
        net = Network(g)
        sets = {0: set(), 1: {1, 2, 3}, 2: set(), 3: {7, 8, 9}}
        samples = sample_private_elements(net, sets, seed=3)
        assert set(samples) == {1, 3}

    def test_no_participants(self):
        g = nx.path_graph(3)
        net = Network(g)
        assert sample_private_elements(net, {v: set() for v in g.nodes()}) == {}

    def test_count_validation(self):
        g = nx.path_graph(3)
        net = Network(g)
        with pytest.raises(ValueError):
            sample_private_elements(net, {0: {1}}, count=0)

    def test_bandwidth_respected(self):
        g = nx.gnp_random_graph(30, 0.2, seed=4)
        net = Network(g)
        sets = {v: set(range(v, v + 25)) for v in g.nodes()}
        sample_private_elements(net, sets, count=2, seed=4)
        assert net.ledger.max_edge_bits <= net.bandwidth_bits

    def test_identical_sets_yield_few_samples(self):
        """When every neighbour holds the same set, the true difference is empty."""
        g = nx.complete_graph(6)
        net = Network(g)
        shared = set(range(100))
        sets = {v: set(shared) for v in g.nodes()}
        samples = sample_private_elements(net, sets, count=3, seed=5)
        leaked = sum(len(picked) for picked in samples.values())
        assert leaked <= 3  # only hash collisions can produce samples

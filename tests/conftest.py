"""Shared fixtures for the test suite.

Graphs are kept deliberately small so the whole suite runs in a couple of
minutes; the benchmarks (``benchmarks/``) are where the larger sweeps live.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.congest import Network
from repro.core import ColoringParameters
from repro.graphs import (
    degree_plus_one_lists,
    gnp_graph,
    planted_almost_cliques,
    power_law_graph,
)


@pytest.fixture
def small_params() -> ColoringParameters:
    return ColoringParameters.small(seed=7)


@pytest.fixture
def triangle_graph() -> nx.Graph:
    return nx.complete_graph(3)


@pytest.fixture
def path_graph() -> nx.Graph:
    return nx.path_graph(6)


@pytest.fixture
def gnp_small() -> nx.Graph:
    return gnp_graph(40, 0.2, seed=3)


@pytest.fixture
def gnp_medium() -> nx.Graph:
    return gnp_graph(80, 0.12, seed=5)


@pytest.fixture
def powerlaw_small() -> nx.Graph:
    return power_law_graph(60, 3, seed=11)


@pytest.fixture
def planted():
    return planted_almost_cliques(
        num_cliques=3, clique_size=12, num_sparse=10, sparse_degree=4, seed=13
    )


@pytest.fixture
def planted_graph(planted) -> nx.Graph:
    return planted.graph


@pytest.fixture
def d1lc_lists(planted_graph):
    return degree_plus_one_lists(planted_graph, seed=17)


@pytest.fixture
def congest_network(gnp_small) -> Network:
    return Network(gnp_small)


@pytest.fixture
def local_network(gnp_small) -> Network:
    return Network(gnp_small, mode="local")

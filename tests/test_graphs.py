"""Tests for graph generators, palette generators and exact properties."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    degree_plus_one_lists,
    delta_plus_one_lists,
    exact_global_sparsity,
    exact_local_sparsity,
    four_cycle_rich_graph,
    gnp_fast_graph,
    gnp_graph,
    huge_color_space_lists,
    is_balanced_edge,
    is_friend_edge,
    locally_sparse_graph,
    neighborhood_edge_count,
    numeric_degree_lists,
    planted_almost_cliques,
    power_law_graph,
    random_geometric_graph,
    random_regular_graph,
    ring_of_cliques,
    shared_pool_lists,
    triangle_rich_graph,
    validate_acd,
)
from repro.graphs.generators import degree_range_graph
from repro.graphs.properties import acd_report_is_clean, unevenness


class TestGenerators:
    def test_gnp_deterministic(self):
        a = gnp_graph(30, 0.2, seed=1)
        b = gnp_graph(30, 0.2, seed=1)
        assert set(a.edges()) == set(b.edges())

    def test_gnp_validation(self):
        with pytest.raises(ValueError):
            gnp_graph(0, 0.5)
        with pytest.raises(ValueError):
            gnp_graph(10, 1.5)

    def test_power_law_has_skewed_degrees(self):
        g = power_law_graph(200, 3, seed=2)
        degrees = sorted((d for _, d in g.degree()), reverse=True)
        assert degrees[0] >= 3 * degrees[len(degrees) // 2]

    def test_power_law_validation(self):
        with pytest.raises(ValueError):
            power_law_graph(3)

    def test_random_regular(self):
        g = random_regular_graph(20, 4, seed=3)
        assert all(d == 4 for _, d in g.degree())

    def test_random_regular_odd_product_rejected(self):
        # Regression: n * degree odd used to silently return an (n+1)-node
        # graph instead of failing on the impossible parameter combination.
        with pytest.raises(ValueError, match="must be even"):
            random_regular_graph(21, 3, seed=3)
        with pytest.raises(ValueError, match="degree must be below n"):
            random_regular_graph(4, 5)

    def test_random_geometric_deterministic(self):
        a = random_geometric_graph(40, radius=0.25, seed=5)
        b = random_geometric_graph(40, radius=0.25, seed=5)
        assert a.number_of_nodes() == 40
        assert set(a.edges()) == set(b.edges())
        assert set(a.edges()) != set(random_geometric_graph(40, radius=0.25, seed=6).edges())

    def test_random_geometric_validation(self):
        with pytest.raises(ValueError):
            random_geometric_graph(0, 0.2)
        with pytest.raises(ValueError):
            random_geometric_graph(10, 0.0)
        with pytest.raises(ValueError):
            random_geometric_graph(10, 2.0)

    def test_degree_range_graph_bounds(self):
        g = degree_range_graph(60, 4, 10, seed=4)
        degrees = [d for _, d in g.degree()]
        assert min(degrees) >= 4
        assert max(degrees) <= 14  # small overshoot tolerated by construction

    def test_degree_range_validation(self):
        with pytest.raises(ValueError):
            degree_range_graph(10, 5, 3)

    def test_planted_cliques_structure(self):
        planted = planted_almost_cliques(num_cliques=3, clique_size=10, num_sparse=5, seed=5)
        assert len(planted.cliques) == 3
        assert all(len(c) == 10 for c in planted.cliques)
        assert len(planted.sparse_nodes) == 5
        # Planted members are densely connected inside their clique.
        for members in planted.cliques:
            sub = planted.graph.subgraph(members)
            possible = len(members) * (len(members) - 1) / 2
            assert sub.number_of_edges() >= 0.8 * possible

    def test_planted_clique_of_lookup(self):
        planted = planted_almost_cliques(num_cliques=2, clique_size=5, num_sparse=2, seed=6)
        member = next(iter(planted.cliques[1]))
        assert planted.clique_of(member) == 1
        assert planted.clique_of(next(iter(planted.sparse_nodes))) is None

    def test_planted_validation(self):
        with pytest.raises(ValueError):
            planted_almost_cliques(num_cliques=0)
        with pytest.raises(ValueError):
            planted_almost_cliques(dropout=0.9)

    def test_ring_of_cliques(self):
        g = ring_of_cliques(4, 5)
        assert g.number_of_nodes() == 20

    def test_triangle_rich_graph_ground_truth(self):
        planted = triangle_rich_graph(n=60, planted_cliques=2, clique_size=8, seed=7)
        for (u, v) in list(planted.rich_edges)[:10]:
            assert planted.graph.has_edge(u, v)

    def test_four_cycle_rich_graph(self):
        planted = four_cycle_rich_graph(n=60, planted_blocks=1, side_size=6, seed=8)
        assert len(planted.rich_centers) == 12

    def test_locally_sparse_graph_is_triangle_light(self):
        g = locally_sparse_graph(60, degree=6, seed=9)
        triangles = sum(nx.triangles(g).values())
        assert triangles == 0  # bipartite


class TestLists:
    def test_numeric_degree_lists(self, gnp_small):
        lists = numeric_degree_lists(gnp_small)
        for v in gnp_small.nodes():
            assert lists[v] == set(range(gnp_small.degree(v) + 1))

    def test_numeric_degree_lists_extra(self, gnp_small):
        lists = numeric_degree_lists(gnp_small, extra=3)
        for v in gnp_small.nodes():
            assert len(lists[v]) == gnp_small.degree(v) + 4

    def test_delta_plus_one_lists(self, gnp_small):
        lists = delta_plus_one_lists(gnp_small)
        delta = max(d for _, d in gnp_small.degree())
        assert all(lst == set(range(delta + 1)) for lst in lists.values())

    def test_degree_plus_one_lists_sizes(self, gnp_small):
        lists = degree_plus_one_lists(gnp_small, seed=1)
        for v in gnp_small.nodes():
            assert len(lists[v]) == gnp_small.degree(v) + 1

    def test_degree_plus_one_lists_space_too_small(self, gnp_small):
        with pytest.raises(ValueError):
            degree_plus_one_lists(gnp_small, color_space_size=2)

    def test_huge_color_space_lists(self, gnp_small):
        lists = huge_color_space_lists(gnp_small, color_space_bits=60, seed=2)
        all_colors = set().union(*lists.values())
        assert max(all_colors) > 2 ** 40
        for v in gnp_small.nodes():
            assert len(lists[v]) == gnp_small.degree(v) + 1

    def test_huge_color_space_validation(self, gnp_small):
        with pytest.raises(ValueError):
            huge_color_space_lists(gnp_small, color_space_bits=8)

    def test_shared_pool_lists_conflict_heavy(self, gnp_small):
        lists = shared_pool_lists(gnp_small, seed=3)
        pool = set().union(*lists.values())
        delta = max(d for _, d in gnp_small.degree())
        assert len(pool) <= delta + 2


class TestProperties:
    def test_neighborhood_edge_count_clique(self):
        g = nx.complete_graph(5)
        assert neighborhood_edge_count(g, 0) == 6  # K4 among the neighbours

    def test_exact_sparsity_clique_is_zero(self):
        g = nx.complete_graph(10)
        assert exact_local_sparsity(g, 0) == pytest.approx(0.0)
        assert exact_global_sparsity(g, 0) == pytest.approx(0.0)

    def test_exact_sparsity_star_center(self):
        g = nx.star_graph(10)
        assert exact_local_sparsity(g, 0) == pytest.approx((10 - 1) / 2)

    def test_balanced_and_friend_edges_in_clique(self):
        g = nx.complete_graph(8)
        assert is_balanced_edge(g, 0, 1, eps=0.1)
        # In K8 the endpoints share 6 of their 7 neighbours (they do not count
        # each other), so the edge is a 0.2-friend but not a 0.1-friend.
        assert is_friend_edge(g, 0, 1, eps=0.2)
        assert not is_friend_edge(g, 0, 1, eps=0.05)

    def test_friend_requires_edge(self):
        g = nx.path_graph(4)
        assert not is_friend_edge(g, 0, 3, eps=0.5)

    def test_unevenness_of_leaf(self):
        g = nx.star_graph(10)
        assert unevenness(g, 1) > 0
        assert unevenness(g, 0) == 0

    def test_validate_acd_accepts_planted_truth(self):
        planted = planted_almost_cliques(num_cliques=2, clique_size=10, num_sparse=0,
                                         cross_edges=0, dropout=0.05, seed=11)
        report = validate_acd(
            planted.graph,
            sparse_nodes=[],
            uneven_nodes=[],
            almost_cliques=planted.cliques,
            eps_sparse=0.2,
            eps_clique=0.3,
        )
        assert acd_report_is_clean(report)

    def test_validate_acd_flags_uncovered_nodes(self):
        g = nx.path_graph(4)
        report = validate_acd(g, sparse_nodes=[0, 1], uneven_nodes=[], almost_cliques=[],
                              eps_sparse=0.1, eps_clique=0.1)
        assert set(report["uncovered"]) == {2, 3}
        assert not acd_report_is_clean(report)

    def test_validate_acd_flags_overlap(self):
        g = nx.complete_graph(4)
        report = validate_acd(g, sparse_nodes=[0], uneven_nodes=[], almost_cliques=[{0, 1, 2, 3}],
                              eps_sparse=0.1, eps_clique=0.5)
        assert 0 in report["overlapping"]

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=5, max_value=40), p=st.floats(min_value=0.1, max_value=0.6),
           seed=st.integers(0, 100))
    def test_sparsity_bounds_property(self, n, p, seed):
        """0 <= local sparsity <= (d_v - 1)/2 always holds."""
        g = gnp_graph(n, p, seed=seed)
        for v in list(g.nodes())[:10]:
            d = g.degree(v)
            if d == 0:
                continue
            sparsity = exact_local_sparsity(g, v)
            assert -1e-9 <= sparsity <= (d - 1) / 2 + 1e-9


class TestGnpFast:
    """The sparse-time G(n, p) family (Batagelj–Brandes skipping)."""

    def test_deterministic_per_seed(self):
        a = gnp_fast_graph(300, p=0.02, seed=7)
        b = gnp_fast_graph(300, p=0.02, seed=7)
        assert set(a.edges()) == set(b.edges())
        c = gnp_fast_graph(300, p=0.02, seed=8)
        assert set(a.edges()) != set(c.edges())

    def test_avg_degree_targets_density(self):
        g = gnp_fast_graph(2000, avg_degree=8.0, seed=3)
        assert g.number_of_nodes() == 2000
        avg = 2.0 * g.number_of_edges() / g.number_of_nodes()
        assert 6.0 <= avg <= 10.0  # concentration around 8

    def test_isolated_nodes_kept(self):
        g = gnp_fast_graph(50, p=0.0, seed=0)
        assert g.number_of_nodes() == 50 and g.number_of_edges() == 0

    def test_rejects_ambiguous_density(self):
        with pytest.raises(ValueError):
            gnp_fast_graph(10)
        with pytest.raises(ValueError):
            gnp_fast_graph(10, p=0.1, avg_degree=5.0)
        with pytest.raises(ValueError):
            gnp_fast_graph(10, p=1.5)
        with pytest.raises(ValueError):
            gnp_fast_graph(10, avg_degree=-1.0)

    def test_distinct_family_from_gnp(self):
        # Committed gnp baselines rely on gnp's edge stream never changing;
        # the fast family is intentionally separate rather than a drop-in.
        a = gnp_graph(100, 0.1, seed=5)
        b = gnp_fast_graph(100, p=0.1, seed=5)
        assert set(a.edges()) != set(b.edges())

"""Tests for SlackColor (Algorithm 15) and the shattering fallback."""

import networkx as nx
import pytest

from repro.congest import Network
from repro.core import ColoringInstance, ColoringParameters
from repro.core.shattering import deterministic_fallback
from repro.core.slack_color import slack_color
from repro.core.state import ColoringState
from repro.graphs import numeric_degree_lists


def make_state(graph, extra, seed=1):
    lists = numeric_degree_lists(graph, extra=extra)
    instance = ColoringInstance.d1lc(graph, lists)
    network = Network(graph)
    return ColoringState(instance, network, ColoringParameters.small(seed=seed))


class TestSlackColor:
    def test_colors_all_nodes_with_linear_slack(self, gnp_small):
        delta = max(d for _, d in gnp_small.degree())
        state = make_state(gnp_small, extra=2 * delta)
        outcome = slack_color(state, gnp_small.nodes(), s_min=delta)
        assert not state.uncolored_nodes()
        assert outcome.colored == set(gnp_small.nodes())
        assert not outcome.dropped
        assert state.report().is_valid

    def test_result_always_proper(self, gnp_medium):
        state = make_state(gnp_medium, extra=4)
        slack_color(state, gnp_medium.nodes(), s_min=4)
        assert state.report().is_proper

    def test_drops_nodes_without_slack(self):
        # A clique with bare deg+1 palettes: after the warm-up trials some
        # nodes may survive, but nobody with slack < 2*degree may proceed to
        # the MultiTrial schedule with a guarantee; dropped + colored must
        # account for every participant.
        g = nx.complete_graph(12)
        state = make_state(g, extra=0)
        outcome = slack_color(state, g.nodes(), s_min=4)
        assert outcome.colored | outcome.dropped == set(g.nodes())
        assert state.report().is_proper

    def test_round_count_scales_with_log_star_not_degree(self, gnp_small):
        """The schedule is O(log* s_min) MultiTrial calls, each O(1) rounds."""
        delta = max(d for _, d in gnp_small.degree())
        state = make_state(gnp_small, extra=2 * delta)
        before = state.network.rounds_used
        slack_color(state, gnp_small.nodes(), s_min=delta)
        rounds = state.network.rounds_used - before
        assert rounds <= 200  # constant-ish; in particular far below n = 40 * degree

    def test_outcome_accounts_for_every_participant(self, gnp_small):
        delta = max(d for _, d in gnp_small.degree())
        state = make_state(gnp_small, extra=2 * delta)
        outcome = slack_color(state, gnp_small.nodes(), s_min=delta)
        assert outcome.iterations >= 0
        assert outcome.colored | outcome.dropped == set(gnp_small.nodes())

    def test_empty_participant_set(self, gnp_small):
        state = make_state(gnp_small, extra=2)
        outcome = slack_color(state, [], s_min=4)
        assert not outcome.colored and not outcome.dropped

    def test_restricted_participants_only(self, gnp_small):
        delta = max(d for _, d in gnp_small.degree())
        state = make_state(gnp_small, extra=2 * delta)
        subset = set(list(gnp_small.nodes())[:10])
        outcome = slack_color(state, subset, s_min=delta)
        assert outcome.colored <= subset
        assert {v for v in gnp_small.nodes() if state.is_colored(v)} <= subset

    def test_temporary_slack_from_non_participants(self):
        """Nodes with bare palettes still succeed when half their neighbours wait.

        This is the mechanism behind V_start, outliers-before-inliers and
        put-aside sets: competition only comes from concurrent participants.
        """
        g = nx.complete_graph(16)
        state = make_state(g, extra=0, seed=3)
        participants = set(list(g.nodes())[:8])  # the other 8 stay uncolored
        outcome = slack_color(state, participants, s_min=4)
        assert len(outcome.colored) >= 6
        assert state.report().is_proper


class TestDeterministicFallback:
    def test_completes_any_partial_coloring(self, gnp_medium):
        state = make_state(gnp_medium, extra=0, seed=5)
        deterministic_fallback(state)
        assert state.report().is_valid

    def test_respects_existing_colors(self, gnp_small):
        from repro.core.slack import try_color

        state = make_state(gnp_small, extra=0, seed=6)
        v = next(iter(gnp_small.nodes()))
        color = sorted(state.palettes[v], key=repr)[0]
        # Color the node through the regular trial so neighbours prune their
        # palettes (state.adopt alone is local bookkeeping).
        assert try_color(state, {v: color}) == {v}
        deterministic_fallback(state)
        assert state.colors[v] == color
        assert state.report().is_valid

    def test_on_clique(self):
        g = nx.complete_graph(10)
        state = make_state(g, extra=0, seed=7)
        colored = deterministic_fallback(state)
        assert colored == set(g.nodes())
        assert state.report().is_valid

    def test_restricted_node_set(self, gnp_small):
        state = make_state(gnp_small, extra=0, seed=8)
        subset = set(list(gnp_small.nodes())[:5])
        colored = deterministic_fallback(state, nodes=subset)
        assert colored == subset

    def test_noop_when_everything_colored(self, path_graph):
        state = make_state(path_graph, extra=0, seed=9)
        deterministic_fallback(state)
        assert deterministic_fallback(state) == set()

    def test_rounds_bounded_by_component_size(self):
        g = nx.path_graph(12)
        state = make_state(g, extra=0, seed=10)
        before = state.network.rounds_used
        deterministic_fallback(state)
        assert state.network.rounds_used - before <= 2 * (2 * 12 + 4)

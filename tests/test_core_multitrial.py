"""Tests for MultiTrial (Algorithm 4) and its uniform variant (Algorithm 5)."""

import networkx as nx
import pytest

from repro.congest import Network
from repro.core import ColoringInstance, ColoringParameters
from repro.core.multitrial import multi_trial
from repro.core.state import ColoringState
from repro.graphs import degree_plus_one_lists, huge_color_space_lists, numeric_degree_lists


def make_state(graph, lists=None, extra=8, uniform=False, seed=1):
    """A state where every node has `extra` more colors than its degree (slack)."""
    if lists is None:
        lists = numeric_degree_lists(graph, extra=extra)
    instance = ColoringInstance.d1lc(graph, lists)
    network = Network(graph)
    params = ColoringParameters.small(seed=seed, uniform=uniform)
    return ColoringState(instance, network, params)


class TestMultiTrialRepresentative:
    def test_single_trial_colors_most_slack_rich_nodes(self, gnp_small):
        state = make_state(gnp_small, extra=3 * max(d for _, d in gnp_small.degree()))
        colored = multi_trial(state, 8)
        assert len(colored) >= 0.7 * gnp_small.number_of_nodes()
        assert state.report().is_proper

    def test_lemma6_success_rate_improves_with_tries(self, gnp_medium):
        """More tried colors -> higher per-invocation coloring probability."""
        rates = {}
        for tries in (1, 8):
            state = make_state(gnp_medium, extra=4 * max(d for _, d in gnp_medium.degree()),
                               seed=tries)
            colored = multi_trial(state, tries)
            rates[tries] = len(colored) / gnp_medium.number_of_nodes()
        assert rates[8] >= rates[1]

    def test_never_produces_conflicts(self, gnp_small):
        state = make_state(gnp_small, extra=10)
        for _ in range(3):
            multi_trial(state, 4)
        assert state.report().is_proper

    def test_constant_rounds_per_invocation(self, gnp_small):
        state = make_state(gnp_small, extra=20)
        before = state.network.rounds_used
        multi_trial(state, 8)
        rounds = state.network.rounds_used - before
        assert rounds <= 4 + (2048 // state.network.bandwidth_bits) + 2

    def test_bandwidth_respected(self, gnp_small):
        state = make_state(gnp_small, extra=20)
        multi_trial(state, 16)
        assert state.network.ledger.max_edge_bits <= state.network.bandwidth_bits

    def test_no_participants_is_a_noop(self, gnp_small):
        state = make_state(gnp_small)
        before_rounds = state.network.rounds_used
        colored = multi_trial(state, 4, participants=[])
        assert colored == set()
        # Synchrony is preserved: the silent rounds are still charged.
        assert state.network.rounds_used > before_rounds

    def test_per_node_tries_mapping(self, gnp_small):
        state = make_state(gnp_small, extra=20)
        tries = {v: 4 for v in list(gnp_small.nodes())[:5]}
        colored = multi_trial(state, tries)
        assert colored <= set(list(gnp_small.nodes())[:5])

    def test_cap_by_slack_hypothesis(self, gnp_small):
        """With tiny palettes the Lemma 6 cap kicks in and the call still works."""
        state = make_state(gnp_small, extra=0)
        colored = multi_trial(state, 64)
        assert state.report().is_proper
        assert isinstance(colored, set)

    def test_huge_color_space(self, gnp_small):
        lists = huge_color_space_lists(gnp_small, color_space_bits=200, extra=15, seed=4)
        state = make_state(gnp_small, lists=lists)
        colored = multi_trial(state, 8)
        assert state.report().is_proper
        assert len(colored) > 0
        assert state.network.ledger.max_edge_bits <= state.network.bandwidth_bits


class TestMultiTrialUniform:
    def test_uniform_variant_colors_nodes(self, gnp_small):
        state = make_state(gnp_small, extra=3 * max(d for _, d in gnp_small.degree()),
                           uniform=True)
        colored = multi_trial(state, 8)
        assert len(colored) >= 0.5 * gnp_small.number_of_nodes()
        assert state.report().is_proper

    def test_uniform_variant_never_conflicts(self, gnp_small):
        state = make_state(gnp_small, extra=10, uniform=True)
        for _ in range(3):
            multi_trial(state, 4)
        assert state.report().is_proper

    def test_uniform_bandwidth_respected(self, gnp_small):
        state = make_state(gnp_small, extra=20, uniform=True)
        multi_trial(state, 8)
        assert state.network.ledger.max_edge_bits <= state.network.bandwidth_bits

    def test_uniform_and_representative_use_same_interface(self, gnp_small):
        for uniform in (False, True):
            state = make_state(gnp_small, extra=12, uniform=uniform, seed=7)
            colored = multi_trial(state, 4)
            assert isinstance(colored, set)


class TestMultiTrialProgress:
    def test_repeated_invocations_color_everyone_with_slack(self, gnp_small):
        delta = max(d for _, d in gnp_small.degree())
        state = make_state(gnp_small, extra=2 * delta + 4)
        for _ in range(12):
            if not state.uncolored_nodes():
                break
            multi_trial(state, 8)
        assert len(state.uncolored_nodes()) <= 0.05 * gnp_small.number_of_nodes()
        assert state.report().is_proper

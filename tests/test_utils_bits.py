"""Tests for bit-size helpers."""

from hypothesis import given, strategies as st

from repro.utils.bits import (
    bit_length_of_int,
    bits_for_bitstring,
    bits_for_int_list,
    bits_for_range,
)


class TestBitLength:
    def test_zero_and_one(self):
        assert bit_length_of_int(0) == 1
        assert bit_length_of_int(1) == 1

    def test_larger(self):
        assert bit_length_of_int(255) == 8
        assert bit_length_of_int(256) == 9

    def test_negative_uses_magnitude(self):
        assert bit_length_of_int(-255) == 8


class TestBitsForRange:
    def test_singleton(self):
        assert bits_for_range(1) == 1

    def test_power_of_two(self):
        assert bits_for_range(256) == 8

    def test_non_power(self):
        assert bits_for_range(257) == 9

    @given(st.integers(min_value=2, max_value=10 ** 9))
    def test_enough_to_index(self, size):
        bits = bits_for_range(size)
        assert 2 ** bits >= size
        assert 2 ** (bits - 1) < size


class TestBitstrings:
    def test_counts_entries(self):
        assert bits_for_bitstring([0, 1, 1, 0]) == 4

    def test_int_list(self):
        assert bits_for_int_list([1, 2, 3], universe_size=256) == 24

"""Tests for the baseline algorithms and the bandwidth ablations."""

import networkx as nx
import pytest

from repro.baselines import (
    greedy_coloring,
    johansson_coloring,
    naive_compute_acd,
    naive_multi_trial,
)
from repro.congest import Network
from repro.core import ColoringInstance, ColoringParameters, solve_d1c, validate_coloring
from repro.core.multitrial import multi_trial
from repro.core.state import ColoringState
from repro.graphs import degree_plus_one_lists, numeric_degree_lists, planted_almost_cliques


class TestGreedy:
    def test_valid_coloring(self, gnp_medium):
        coloring = greedy_coloring(gnp_medium)
        instance = ColoringInstance.d1c(gnp_medium)
        assert validate_coloring(instance, coloring).is_valid

    def test_respects_lists(self, gnp_small):
        lists = degree_plus_one_lists(gnp_small, seed=1)
        coloring = greedy_coloring(gnp_small, lists)
        assert all(coloring[v] in lists[v] for v in gnp_small.nodes())

    def test_infeasible_instance_rejected(self):
        g = nx.complete_graph(3)
        instance_lists = {0: {0, 1, 2, 3}, 1: {0, 1, 2, 3}, 2: {0, 1, 2, 3}}
        # Feasible; now break it by hand-rolling a bad order impossible case is
        # prevented by D1LC validation, so check the validation error instead.
        with pytest.raises(ValueError):
            greedy_coloring(g, {0: {0}, 1: {0}, 2: {0}})


class TestJohansson:
    def test_valid_coloring(self, gnp_medium):
        result = johansson_coloring(gnp_medium, seed=1)
        assert result.is_valid

    def test_valid_with_lists(self, gnp_small):
        lists = degree_plus_one_lists(gnp_small, seed=2)
        result = johansson_coloring(gnp_small, lists, seed=2)
        assert result.is_valid

    def test_round_count_logarithmic_shape(self):
        """Rounds grow slowly (log-ish) with n, but are nonzero."""
        from repro.graphs import gnp_graph

        small = johansson_coloring(gnp_graph(30, 0.2, seed=1), seed=1).rounds
        large = johansson_coloring(gnp_graph(240, 0.05, seed=1), seed=1).rounds
        assert small >= 2
        assert large <= 8 * small

    def test_bandwidth_respected(self, gnp_medium):
        result = johansson_coloring(gnp_medium, seed=3)
        assert result.max_edge_bits <= result.bandwidth_bits


class TestNaiveACD:
    def test_matches_planted_structure(self, planted, small_params):
        net = Network(planted.graph)
        acd = naive_compute_acd(net, small_params)
        assert len(acd.cliques) == len(planted.cliques)

    def test_uses_more_bits_per_edge_than_hashed_acd(self, planted, small_params):
        """The ablation: naive ACD ships Θ(Δ log n) bits, the hashed one O(ε^-4 log n)."""
        from repro.core.acd import compute_acd

        strict_budget = 16  # a strict log n budget makes the contrast visible
        naive_net = Network(planted.graph, bandwidth_bits=strict_budget)
        hashed_net = Network(planted.graph, bandwidth_bits=strict_budget)
        naive_compute_acd(naive_net, small_params)
        compute_acd(hashed_net, small_params)
        naive_bits_per_edge = naive_net.ledger.total_bits / naive_net.graph.number_of_edges()
        # The naive version must ship at least Δ identifiers over clique edges.
        delta = max(d for _, d in planted.graph.degree())
        assert naive_bits_per_edge >= delta  # ≥ Δ bits even at 1 bit per identifier

    def test_respects_chunked_bandwidth(self, planted, small_params):
        net = Network(planted.graph, bandwidth_bits=16)
        naive_compute_acd(net, small_params)
        assert net.ledger.max_edge_bits <= 16


class TestNaiveMultiTrial:
    def make_state(self, graph, extra=10, seed=1):
        lists = numeric_degree_lists(graph, extra=extra)
        instance = ColoringInstance.d1lc(graph, lists)
        network = Network(graph, bandwidth_bits=24)
        return ColoringState(instance, network, ColoringParameters.small(seed=seed))

    def test_colors_nodes_and_stays_proper(self, gnp_small):
        state = self.make_state(gnp_small)
        colored = naive_multi_trial(state, 6)
        assert colored
        assert state.report().is_proper

    def test_uses_more_rounds_than_hashed_multitrial_for_many_tries(self, gnp_small):
        """The ablation of Section 4.1: x explicit colors need ~x·log|C|/b rounds."""
        tries = 16
        naive_state = self.make_state(gnp_small, extra=40, seed=2)
        hashed_state = self.make_state(gnp_small, extra=40, seed=2)
        naive_multi_trial(naive_state, tries)
        multi_trial(hashed_state, tries)
        naive_rounds = naive_state.network.rounds_used
        hashed_rounds = hashed_state.network.rounds_used
        # Both are small, but the naive one pays per tried color.
        assert naive_rounds >= 3
        assert hashed_rounds <= naive_rounds + 60  # hashed pays sigma/b, a constant

    def test_bandwidth_respected(self, gnp_small):
        state = self.make_state(gnp_small)
        naive_multi_trial(state, 8)
        assert state.network.ledger.max_edge_bits <= state.network.bandwidth_bits

"""Tests for repro.utils.mathx."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.mathx import ceil_div, clamp, ilog2, log_star, poly_log_log, tetration


class TestIlog2:
    def test_small_values(self):
        assert ilog2(0) == 0
        assert ilog2(1) == 0
        assert ilog2(2) == 1
        assert ilog2(3) == 1
        assert ilog2(4) == 2

    def test_powers_of_two(self):
        for k in range(1, 20):
            assert ilog2(2 ** k) == k

    @given(st.integers(min_value=2, max_value=10 ** 9))
    def test_matches_floor_log(self, x):
        assert ilog2(x) == int(math.log2(x))


class TestLogStar:
    def test_base_cases(self):
        assert log_star(0) == 0
        assert log_star(1) == 0
        assert log_star(2) == 1

    def test_known_values(self):
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
        assert log_star(2 ** 65536) == 5

    def test_monotone(self):
        values = [log_star(x) for x in [2, 4, 16, 256, 65536, 10 ** 9]]
        assert values == sorted(values)

    @given(st.integers(min_value=1, max_value=10 ** 12))
    def test_small_for_everything(self, x):
        assert log_star(x) <= 6


class TestTetration:
    def test_schedule_of_slack_color(self):
        # x_i = 2 ↑↑ i as used by Algorithm 15.
        assert tetration(2, 0) == 1
        assert tetration(2, 1) == 2
        assert tetration(2, 2) == 4
        assert tetration(2, 3) == 16
        assert tetration(2, 4) == 65536

    def test_cap(self):
        assert tetration(2, 6, cap=1000) == 1000

    def test_negative_height(self):
        assert tetration(2, -1) == 1


class TestClamp:
    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_outside(self):
        assert clamp(-1, 0, 10) == 0
        assert clamp(11, 0, 10) == 10

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            clamp(1, 5, 2)

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32),
           st.floats(min_value=-100, max_value=0),
           st.floats(min_value=0.001, max_value=100))
    def test_always_in_range(self, x, low, width):
        high = low + width
        assert low <= clamp(x, low, high) <= high


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(10, 5) == 2

    def test_rounds_up(self):
        assert ceil_div(11, 5) == 3

    def test_zero_divisor_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(3, 0)

    @given(st.integers(min_value=0, max_value=10 ** 6), st.integers(min_value=1, max_value=10 ** 4))
    def test_matches_math_ceil(self, a, b):
        assert ceil_div(a, b) == math.ceil(a / b)


class TestPolyLogLog:
    def test_monotone_in_n(self):
        assert poly_log_log(10 ** 6, 2) >= poly_log_log(100, 2)

    def test_tiny_n_is_finite(self):
        assert poly_log_log(1, 3) > 0

"""Tests for representative hash families (Lemma 1)."""

import random

import pytest

from repro.hashing.representative import (
    RepresentativeHashFamily,
    representative_family_parameters,
)
from repro.hashing.setops import colliding_part, low_part


class TestParameters:
    def test_rejects_bad_alpha_beta(self):
        with pytest.raises(ValueError):
            representative_family_parameters(0.5, 0.2, 0.1, 100, 1000)
        with pytest.raises(ValueError):
            representative_family_parameters(0.0, 0.2, 0.1, 100, 1000)

    def test_rejects_bad_nu(self):
        with pytest.raises(ValueError):
            representative_family_parameters(0.1, 0.2, 0.0, 100, 1000)

    def test_sigma_at_most_lambda(self):
        params = representative_family_parameters(0.1, 0.2, 0.1, 50, 1000)
        assert params.sigma <= 50

    def test_sigma_cap_applies(self):
        params = representative_family_parameters(0.01, 0.05, 0.01, 10 ** 6, 1000, sigma_cap=256)
        assert params.sigma == 256

    def test_sigma_grows_as_accuracy_tightens(self):
        loose = representative_family_parameters(0.2, 0.4, 0.1, 10 ** 6, 1000)
        tight = representative_family_parameters(0.05, 0.1, 0.1, 10 ** 6, 1000)
        assert tight.sigma > loose.sigma

    def test_index_bits_logarithmic_in_family_size(self):
        params = representative_family_parameters(0.1, 0.2, 0.1, 1000, 10 ** 9)
        assert 2 ** params.index_bits >= params.family_size
        assert params.index_bits <= 64


class TestFamily:
    def make(self, lam=600, seed=0):
        return RepresentativeHashFamily(
            universe_label="colors", universe_size=10 ** 6, lam=lam,
            alpha=1 / 12, beta=1 / 3, nu=0.05, seed=seed,
        )

    def test_members_map_into_range(self):
        family = self.make()
        h = family.member(0)
        assert all(1 <= h(x) <= family.lam for x in range(200))

    def test_members_are_deterministic(self):
        family_a = self.make(seed=3)
        family_b = self.make(seed=3)
        assert [family_a.member(5)(x) for x in range(50)] == [
            family_b.member(5)(x) for x in range(50)
        ]

    def test_distinct_members_differ(self):
        family = self.make()
        h0, h1 = family.member(0), family.member(1)
        assert any(h0(x) != h1(x) for x in range(50))

    def test_distinct_seeds_give_distinct_families(self):
        a, b = self.make(seed=1), self.make(seed=2)
        assert any(a.member(0)(x) != b.member(0)(x) for x in range(50))

    def test_index_out_of_range(self):
        family = self.make()
        with pytest.raises(IndexError):
            family.member(family.size)

    def test_len_and_getitem(self):
        family = self.make()
        assert len(family) == family.size
        assert family[2](7) == family.member(2)(7)

    def test_sample_index_within_range(self):
        family = self.make()
        rng = random.Random(0)
        for _ in range(20):
            assert 0 <= family.sample_index(rng) < family.size


class TestLowUniqueValuesFastPath:
    """The inlined counting pass must agree with per-element evaluation."""

    def make(self, lam=600, seed=0):
        return RepresentativeHashFamily(
            universe_label="colors", universe_size=10 ** 6, lam=lam,
            alpha=1 / 12, beta=1 / 3, nu=0.05, seed=seed,
        )

    @staticmethod
    def oracle(h, elements, sigma):
        """Literal definition: low hash values hit by exactly one element."""
        values = [h(x) for x in elements]
        return {v for v in values if v <= sigma and values.count(v) == 1}

    @pytest.mark.parametrize("trial", range(10))
    def test_matches_elementwise_evaluation(self, trial):
        from repro.hashing.keys import combine_part_keys, element_key

        rng = random.Random(trial)
        family = self.make(lam=rng.choice([40, 600]), seed=trial)
        h = family.member(rng.randrange(family.size))
        sigma = rng.choice([5, family.sigma, family.lam])
        # Mixed universe: ints plus scaled (x, j) tuples, as the similarity
        # sweep hashes them.
        elements = [rng.randrange(1000) for _ in range(60)]
        elements += [(rng.randrange(50), j) for j in range(3) for _ in range(20)]
        keys = [element_key(x) for x in elements]
        assert h.low_unique_values(keys, sigma) == self.oracle(h, elements, sigma)
        # Scaled keys built from precombined parts match element_key too.
        pair_keys = [combine_part_keys((element_key(x), j))
                     for x in elements[:30] for j in range(4)]
        direct = [element_key((x, j)) for x in elements[:30] for j in range(4)]
        assert pair_keys == direct


class TestLemma1Statistics:
    """Empirical check of the (A, B)-good properties for random members.

    This mirrors Claim 1: for fixed sets A, B, most members of the family
    should report a low part of size close to sigma*|A|/lambda and few
    collisions.  The benchmark E1 sweeps this more extensively.
    """

    def setup_method(self):
        self.lam = 2000
        self.family = RepresentativeHashFamily(
            universe_label="lemma1", universe_size=10 ** 9, lam=self.lam,
            alpha=0.05, beta=0.25, nu=0.1, seed=11,
        )

    def test_low_part_concentration_large_set(self):
        a = set(range(400))  # |A| >= alpha * lambda = 100
        sigma = self.family.sigma
        expected = sigma * len(a) / self.lam
        good = 0
        trials = 30
        rng = random.Random(1)
        for _ in range(trials):
            h = self.family.member(self.family.sample_index(rng))
            size = len(low_part(h, a, sigma))
            if abs(size - expected) <= 0.5 * expected:
                good += 1
        assert good >= 0.8 * trials

    def test_collisions_are_rare(self):
        a = set(range(400))
        b = set(range(200, 600))
        sigma = self.family.sigma
        rng = random.Random(2)
        bound = 2 * sigma * len(a) / self.lam * 0.5  # 2*sigma*|A|/lam * beta-ish
        violations = 0
        trials = 30
        for _ in range(trials):
            h = self.family.member(self.family.sample_index(rng))
            collisions = len(colliding_part(h, a, b, sigma))
            if collisions > max(4.0, bound):
                violations += 1
        assert violations <= 0.3 * trials

    def test_small_sets_have_small_low_part(self):
        a = set(range(20))  # |A| < alpha * lambda
        sigma = self.family.sigma
        rng = random.Random(3)
        cap = sigma * 0.05 * (1 + 0.25) + 5
        for _ in range(20):
            h = self.family.member(self.family.sample_index(rng))
            assert len(low_part(h, a, sigma)) <= max(cap, 3 * sigma * len(a) / self.lam + 5)


class TestElementKeyTypeSensitivity:
    """Regression: equal-but-differently-typed elements must never share a
    cached key (Python equality unifies 1 and 1.0, their keys must not)."""

    def test_int_and_float_tuples_key_differently(self):
        from repro.hashing.keys import element_key

        # Warm the cache with the int variant first, then query the float
        # variant: the order must not matter.
        k_int = element_key((5, 2))
        k_float = element_key((5.0, 2))
        assert k_int != k_float

    def test_cached_key_matches_uncached_computation(self):
        from repro.hashing.keys import element_key, mix64

        expected = mix64(element_key(7.0), element_key(1), 0x7157)
        element_key((7, 1))  # try to poison the cache with the int variant
        assert element_key((7.0, 1)) == expected

    def test_hash_function_distinguishes_types_regardless_of_order(self):
        from repro.hashing.representative import RepresentativeHashFunction

        h1 = RepresentativeHashFunction(123, 0, 97)
        first_int = h1(11)
        first_float = h1(11.0)
        h2 = RepresentativeHashFunction(123, 0, 97)
        assert h2(11.0) == first_float
        assert h2(11) == first_int

"""Tests for the analytics layer (repro.obs.analytics).

Covers the four layers of the communication & scaling analytics: comm-volume
columns flowing into trial rows and aggregates, reference-curve fitting and
the comm regression gate, the run-history registry with trend detection, and
the self-contained HTML report renderer.  Everything here is post-hoc — the
observation-only contract is pinned separately in test_obs.py.
"""

import json
import math

import pytest

from repro.core import solve_d1c
from repro.experiments import aggregate_suite, canonical_dumps, run_scenarios
from repro.experiments.compare import gate_passes
from repro.experiments.spec import ScenarioSpec
from repro.graphs import gnp_graph
from repro.obs.analytics import (
    COMM_SCHEMA,
    REFERENCE_CURVES,
    RUNS_SCHEMA,
    aggregate_digest,
    append_run,
    best_fit,
    build_comm_baseline,
    compare_comm,
    detect_trends,
    fit_curve,
    load_runs,
    render_report,
    run_record,
    rss_series,
    shard_balance,
    suite_overview_rows,
)
from repro.obs.summary import comparison_as_dict, summarize_trace, summary_as_dict


def _smoke_summary():
    specs = [
        ScenarioSpec(name="a-n40", family="gnp", solver="d1c",
                     family_params={"n": 40, "p": 0.15}, trials=1),
        ScenarioSpec(name="a-n80", family="gnp", solver="d1c",
                     family_params={"n": 80, "p": 0.08}, trials=1),
    ]
    return aggregate_suite(run_scenarios(specs, suite="mini"))


# --------------------------------------------------------------------------- #
# Comm-volume columns
# --------------------------------------------------------------------------- #

class TestCommColumns:
    def test_trial_rows_carry_comm_columns(self):
        summary = _smoke_summary()
        metrics = summary["scenarios"]["a-n40"]["metrics"]
        assert "total_messages" in metrics
        assert "bits_per_node" in metrics
        phase_cols = [k for k in metrics if k.startswith("phase_bits_")]
        assert phase_cols, "per-phase bit columns missing from aggregate"
        # Phase columns are internally consistent with the headline total.
        total = sum(metrics[k]["mean"] for k in metrics
                    if k.startswith("phase_bits_"))
        assert total == pytest.approx(metrics["total_bits"]["mean"])

    def test_result_phase_breakdowns_sum_to_totals(self):
        result = solve_d1c(gnp_graph(50, 0.1, seed=3), seed=3)
        assert sum(result.bits_by_phase.values()) == result.total_bits
        assert sum(result.messages_by_phase.values()) == result.total_messages
        assert result.summary()["total_messages"] == result.total_messages


# --------------------------------------------------------------------------- #
# Reference curves + comm gate
# --------------------------------------------------------------------------- #

class TestCurves:
    def test_exact_log_sweep_fits_log_n(self):
        points = [(n, 5.0 * math.log2(n)) for n in (100, 1000, 10_000)]
        fit = best_fit(points)
        assert fit.curve == "log_n"
        assert fit.coefficient == pytest.approx(5.0)
        assert fit.rel_rms == pytest.approx(0.0, abs=1e-9)

    def test_linear_sweep_prefers_linear_over_log(self):
        points = [(n, 2.0 * n) for n in (100, 1000, 10_000)]
        assert best_fit(points).curve == "n"
        log_fit = fit_curve(points, "log_n")
        assert log_fit.rel_rms > best_fit(points).rel_rms

    def test_constant_sweep_resolves_to_simplest_curve(self):
        points = [(n, 7.0) for n in (10, 100, 1000)]
        assert best_fit(points).curve == "const"

    def test_unknown_curve_and_empty_points_raise(self):
        with pytest.raises(ValueError):
            fit_curve([(10, 1.0)], "cubic")
        with pytest.raises(ValueError):
            fit_curve([], "log_n")

    def test_all_reference_curves_are_positive_and_monotone(self):
        for name, f in REFERENCE_CURVES.items():
            values = [f(n) for n in (2, 64, 4096)]
            assert all(v > 0 for v in values), name
            assert values == sorted(values), name


class TestCommGate:
    def test_baseline_round_trips_and_self_compare_is_clean(self):
        summary = _smoke_summary()
        baseline = build_comm_baseline(summary)
        assert baseline["schema"] == COMM_SCHEMA
        assert set(baseline["scenarios"]) == set(summary["scenarios"])
        # Serialization round trip (what the committed file goes through).
        baseline = json.loads(canonical_dumps(baseline))
        findings = compare_comm(baseline, summary)
        assert gate_passes(findings)
        assert not [f for f in findings if f.severity == "fail"]
        # No spurious drift on an identical run.
        assert not [f for f in findings
                    if f.metric in ("max_edge_bits", "bits_per_node")
                    and f.severity == "info" and "->" in f.detail]

    def test_regression_beyond_budget_fails(self):
        summary = _smoke_summary()
        baseline = build_comm_baseline(summary)
        worse = json.loads(canonical_dumps(summary))
        stats = worse["scenarios"]["a-n40"]["metrics"]["max_edge_bits"]
        stats["mean"] = stats["mean"] * 1.5
        findings = compare_comm(baseline, worse, budget=0.10)
        fails = [f for f in findings if f.severity == "fail"]
        assert fails and fails[0].scenario == "a-n40"
        assert not gate_passes(findings)

    def test_improvement_is_informational(self):
        summary = _smoke_summary()
        baseline = build_comm_baseline(summary)
        better = json.loads(canonical_dumps(summary))
        stats = better["scenarios"]["a-n40"]["metrics"]["bits_per_node"]
        stats["mean"] = stats["mean"] * 0.5
        findings = compare_comm(baseline, better, budget=0.10)
        assert gate_passes(findings)

    def test_suite_mismatch_fails(self):
        summary = _smoke_summary()
        baseline = build_comm_baseline(summary)
        other = dict(summary)
        other["suite"] = "different"
        findings = compare_comm(baseline, other)
        assert not gate_passes(findings)

    def test_bad_schema_fails(self):
        findings = compare_comm({"schema": "nope"}, _smoke_summary())
        assert not gate_passes(findings)

    def test_sweep_shape_finding_present_for_multi_size_family(self):
        summary = _smoke_summary()  # two gnp/d1c sizes -> one sweep
        findings = compare_comm(build_comm_baseline(summary), summary)
        sweep = [f for f in findings if "best fits" in f.detail]
        assert len(sweep) == 1
        assert sweep[0].scenario == "gnp/d1c"


# --------------------------------------------------------------------------- #
# Run-history registry
# --------------------------------------------------------------------------- #

class TestRunHistory:
    def _record(self, summary, **kwargs):
        return run_record(summary, timestamp=1000.0, **kwargs)

    def test_record_shape_and_digest_stability(self):
        summary = _smoke_summary()
        record = self._record(summary)
        assert record["schema"] == RUNS_SCHEMA
        assert record["digest"] == aggregate_digest(summary)
        assert record["trials"] == 2 and record["valid_trials"] == 2
        assert record["env"]["python"]
        # Digest matches the committed artifact's bytes, not python repr.
        import hashlib

        expected = hashlib.sha256(canonical_dumps(summary).encode()).hexdigest()
        assert record["digest"] == expected

    def test_append_and_load_round_trip(self, tmp_path):
        summary = _smoke_summary()
        path = tmp_path / "RUNS.jsonl"
        append_run(path, self._record(summary))
        append_run(path, self._record(summary))
        path.open("a").write("not json\n")  # corrupt tail must not brick it
        runs = load_runs(path)
        assert len(runs) == 2
        assert load_runs(path, suite="mini") == runs
        assert load_runs(path, suite="other") == []
        assert load_runs(tmp_path / "missing.jsonl") == []

    def test_trend_detection(self):
        summary = _smoke_summary()
        a = self._record(summary, timing={"total_wall_s": 10.0,
                                          "peak_rss_mb": {"x": 100.0}})
        slow = self._record(summary, timing={"total_wall_s": 20.0,
                                             "peak_rss_mb": {"x": 100.0}})
        findings = detect_trends([a, slow])
        assert [f.severity for f in findings] == ["warn"]
        assert findings[0].metric == "wall_s"
        # Correctness drop on the same digest is fatal.
        bad = dict(a)
        bad["valid_trials"] = 0
        findings = detect_trends([a, bad])
        assert any(f.severity == "fail" and f.metric == "valid_trials"
                   for f in findings)
        # Digest change is informational, not a failure.
        changed = dict(a)
        changed["digest"] = "0" * 64
        assert gate_passes(detect_trends([a, changed]))


# --------------------------------------------------------------------------- #
# Trace-side analytics + HTML report
# --------------------------------------------------------------------------- #

def _traced_events():
    from repro.obs.tracer import RoundTracer

    tracer = RoundTracer(sample_every_s=0.0)
    solve_d1c(gnp_graph(40, 0.15, seed=5), seed=5, tracer=tracer)
    tracer.close()
    return tracer.events


class TestTraceAnalytics:
    def test_shard_balance_none_for_serial_trace(self):
        assert shard_balance(_traced_events()) is None

    def test_shard_balance_math(self):
        events = [
            {"type": "round", "messages": 10, "bits": 30,
             "shards": [[4, 10, 2], [6, 20, 3]], "cut_messages": 5},
            {"type": "round", "messages": 10, "bits": 30,
             "shards": [[5, 10, 2], [5, 20, 3]], "cut_messages": 0},
        ]
        balance = shard_balance(events)
        assert balance["shards"] == 2
        assert balance["shard_bits"] == [20, 40]
        assert balance["imbalance_ratio"] == round(40 / 30, 4)
        assert balance["cut_messages"] == 5
        assert balance["cut_fraction"] == pytest.approx(0.25)

    def test_rss_series_reads_samples(self):
        events = _traced_events()
        series = rss_series(events)
        assert series and all(rss > 0 for _, rss in series)

    def test_summary_as_dict_is_json_stable(self):
        events = _traced_events()
        payload = summary_as_dict(summarize_trace(events))
        # Round-trips through JSON, and two summaries of the same trace
        # serialize to the same bytes (what `trace summarize --json` pins).
        encoded = json.dumps(payload, sort_keys=True)
        again = json.dumps(summary_as_dict(summarize_trace(events)),
                           sort_keys=True)
        assert encoded == again
        assert payload["rounds"] > 0
        assert payload["phases"][0]["phase"] == "acd"

    def test_comparison_as_dict_identical(self):
        events = _traced_events()
        payload = comparison_as_dict(events, events)
        assert payload["identical"] is True
        assert payload["drift"] == []


class TestHtmlReport:
    def test_report_is_self_contained_html(self):
        summary = _smoke_summary()
        events = _traced_events()
        html = render_report("unit report", summary=summary,
                             traces=[("a-n40", events)])
        assert html.startswith("<!doctype html>")
        assert "<script" not in html and "http://" not in html \
            and "https://" not in html
        assert "<svg" in html and "<table>" in html
        assert "a-n40" in html and "scenario overview" in html
        # The phase bars carry the trace's phases.
        assert "acd" in html

    def test_overview_rows_read_means(self):
        rows = suite_overview_rows(_smoke_summary())
        assert [r["scenario"] for r in rows] == ["a-n40", "a-n80"]
        assert all(r["rounds"] != "-" for r in rows)

    def test_escaping(self):
        from repro.obs.analytics import bar_chart, html_table

        html = html_table([{"<k>": "<v&>"}])
        assert "&lt;k&gt;" in html and "&lt;v&amp;&gt;" in html
        svg = bar_chart([("<phase>", 1.0)], "t")
        assert "<phase>" not in svg and "&lt;phase&gt;" in svg

"""Tests for leader selection, put-aside sets and SynchColorTrial (App. D.1/D.2, Alg. 13-14)."""

import networkx as nx
import pytest

from repro.congest import Network
from repro.core import ColoringInstance, ColoringParameters
from repro.core.acd import compute_acd
from repro.core.leader import select_leaders
from repro.core.putaside import color_put_aside, compute_put_aside
from repro.core.slack import generate_slack
from repro.core.state import ColoringState
from repro.core.synch_trial import synch_color_trial
from repro.graphs import degree_plus_one_lists, planted_almost_cliques


@pytest.fixture
def dense_setup():
    """A planted-clique instance with its ACD, state and leaders precomputed."""
    planted = planted_almost_cliques(
        num_cliques=3, clique_size=14, num_sparse=6, sparse_degree=3, seed=21
    )
    graph = planted.graph
    lists = degree_plus_one_lists(graph, seed=22)
    instance = ColoringInstance.d1lc(graph, lists)
    params = ColoringParameters.small(seed=23)
    network = Network(graph)
    state = ColoringState(instance, network, params)
    acd = compute_acd(network, params)
    leaders = select_leaders(state, acd)
    return planted, state, acd, leaders


class TestLeaderSelection:
    def test_one_leader_per_clique(self, dense_setup):
        _, _, acd, leaders = dense_setup
        assert set(leaders) == set(acd.cliques)
        for cid, info in leaders.items():
            assert info.leader in acd.cliques[cid]

    def test_members_partitioned_into_roles(self, dense_setup):
        _, _, acd, leaders = dense_setup
        for cid, info in leaders.items():
            members = acd.cliques[cid]
            assert info.members == members
            assert info.leader not in info.inliers
            assert info.leader not in info.outliers
            assert not (info.inliers & info.outliers)
            assert info.inliers | info.outliers | {info.leader} == members

    def test_inliers_adjacent_to_leader(self, dense_setup):
        _, state, _, leaders = dense_setup
        for info in leaders.values():
            for v in info.inliers:
                assert v in state.network.neighbors(info.leader)

    def test_leader_minimizes_aggregate(self, dense_setup):
        """Lemma 12: the chosen leader has small e + a + kappa within its clique."""
        _, state, acd, leaders = dense_setup
        for cid, info in leaders.items():
            members = acd.cliques[cid]
            def aggregate(v):
                neighbors = state.network.neighbors(v)
                external = len(neighbors - members)
                anti = max(0, len(members) - 1 - len(neighbors & members))
                return external + anti + state.chromatic_slack[v]
            best = min(aggregate(v) for v in members)
            assert aggregate(info.leader) == best

    def test_slackability_estimate_nonnegative(self, dense_setup):
        _, _, _, leaders = dense_setup
        assert all(info.slackability_estimate >= 0 for info in leaders.values())

    def test_planted_cliques_are_low_slack(self, dense_setup):
        """Planted near-cliques have tiny sparsity, hence low slackability."""
        _, _, _, leaders = dense_setup
        assert all(info.low_slack for info in leaders.values())

    def test_empty_acd_gives_no_leaders(self, gnp_small, small_params):
        instance = ColoringInstance.d1c(gnp_small)
        network = Network(gnp_small)
        state = ColoringState(instance, network, small_params)
        acd = compute_acd(network, small_params, active=set())
        assert select_leaders(state, acd) == {}


class TestPutAside:
    def test_put_aside_only_in_low_slack_cliques(self, dense_setup):
        _, state, _, leaders = dense_setup
        generate_slack(state)
        put_aside = compute_put_aside(state, leaders)
        for cid in put_aside:
            assert leaders[cid].low_slack

    def test_put_aside_members_are_uncolored_inliers(self, dense_setup):
        _, state, _, leaders = dense_setup
        generate_slack(state)
        put_aside = compute_put_aside(state, leaders)
        for cid, members in put_aside.items():
            assert members <= leaders[cid].inliers
            assert all(not state.is_colored(v) for v in members)

    def test_put_aside_sets_mutually_non_adjacent(self, dense_setup):
        """Algorithm 13: no edges between put-aside sets of different cliques."""
        _, state, _, leaders = dense_setup
        put_aside = compute_put_aside(state, leaders)
        for cid, members in put_aside.items():
            for other_cid, other_members in put_aside.items():
                if cid == other_cid:
                    continue
                for v in members:
                    assert not (state.network.neighbors(v) & other_members)

    def test_put_aside_size_bounded_by_ell(self, dense_setup):
        _, state, _, leaders = dense_setup
        put_aside = compute_put_aside(state, leaders)
        ell = state.params.ell(state.instance.max_degree())
        for members in put_aside.values():
            assert len(members) <= 2 * ell + 1

    def test_color_put_aside_completes_and_stays_proper(self, dense_setup):
        _, state, _, leaders = dense_setup
        put_aside = compute_put_aside(state, leaders)
        colored = color_put_aside(state, leaders, put_aside)
        all_put_aside = set().union(*put_aside.values()) if put_aside else set()
        assert colored == all_put_aside
        assert state.report().is_proper

    def test_no_low_slack_cliques_gives_empty_result(self, gnp_small, small_params):
        instance = ColoringInstance.d1c(gnp_small)
        network = Network(gnp_small)
        state = ColoringState(instance, network, small_params)
        assert compute_put_aside(state, {}) == {}


class TestSynchColorTrial:
    def test_trial_colors_some_inliers(self, dense_setup):
        _, state, _, leaders = dense_setup
        colored = synch_color_trial(state, leaders)
        assert len(colored) > 0
        assert state.report().is_proper

    def test_no_in_clique_conflicts(self, dense_setup):
        """The dealt colors are distinct, so in-clique conflicts are impossible."""
        _, state, acd, leaders = dense_setup
        synch_color_trial(state, leaders)
        for members in acd.cliques.values():
            colored_members = [v for v in members if state.is_colored(v)]
            colors = [state.colors[v] for v in colored_members]
            assert len(colors) == len(set(colors))

    def test_excluded_nodes_not_colored(self, dense_setup):
        _, state, _, leaders = dense_setup
        some_clique = next(iter(leaders.values()))
        excluded = set(list(some_clique.inliers)[:3])
        colored = synch_color_trial(state, leaders, exclude=excluded)
        assert not (colored & excluded)

    def test_constant_rounds(self, dense_setup):
        _, state, _, leaders = dense_setup
        before = state.network.rounds_used
        synch_color_trial(state, leaders)
        assert state.network.rounds_used - before <= 4

"""Tests for the coloring state and the large-color handling (Appendix D.3)."""

import networkx as nx
import pytest

from repro.congest import Network
from repro.core import ColoringInstance, ColoringParameters
from repro.core.large_colors import ColorHasher
from repro.core.state import ColoringState
from repro.graphs import huge_color_space_lists
from repro.utils.rng import RngStream


def make_state(graph, params=None, lists=None):
    instance = (
        ColoringInstance.d1c(graph)
        if lists is None
        else ColoringInstance.d1lc(graph, lists)
    )
    network = Network(graph)
    return ColoringState(instance, network, params or ColoringParameters.small(seed=1))


class TestColoringState:
    def test_initially_uncolored(self, gnp_small):
        state = make_state(gnp_small)
        assert state.uncolored_nodes() == set(gnp_small.nodes())
        assert all(not state.is_colored(v) for v in gnp_small.nodes())

    def test_adopt_updates_bookkeeping(self, gnp_small):
        state = make_state(gnp_small)
        v = next(iter(gnp_small.nodes()))
        color = next(iter(state.palettes[v]))
        state.adopt(v, color)
        assert state.is_colored(v)
        assert v not in state.uncolored_nodes()
        assert state.colors[v] == color

    def test_adopt_twice_rejected(self, gnp_small):
        state = make_state(gnp_small)
        v = next(iter(gnp_small.nodes()))
        color = next(iter(state.palettes[v]))
        state.adopt(v, color)
        with pytest.raises(ValueError):
            state.adopt(v, color)

    def test_adopt_color_outside_palette_rejected(self, gnp_small):
        state = make_state(gnp_small)
        v = next(iter(gnp_small.nodes()))
        with pytest.raises(ValueError):
            state.adopt(v, "not-a-color")

    def test_uncolored_degree_and_slack(self):
        g = nx.complete_graph(4)
        state = make_state(g)
        v = 0
        assert state.uncolored_degree(v) == 3
        assert state.slack(v) == 1  # |palette| = 4, uncolored neighbours = 3
        state.adopt(1, 3)
        assert state.uncolored_degree(v) == 2

    def test_remove_from_palette(self):
        g = nx.path_graph(3)
        state = make_state(g)
        value = state.hasher.value_for(0, 1)
        state.remove_from_palette(0, value)
        assert 1 not in state.palettes[0]

    def test_chromatic_slack_tracking(self, gnp_small):
        state = make_state(gnp_small)
        v = next(iter(gnp_small.nodes()))
        state.note_chromatic_slack(v, True)
        state.note_chromatic_slack(v, False)
        assert state.chromatic_slack[v] == 1

    def test_report_reflects_progress(self):
        g = nx.path_graph(3)
        state = make_state(g)
        assert state.report().colored_nodes == 0
        state.adopt(0, 0)
        assert state.report().colored_nodes == 1


class TestColorHasher:
    def test_direct_mode_for_small_spaces(self, gnp_small):
        state = make_state(gnp_small)
        assert state.hasher.mode == "direct"
        assert state.hasher.value_for(0, 3) == 3

    def test_hashed_mode_for_huge_spaces(self, gnp_small):
        lists = huge_color_space_lists(gnp_small, color_space_bits=300, seed=2)
        state = make_state(gnp_small, lists=lists)
        assert state.hasher.mode == "hashed"

    def test_hashed_setup_costs_one_round(self, gnp_small):
        lists = huge_color_space_lists(gnp_small, color_space_bits=300, seed=2)
        instance = ColoringInstance.d1lc(gnp_small, lists)
        network = Network(gnp_small)
        ColoringState(instance, network, ColoringParameters.small(seed=1))
        assert network.rounds_used == 1

    def test_direct_setup_costs_nothing(self, gnp_small):
        instance = ColoringInstance.d1c(gnp_small)
        network = Network(gnp_small)
        ColoringState(instance, network, ColoringParameters.small(seed=1))
        assert network.rounds_used == 0

    def test_hashed_encoding_fits_bandwidth(self, gnp_small):
        lists = huge_color_space_lists(gnp_small, color_space_bits=300, seed=3)
        state = make_state(gnp_small, lists=lists)
        v = next(iter(gnp_small.nodes()))
        color = next(iter(state.palettes[v]))
        message = state.hasher.encode_for(v, color)
        assert message.bits <= state.network.bandwidth_bits
        assert message.bits < 300

    def test_hashed_matching_identifies_own_color(self, gnp_small):
        lists = huge_color_space_lists(gnp_small, color_space_bits=300, seed=4)
        state = make_state(gnp_small, lists=lists)
        v = next(iter(gnp_small.nodes()))
        color = next(iter(state.palettes[v]))
        value = state.hasher.value_for(v, color)
        assert state.hasher.matches(v, color, value)

    def test_hashed_no_collisions_within_neighborhood_palettes(self, gnp_small):
        """The Appendix D.3 guarantee: distinct relevant colors rarely collide."""
        lists = huge_color_space_lists(gnp_small, color_space_bits=300, seed=5)
        state = make_state(gnp_small, lists=lists)
        collisions = 0
        for v in gnp_small.nodes():
            relevant = set(state.palettes[v])
            for u in gnp_small.neighbors(v):
                relevant |= state.palettes[u]
            values = [state.hasher.value_for(v, c) for c in relevant]
            collisions += len(values) - len(set(values))
        assert collisions == 0

    def test_remove_matching_prunes_only_matching_color(self, gnp_small):
        lists = huge_color_space_lists(gnp_small, color_space_bits=300, seed=6)
        state = make_state(gnp_small, lists=lists)
        v = next(iter(gnp_small.nodes()))
        palette = state.palettes[v]
        target = next(iter(palette))
        before = len(palette)
        state.hasher.remove_matching(v, palette, state.hasher.value_for(v, target))
        assert target not in palette
        assert len(palette) == before - 1

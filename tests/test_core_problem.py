"""Tests for problem instances, color spaces, parameters and validation."""

import math

import networkx as nx
import pytest

from repro.core import ColoringInstance, ColoringParameters, ColorSpace, validate_coloring
from repro.core.validate import assert_valid_coloring
from repro.graphs import degree_plus_one_lists


class TestColorSpace:
    def test_numeric(self):
        space = ColorSpace.numeric(16)
        assert space.size == 16
        assert space.bits == 4

    def test_from_colors_numeric(self):
        space = ColorSpace.from_colors({0, 5, 9})
        assert space.size == 10
        assert space.bits == 4

    def test_from_colors_symbolic(self):
        space = ColorSpace.from_colors({"red", "green", "blue"})
        assert space.size == 3

    def test_huge(self):
        space = ColorSpace.huge(bits=500)
        assert space.size is None
        assert not space.fits_in(64)

    def test_fits_in(self):
        assert ColorSpace.numeric(16).fits_in(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            ColorSpace(bits=0)
        with pytest.raises(ValueError):
            ColorSpace(bits=4, size=1)


class TestColoringInstance:
    def test_d1c_palettes(self, gnp_small):
        instance = ColoringInstance.d1c(gnp_small)
        for v in gnp_small.nodes():
            assert instance.palette(v) == frozenset(range(gnp_small.degree(v) + 1))
            assert instance.slack(v) == 1

    def test_delta_plus_one_palettes(self, gnp_small):
        instance = ColoringInstance.delta_plus_one(gnp_small)
        delta = instance.max_degree()
        assert all(len(p) == delta + 1 for p in instance.palettes.values())

    def test_d1lc_accepts_valid_lists(self, gnp_small):
        lists = degree_plus_one_lists(gnp_small, seed=1)
        instance = ColoringInstance.d1lc(gnp_small, lists)
        assert instance.color_space.size is not None

    def test_d1lc_rejects_short_lists(self):
        g = nx.complete_graph(4)
        lists = {v: {0} for v in g.nodes()}
        with pytest.raises(ValueError):
            ColoringInstance.d1lc(g, lists)

    def test_missing_palette_rejected(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError):
            ColoringInstance(graph=g, palettes={0: frozenset({0, 1})},
                             color_space=ColorSpace.numeric(4))

    def test_degree_accessors(self, gnp_small):
        instance = ColoringInstance.d1c(gnp_small)
        v = instance.nodes[0]
        assert instance.degree(v) == gnp_small.degree(v)
        assert instance.max_degree() == max(d for _, d in gnp_small.degree())


class TestValidateColoring:
    def test_valid_complete_coloring(self):
        g = nx.path_graph(3)
        instance = ColoringInstance.d1c(g)
        report = validate_coloring(instance, {0: 0, 1: 1, 2: 0})
        assert report.is_valid
        assert report.is_complete and report.is_proper

    def test_conflict_detected(self):
        g = nx.path_graph(3)
        instance = ColoringInstance.d1c(g)
        report = validate_coloring(instance, {0: 0, 1: 0, 2: 1})
        assert not report.is_proper
        assert (0, 1) in report.conflicts

    def test_partial_coloring(self):
        g = nx.path_graph(3)
        instance = ColoringInstance.d1c(g)
        report = validate_coloring(instance, {0: 0})
        assert not report.is_complete
        assert report.is_proper
        assert set(report.uncolored) == {1, 2}

    def test_palette_violation(self):
        g = nx.path_graph(3)
        instance = ColoringInstance.d1c(g)
        report = validate_coloring(instance, {0: 99, 1: 0, 2: 1})
        assert 0 in report.palette_violations
        assert not report.is_valid

    def test_assert_valid_raises(self):
        g = nx.path_graph(3)
        instance = ColoringInstance.d1c(g)
        with pytest.raises(AssertionError):
            assert_valid_coloring(instance, {0: 0})

    def test_summary_is_readable(self):
        g = nx.path_graph(3)
        instance = ColoringInstance.d1c(g)
        text = validate_coloring(instance, {0: 0}).summary()
        assert "1/3" in text


class TestColoringParameters:
    def test_defaults_match_paper_constants(self):
        params = ColoringParameters()
        assert params.slack_probability == pytest.approx(0.1)
        assert params.multitrial_alpha == pytest.approx(1 / 12)
        assert params.multitrial_beta == pytest.approx(1 / 3)
        assert params.ell_exponent == pytest.approx(2.1)
        assert params.degree_exponent == pytest.approx(7.0)

    def test_ell_formula(self):
        params = ColoringParameters()
        assert params.ell(1024) == pytest.approx(10 ** 2.1)

    def test_degree_threshold_formula(self):
        params = ColoringParameters()
        assert params.degree_threshold(2 ** 16) == pytest.approx(16 ** 7)

    def test_multitrial_nu_bounded(self):
        params = ColoringParameters()
        nu = params.multitrial_nu(lam=100, n=1000)
        assert 0 < nu <= 0.5

    def test_multitrial_sigma_at_most_lambda(self):
        params = ColoringParameters()
        assert params.multitrial_sigma(lam=50, tries=100, n=1000) <= 50

    def test_multitrial_sigma_grows_with_tries(self):
        params = ColoringParameters()
        assert params.multitrial_sigma(10 ** 6, 64, 1000) >= params.multitrial_sigma(10 ** 6, 1, 1000)

    def test_putaside_probability_clamped(self):
        params = ColoringParameters()
        assert params.putaside_probability(ell=10, clique_degree=1) == 1.0
        assert params.putaside_probability(ell=10, clique_degree=0) == 0.0
        assert 0 < params.putaside_probability(ell=10, clique_degree=10 ** 4) < 1

    def test_presets(self):
        small = ColoringParameters.small(seed=3)
        paper = ColoringParameters.paper(seed=3)
        assert small.seed == paper.seed == 3
        assert small.similarity_sigma_cap is not None
        assert paper.similarity_sigma_cap > small.similarity_sigma_cap
        assert paper.multitrial_sigma_floor > small.multitrial_sigma_floor

    def test_with_seed(self):
        params = ColoringParameters.small(seed=1).with_seed(9)
        assert params.seed == 9

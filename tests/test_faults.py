"""Tests for the fault-injection subsystem (repro.faults)."""

import dataclasses

import networkx as nx
import pytest

from repro.congest import BandwidthExceeded, Network, NodeProgram, ProtocolError, Simulator
from repro.congest.message import Message
from repro.congest.topology import Topology
from repro.congest.transport import make_transport
from repro.core import solve_d1c, solve_d1lc
from repro.faults import FaultPlan, FaultyTransport, corrupt_bits, corrupt_payload
from repro.graphs import degree_plus_one_lists
from repro.metrics.ledger import make_ledger


def small_graph(n=30, p=0.2, seed=1):
    return nx.gnp_random_graph(n, p, seed=seed)


# --------------------------------------------------------------------------- #
# FaultPlan
# --------------------------------------------------------------------------- #

class TestFaultPlan:
    def test_defaults_are_a_noop(self):
        assert FaultPlan().is_noop
        assert FaultPlan.coerce({}) is None
        assert FaultPlan.coerce(None) is None
        assert FaultPlan.coerce(FaultPlan()) is None

    def test_any_axis_breaks_noop(self):
        assert not FaultPlan(drop=0.1).is_noop
        assert not FaultPlan(corrupt=0.1).is_noop
        assert not FaultPlan(crash={0: (1,)}).is_noop
        assert not FaultPlan(throttle=0.5).is_noop
        assert not FaultPlan(delay={(0, 1): 2}).is_noop

    def test_validation(self):
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(drop=1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultPlan(corrupt=-0.1)
        with pytest.raises(ValueError, match="throttle"):
            FaultPlan(throttle=0.0)
        with pytest.raises(ValueError, match="throttle"):
            FaultPlan(throttle=2.0)
        with pytest.raises(ValueError, match="crash round"):
            FaultPlan(crash={-1: (0,)})
        with pytest.raises(ValueError, match="delay"):
            FaultPlan(delay={(0, 1): -2})
        with pytest.raises(ValueError, match="pairs"):
            FaultPlan(delay={0: 2})

    def test_from_params_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="dorp"):
            FaultPlan.from_params({"dorp": 0.1})
        with pytest.raises(ValueError, match="crash"):
            FaultPlan.from_params({"crash": 0.5})

    def test_canonical_round_trips_through_json(self):
        import json

        plan = FaultPlan(drop=0.1, corrupt=1e-3, crash={2: (5, 1)},
                         throttle=0.5, delay={(0, 1): 2})
        encoded = json.loads(json.dumps(plan.canonical()))
        assert encoded == plan.canonical()
        # Crash nodes are stored sorted, so equal plans encode equally.
        assert plan.canonical() == FaultPlan(
            drop=0.1, corrupt=1e-3, crash={2: (1, 5)}, throttle=0.5,
            delay={(0, 1): 2},
        ).canonical()

    def test_master_seed_depends_on_seed_and_plan(self):
        plan = FaultPlan(drop=0.1)
        other = FaultPlan(drop=0.2)
        assert plan.master_seed(1) == plan.master_seed(1)
        assert plan.master_seed(1) != plan.master_seed(2)
        assert plan.master_seed(1) != other.master_seed(1)

    def test_throttled_bandwidth(self):
        assert FaultPlan(throttle=0.5).throttled_bandwidth(64) == 32
        assert FaultPlan(throttle=0.25).throttled_bandwidth(3) == 1  # floor >= 1
        assert FaultPlan().throttled_bandwidth(64) == 64

    def test_crashed_by_is_cumulative(self):
        plan = FaultPlan(crash={2: (0,), 5: (1, 2)})
        assert plan.crashed_by(0) == frozenset()
        assert plan.crashed_by(2) == frozenset({0})
        assert plan.crashed_by(10) == frozenset({0, 1, 2})


# --------------------------------------------------------------------------- #
# Corruption operators
# --------------------------------------------------------------------------- #

class TestCorruption:
    def test_corrupt_bits_edge_rates(self):
        bits = (0, 1) * 32
        same, flips = corrupt_bits(bits, 0.0, seed=7)
        assert same == bits and flips == 0
        flipped, flips = corrupt_bits(bits, 1.0, seed=7)
        assert flips == len(bits)
        assert flipped == tuple(1 - b for b in bits)

    def test_corrupt_bits_deterministic_and_seed_sensitive(self):
        bits = tuple(i % 2 for i in range(200))
        a = corrupt_bits(bits, 0.3, seed=11)
        assert a == corrupt_bits(bits, 0.3, seed=11)
        assert a != corrupt_bits(bits, 0.3, seed=12)
        corrupted, flips = a
        assert 0 < flips < len(bits)
        assert sum(x != y for x, y in zip(bits, corrupted)) == flips

    def test_corrupt_int_stays_within_width(self):
        value, flips = corrupt_payload(0b1011, 1.0, seed=3)
        assert flips == 4
        assert 0 <= value < 16
        value, flips = corrupt_payload(-5, 1.0, seed=3)
        assert value <= 0  # sign preserved, magnitude corrupted

    def test_corrupt_message_keeps_declared_bits(self):
        msg = Message(content=(0, 1, 1, 0), bits=4, label="probe")
        corrupted, flips = corrupt_payload(msg, 1.0, seed=5)
        assert flips == 4
        assert corrupted.bits == 4 and corrupted.label == "probe"
        assert corrupted.content == (1, 0, 0, 1)

    def test_zero_flips_returns_original_object(self):
        payload = (1, 2, 3)
        corrupted, flips = corrupt_payload(payload, 0.0, seed=1)
        assert corrupted is payload and flips == 0

    def test_containers_preserve_type_and_do_not_mutate(self):
        payload = [3, (7, 9), "ab"]
        snapshot = [3, (7, 9), "ab"]
        corrupted, flips = corrupt_payload(payload, 1.0, seed=2)
        assert payload == snapshot  # original untouched
        assert isinstance(corrupted, list) and isinstance(corrupted[1], tuple)
        assert flips > 0
        assert isinstance(corrupted[2], str) and len(corrupted[2]) == 2

    def test_untouchable_payloads_pass_through(self):
        for payload in (None, 2.5):
            assert corrupt_payload(payload, 1.0, seed=1) == (payload, 0)

    def test_equal_containers_corrupt_identically_regardless_of_order(self):
        # Sub-seeds come from keys/canonical positions, never from insertion
        # or iteration order — otherwise per-process hash salting of str
        # keys would break the worker-count determinism guarantee.
        a = {"x": 1000, "y": 999999, "z": 12345}
        b = {"z": 12345, "y": 999999, "x": 1000}
        assert corrupt_payload(a, 0.3, seed=5) == corrupt_payload(b, 0.3, seed=5)
        s = {"alpha", "beta", "gamma"}
        t = {"gamma", "alpha", "beta"}
        assert corrupt_payload(s, 0.3, seed=5) == corrupt_payload(t, 0.3, seed=5)


# --------------------------------------------------------------------------- #
# FaultyTransport mechanics
# --------------------------------------------------------------------------- #

def faulty_network(graph, faults, seed=0, **kwargs):
    return Network(graph, faults=faults, fault_seed=seed, **kwargs)


class TestFaultyTransport:
    def test_noop_plan_is_never_wrapped(self):
        graph = small_graph()
        topology = Topology(graph)
        inner = make_transport("batch", topology, "congest", 64, make_ledger(None))
        same = make_transport(inner, topology, "congest", 64, inner.ledger,
                              faults={})
        assert same is inner
        net = Network(graph, faults=None)
        assert net.backend == "batch" and net.fault_stats is None
        # An empty plan is fault-free everywhere — including when adopting
        # an already-built transport instance.
        assert Network(graph, backend=inner, faults={}).backend == "batch"
        with pytest.raises(ValueError, match="already-built"):
            Network(graph, backend=inner, faults={"drop": 0.5})

    def test_wrapping_is_flat_and_guarded(self):
        graph = small_graph()
        topology = Topology(graph)
        ledger = make_ledger(None)
        inner = make_transport("batch", topology, "congest", 64, ledger)
        wrapped = make_transport(inner, topology, "congest", 64, ledger,
                                 faults={"drop": 0.5})
        assert isinstance(wrapped, FaultyTransport)
        with pytest.raises(ValueError, match="stack"):
            FaultyTransport(wrapped, FaultPlan(drop=0.5))
        with pytest.raises(ValueError, match="no-op"):
            FaultyTransport(inner, FaultPlan())
        with pytest.raises(ValueError, match="throttled"):
            make_transport(inner, topology, "congest", 64, ledger,
                           faults={"throttle": 0.5})

    def test_drop_one_suppresses_delivery_but_records_rounds(self):
        net = faulty_network(small_graph(), {"drop": 1.0})
        inboxes = net.broadcast({0: 1, 1: 2})
        assert all(not box for box in inboxes.values())
        delivered = net.exchange({(u, v): 1 for u, v in net.graph.edges()})
        assert delivered == {}
        assert net.ledger.rounds == 2  # both rounds recorded, zero messages
        assert net.ledger.total_messages == 0
        stats = net.fault_stats
        assert stats["delivered_messages"] == 0
        assert stats["dropped_messages"] > 0

    def test_drop_rate_roughly_observed(self):
        graph = small_graph(60, 0.2, seed=4)
        net = faulty_network(graph, {"drop": 0.25}, seed=9)
        for _ in range(5):
            net.broadcast({v: 1 for v in graph.nodes()})
        stats = net.fault_stats
        total = stats["delivered_messages"] + stats["dropped_messages"]
        observed = stats["dropped_messages"] / total
        assert 0.15 < observed < 0.35

    def test_missing_entries_never_exceptions(self):
        graph = nx.path_graph(3)
        net = faulty_network(graph, {"drop": 1.0})
        delivered = net.exchange({(0, 1): "x"})
        assert delivered == {}  # absence, not an error
        # Protocol violations still raise exactly as without faults.
        with pytest.raises(ProtocolError):
            net.exchange({(0, 2): "not-an-edge"})

    def test_dropped_oversized_message_still_raises(self):
        # The fault seed must never decide whether a budget violation is
        # caught: even a message the plan removes re-runs the clean
        # transport's checks (except in the chunked primitives, where
        # oversized payloads legitimately stream over several rounds).
        graph = nx.path_graph(3)
        net = faulty_network(graph, {"drop": 1.0}, bandwidth_bits=8)
        with pytest.raises(BandwidthExceeded):
            net.exchange({(0, 1): Message(content=0, bits=10_000)})
        delivered = net.exchange_chunked(
            {(0, 1): Message(content=0, bits=10_000)})
        assert delivered == {}  # dropped, but legal for the chunked path
        crashed = faulty_network(graph, {"crash": {0: (0,)}}, bandwidth_bits=8)
        with pytest.raises(BandwidthExceeded):
            crashed.exchange({(0, 1): Message(content=0, bits=10_000)})

    def test_corruption_alters_payloads_not_counts(self):
        graph = small_graph(40, 0.25, seed=2)
        clean = Network(graph)
        noisy = faulty_network(graph, {"corrupt": 0.5}, seed=3)
        values = {v: 0b1111111111 for v in graph.nodes()}
        clean_in = clean.broadcast(values)
        noisy_in = noisy.broadcast(values)
        # Same senders deliver to the same receivers...
        assert {v: sorted(b) for v, b in clean_in.items()} == \
            {v: sorted(b) for v, b in noisy_in.items()}
        # ...but many payloads changed.
        assert noisy.fault_stats["corrupted_messages"] > 0
        changed = sum(
            1 for v, box in noisy_in.items()
            for u, payload in box.items() if payload != clean_in[v][u]
        )
        assert changed == noisy.fault_stats["corrupted_messages"]

    def test_throttle_scales_budget_and_still_enforces_it(self):
        graph = nx.path_graph(4)
        net = faulty_network(graph, {"throttle": 0.5}, bandwidth_bits=64)
        assert net.bandwidth_bits == 32
        net.exchange({(0, 1): Message(content=0, bits=32, label="fits")})
        with pytest.raises(BandwidthExceeded):
            net.exchange({(0, 1): Message(content=0, bits=40, label="too-big")})

    def test_crash_silences_node_from_its_round_on(self):
        graph = nx.cycle_graph(5)
        net = faulty_network(graph, {"crash": {1: (0,)}})
        first = net.broadcast({v: 1 for v in graph.nodes()})  # round 0: alive
        assert 0 in first[1]
        second = net.broadcast({v: 1 for v in graph.nodes()})  # round 1: dead
        assert 0 not in second[1] and 0 not in second[4]
        assert not second[0]  # receives nothing either
        assert net.fault_stats["crashed_nodes"] == 1

    def test_delay_slots_shift_delivery(self):
        graph = nx.path_graph(4)
        net = faulty_network(graph, {"delay": {(0, 1): 2}})
        assert net.exchange({(0, 1): "late", (1, 2): "now"}) == {(1, 2): "now"}
        assert net.exchange({}) == {}
        assert net.exchange({}) == {(0, 1): "late"}
        # A busy edge defers the late message one more round, never clobbers.
        net2 = faulty_network(graph, {"delay": {(0, 1): 1}})
        net2.exchange({(0, 1): "first"})
        assert net2.exchange({(0, 1): "second"}) == {(0, 1): "first"}
        assert net2.exchange({}) == {(0, 1): "second"}

    def test_broadcast_chunked_and_silent_rounds_under_faults(self):
        graph = nx.path_graph(4)
        net = faulty_network(graph, {"drop": 1.0}, mode="local")
        inboxes = net.broadcast_chunked({0: "x" * 100})
        assert all(not box for box in inboxes.values())
        net.charge_silent_round()
        assert net.ledger.rounds == 2


# --------------------------------------------------------------------------- #
# Determinism: the acceptance criteria of the subsystem
# --------------------------------------------------------------------------- #

FAULTS = {"drop": 0.05, "corrupt": 1e-3, "crash": {4: (7,)}, "throttle": 0.5}


class TestDeterminism:
    def test_ledger_and_outputs_identical_across_backends(self):
        graph = small_graph(40, 0.15, seed=6)
        runs = []
        for backend in ("dict", "batch", "slot"):
            net = Network(graph, backend=backend, ledger="records",
                          faults=FAULTS, fault_seed=5)
            inboxes = net.broadcast({v: v * 3 + 1 for v in graph.nodes()})
            runs.append((
                [dataclasses.astuple(r) for r in net.ledger.records],
                {v: dict(box) for v, box in inboxes.items()},
                net.fault_stats,
            ))
        assert runs[0] == runs[1] == runs[2]

    @pytest.mark.parametrize("solver", ["d1c", "d1lc"])
    def test_solve_byte_identical_across_backends(self, solver):
        graph = small_graph(50, 0.12, seed=2)
        lists = degree_plus_one_lists(graph, seed=3)
        outcomes = []
        for backend in ("dict", "batch", "slot"):
            if solver == "d1c":
                result = solve_d1c(graph, seed=1, backend=backend,
                                   faults=FAULTS, fault_seed=11)
            else:
                result = solve_d1lc(graph, lists, seed=1, backend=backend,
                                    faults=FAULTS, fault_seed=11)
            outcomes.append((result.coloring, result.rounds, result.total_bits,
                             result.max_edge_bits, result.fault_stats))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_same_seed_same_plan_reproduces(self):
        graph = small_graph(40, 0.15, seed=3)
        a = solve_d1c(graph, seed=1, faults=FAULTS, fault_seed=7)
        b = solve_d1c(graph, seed=1, faults=FAULTS, fault_seed=7)
        assert a.coloring == b.coloring and a.fault_stats == b.fault_stats

    def test_fault_seed_changes_perturbation_not_workload(self):
        graph = small_graph(40, 0.15, seed=3)
        a = solve_d1c(graph, seed=1, faults={"drop": 0.1}, fault_seed=7)
        b = solve_d1c(graph, seed=1, faults={"drop": 0.1}, fault_seed=8)
        assert a.fault_stats != b.fault_stats or a.coloring != b.coloring

    def test_clean_run_unaffected_by_fault_plumbing(self):
        graph = small_graph(40, 0.15, seed=3)
        plain = solve_d1c(graph, seed=1)
        threaded = solve_d1c(graph, seed=1, faults={}, fault_seed=99)
        assert plain.coloring == threaded.coloring
        assert plain.rounds == threaded.rounds
        assert plain.total_bits == threaded.total_bits
        assert threaded.fault_stats is None

    def test_all_default_plan_aggregates_like_a_clean_scenario(self):
        # The drop=0.0 endpoint of a sweep is byte-identical to no faults —
        # including at the artifact layer, so it gates against a clean
        # baseline instead of hard-failing on "fault plan changed".
        from repro.experiments import (
            ScenarioSpec, aggregate_suite, compare_summaries, run_scenarios,
        )

        clean = ScenarioSpec("endpoint", "gnp", "d1c",
                             family_params={"n": 30, "p": 0.15})
        endpoint = dataclasses.replace(clean, faults={"drop": 0.0})
        a = aggregate_suite(run_scenarios([clean], suite="tiny"))
        b = aggregate_suite(run_scenarios([endpoint], suite="tiny"))
        assert a == b
        assert compare_summaries(a, b) == []


# --------------------------------------------------------------------------- #
# Simulator crash integration
# --------------------------------------------------------------------------- #

class EchoCounter(NodeProgram):
    """Counts its own steps; halts after round 5."""

    def init(self, ctx):
        ctx.state.memory["steps"] = 0

    def step(self, ctx, inbox):
        ctx.state.memory["steps"] += 1
        if ctx.round_index >= 5:
            ctx.state.halt()
        return {u: 1 for u in ctx.network.neighbors(ctx.node)}

    def finish(self, ctx):
        return ctx.state.memory["steps"]


class TestSimulatorCrash:
    def test_crashed_node_leaves_active_set(self):
        net = Network(nx.cycle_graph(6), faults={"crash": {2: (0,)}})
        result = Simulator(net, EchoCounter(), seed=0).run()
        assert result.outputs[0] == 2  # stepped in rounds 0 and 1 only
        assert all(result.outputs[v] == 6 for v in range(1, 6))
        assert result.states[0].halted
        assert net.fault_stats["crashed_nodes"] == 1

    def test_crash_everyone_halts_the_run(self):
        nodes = tuple(range(6))
        net = Network(nx.cycle_graph(6), faults={"crash": {0: nodes}})
        result = Simulator(net, EchoCounter(), seed=0).run()
        assert result.halted
        assert all(steps == 0 for steps in result.outputs.values())

"""Tests for the deterministic hierarchical RNG streams."""

from hypothesis import given, strategies as st

from repro.utils.rng import RngStream, derive_rng


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        assert derive_rng(1, "a", 2).random() == derive_rng(1, "a", 2).random()

    def test_different_labels_differ(self):
        assert derive_rng(1, "a").random() != derive_rng(1, "b").random()

    def test_different_seeds_differ(self):
        assert derive_rng(1, "a").random() != derive_rng(2, "a").random()


class TestRngStream:
    def test_node_streams_are_stable(self):
        stream = RngStream(42)
        assert stream.for_node("v1").random() == stream.for_node("v1").random()

    def test_node_streams_are_independent(self):
        stream = RngStream(42)
        assert stream.for_node("v1").random() != stream.for_node("v2").random()

    def test_edge_stream_symmetric(self):
        stream = RngStream(7)
        assert stream.for_edge("a", "b").random() == stream.for_edge("b", "a").random()

    def test_edge_stream_label_sensitivity(self):
        stream = RngStream(7)
        assert (
            stream.for_edge("a", "b", "x").random()
            != stream.for_edge("a", "b", "y").random()
        )

    def test_child_stream_differs_from_parent(self):
        stream = RngStream(3)
        child = stream.child("phase-1")
        assert child.seed != stream.seed
        assert child.for_node(0).random() != stream.for_node(0).random()

    def test_shuffled_is_permutation_and_deterministic(self):
        stream = RngStream(9)
        items = list(range(20))
        first = stream.shuffled(items, "order")
        second = stream.shuffled(items, "order")
        assert first == second
        assert sorted(first) == items

    def test_choice_deterministic(self):
        stream = RngStream(5)
        assert stream.choice([1, 2, 3], "pick") == stream.choice([1, 2, 3], "pick")

    def test_choice_empty_rejected(self):
        import pytest

        stream = RngStream(5)
        with pytest.raises(ValueError):
            stream.choice([], "pick")

    @given(st.integers(min_value=0, max_value=2 ** 32), st.integers(min_value=0, max_value=100))
    def test_node_stream_reproducible_property(self, seed, node):
        a = RngStream(seed).for_node(node).random()
        b = RngStream(seed).for_node(node).random()
        assert a == b

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_color_defaults(self):
        args = build_parser().parse_args(["color"])
        assert args.problem == "d1c"
        assert args.mode == "congest"

    def test_unknown_problem_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["color", "--problem", "rainbow"])


class TestCommands:
    def test_color_d1c(self, capsys):
        exit_code = main(["color", "--n", "60", "--p", "0.12", "--seed", "1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "coloring run" in out
        assert "True" in out

    def test_color_d1lc_with_huge_colors(self, capsys):
        exit_code = main([
            "color", "--n", "40", "--p", "0.15", "--problem", "d1lc",
            "--color-bits", "80", "--seed", "2",
        ])
        assert exit_code == 0
        assert "rounds by phase" in capsys.readouterr().out

    def test_color_local_mode(self, capsys):
        exit_code = main(["color", "--n", "40", "--p", "0.15", "--mode", "local", "--seed", "3"])
        assert exit_code == 0

    def test_baseline(self, capsys):
        exit_code = main(["baseline", "--n", "60", "--p", "0.1", "--seed", "4"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "johansson" in out and "pipeline" in out

    def test_acd(self, capsys):
        exit_code = main(["acd", "--cliques", "3", "--clique-size", "12", "--sparse", "8",
                          "--seed", "5"])
        assert exit_code == 0
        assert "almost-clique decomposition" in capsys.readouterr().out

    def test_triangles(self, capsys):
        exit_code = main(["triangles", "--n", "80", "--seed", "6"])
        assert exit_code == 0
        assert "triangle" in capsys.readouterr().out


class TestSuiteCommands:
    def test_suite_list_all(self, capsys):
        assert main(["suite", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke", "coloring", "bandwidth", "detection", "scaling"):
            assert name in out

    def test_suite_list_one(self, capsys):
        assert main(["suite", "list", "smoke"]) == 0
        assert "gnp-d1c" in capsys.readouterr().out

    def test_suite_list_unknown(self):
        with pytest.raises(ValueError, match="unknown suite"):
            main(["suite", "list", "nope"])

    def test_suite_run_smoke_and_compare(self, capsys, tmp_path):
        exit_code = main(["suite", "run", "smoke", "--workers", "1",
                          "--trials", "1", "--out", str(tmp_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "suite 'smoke'" in out
        suite_path = tmp_path / "BENCH_suite.json"
        assert suite_path.exists()
        assert (tmp_path / "BENCH_suite_trials.jsonl").exists()
        assert (tmp_path / "BENCH_suite_timing.json").exists()
        # A snapshot compares clean against itself and gates the exit code.
        assert main(["suite", "compare", "--baseline", str(suite_path),
                     "--fresh", str(suite_path)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_suite_compare_fails_on_drift(self, capsys, tmp_path):
        import json

        assert main(["suite", "run", "smoke", "--workers", "1", "--trials", "1",
                     "--out", str(tmp_path)]) == 0
        baseline = tmp_path / "BENCH_suite.json"
        drifted = json.loads(baseline.read_text())
        scenario = next(iter(drifted["scenarios"]))
        drifted["scenarios"][scenario]["valid_trials"] = 0
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(drifted))
        assert main(["suite", "compare", "--baseline", str(baseline),
                     "--fresh", str(fresh)]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_suite_run_slot_backend_matches_default_aggregate(self, capsys, tmp_path):
        assert main(["suite", "run", "smoke", "--trials", "1",
                     "--only", "gnp-d1c", "--out", str(tmp_path / "a")]) == 0
        assert main(["suite", "run", "smoke", "--trials", "1",
                     "--only", "gnp-d1c", "--backend", "slot",
                     "--out", str(tmp_path / "b")]) == 0
        a = (tmp_path / "a" / "BENCH_suite.json").read_bytes()
        b = (tmp_path / "b" / "BENCH_suite.json").read_bytes()
        assert a == b  # the backend knob never reaches the aggregate

    def test_suite_run_only_unknown_scenario(self, tmp_path):
        with pytest.raises(ValueError, match="no scenarios named"):
            main(["suite", "run", "smoke", "--only", "nope",
                  "--out", str(tmp_path)])

    def test_suite_run_profile_writes_hotspots(self, capsys, tmp_path):
        assert main(["suite", "run", "smoke", "--trials", "1",
                     "--only", "gnp-d1c", "--profile",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "PROFILE_gnp-d1c.txt" in out
        profile = tmp_path / "PROFILE_gnp-d1c.txt"
        assert profile.exists() and "cumulative" in profile.read_text()
        # Profiler-inflated wall-clock must never refresh the timing artifact.
        assert not (tmp_path / "BENCH_suite_timing.json").exists()

    def test_suite_compare_skips_timing_without_baseline_file(self, capsys, tmp_path):
        assert main(["suite", "run", "smoke", "--trials", "1",
                     "--out", str(tmp_path)]) == 0
        suite_path = tmp_path / "BENCH_suite.json"
        capsys.readouterr()
        assert main(["suite", "compare", "--baseline", str(suite_path),
                     "--fresh", str(suite_path), "--timing-budget", "25",
                     "--timing-baseline", str(tmp_path / "missing.json")]) == 0
        out = capsys.readouterr().out
        assert "timing/RSS checks skipped" in out and "PASS" in out

    def test_suite_compare_timing_budget_warns_but_passes(self, capsys, tmp_path):
        import json

        assert main(["suite", "run", "smoke", "--trials", "1",
                     "--out", str(tmp_path)]) == 0
        suite_path = tmp_path / "BENCH_suite.json"
        timing_path = tmp_path / "BENCH_suite_timing.json"
        # Make the committed baseline impossibly fast, so the fresh run is
        # far over budget: default (soft) mode warns, strict mode fails.
        fast = json.loads(timing_path.read_text())
        for name in fast["suites"]["smoke"]["scenarios"]:
            fast["suites"]["smoke"]["scenarios"][name] = 1e-9
        fast["suites"]["smoke"]["total_wall_s"] = 1e-9
        fast_path = tmp_path / "fast_timing.json"
        fast_path.write_text(json.dumps(fast))
        capsys.readouterr()
        assert main(["suite", "compare", "--baseline", str(suite_path),
                     "--fresh", str(suite_path),
                     "--timing-budget", "25",
                     "--timing-baseline", str(fast_path)]) == 0
        out = capsys.readouterr().out
        assert "warn" in out and "PASS" in out
        assert main(["suite", "compare", "--baseline", str(suite_path),
                     "--fresh", str(suite_path),
                     "--timing-budget", "25", "--strict-timing",
                     "--timing-baseline", str(fast_path)]) == 1
        assert "FAIL" in capsys.readouterr().out


class TestFaultsCli:
    def test_faults_option_runs_and_records_plan(self, capsys, tmp_path):
        import json

        assert main(["suite", "run", "smoke", "--trials", "1",
                     "--only", "gnp-d1c", "--faults", "drop=0.02,corrupt=1e-4",
                     "--out", str(tmp_path)]) == 0
        summary = json.loads((tmp_path / "BENCH_suite.json").read_text())
        entry = summary["scenarios"]["gnp-d1c"]
        assert entry["faults"] == {"drop": 0.02, "corrupt": 1e-4}
        assert "dropped_messages" in entry["metrics"]

    def test_invalid_under_faults_does_not_fail_the_run(self, capsys, tmp_path):
        # drop=1 makes any coloring invalid, but that is the measurement,
        # not a failure — the exit code stays 0 and the output says why.
        assert main(["suite", "run", "smoke", "--trials", "1",
                     "--only", "gnp-d1c", "--faults", "drop=1.0",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "invalid under faults" in out

    def test_bad_faults_spec_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="dorp"):
            main(["suite", "run", "smoke", "--only", "gnp-d1c",
                  "--faults", "dorp=0.1", "--out", str(tmp_path)])
        with pytest.raises(SystemExit, match="key=value"):
            main(["suite", "run", "smoke", "--only", "gnp-d1c",
                  "--faults", "drop", "--out", str(tmp_path)])
        with pytest.raises(SystemExit, match="not a number"):
            main(["suite", "run", "smoke", "--only", "gnp-d1c",
                  "--faults", "drop=lots", "--out", str(tmp_path)])

    def test_robustness_suite_listed(self, capsys):
        assert main(["suite", "list", "robustness"]) == 0
        out = capsys.readouterr().out
        assert "gnp-d1c-drop10" in out and "drop=0.1" in out

    def test_seed_override_round_trips_and_compare_refuses(self, capsys, tmp_path):
        import json

        assert main(["suite", "run", "smoke", "--trials", "1",
                     "--only", "gnp-d1c", "--seed", "7",
                     "--out", str(tmp_path)]) == 0
        summary_path = tmp_path / "BENCH_suite.json"
        assert json.loads(summary_path.read_text())["seed_override"] == 7
        # Same seed gates clean against itself ...
        assert main(["suite", "compare", "--baseline", str(summary_path),
                     "--fresh", str(summary_path)]) == 0
        # ... but a default-seed fresh snapshot is refused.
        assert main(["suite", "run", "smoke", "--trials", "1",
                     "--only", "gnp-d1c",
                     "--out", str(tmp_path / "clean")]) == 0
        assert main(["suite", "compare", "--baseline", str(summary_path),
                     "--fresh", str(tmp_path / "clean" / "BENCH_suite.json")]) == 1
        assert "seed override mismatch" in capsys.readouterr().out


class TestTraceCommands:
    def _run_traced(self, tmp_path, only=("gnp-d1c",), out="run"):
        argv = ["suite", "run", "smoke", "--trials", "1",
                "--out", str(tmp_path / out), "--trace", str(tmp_path / out)]
        for name in only:
            argv.extend(["--only", name])
        assert main(argv) == 0
        return tmp_path / out

    def test_suite_run_trace_writes_artifacts(self, capsys, tmp_path):
        out_dir = self._run_traced(tmp_path)
        out = capsys.readouterr().out
        assert "traces:" in out
        trace_path = out_dir / "TRACE_gnp-d1c.jsonl"
        assert trace_path.exists()
        import json

        events = [json.loads(line)
                  for line in trace_path.read_text().splitlines()]
        assert events[0]["type"] == "header"
        assert any(e["type"] == "round" for e in events)

    def test_suite_run_trace_keeps_aggregate_bytes(self, capsys, tmp_path):
        assert main(["suite", "run", "smoke", "--trials", "1",
                     "--only", "gnp-d1c", "--out", str(tmp_path / "plain")]) == 0
        self._run_traced(tmp_path, out="traced")
        plain = (tmp_path / "plain" / "BENCH_suite.json").read_bytes()
        traced = (tmp_path / "traced" / "BENCH_suite.json").read_bytes()
        assert plain == traced  # tracing never reaches the aggregate

    def test_suite_run_progress_heartbeats_on_stderr(self, capsys, tmp_path):
        assert main(["suite", "run", "smoke", "--trials", "1",
                     "--only", "gnp-d1c", "--progress",
                     "--out", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "[suite] gnp-d1c trial 0:" in captured.err
        assert "rss=" in captured.err
        assert "[suite]" not in captured.out  # heartbeats never touch stdout

    def test_trace_summarize_renders_phase_timeline(self, capsys, tmp_path):
        out_dir = self._run_traced(tmp_path, only=("powerlaw-d1lc",))
        capsys.readouterr()
        assert main(["trace", "summarize",
                     str(out_dir / "TRACE_powerlaw-d1lc.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "phase timeline" in out
        assert "acd" in out
        assert "TOTAL" in out

    def test_trace_compare_clean_and_drifted(self, capsys, tmp_path):
        a = self._run_traced(tmp_path, out="a")
        b = self._run_traced(tmp_path, out="b")
        trace_a = a / "TRACE_gnp-d1c.jsonl"
        trace_b = b / "TRACE_gnp-d1c.jsonl"
        assert main(["trace", "compare", str(trace_a), str(trace_b)]) == 0
        assert "no drift" in capsys.readouterr().out
        # Perturb one round's bits: the deterministic gate must trip.
        import json

        lines = trace_b.read_text().splitlines()
        for i, line in enumerate(lines):
            event = json.loads(line)
            if event["type"] == "round":
                event["bits"] += 1
                lines[i] = json.dumps(event, sort_keys=True)
                break
        trace_b.write_text("\n".join(lines) + "\n")
        assert main(["trace", "compare", str(trace_a), str(trace_b)]) == 1
        assert "deterministic drift" in capsys.readouterr().out

    def test_trace_parser_requires_subcommand(self):
        import pytest as _pytest

        with _pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])


class TestAnalyticsCli:
    """The PR's analytics surface: --json trace output, the comm gate,
    the run-history registry, and `repro report`."""

    def _run_smoke(self, tmp_path, trace=False, only=("gnp-d1c",)):
        out = tmp_path / "run"
        argv = ["suite", "run", "smoke", "--trials", "1", "--out", str(out)]
        for name in only:
            argv.extend(["--only", name])
        if trace:
            argv.extend(["--trace", str(out)])
        assert main(argv) == 0
        return out

    def test_suite_run_appends_run_history(self, capsys, tmp_path):
        import json

        out = self._run_smoke(tmp_path)
        runs_path = out / "RUNS.jsonl"
        assert runs_path.exists()
        record = json.loads(runs_path.read_text().splitlines()[0])
        assert record["schema"] == "repro-runs/1"
        assert record["suite"] == "smoke"
        assert len(record["digest"]) == 64
        assert record["env"]["python"]
        # A second run appends, never truncates.
        self._run_smoke(tmp_path)
        assert len(runs_path.read_text().splitlines()) == 2

    def test_trace_summarize_json_is_sorted_and_stable(self, capsys, tmp_path):
        import json

        out = self._run_smoke(tmp_path, trace=True)
        trace = out / "TRACE_gnp-d1c.jsonl"
        capsys.readouterr()
        assert main(["trace", "summarize", "--json", str(trace)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert list(payload) == ["TRACE_gnp-d1c.jsonl"]
        summary = payload["TRACE_gnp-d1c.jsonl"]
        assert summary["rounds"] > 0
        assert json.dumps(summary, sort_keys=True) == json.dumps(summary)

    def test_trace_compare_json_exit_semantics(self, capsys, tmp_path):
        import json

        out = self._run_smoke(tmp_path, trace=True)
        trace = out / "TRACE_gnp-d1c.jsonl"
        capsys.readouterr()
        assert main(["trace", "compare", "--json", str(trace), str(trace)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is True and payload["drift"] == []
        # Drifted pair: exit 1 and the drift rows name the column.
        drifted = tmp_path / "drifted.jsonl"
        lines = trace.read_text().splitlines()
        for i, line in enumerate(lines):
            event = json.loads(line)
            if event["type"] == "round":
                event["bits"] += 8
                lines[i] = json.dumps(event, sort_keys=True)
                break
        drifted.write_text("\n".join(lines) + "\n")
        assert main(["trace", "compare", "--json", str(trace),
                     str(drifted)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is False
        assert any(d["column"] == "bits" for d in payload["drift"])

    def test_suite_compare_comm_budget_gates(self, capsys, tmp_path):
        import json

        from repro.experiments import canonical_dumps
        from repro.obs.analytics import build_comm_baseline

        out = self._run_smoke(tmp_path)
        suite_path = out / "BENCH_suite.json"
        comm_path = tmp_path / "BENCH_comm.json"
        comm_path.write_text(canonical_dumps(
            build_comm_baseline(json.loads(suite_path.read_text()))
        ))
        capsys.readouterr()
        assert main(["suite", "compare", "--baseline", str(suite_path),
                     "--fresh", str(suite_path), "--comm-budget", "10",
                     "--comm-baseline", str(comm_path)]) == 0
        out_text = capsys.readouterr().out
        assert "PASS" in out_text

    def test_suite_compare_missing_comm_baseline_fails(self, capsys, tmp_path):
        out = self._run_smoke(tmp_path)
        suite_path = out / "BENCH_suite.json"
        capsys.readouterr()
        assert main(["suite", "compare", "--baseline", str(suite_path),
                     "--fresh", str(suite_path), "--comm-budget", "10",
                     "--comm-baseline", str(tmp_path / "missing.json")]) == 1
        out_text = capsys.readouterr().out
        assert "comm_baseline" in out_text and "FAIL" in out_text

    def test_report_suite_renders_and_writes_html(self, capsys, tmp_path):
        out = self._run_smoke(tmp_path, trace=True)
        capsys.readouterr()
        assert main(["report", "smoke", "--dir", str(out)]) == 0
        out_text = capsys.readouterr().out
        assert "report: smoke" in out_text
        assert "phase timeline: gnp-d1c" in out_text
        html_path = out / "REPORT_smoke.html"
        assert html_path.exists()
        html = html_path.read_text()
        assert html.startswith("<!doctype html>")
        assert "<svg" in html and "gnp-d1c" in html

    def test_report_scenario_narrows_to_one(self, capsys, tmp_path):
        out = self._run_smoke(tmp_path, trace=True,
                              only=("gnp-d1c", "powerlaw-d1lc"))
        capsys.readouterr()
        assert main(["report", "gnp-d1c", "--dir", str(out),
                     "--html", str(tmp_path / "one.html")]) == 0
        out_text = capsys.readouterr().out
        assert "gnp-d1c" in out_text
        assert "phase timeline: powerlaw-d1lc" not in out_text
        assert (tmp_path / "one.html").exists()

    def test_report_nothing_found_exits_2(self, capsys, tmp_path):
        assert main(["report", "nope", "--dir", str(tmp_path)]) == 2
        assert "nothing to report" in capsys.readouterr().out

    def test_report_trend_table_and_gate(self, capsys, tmp_path):
        out = self._run_smoke(tmp_path)
        self._run_smoke(tmp_path)
        capsys.readouterr()
        assert main(["report", "trend", "--dir", str(out)]) == 0
        out_text = capsys.readouterr().out
        assert "run history (2 runs)" in out_text
        assert "smoke" in out_text

    def test_report_trend_empty_history(self, capsys, tmp_path):
        assert main(["report", "trend", "--dir", str(tmp_path)]) == 0
        assert "no run history" in capsys.readouterr().out

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_color_defaults(self):
        args = build_parser().parse_args(["color"])
        assert args.problem == "d1c"
        assert args.mode == "congest"

    def test_unknown_problem_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["color", "--problem", "rainbow"])


class TestCommands:
    def test_color_d1c(self, capsys):
        exit_code = main(["color", "--n", "60", "--p", "0.12", "--seed", "1"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "coloring run" in out
        assert "True" in out

    def test_color_d1lc_with_huge_colors(self, capsys):
        exit_code = main([
            "color", "--n", "40", "--p", "0.15", "--problem", "d1lc",
            "--color-bits", "80", "--seed", "2",
        ])
        assert exit_code == 0
        assert "rounds by phase" in capsys.readouterr().out

    def test_color_local_mode(self, capsys):
        exit_code = main(["color", "--n", "40", "--p", "0.15", "--mode", "local", "--seed", "3"])
        assert exit_code == 0

    def test_baseline(self, capsys):
        exit_code = main(["baseline", "--n", "60", "--p", "0.1", "--seed", "4"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "johansson" in out and "pipeline" in out

    def test_acd(self, capsys):
        exit_code = main(["acd", "--cliques", "3", "--clique-size", "12", "--sparse", "8",
                          "--seed", "5"])
        assert exit_code == 0
        assert "almost-clique decomposition" in capsys.readouterr().out

    def test_triangles(self, capsys):
        exit_code = main(["triangles", "--n", "80", "--seed", "6"])
        assert exit_code == 0
        assert "triangle" in capsys.readouterr().out


class TestSuiteCommands:
    def test_suite_list_all(self, capsys):
        assert main(["suite", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke", "coloring", "bandwidth", "detection", "scaling"):
            assert name in out

    def test_suite_list_one(self, capsys):
        assert main(["suite", "list", "smoke"]) == 0
        assert "gnp-d1c" in capsys.readouterr().out

    def test_suite_list_unknown(self):
        with pytest.raises(ValueError, match="unknown suite"):
            main(["suite", "list", "nope"])

    def test_suite_run_smoke_and_compare(self, capsys, tmp_path):
        exit_code = main(["suite", "run", "smoke", "--workers", "1",
                          "--trials", "1", "--out", str(tmp_path)])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "suite 'smoke'" in out
        suite_path = tmp_path / "BENCH_suite.json"
        assert suite_path.exists()
        assert (tmp_path / "BENCH_suite_trials.jsonl").exists()
        assert (tmp_path / "BENCH_suite_timing.json").exists()
        # A snapshot compares clean against itself and gates the exit code.
        assert main(["suite", "compare", "--baseline", str(suite_path),
                     "--fresh", str(suite_path)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_suite_compare_fails_on_drift(self, capsys, tmp_path):
        import json

        assert main(["suite", "run", "smoke", "--workers", "1", "--trials", "1",
                     "--out", str(tmp_path)]) == 0
        baseline = tmp_path / "BENCH_suite.json"
        drifted = json.loads(baseline.read_text())
        scenario = next(iter(drifted["scenarios"]))
        drifted["scenarios"][scenario]["valid_trials"] = 0
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(drifted))
        assert main(["suite", "compare", "--baseline", str(baseline),
                     "--fresh", str(fresh)]) == 1
        assert "FAIL" in capsys.readouterr().out

"""Determinism forensics tests (repro.obs.forensics).

The headline contracts pinned here:

* **Digest byte-identity** — a scenario's ``DIGEST_*.jsonl`` stream is byte
  for byte identical across every transport backend (dict/batch/slot/
  columnar) and across the trial-worker process boundary (``--workers 1``
  vs ``2``); a program run under :class:`ShardedSimulator` (fork and thread
  workers alike) reproduces the serial chain and final digest exactly.
* **Observation-only** — digesting consumes no RNG: rows, ledgers, and
  outputs are byte-identical to an undigested run.
* **Localization** — ``repro diff`` names the first divergent (round,
  phase, shard), and ``--bisect`` re-runs a fine window to name the exact
  injected (round, node) of a single-edge fault.
* **Composition** — the observer multiplexer lets RoundTracer and
  DigestTracer share one ledger, attached and detached in any order.
"""

import json
from dataclasses import replace

import networkx as nx
import pytest

from repro.congest import Network
from repro.congest.program import NodeProgram
from repro.congest.simulator import Simulator
from repro.experiments import (
    aggregate_suite,
    canonical_dumps,
    get_suite,
    run_scenarios,
)
from repro.experiments.compare import compare_summaries, gate_passes
from repro.experiments.registry import GRAPH_FAMILIES
from repro.experiments.runner import (
    run_instrumented_trial,
    run_trial,
)
from repro.experiments.spec import trial_seeds
from repro.obs import RoundTracer, add_round_observer, remove_round_observer
from repro.obs.forensics import (
    DIGEST_SCHEMA,
    DigestTracer,
    MultisetDigest,
    bisect_divergence,
    canonical_bytes,
    digest_filename,
    first_divergence,
    load_digests,
    payload_hash,
    render_bisect,
    render_divergence,
    spec_from_payload,
    spec_payload,
    split_trials,
    write_digests,
)
from repro.shard.sim import ShardedSimulator


class CountDown(NodeProgram):
    """Every node floods a round-dependent value for four rounds, then halts."""

    def init(self, ctx):
        ctx.state.memory["t"] = 0

    def step(self, ctx, inbox):
        ctx.state.memory["t"] += 1
        if ctx.state.memory["t"] >= 4:
            ctx.state.halt()
        return {v: ctx.state.memory["t"] * 7 + sum(inbox.values())
                for v in ctx.network.neighbors(ctx.node)}

    def finish(self, ctx):
        return ctx.state.memory["t"]


def stream_bytes(events):
    """The exact serialization ``write_digests`` uses, without the file."""
    return "\n".join(json.dumps(dict(e), sort_keys=True, default=str)
                     for e in events)


def smoke_spec(name, **overrides):
    spec = next(s for s in get_suite("smoke") if s.name == name)
    return replace(spec, **overrides) if overrides else spec


def digest_run(spec, trial=0, fine_rounds=None):
    row, _, events = run_instrumented_trial(spec, trial, digest=True,
                                            fine_rounds=fine_rounds)
    return row, events


def strip_machine(row):
    row = dict(row)
    row.pop("wall_s", None)
    row.pop("peak_rss_mb", None)
    return row


# --------------------------------------------------------------------------- #
# Digest primitives
# --------------------------------------------------------------------------- #

class TestDigestPrimitives:
    def test_canonical_bytes_separates_types(self):
        assert canonical_bytes(1) != canonical_bytes("1")
        assert canonical_bytes(True) != canonical_bytes(1)
        assert canonical_bytes((1, 2)) != canonical_bytes([1, 2])
        assert canonical_bytes(b"x") != canonical_bytes("x")
        assert canonical_bytes(1.0) != canonical_bytes(1)

    def test_canonical_bytes_is_order_canonical_for_mappings(self):
        assert canonical_bytes({"a": 1, "b": 2}) == \
            canonical_bytes({"b": 2, "a": 1})
        assert canonical_bytes({2, 1, 3}) == canonical_bytes({3, 2, 1})

    def test_payload_hash_int_fast_path_matches_itself(self):
        assert payload_hash(5) == payload_hash(5)
        assert payload_hash(5) != payload_hash(6)
        assert payload_hash(-1) != payload_hash(1)
        assert payload_hash("x") != payload_hash(b"x")

    def test_multiset_digest_is_order_free_and_mergeable(self):
        entries = [payload_hash(v) for v in (3, 1, 2, 2)]
        forward = MultisetDigest()
        forward.add_many(entries)
        backward = MultisetDigest()
        backward.add_many(reversed(entries))
        assert forward.snapshot() == backward.snapshot()
        assert forward.count == 4
        # shard-style partials merge to the serial total
        left, right = MultisetDigest(), MultisetDigest()
        left.add_many(entries[:2])
        right.add_many(entries[2:])
        left.merge(right.value, right.count)
        assert left.snapshot() == forward.snapshot()


# --------------------------------------------------------------------------- #
# Observer multiplexer: tracers compose on one ledger (satellite 1)
# --------------------------------------------------------------------------- #

class TestObserverMux:
    def test_round_and_digest_tracers_share_a_ledger(self):
        round_tracer = RoundTracer()
        net = Network(nx.path_graph(4), tracer=round_tracer)
        digest_tracer = DigestTracer()
        digest_tracer.attach(net)  # historically raised on an occupied ledger
        net.exchange({(0, 1): 1}, label="a:one")
        round_tracer.close()
        digest_tracer.close()
        assert [e["type"] for e in round_tracer.events] == \
            ["header", "round", "end"]
        assert [e["type"] for e in digest_tracer.events] == \
            ["header", "round", "end"]
        assert net.ledger.observer is None

    @pytest.mark.parametrize("close_order", ["attach", "reverse"])
    def test_detach_in_any_order_keeps_the_survivor_observing(self, close_order):
        first = RoundTracer()
        net = Network(nx.path_graph(4), tracer=first)
        second = DigestTracer()
        second.attach(net)
        net.exchange({(0, 1): 1}, label="a:one")
        closing, surviving = ((first, second) if close_order == "attach"
                              else (second, first))
        closing.close()
        net.exchange({(1, 2): 1}, label="a:two")
        surviving.close()
        survivor_rounds = [e for e in surviving.events if e["type"] == "round"]
        closed_rounds = [e for e in closing.events if e["type"] == "round"]
        assert len(survivor_rounds) == 2
        assert len(closed_rounds) == 1
        assert net.ledger.observer is None

    def test_add_remove_round_observer_unwraps(self):
        net = Network(nx.path_graph(3))
        seen_a, seen_b = [], []
        cb_a = lambda *args: seen_a.append(args)  # noqa: E731
        cb_b = lambda *args: seen_b.append(args)  # noqa: E731
        add_round_observer(net.ledger, cb_a)
        assert net.ledger.observer is cb_a  # single observer stays direct
        add_round_observer(net.ledger, cb_b)
        net.exchange({(0, 1): 1}, label="x")
        assert len(seen_a) == len(seen_b) == 1
        remove_round_observer(net.ledger, cb_a)
        assert net.ledger.observer is cb_b  # mux of one unwraps
        remove_round_observer(net.ledger, cb_a)  # idempotent no-op
        remove_round_observer(net.ledger, cb_b)
        assert net.ledger.observer is None

    def test_instrumented_trial_with_both_instruments(self):
        spec = smoke_spec("gnp-d1c", trials=1)
        row, trace_events, digest_events = run_instrumented_trial(
            spec, 0, trace=True, digest=True)
        assert trace_events[-1]["type"] == "end"
        assert digest_events[-1]["type"] == "end"
        assert row["state_digest"] == digest_events[-1]["chain"]
        # both instruments on == digest-only, byte for byte
        _, solo_events = digest_run(spec)
        assert stream_bytes(digest_events) == stream_bytes(solo_events)


# --------------------------------------------------------------------------- #
# Byte-identity across backends, worker boundaries, shard runtimes (sat. 3)
# --------------------------------------------------------------------------- #

class TestDigestByteIdentity:
    @pytest.mark.parametrize("backend", ["batch", "slot", "columnar"])
    def test_streams_identical_across_backends(self, backend):
        # planted-acd exercises the columnar buddy-sweep decline; gnp-d1c
        # the coloring pipeline.  "dict" is the reference side.
        for name in ("gnp-d1c", "planted-acd"):
            spec = smoke_spec(name, trials=1)
            ref_row, ref_events = digest_run(replace(spec, backend="dict"))
            row, events = digest_run(replace(spec, backend=backend))
            assert stream_bytes(events) == stream_bytes(ref_events)
            assert strip_machine(row) == strip_machine(ref_row)

    def test_streams_identical_across_trial_worker_boundary(self, tmp_path):
        specs = [smoke_spec("gnp-d1c"), smoke_spec("powerlaw-d1lc")]
        run_scenarios(specs, suite="smoke", digest_dir=tmp_path / "serial")
        run_scenarios(specs, suite="smoke", workers=2,
                      digest_dir=tmp_path / "parallel")
        for spec in specs:
            name = digest_filename(spec.name)
            assert (tmp_path / "serial" / name).read_bytes() == \
                (tmp_path / "parallel" / name).read_bytes()

    @pytest.mark.parametrize("workers", ["thread", "fork"])
    def test_sharded_simulator_reproduces_serial_chain(self, workers):
        graph = nx.gnm_random_graph(24, 60, seed=5)

        def run(sharded):
            tracer = DigestTracer()
            net = Network(graph, tracer=tracer)
            if sharded:
                sim = ShardedSimulator(net, CountDown(), seed=2, shards=3,
                                       workers=workers)
            else:
                sim = Simulator(net, CountDown(), seed=2)
            result = sim.run(label="ping:step")
            tracer.close()
            return result, tracer.events

        serial_result, serial_events = run(sharded=False)
        sharded_result, sharded_events = run(sharded=True)
        assert sharded_result.outputs == serial_result.outputs
        serial_rounds = [e for e in serial_events if e["type"] == "round"]
        sharded_rounds = [e for e in sharded_events if e["type"] == "round"]
        assert [e["chain"] for e in serial_rounds] == \
            [e["chain"] for e in sharded_rounds]
        assert serial_events[-1]["chain"] == sharded_events[-1]["chain"]
        # per-round state digests are merged from per-shard sub-digests;
        # the sharded stream additionally localizes them per shard
        assert all("state" in e for e in serial_rounds)
        assert any("shards" in e for e in sharded_rounds)
        assert all("shards" not in e for e in serial_rounds)

    def test_digesting_is_observation_only(self):
        spec = smoke_spec("gnp-johansson", trials=1)
        plain = strip_machine(run_trial(spec, 0))
        digested, events = digest_run(spec)
        digest_value = digested.pop("state_digest")
        assert strip_machine(digested) == plain
        assert digest_value == events[-1]["chain"]
        # runs of the same spec digest identically
        again, _ = digest_run(spec)
        assert again["state_digest"] == digest_value

    def test_spec_payload_round_trip_preserves_seeds(self):
        spec = smoke_spec("planted-acd",
                          faults={"delay": {(0, 1): 2}, "drop": 0.01})
        rebuilt = spec_from_payload(spec_payload(spec))
        assert trial_seeds(rebuilt, 0) == trial_seeds(spec, 0)
        assert trial_seeds(rebuilt, 1) == trial_seeds(spec, 1)
        from repro.faults import FaultPlan

        assert FaultPlan.coerce(rebuilt.faults).canonical() == \
            FaultPlan.coerce(spec.faults).canonical()


# --------------------------------------------------------------------------- #
# Artifacts
# --------------------------------------------------------------------------- #

class TestDigestArtifacts:
    def test_filename_sanitizes(self):
        assert digest_filename("gnp-d1c") == "DIGEST_gnp-d1c.jsonl"
        assert digest_filename("weird name/x:y") == "DIGEST_weird_name_x_y.jsonl"

    def test_write_load_round_trip(self, tmp_path):
        _, events = digest_run(smoke_spec("gnp-d1c", trials=1))
        path = write_digests(tmp_path / digest_filename("rt"), events)
        loaded = load_digests(path)
        assert loaded == [json.loads(json.dumps(e, sort_keys=True, default=str))
                          for e in events]
        assert loaded[0]["schema"] == DIGEST_SCHEMA

    def test_load_rejects_foreign_jsonl(self, tmp_path):
        path = tmp_path / "DIGEST_bogus.jsonl"
        path.write_text('{"type": "round", "round": 1}\n')
        with pytest.raises(ValueError, match="no header"):
            load_digests(path)
        path.write_text('{"type": "header", "schema": "repro-digest/99"}\n')
        with pytest.raises(ValueError, match="unsupported digest schema"):
            load_digests(path)

    def test_split_trials_requires_header_first(self):
        with pytest.raises(ValueError, match="header"):
            split_trials([{"type": "round", "round": 1}])


# --------------------------------------------------------------------------- #
# Alignment: first_divergence
# --------------------------------------------------------------------------- #

class TestFirstDivergence:
    def test_identical_streams_do_not_diverge(self):
        spec = smoke_spec("gnp-d1c", trials=1)
        _, events_a = digest_run(spec)
        _, events_b = digest_run(spec)
        assert first_divergence(events_a, events_b) is None
        assert "identical" in render_divergence(None)

    def test_faulted_twin_diverges_on_inbox(self):
        spec = smoke_spec("gnp-d1c", trials=1)
        _, clean = digest_run(spec)
        _, faulted = digest_run(replace(spec, faults={"corrupt": 2e-3}))
        div = first_divergence(clean, faulted)
        assert div is not None
        assert div.component == "inbox"
        assert div.round is not None and div.round >= 1
        assert "fault plans differ" in div.detail
        rendered = render_divergence(div)
        assert f"round {div.round}" in rendered

    def test_workload_header_mismatch_is_terminal(self):
        spec = smoke_spec("gnp-d1c", trials=1)
        _, events_a = digest_run(spec)
        _, events_b = digest_run(replace(spec, seed=99))
        div = first_divergence(events_a, events_b)
        assert div is not None and div.component == "header"
        assert "different workloads" in div.detail

    def test_trial_restriction(self):
        spec = smoke_spec("gnp-d1c")  # two trials
        _, events_a = digest_run(spec, trial=0)
        _, events_b = digest_run(spec, trial=0)
        assert first_divergence(events_a, events_b, trial=5) is None


# --------------------------------------------------------------------------- #
# Bisection: the injected-fault localization contract
# --------------------------------------------------------------------------- #

class TestBisect:
    def test_bisect_names_injected_round_and_node(self, monkeypatch):
        # Inject a single-edge, one-slot delay — exactly one message stream
        # perturbed — and record the ground truth (transport round, edge) by
        # spying on the fault filter.  The digest round index is the ledger's
        # post-increment observer index, i.e. transport round + 1.  LOCAL
        # mode: per-edge delays are unsupported alongside chunked oversized
        # payloads (the late delivery would land in a budget-enforced round).
        # gnp-johansson materializes inboxes from round 1, so the perturbed
        # delivery is localizable to its receiver (a broadcast_discard round
        # would diverge on counters only, by design).
        spec = smoke_spec("gnp-johansson", trials=1, mode="local")
        graph_seed, _ = trial_seeds(spec, 0)
        graph, _ = GRAPH_FAMILIES[spec.family](
            graph_seed, **dict(spec.family_params))
        u, v = sorted(graph.edges())[0]
        faulted = replace(spec, faults={"delay": {(u, v): 1}})

        from repro.faults.transport import FaultyTransport

        original = FaultyTransport._filter
        modifications = []

        def spy(self, messages, round_id, label, *args, **kwargs):
            out = original(self, messages, round_id, label, *args, **kwargs)
            for edge in messages:
                if edge not in out or out[edge] != messages[edge]:
                    modifications.append((round_id, edge))
            return out

        monkeypatch.setattr(FaultyTransport, "_filter", spy)
        _, faulted_events = digest_run(faulted)
        monkeypatch.setattr(FaultyTransport, "_filter", original)
        _, clean_events = digest_run(spec)

        assert modifications, "the injected edge never carried a message"
        injected_round, injected_edge = modifications[0]
        assert injected_edge == (u, v)

        div = first_divergence(clean_events, faulted_events)
        assert div is not None
        assert div.round == injected_round + 1
        assert div.component == "inbox"

        report = bisect_divergence(clean_events, faulted_events,
                                   divergence=div)
        assert report.fine is not None
        assert report.fine.round == injected_round + 1
        assert report.fine.node == repr(v)
        assert report.fine.component == "inbox"
        # the fine re-runs reproduced the stored chains: no suspicion notes
        assert report.notes == []
        rendered = render_bisect(report)
        assert f"first divergent node: {v!r}" in rendered

    def test_bisect_on_identical_streams_is_none(self):
        spec = smoke_spec("gnp-d1c", trials=1)
        _, events_a = digest_run(spec)
        _, events_b = digest_run(spec)
        assert bisect_divergence(events_a, events_b) is None
        assert "nothing to bisect" in render_bisect(None)

    def test_fine_mode_windows_per_node_data(self):
        # gnp-johansson: every round materializes inboxes (no discard rounds)
        spec = smoke_spec("gnp-johansson", trials=1)
        _, events = digest_run(spec, fine_rounds=(2, 3))
        block = split_trials(events)[0]
        assert sorted(block["fine"]) == [2, 3]
        fine = block["fine"][2]
        # scenario solvers drive the Network directly, so fine events carry
        # per-node inboxes; state/halted maps appear on Simulator-driven runs
        assert fine["inbox"]
        for node_key, entry in fine["inbox"].items():
            assert isinstance(node_key, str)
            digest_hex, count = entry
            int(digest_hex, 16)
            assert count >= 1
        # fine events never perturb the chain: identical to a coarse run
        _, coarse = digest_run(spec)
        assert [e["chain"] for e in block["rounds"]] == \
            [e["chain"] for e in split_trials(coarse)[0]["rounds"]]


# --------------------------------------------------------------------------- #
# Aggregate + compare integration
# --------------------------------------------------------------------------- #

class TestCompareDigests:
    def _summaries(self, tmp_path):
        specs = [smoke_spec("gnp-d1c", trials=1)]
        plain = aggregate_suite(run_scenarios(specs, suite="smoke"))
        digested = aggregate_suite(run_scenarios(
            specs, suite="smoke", digest_dir=tmp_path))
        return plain, digested

    def test_cross_digest_baseline_is_refused(self, tmp_path):
        plain, digested = self._summaries(tmp_path)
        findings = compare_summaries(plain, digested)
        assert not gate_passes(findings)
        assert any(f.metric == "digests" and "--digest" in f.detail
                   for f in findings)
        findings = compare_summaries(digested, plain)
        assert not gate_passes(findings)

    def test_digest_drift_fails_with_localization_hint(self, tmp_path):
        _, digested = self._summaries(tmp_path)
        import copy

        drifted = copy.deepcopy(digested)
        drifted["scenarios"]["gnp-d1c"]["state_digest"][0] = "0" * 16
        findings = compare_summaries(digested, drifted)
        assert not gate_passes(findings)
        assert any(f.metric == "state_digest" and "repro diff" in f.detail
                   for f in findings)

    def test_plain_aggregate_schema_is_untouched(self, tmp_path):
        plain, digested = self._summaries(tmp_path)
        assert "digests" not in plain
        assert "state_digest" not in plain["scenarios"]["gnp-d1c"]
        assert digested["digests"] is True
        # metrics themselves are identical: the digest is identity, not metric
        assert plain["scenarios"]["gnp-d1c"]["metrics"] == \
            digested["scenarios"]["gnp-d1c"]["metrics"]

    def test_digested_aggregate_deterministic_across_workers(self, tmp_path):
        specs = [smoke_spec("gnp-d1c")]
        a = aggregate_suite(run_scenarios(specs, suite="smoke",
                                          digest_dir=tmp_path / "a"))
        b = aggregate_suite(run_scenarios(specs, suite="smoke", workers=2,
                                          digest_dir=tmp_path / "b"))
        assert canonical_dumps(a) == canonical_dumps(b)


# --------------------------------------------------------------------------- #
# Trend localization (repro report trend upgrade)
# --------------------------------------------------------------------------- #

class TestTrendLocalization:
    def _record(self, digest, digest_dir=None, scenarios=("gnp-d1c",)):
        record = {
            "schema": "repro-runs/1", "suite": "smoke", "digest": digest,
            "scenarios": list(scenarios), "trials": 1, "valid_trials": 1,
        }
        if digest_dir is not None:
            record["digest_dir"] = str(digest_dir)
        return record

    def test_no_stored_streams_degrades_to_info(self):
        from repro.obs.analytics import detect_trends

        findings = detect_trends([self._record("a" * 64),
                                  self._record("b" * 64)])
        assert gate_passes(findings)
        assert any("--digest" in f.detail for f in findings)

    def test_same_directory_is_called_out(self):
        from repro.obs.analytics import localize_digest_change

        prev = self._record("a" * 64, digest_dir="/tmp/x")
        cur = self._record("b" * 64, digest_dir="/tmp/x")
        findings = localize_digest_change("smoke", prev, cur)
        assert gate_passes(findings)
        assert any("overwritten" in f.detail for f in findings)

    def test_missing_stream_is_an_info_finding(self, tmp_path):
        from repro.obs.analytics import localize_digest_change

        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        prev = self._record("a" * 64, digest_dir=tmp_path / "a")
        cur = self._record("b" * 64, digest_dir=tmp_path / "b")
        findings = localize_digest_change("smoke", prev, cur)
        assert gate_passes(findings)
        assert any("missing" in f.detail for f in findings)

    def test_divergent_streams_localize(self, tmp_path):
        from repro.obs.analytics import localize_digest_change

        spec = smoke_spec("gnp-d1c", trials=1)
        run_scenarios([spec], suite="smoke", digest_dir=tmp_path / "a")
        run_scenarios([replace(spec, faults={"corrupt": 2e-3})],
                      suite="smoke", digest_dir=tmp_path / "b")
        prev = self._record("a" * 64, digest_dir=tmp_path / "a")
        cur = self._record("b" * 64, digest_dir=tmp_path / "b")
        findings = localize_digest_change("smoke", prev, cur)
        assert any("first divergence at round" in f.detail
                   and "repro diff" in f.detail for f in findings)
        assert gate_passes(findings)


# --------------------------------------------------------------------------- #
# CLI: repro diff / suite run --digest / report trend (satellite 2)
# --------------------------------------------------------------------------- #

class TestCli:
    def _digest_streams(self, tmp_path):
        from repro.cli import main

        rc = main(["suite", "run", "smoke", "--only", "gnp-d1c",
                   "--trials", "1", "--out", str(tmp_path / "a"),
                   "--digest", str(tmp_path / "a")])
        assert rc == 0
        rc = main(["suite", "run", "smoke", "--only", "gnp-d1c",
                   "--trials", "1", "--out", str(tmp_path / "b"),
                   "--digest", str(tmp_path / "b"),
                   "--faults", "corrupt=2e-3"])
        assert rc == 0
        return (tmp_path / "a" / "DIGEST_gnp-d1c.jsonl",
                tmp_path / "b" / "DIGEST_gnp-d1c.jsonl")

    def test_diff_exit_codes_and_bisect(self, tmp_path, capsys):
        from repro.cli import main

        clean, faulted = self._digest_streams(tmp_path)
        assert main(["diff", str(clean), str(clean)]) == 0
        assert "identical" in capsys.readouterr().out
        assert main(["diff", str(clean), str(faulted)]) == 1
        assert "first divergence at round" in capsys.readouterr().out
        assert main(["diff", str(clean), str(faulted), "--bisect"]) == 1
        assert "first divergent node" in capsys.readouterr().out

    def test_diff_json_payload(self, tmp_path, capsys):
        from repro.cli import main

        clean, faulted = self._digest_streams(tmp_path)
        capsys.readouterr()  # drain the suite-run output
        assert main(["diff", str(clean), str(faulted), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is False
        assert payload["divergence"]["component"] == "inbox"

    def test_diff_unreadable_input_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        bogus = tmp_path / "DIGEST_x.jsonl"
        bogus.write_text('{"type": "round"}\n')
        assert main(["diff", str(bogus), str(bogus)]) == 2

    def test_suite_run_digest_writes_stream_and_registry(self, tmp_path,
                                                         capsys):
        from repro.cli import main

        out = tmp_path / "run"
        rc = main(["suite", "run", "smoke", "--only", "gnp-d1c",
                   "--trials", "1", "--out", str(out),
                   "--digest", str(out)])
        assert rc == 0
        assert "digests:" in capsys.readouterr().out
        assert (out / "DIGEST_gnp-d1c.jsonl").exists()
        summary = json.loads((out / "BENCH_suite.json").read_text())
        assert summary["digests"] is True
        records = [json.loads(line) for line
                   in (out / "RUNS.jsonl").read_text().splitlines()]
        assert records[0]["digest_dir"] == str(out)

    def test_report_trend_survives_empty_registry(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "RUNS.jsonl").write_text("")
        assert main(["report", "trend", "--dir", str(tmp_path)]) == 0
        assert "no run history" in capsys.readouterr().out

    def test_report_trend_survives_garbage_registry(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "RUNS.jsonl").write_text(
            '{"schema": "other/1"}\nnot json at all\n')
        assert main(["report", "trend", "--dir", str(tmp_path)]) == 0
        assert "no run history" in capsys.readouterr().out

    def test_report_trend_missing_registry(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", "trend", "--dir", str(tmp_path)]) == 0

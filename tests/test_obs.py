"""Tests for the observability subsystem (repro.obs).

The headline contract here is **observation-only tracing**: a traced run is
byte-identical to an untraced one on every transport backend, serial and
sharded, fault-free and under fault plans.  The rest covers the trace event
stream, the JSONL artifacts, phase-timeline summaries, heartbeats, resource
sampling, and the suite runner / CLI integration.
"""

import io
import json
import time

import networkx as nx
import pytest

from repro.congest import Network
from repro.congest.program import NodeProgram
from repro.congest.simulator import Simulator
from repro.core import solve_d1c
from repro.experiments import (
    aggregate_suite,
    canonical_dumps,
    get_suite,
    run_scenarios,
    run_traced_trial,
)
from repro.obs import (
    NULL_TRACER,
    TRACE_SCHEMA,
    Heartbeat,
    NullTracer,
    ResourceSampler,
    RoundTracer,
    compare_traces,
    cpu_seconds,
    current_rss_mb,
    load_trace,
    make_tracer,
    peak_rss_mb,
    render_comparison,
    render_timeline,
    summarize_trace,
    trace_filename,
    write_trace,
)
from repro.shard.sim import ShardedSimulator


class CountDown(NodeProgram):
    """Every node pings its neighbours for three rounds, then halts."""

    def init(self, ctx):
        ctx.state.memory["t"] = 0

    def step(self, ctx, inbox):
        ctx.state.memory["t"] += 1
        if ctx.state.memory["t"] >= 3:
            ctx.state.halt()
        return {v: 1 for v in ctx.network.neighbors(ctx.node)}

    def finish(self, ctx):
        return ctx.state.memory["t"]


def ledger_fingerprint(network):
    ledger = network.ledger
    return (ledger.rounds, ledger.total_messages, ledger.total_bits,
            ledger.max_edge_bits, ledger.rounds_by_label(),
            ledger.bits_by_label(), ledger.messages_by_label())


# --------------------------------------------------------------------------- #
# Tracer event stream
# --------------------------------------------------------------------------- #

class TestRoundTracer:
    def test_event_stream_shape(self):
        tracer = RoundTracer(meta={"scenario": "unit"})
        net = Network(nx.cycle_graph(6), tracer=tracer)
        Simulator(net, CountDown(), seed=1).run(label="ping:step")
        tracer.close()
        kinds = [e["type"] for e in tracer.events]
        assert kinds[0] == "header"
        assert kinds[-1] == "end"
        rounds = [e for e in tracer.events if e["type"] == "round"]
        assert len(rounds) == 3
        header = tracer.events[0]
        assert header["schema"] == TRACE_SCHEMA
        assert header["n"] == 6
        assert header["scenario"] == "unit"
        first = rounds[0]
        assert first["round"] == 1
        assert first["label"] == "ping:step"
        assert first["phase"] == "ping"
        assert first["messages"] == 12
        assert first["active"] == 6 and first["owned"] == 6
        assert first["wall_s"] >= 0
        end = tracer.events[-1]
        assert end["rounds"] == 3
        assert end["total_bits"] == net.ledger.total_bits
        assert end["rss_mb"] > 0

    def test_round_events_sum_to_ledger(self):
        tracer = RoundTracer()
        net = Network(nx.gnm_random_graph(20, 40, seed=3), tracer=tracer)
        solve_d1c(net.graph, seed=5)  # unrelated run: tracer only sees `net`
        Simulator(net, CountDown(), seed=1).run(label="ping:step")
        tracer.close()
        rounds = [e for e in tracer.events if e["type"] == "round"]
        assert sum(e["bits"] for e in rounds) == net.ledger.total_bits
        assert sum(e["messages"] for e in rounds) == net.ledger.total_messages
        assert len(rounds) == net.ledger.rounds

    def test_sharded_rounds_carry_per_shard_breakdown(self):
        tracer = RoundTracer()
        net = Network(nx.cycle_graph(8), tracer=tracer)
        ShardedSimulator(net, CountDown(), seed=1, shards=2,
                         workers="thread").run(label="ping:step")
        tracer.close()
        rounds = [e for e in tracer.events if e["type"] == "round"]
        assert rounds, "sharded run recorded no rounds"
        for event in rounds:
            assert len(event["shards"]) == 2
            msgs, bits, _ = map(sum, zip(*event["shards"]))
            assert msgs == event["messages"]
            assert bits == event["bits"]

    def test_fault_deltas_in_round_events(self):
        tracer = RoundTracer()
        net = Network(nx.complete_graph(8), faults={"drop": 0.5},
                      fault_seed=7, tracer=tracer)
        Simulator(net, CountDown(), seed=1).run(label="ping:step")
        tracer.close()
        assert "faults" in tracer.events[0]  # header carries the plan
        rounds = [e for e in tracer.events if e["type"] == "round"]
        dropped = sum(e.get("faults", {}).get("dropped_messages", 0)
                      for e in rounds)
        assert dropped == net.fault_stats["dropped_messages"]
        assert dropped > 0
        assert tracer.events[-1]["faults"] == net.fault_stats

    def test_close_is_idempotent_and_detaches(self):
        tracer = RoundTracer()
        net = Network(nx.path_graph(4), tracer=tracer)
        net.exchange({(0, 1): 1}, label="a")
        tracer.close()
        tracer.close()
        assert net.ledger.observer is None
        events_after_close = len(tracer.events)
        net.exchange({(1, 2): 1}, label="b")  # no longer observed
        assert len(tracer.events) == events_after_close

    def test_one_tracer_per_run(self):
        tracer = RoundTracer()
        net = Network(nx.path_graph(3), tracer=tracer)
        # Re-attaching to the same network is an idempotent no-op...
        tracer.attach(net)
        # ...but a second network, or a closed tracer, is a bug.
        with pytest.raises(RuntimeError):
            Network(nx.path_graph(3), tracer=tracer)
        tracer.close()
        with pytest.raises(RuntimeError):
            tracer.attach(Network(nx.path_graph(3)))

    def test_tracers_compose_on_one_ledger(self):
        # Historically a second attach raised; the observer multiplexer now
        # fans the ledger's round callback out to every attached tracer (the
        # forensics DigestTracer rides the same seam — see test_forensics).
        first = RoundTracer()
        net = Network(nx.path_graph(3), tracer=first)
        second = RoundTracer()
        second.attach(net)
        net.exchange({(0, 1): 1}, label="a")
        assert len([e for e in first.events if e["type"] == "round"]) == 1
        assert len([e for e in second.events if e["type"] == "round"]) == 1
        second.close()
        net.exchange({(1, 2): 1}, label="b")
        assert len([e for e in first.events if e["type"] == "round"]) == 2
        assert len([e for e in second.events if e["type"] == "round"]) == 1
        first.close()
        assert net.ledger.observer is None

    def test_periodic_samples_use_injected_clock(self):
        fake = iter(range(100))
        tracer = RoundTracer(sample_every_s=2.0, clock=lambda: next(fake))
        net = Network(nx.path_graph(4), tracer=tracer)
        for _ in range(4):
            net.exchange({(0, 1): 1}, label="a")
        tracer.close()
        samples = [e for e in tracer.events if e["type"] == "sample"]
        assert samples, "no samples despite elapsed fake time"
        for sample in samples:
            assert sample["rss_mb"] > 0
            assert sample["cpu_s"] >= 0

    def test_make_tracer_factory(self):
        assert make_tracer(False) is None
        tracer = make_tracer(True, meta={"k": "v"})
        assert isinstance(tracer, RoundTracer)
        assert tracer.meta == {"k": "v"}


# --------------------------------------------------------------------------- #
# The observation-only contract: traced == untraced, byte for byte
# --------------------------------------------------------------------------- #

class TestObservationOnly:
    @pytest.mark.parametrize("backend", ["dict", "batch", "slot"])
    @pytest.mark.parametrize("shards", [1, 2])
    def test_traced_solve_identical(self, backend, shards):
        graph = nx.gnm_random_graph(30, 80, seed=11)
        plain = solve_d1c(graph, seed=4, backend=backend, shards=shards)
        tracer = RoundTracer()
        traced = solve_d1c(graph, seed=4, backend=backend, shards=shards,
                           tracer=tracer)
        tracer.close()
        assert traced.coloring == plain.coloring
        assert (traced.rounds, traced.total_bits, traced.max_edge_bits) == (
            plain.rounds, plain.total_bits, plain.max_edge_bits)
        assert traced.rounds_by_phase == plain.rounds_by_phase

    @pytest.mark.parametrize("backend", ["dict", "batch", "slot"])
    def test_traced_solve_identical_under_faults(self, backend):
        graph = nx.gnm_random_graph(30, 80, seed=11)
        kwargs = dict(seed=4, backend=backend,
                      faults={"drop": 0.05, "corrupt": 1e-3}, fault_seed=9)
        plain = solve_d1c(graph, **kwargs)
        tracer = RoundTracer()
        traced = solve_d1c(graph, tracer=tracer, **kwargs)
        tracer.close()
        assert traced.coloring == plain.coloring
        assert traced.fault_stats == plain.fault_stats
        assert (traced.rounds, traced.total_bits) == (
            plain.rounds, plain.total_bits)

    @pytest.mark.parametrize("sharded", [False, True])
    def test_traced_simulation_identical(self, sharded):
        def run(tracer):
            net = Network(nx.cycle_graph(10), tracer=tracer)
            if sharded:
                sim = ShardedSimulator(net, CountDown(), seed=2, shards=2,
                                       workers="thread")
            else:
                sim = Simulator(net, CountDown(), seed=2)
            result = sim.run(label="ping:step")
            return result, ledger_fingerprint(net)

        plain_result, plain_ledger = run(None)
        tracer = RoundTracer()
        traced_result, traced_ledger = run(tracer)
        tracer.close()
        assert traced_result.outputs == plain_result.outputs
        assert traced_result.rounds == plain_result.rounds
        assert traced_ledger == plain_ledger

    def test_null_tracer_installs_nothing(self):
        net = Network(nx.path_graph(4))
        assert net.tracer is NULL_TRACER
        assert net.tracer.enabled is False
        assert net.ledger.observer is None
        # The protocol hooks are callable no-ops on the shared singleton.
        NULL_TRACER.note_nodes(1, 2)
        NULL_TRACER.note_shards([(0, 0, 0)])
        NULL_TRACER.close()
        assert isinstance(NULL_TRACER, NullTracer)

    def test_untraced_smoke_scenario_within_timing_budget(self):
        # The NullTracer overhead guard: an untraced trial must not have
        # grown a per-round observation cost.  Structural checks above pin
        # the mechanism (no observer installed); this is a generous
        # wall-clock backstop, not a microbenchmark.
        spec = next(s for s in get_suite("smoke") if s.name == "gnp-d1c")
        start = time.perf_counter()
        run_scenarios([spec], suite="smoke")
        assert time.perf_counter() - start < 10.0


# --------------------------------------------------------------------------- #
# Trace artifacts: filenames, JSONL round-trip, schema checks
# --------------------------------------------------------------------------- #

class TestTraceArtifacts:
    def test_trace_filename_sanitizes(self):
        assert trace_filename("gnp-d1c") == "TRACE_gnp-d1c.jsonl"
        assert trace_filename("weird name/x:y") == "TRACE_weird_name_x_y.jsonl"

    def test_write_load_round_trip(self, tmp_path):
        tracer = RoundTracer(meta={"scenario": "rt"})
        net = Network(nx.path_graph(4), tracer=tracer)
        net.exchange({(0, 1): 1}, label="a:one")
        tracer.close()
        path = write_trace(tmp_path / trace_filename("rt"), tracer.events)
        loaded = load_trace(path)
        assert loaded == [json.loads(json.dumps(e, sort_keys=True, default=str))
                          for e in tracer.events]
        # one JSON object per line, keys sorted
        lines = path.read_text().splitlines()
        assert len(lines) == len(tracer.events)
        for line in lines:
            obj = json.loads(line)
            assert list(obj) == sorted(obj)

    def test_load_trace_rejects_non_trace_jsonl(self, tmp_path):
        path = tmp_path / "TRACE_bogus.jsonl"
        path.write_text('{"type": "round", "round": 1}\n')
        with pytest.raises(ValueError, match="no header"):
            load_trace(path)

    def test_load_trace_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "TRACE_future.jsonl"
        path.write_text('{"type": "header", "schema": "repro-trace/99"}\n')
        with pytest.raises(ValueError, match="unsupported trace schema"):
            load_trace(path)

    def test_summarize_stable_across_round_trip(self, tmp_path):
        tracer = RoundTracer()
        net = Network(nx.cycle_graph(6), tracer=tracer)
        Simulator(net, CountDown(), seed=1).run(label="ping:step")
        tracer.close()
        direct = summarize_trace(tracer.events)
        path = write_trace(tmp_path / trace_filename("rt"), tracer.events)
        reloaded = summarize_trace(load_trace(path))
        assert render_timeline(reloaded) == render_timeline(direct)


# --------------------------------------------------------------------------- #
# Summaries and comparisons
# --------------------------------------------------------------------------- #

def _round(phase, messages, bits, wall_s=0.0):
    return {"type": "round", "round": 1, "label": f"{phase}:x",
            "phase": phase, "messages": messages, "bits": bits,
            "max_edge_bits": 1, "wall_s": wall_s}


HEADER = {"type": "header", "schema": TRACE_SCHEMA, "n": 4, "m": 3}


class TestSummaries:
    def test_phase_order_is_first_appearance(self):
        events = [HEADER, _round("b", 1, 1), _round("a", 1, 1),
                  _round("b", 1, 1)]
        summary = summarize_trace(events)
        assert [p.phase for p in summary.phases] == ["b", "a"]
        assert summary.phase("b").rounds == 2
        assert summary.rounds == 3

    def test_compare_reports_deterministic_drift_only(self):
        a = [HEADER, _round("acd", 5, 50, wall_s=1.0)]
        b = [HEADER, _round("acd", 5, 50, wall_s=9.0)]
        assert compare_traces(a, b) == []  # wall-clock never drifts the gate
        c = [HEADER, _round("acd", 5, 60, wall_s=1.0)]
        drifts = compare_traces(a, c)
        assert [(d.phase, d.column, d.a, d.b) for d in drifts] == [
            ("acd", "bits", 50, 60)]

    def test_compare_covers_phases_missing_from_one_side(self):
        a = [HEADER, _round("acd", 1, 10)]
        b = [HEADER, _round("acd", 1, 10), _round("dense", 2, 20)]
        drifts = compare_traces(a, b)
        assert {(d.phase, d.column) for d in drifts} == {
            ("dense", "rounds"), ("dense", "messages"), ("dense", "bits")}

    def test_render_comparison_mentions_drift_state(self):
        a = [HEADER, _round("acd", 1, 10)]
        assert "no drift" in render_comparison(a, list(a))
        b = [HEADER, _round("acd", 1, 11)]
        assert "deterministic drift" in render_comparison(a, b)


# --------------------------------------------------------------------------- #
# Heartbeat and resource sampler
# --------------------------------------------------------------------------- #

class TestHeartbeat:
    def test_rate_limited_by_interval(self):
        clock = iter([0.0, 1.0, 5.0, 6.0, 12.0]).__next__
        stream = io.StringIO()
        hb = Heartbeat(interval_s=5.0, stream=stream, clock=clock)
        fired = [hb.maybe_beat(lambda: "line") for _ in range(5)]
        # first call only starts the clock; beats at t=5 and t=12
        assert fired == [False, False, True, False, True]
        assert stream.getvalue() == "line\nline\n"
        assert hb.beats == 2

    def test_zero_interval_emits_every_call(self):
        stream = io.StringIO()
        hb = Heartbeat(interval_s=0.0, stream=stream, clock=lambda: 0.0)
        assert hb.maybe_beat(lambda: "a")
        assert hb.maybe_beat(lambda: "b")
        assert stream.getvalue() == "a\nb\n"

    def test_render_not_called_when_not_due(self):
        hb = Heartbeat(interval_s=100.0, stream=io.StringIO(),
                       clock=lambda: 0.0)
        hb.maybe_beat(lambda: pytest.fail("rendered a line that is not due"))

    def test_tracer_heartbeat_lines(self):
        stream = io.StringIO()
        hb = Heartbeat(interval_s=0.0, stream=stream)
        tracer = RoundTracer(heartbeat=hb)
        net = Network(nx.cycle_graph(6), tracer=tracer)
        Simulator(net, CountDown(), seed=1).run(label="ping:step")
        tracer.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 3  # one per round at interval 0
        assert "[trace] round 1 ping:" in lines[0]
        assert "rss" in lines[0]


class TestSampler:
    def test_sample_fields(self):
        sample = ResourceSampler().sample()
        assert sample["rss_mb"] > 0
        assert sample["cpu_s"] >= 0

    def test_rss_helpers(self):
        assert current_rss_mb() > 0
        assert peak_rss_mb() >= current_rss_mb() * 0.5  # same order of magnitude
        assert cpu_seconds() >= 0

    def test_current_rss_falls_back_without_procfs(self, monkeypatch):
        """No /proc/self/statm (macOS, locked-down containers) -> lifetime peak."""
        import builtins

        real_open = builtins.open

        def no_procfs(path, *args, **kwargs):
            if path == "/proc/self/statm":
                raise OSError("no procfs here")
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", no_procfs)
        assert current_rss_mb() == peak_rss_mb()

    def test_current_rss_falls_back_on_garbage_statm(self, monkeypatch):
        import builtins

        real_open = builtins.open

        def garbage_statm(path, *args, **kwargs):
            if path == "/proc/self/statm":
                return io.StringIO("short")  # one field -> IndexError
            return real_open(path, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", garbage_statm)
        assert current_rss_mb() == peak_rss_mb()


class TestSummarizeEdgeCases:
    def test_unlabeled_rounds_fold_into_empty_phase(self):
        # The simulator itself backfills empty labels with the program name,
        # so unlabeled rounds only occur in hand-written or foreign traces —
        # summarize_trace must still fold them into the "" phase.
        events = [
            {"type": "round", "round": 1, "label": "", "messages": 2,
             "bits": 4, "max_edge_bits": 2, "wall_s": 0.01},
            {"type": "round", "round": 2, "messages": 3, "bits": 6,
             "max_edge_bits": 2, "wall_s": 0.01},  # no label key at all
        ]
        summary = summarize_trace(events)
        assert [t.phase for t in summary.phases] == [""]
        assert summary.phase("").rounds == summary.rounds == 2
        assert summary.bits == 10
        # The printable timeline shows "-" instead of an invisible phase.
        from repro.obs import timeline_rows

        assert timeline_rows(summary)[0]["phase"] == "-"

    def test_empty_trace_summarizes_to_zeroes(self):
        summary = summarize_trace([])
        assert summary.rounds == 0 and summary.phases == []
        assert render_timeline(summary)  # renders (totals row), no crash

    def test_header_and_samples_only(self):
        events = [
            {"type": "header", "trial": 0, "scenario": "x"},
            {"type": "sample", "rss_mb": 12.5, "cpu_s": 0.1},
            {"type": "end", "rss_mb": 14.0},
        ]
        summary = summarize_trace(events)
        assert summary.trials == 1
        assert summary.samples == 1
        assert summary.peak_rss_mb == 14.0
        assert summary.rounds == 0


# --------------------------------------------------------------------------- #
# Runner integration: TRACE_* artifacts next to suite outputs
# --------------------------------------------------------------------------- #

class TestRunnerTracing:
    def _smoke_specs(self):
        return [s for s in get_suite("smoke")
                if s.name in ("gnp-d1c", "powerlaw-d1lc")]

    def test_trace_dir_writes_per_scenario_artifacts(self, tmp_path):
        specs = self._smoke_specs()
        result = run_scenarios(specs, suite="smoke", trace_dir=tmp_path)
        for spec in specs:
            path = tmp_path / trace_filename(spec.name)
            assert path.exists()
            events = load_trace(path)
            headers = [e for e in events if e["type"] == "header"]
            assert [h["trial"] for h in headers] == list(range(spec.trials))
            # per-round trace sums == the trial rows' ledger aggregates
            summary = summarize_trace(events)
            rows = result.rows_for(spec.name)
            assert summary.bits == sum(r["total_bits"] for r in rows)
            assert summary.rounds == sum(r["rounds"] for r in rows)

    def test_traced_aggregate_matches_untraced(self, tmp_path):
        specs = self._smoke_specs()
        plain = run_scenarios(specs, suite="smoke")
        traced = run_scenarios(specs, suite="smoke", trace_dir=tmp_path)
        assert canonical_dumps(aggregate_suite(traced)) == \
            canonical_dumps(aggregate_suite(plain))

    def test_parallel_traces_deterministic_fields_match_serial(self, tmp_path):
        specs = self._smoke_specs()
        run_scenarios(specs, suite="smoke", trace_dir=tmp_path / "serial")
        run_scenarios(specs, suite="smoke", workers=2,
                      trace_dir=tmp_path / "parallel")
        for spec in specs:
            a = load_trace(tmp_path / "serial" / trace_filename(spec.name))
            b = load_trace(tmp_path / "parallel" / trace_filename(spec.name))
            assert compare_traces(a, b) == []

    def test_run_traced_trial_returns_row_and_events(self):
        spec = self._smoke_specs()[0]
        row, events = run_traced_trial(spec, 0)
        assert row["scenario"] == spec.name
        header = events[0]
        assert header["scenario"] == spec.name
        assert header["trial"] == 0
        assert header["solver"] == spec.solver
        assert events[-1]["type"] == "end"

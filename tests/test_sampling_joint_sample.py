"""Tests for JointSample (Algorithm 2, Lemma 3)."""

import random

import pytest

from repro.sampling import SimilarityParameters, joint_sample, joint_sample_many
from repro.sampling.joint_sample import agreement_rate


def overlapping_sets(size: int, overlap: int):
    shared = set(range(overlap))
    left = shared | {10_000 + i for i in range(size - overlap)}
    right = shared | {20_000 + i for i in range(size - overlap)}
    return left, right


PARAMS = SimilarityParameters(eps=0.3, nu=0.1, max_scale=4, sigma_cap=2048, seed=0)


class TestJointSample:
    def test_empty_sets_return_nothing(self):
        result = joint_sample(set(), {1, 2})
        assert result.empty
        assert not result.agreed

    def test_agreed_element_lies_in_intersection(self):
        left, right = overlapping_sets(400, 200)
        for trial in range(10):
            result = joint_sample(left, right, PARAMS, rng=random.Random(trial))
            if result.agreed:
                assert result.u_element in left & right

    def test_lemma3_agreement_probability(self):
        """With a large intersection, both sides output the same element often."""
        left, right = overlapping_sets(400, 300)
        rate = agreement_rate(left, right, trials=30, params=PARAMS, seed=1)
        # Lemma 3 promises >= 1 - 5eps/4 - nu = 0.525 for eps=0.3, nu=0.1;
        # in practice the rate is much higher.
        assert rate >= 0.5

    def test_tiny_intersection_rarely_agrees_on_shared_element(self):
        left, right = overlapping_sets(400, 4)
        agreements_in_intersection = 0
        for trial in range(20):
            result = joint_sample(left, right, PARAMS, rng=random.Random(trial))
            if result.agreed and result.u_element in (left & right):
                agreements_in_intersection += 1
        assert agreements_in_intersection <= 20  # sanity: never crashes; output may be rare

    def test_each_side_outputs_own_element(self):
        left, right = overlapping_sets(300, 150)
        result = joint_sample(left, right, PARAMS, rng=random.Random(3))
        if result.u_element is not None:
            assert result.u_element in left
        if result.v_element is not None:
            assert result.v_element in right

    def test_bits_accounted(self):
        left, right = overlapping_sets(300, 150)
        result = joint_sample(left, right, PARAMS, rng=random.Random(4))
        assert result.bits_exchanged > 0


class TestJointSampleMany:
    def test_count_validation(self):
        with pytest.raises(ValueError):
            joint_sample_many({1}, {1}, count=0)

    def test_returns_requested_count(self):
        left, right = overlapping_sets(300, 200)
        results = joint_sample_many(left, right, count=5, params=PARAMS, rng=random.Random(5))
        assert len(results) == 5

    def test_batch_shares_hash_exchange_cost(self):
        """Only the first sample of a batch pays the σ-bit exchange."""
        left, right = overlapping_sets(300, 200)
        results = joint_sample_many(left, right, count=4, params=PARAMS, rng=random.Random(6))
        assert results[0].bits_exchanged > results[1].bits_exchanged

    def test_empty_sets_batch(self):
        results = joint_sample_many(set(), {1, 2}, count=3)
        assert all(r.empty for r in results)

    def test_agreement_rate_validation(self):
        with pytest.raises(ValueError):
            agreement_rate({1}, {1}, trials=0)

"""Tests for metrics, ledger summaries and report formatting."""

import networkx as nx
import pytest

from repro.congest import Message, Network
from repro.metrics import ExperimentRecord, RoundBudgetCheck, format_series, format_table, summarize_ledger
from repro.metrics.ledger import (
    CounterLedger,
    RecordingLedger,
    bits_by_phase,
    messages_by_phase,
    rounds_by_phase,
)


class TestLedgerSummaries:
    def test_summarize_ledger_fields(self):
        net = Network(nx.path_graph(4), bandwidth_bits=32)
        net.exchange({(0, 1): Message(content=1, bits=10)}, label="a:one")
        net.exchange({(1, 2): Message(content=1, bits=20)}, label="a:two")
        summary = summarize_ledger(net)
        assert summary["rounds"] == 2
        assert summary["total_bits"] == 30
        assert summary["max_edge_bits"] == 20
        assert summary["bandwidth_bits"] == 32

    def test_rounds_by_phase_groups_prefixes(self):
        net = Network(nx.path_graph(4))
        net.exchange({(0, 1): 1}, label="acd:degrees")
        net.exchange({(0, 1): 1}, label="acd:buddy")
        net.exchange({(0, 1): 1}, label="dense:slack")
        assert rounds_by_phase(net) == {"acd": 2, "dense": 1}

    @pytest.mark.parametrize("ledger", ["records", "counters"])
    def test_bits_and_messages_by_phase(self, ledger):
        net = Network(nx.path_graph(4), bandwidth_bits=32, ledger=ledger)
        net.exchange({(0, 1): Message(content=1, bits=10)}, label="acd:degrees")
        net.exchange({(0, 1): Message(content=1, bits=6),
                      (1, 2): Message(content=1, bits=4)}, label="acd:buddy")
        net.exchange({(2, 3): Message(content=1, bits=8)}, label="dense:slack")
        assert bits_by_phase(net) == {"acd": 20, "dense": 8}
        assert messages_by_phase(net) == {"acd": 3, "dense": 1}
        # The three helpers agree on phase keys by construction.
        assert set(rounds_by_phase(net)) == set(bits_by_phase(net))

    @pytest.mark.parametrize("ledger", ["records", "counters"])
    def test_phase_helpers_on_empty_ledger(self, ledger):
        net = Network(nx.path_graph(4), ledger=ledger)
        assert rounds_by_phase(net) == {}
        assert bits_by_phase(net) == {}
        assert messages_by_phase(net) == {}

    @pytest.mark.parametrize("ledger", ["records", "counters"])
    def test_phase_helpers_with_unlabeled_rounds(self, ledger):
        # A label with no ":" separator is its own phase; an empty label
        # folds into the "" phase rather than being dropped.
        net = Network(nx.path_graph(4), bandwidth_bits=32, ledger=ledger)
        net.exchange({(0, 1): Message(content=1, bits=5)}, label="bare")
        net.exchange({(1, 2): Message(content=1, bits=3)}, label="")
        assert rounds_by_phase(net) == {"bare": 1, "": 1}
        assert bits_by_phase(net) == {"bare": 5, "": 3}
        assert messages_by_phase(net) == {"bare": 1, "": 1}

    def test_by_label_helpers_match_across_ledgers(self):
        nets = {
            kind: Network(nx.path_graph(4), bandwidth_bits=32, ledger=kind)
            for kind in ("records", "counters")
        }
        for net in nets.values():
            net.exchange({(0, 1): Message(content=1, bits=10)}, label="a:one")
            net.exchange({(1, 2): Message(content=1, bits=20)}, label="a:two")
        rec, cnt = nets["records"].ledger, nets["counters"].ledger
        assert isinstance(rec, RecordingLedger)
        assert isinstance(cnt, CounterLedger)
        assert rec.bits_by_label() == cnt.bits_by_label()
        assert rec.messages_by_label() == cnt.messages_by_label()
        assert rec.rounds_by_label() == cnt.rounds_by_label()

    def test_round_budget_check(self):
        assert RoundBudgetCheck(bandwidth_bits=10, max_edge_bits=10).respected
        assert not RoundBudgetCheck(bandwidth_bits=10, max_edge_bits=11).respected

    def test_experiment_record_row(self):
        record = ExperimentRecord(
            name="E9", parameters={"n": 100}, measurements={"rounds": 42.0}
        )
        row = record.as_row()
        assert row["experiment"] == "E9"
        assert row["n"] == 100
        assert row["rounds"] == 42.0


class TestReportFormatting:
    def test_format_table_alignment_and_header(self):
        rows = [{"n": 10, "rounds": 3.5}, {"n": 1000, "rounds": 12.25}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "n" in lines[1] and "rounds" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_handles_missing_columns(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_format_series(self):
        text = format_series("x", "y", [(1, 2), (3, 4)])
        assert "x" in text and "y" in text
        assert "3" in text

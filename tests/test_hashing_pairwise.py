"""Tests for the explicit pairwise-independent hash families (Section 5)."""

import random
from collections import Counter

import pytest

from repro.hashing.pairwise import PairwiseHashFamily, PairwiseHashFunction


class TestPairwiseHashFunction:
    def test_range_is_one_based(self):
        h = PairwiseHashFunction(a=12345, b=678, lam=32)
        values = [h(x) for x in range(500)]
        assert min(values) >= 1
        assert max(values) <= 32

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            PairwiseHashFunction(a=0, b=1, lam=8)
        with pytest.raises(ValueError):
            PairwiseHashFunction(a=1, b=-1, lam=8)
        with pytest.raises(ValueError):
            PairwiseHashFunction(a=1, b=1, lam=0)

    def test_collision_count(self):
        h = PairwiseHashFunction(a=987654321, b=12345, lam=4)
        # With 40 elements into 4 buckets, almost everything collides.
        assert h.collision_count(range(40)) >= 30

    def test_collision_count_zero_for_singleton(self):
        h = PairwiseHashFunction(a=987654321, b=12345, lam=4)
        assert h.collision_count([7]) == 0

    def test_spread_is_roughly_uniform(self):
        h = PairwiseHashFunction(a=2 ** 40 + 7, b=997, lam=16)
        counts = Counter(h(x) for x in range(3200))
        assert max(counts.values()) < 3 * 3200 / 16


class TestPairwiseHashFamily:
    def make(self, lam=64, seed=0):
        return PairwiseHashFamily(
            universe_label="uniform", universe_size=10 ** 6, lam=lam, seed=seed
        )

    def test_members_deterministic_across_instances(self):
        a, b = self.make(seed=5), self.make(seed=5)
        assert [a.member(9)(x) for x in range(30)] == [b.member(9)(x) for x in range(30)]

    def test_index_bits_cover_family(self):
        family = self.make()
        assert 2 ** family.index_bits >= family.family_size

    def test_out_of_range_index(self):
        family = self.make()
        with pytest.raises(IndexError):
            family.member(family.family_size)

    def test_pairwise_collision_probability(self):
        """Empirical Pr[h(x1) = h(x2)] is close to 1/lambda over the family."""
        family = self.make(lam=32, seed=1)
        rng = random.Random(0)
        collisions = 0
        trials = 400
        for _ in range(trials):
            h = family.member(family.sample_index(rng))
            if h(123456) == h(654321):
                collisions += 1
        rate = collisions / trials
        assert rate <= 3.0 / 32

    def test_find_low_collision_index(self):
        family = self.make(lam=256, seed=2)
        rng = random.Random(1)
        elements = list(range(40))
        index = family.find_low_collision_index(elements, max_colliding=20, rng=rng)
        assert family.member(index).collision_count(elements) <= 20

    def test_find_low_collision_returns_best_effort(self):
        # Impossible target: 40 elements into 2 buckets always collide.
        family = self.make(lam=2, seed=3)
        rng = random.Random(2)
        index = family.find_low_collision_index(range(40), max_colliding=0, rng=rng, attempts=5)
        assert 0 <= index < family.family_size

    def test_rejects_bad_lambda(self):
        with pytest.raises(ValueError):
            PairwiseHashFamily("x", 100, lam=0)

"""Tests for sparsity estimation (Algorithm 3, Lemmas 4-5)."""

import networkx as nx
import pytest

from repro.congest import Network
from repro.graphs import exact_global_sparsity, exact_local_sparsity
from repro.sampling import (
    SimilarityParameters,
    estimate_global_sparsity,
    estimate_local_sparsity,
)


class TestGlobalSparsity:
    def test_clique_has_near_zero_sparsity(self):
        g = nx.complete_graph(24)
        net = Network(g)
        estimates = estimate_global_sparsity(net, eps=0.4, seed=1)
        for v in g.nodes():
            truth = exact_global_sparsity(g, v)
            assert truth == pytest.approx(0.0)
            assert estimates[v] <= 0.4 * 23 + 1

    def test_star_center_is_maximally_sparse(self):
        g = nx.star_graph(20)
        net = Network(g)
        estimates = estimate_global_sparsity(net, eps=0.4, seed=2)
        truth = exact_global_sparsity(g, 0)
        assert truth == pytest.approx((20 - 1) / 2.0)
        assert abs(estimates[0] - truth) <= 0.4 * 20 + 1

    def test_lemma4_accuracy_on_random_graph(self, gnp_small):
        net = Network(gnp_small)
        eps = 0.5
        estimates = estimate_global_sparsity(net, eps=eps, seed=3)
        delta = net.max_degree()
        errors = [
            abs(estimates[v] - exact_global_sparsity(gnp_small, v))
            for v in gnp_small.nodes()
        ]
        within = sum(1 for e in errors if e <= eps * delta)
        assert within >= 0.9 * len(errors)

    def test_constant_rounds(self, gnp_small):
        net = Network(gnp_small)
        result = estimate_global_sparsity(net, eps=0.4, seed=4)
        assert result.rounds_used <= 20  # independent of n and Delta

    def test_restricted_node_list(self, gnp_small):
        net = Network(gnp_small)
        subset = list(gnp_small.nodes())[:5]
        result = estimate_global_sparsity(net, eps=0.4, nodes=subset, seed=5)
        assert set(result.estimates) == set(subset)


class TestLocalSparsity:
    def test_clique_members_have_zero_local_sparsity(self):
        g = nx.complete_graph(20)
        net = Network(g)
        result = estimate_local_sparsity(net, eps=0.4, seed=1)
        for v in g.nodes():
            assert exact_local_sparsity(g, v) == pytest.approx(0.0)
            assert result[v] <= 0.4 * 19 + 1

    def test_reliability_flag_with_high_degree_neighbors(self):
        """Lemma 5: nodes with many much-higher-degree neighbours are flagged."""
        g = nx.Graph()
        # A low-degree node attached to several hubs.
        hubs = [f"hub{i}" for i in range(3)]
        for hub in hubs:
            for leaf in range(30):
                g.add_edge(hub, f"{hub}-leaf-{leaf}")
            g.add_edge("victim", hub)
        net = Network(g)
        result = estimate_local_sparsity(net, eps=0.3, seed=2)
        assert result.reliable["victim"] is False

    def test_reliable_nodes_accurate(self, gnp_small):
        net = Network(gnp_small)
        eps = 0.5
        result = estimate_local_sparsity(net, eps=eps, seed=3)
        checked = 0
        within = 0
        for v in gnp_small.nodes():
            if not result.reliable[v] or gnp_small.degree(v) == 0:
                continue
            checked += 1
            error = abs(result[v] - exact_local_sparsity(gnp_small, v))
            if error <= eps * gnp_small.degree(v) + 1:
                within += 1
        assert checked > 0
        assert within >= 0.85 * checked

    def test_rounds_include_degree_broadcast(self, gnp_small):
        net = Network(gnp_small)
        result = estimate_local_sparsity(net, eps=0.4, seed=4)
        assert result.rounds_used >= 2

    def test_custom_similarity_params(self, gnp_small):
        net = Network(gnp_small)
        params = SimilarityParameters.practical(eps=0.2, seed=9)
        result = estimate_local_sparsity(net, params=params, seed=9)
        assert set(result.estimates) == set(gnp_small.nodes())

"""Round-level tracers: the observation side of the communication engine.

The paper's guarantees are per-round statements, so the trace layer records
what every synchronous round *cost*: bits, messages, the per-edge maximum,
wall-clock time, how many nodes were still active, fault-counter movement,
and — under the sharded simulator — the per-shard split of the merged round.

Three pieces:

* :class:`Tracer` — the protocol.  Every hook is a no-op here, and
  ``enabled = False`` lets hot paths skip even the call with one attribute
  check.
* :class:`NullTracer` / :data:`NULL_TRACER` — the zero-overhead default
  every :class:`~repro.congest.network.Network` carries.  No observer is
  installed on the ledger, so an untraced run executes byte-for-byte the
  code it always did.
* :class:`RoundTracer` — captures one event dict per round by observing the
  network ledger's ``record_round`` seam, plus periodic resource samples and
  optional heartbeat lines.

**The observation-only contract** (pinned by ``tests/test_obs.py``): a
tracer consumes no randomness, never mutates ledgers, inboxes, or node
state, and a traced run is byte-identical to an untraced one on every
backend, serial and sharded, fault-free and under fault plans.  Tracers may
read clocks and process counters — those land in the trace, which is a
diagnostic artifact, never in the deterministic aggregates.

A tracer traces **one run**: attach it to one network, read ``events`` (or
write them with :func:`repro.obs.artifacts.write_trace`) after
:meth:`RoundTracer.close`.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.heartbeat import Heartbeat
from repro.obs.sampler import ResourceSampler

#: Trace event schema identifier (bump when the event shapes change).
TRACE_SCHEMA = "repro-trace/1"

#: One shard's contribution to a merged round: (messages, bits, max_edge_bits).
ShardStats = Tuple[int, int, int]


class Tracer:
    """Protocol for run observers; every hook is a no-op by default.

    ``enabled`` is a class attribute so drivers can guard per-round hook
    calls with a single attribute check (``if tracer.enabled: ...``) instead
    of a method call — that is what makes the :class:`NullTracer` default
    genuinely free on hot paths.  ``wants_payloads`` and ``wants_state``
    guard the forensics hooks the same way: the network only walks delivered
    payloads (and the simulator only walks node states) for tracers that
    opted in, so tracing rounds stays free of per-message work.
    """

    enabled = False
    #: Opt-in: receive delivered payloads via the ``note_exchange`` /
    #: ``note_inboxes`` / ``note_values`` hooks after every primitive.
    wants_payloads = False
    #: Opt-in: receive per-node solver-visible state via ``note_state``
    #: at the end of every simulator step.
    wants_state = False

    def attach(self, network) -> None:
        """Start observing ``network`` (install the ledger round observer)."""

    def note_nodes(self, active: int, owned: int) -> None:
        """Driver hook: node counts as of the round about to execute."""

    def note_shards(self, shard_stats: Sequence[ShardStats],
                    cut_messages: int = 0) -> None:
        """Coordinator hook: per-shard deltas of the round about to merge.

        ``cut_messages`` counts the messages that crossed a shard boundary
        this round (the cut traffic the coordinator relayed) — the basis for
        the analytics layer's cut-traffic fraction.
        """

    def note_exchange(self, delivered) -> None:
        """Payload hook: one round's delivered ``{(u, v): payload}`` mapping."""

    def note_inboxes(self, inboxes) -> None:
        """Payload hook: one round's delivered ``inbox[v][u]`` mapping."""

    def note_values(self, values) -> None:
        """Payload hook: a ``broadcast_discard`` round's sent values."""

    def note_state(self, items) -> None:
        """State hook: iterable of ``(node, entry_hash, halted)`` post-step."""

    def note_shard_digests(self, parts) -> None:
        """Coordinator hook: per-shard digest contributions of a merged round."""

    def close(self) -> None:
        """Stop observing and finalize (idempotent)."""


class NullTracer(Tracer):
    """The zero-overhead default: observes nothing, installs nothing."""


#: Shared singleton — every untraced network points here, allocating nothing.
NULL_TRACER = NullTracer()


class _ObserverMux:
    """Fan one ledger ``observer`` slot out to several round observers.

    The ledger keeps its single-callable seam (one attribute check per
    round); composition lives here.  Callbacks fire in attach order, which
    is part of the observation-only contract's determinism: two tracers on
    one ledger see the same interleaving on every run.
    """

    __slots__ = ("callbacks",)

    def __init__(self, callbacks) -> None:
        self.callbacks = list(callbacks)

    def __call__(self, index: int, label: str, message_count: int,
                 total_bits: int, max_edge_bits: int) -> None:
        for callback in self.callbacks:
            callback(index, label, message_count, total_bits, max_edge_bits)


def add_round_observer(ledger, callback) -> None:
    """Install ``callback`` as a round observer, composing with any existing one.

    First observer goes straight into the ledger slot (zero indirection for
    the common single-tracer run); a second observer upgrades the slot to a
    :class:`_ObserverMux` transparently.
    """
    current = ledger.observer
    if current is None:
        ledger.observer = callback
    elif isinstance(current, _ObserverMux):
        current.callbacks.append(callback)
    else:
        ledger.observer = _ObserverMux([current, callback])


def remove_round_observer(ledger, callback) -> None:
    """Detach ``callback``, unwrapping the mux when one observer remains.

    Bound-method access creates a fresh object each time, so membership is
    by ``==`` (same function + same instance), never ``is``.  Removing a
    callback that is not installed is a no-op, which keeps tracer ``close``
    idempotent.
    """
    current = ledger.observer
    if current is None:
        return
    if isinstance(current, _ObserverMux):
        try:
            current.callbacks.remove(callback)
        except ValueError:
            return
        if len(current.callbacks) == 1:
            ledger.observer = current.callbacks[0]
        elif not current.callbacks:
            ledger.observer = None
    elif current == callback:
        ledger.observer = None


class CompositeTracer(Tracer):
    """Fan every tracer hook out to several tracers on one run.

    ``enabled`` / ``wants_payloads`` / ``wants_state`` are the ORs of the
    members', so drivers guard hooks exactly as for a single tracer; payload
    and state hooks are forwarded only to members that opted in.
    """

    def __init__(self, tracers) -> None:
        self.tracers = [t for t in tracers if t is not None and t.enabled]
        self.enabled = bool(self.tracers)
        self.wants_payloads = any(t.wants_payloads for t in self.tracers)
        self.wants_state = any(t.wants_state for t in self.tracers)

    def attach(self, network) -> None:
        for tracer in self.tracers:
            tracer.attach(network)

    def note_nodes(self, active: int, owned: int) -> None:
        for tracer in self.tracers:
            tracer.note_nodes(active, owned)

    def note_shards(self, shard_stats: Sequence[ShardStats],
                    cut_messages: int = 0) -> None:
        for tracer in self.tracers:
            tracer.note_shards(shard_stats, cut_messages=cut_messages)

    def note_exchange(self, delivered) -> None:
        for tracer in self.tracers:
            if tracer.wants_payloads:
                tracer.note_exchange(delivered)

    def note_inboxes(self, inboxes) -> None:
        for tracer in self.tracers:
            if tracer.wants_payloads:
                tracer.note_inboxes(inboxes)

    def note_values(self, values) -> None:
        for tracer in self.tracers:
            if tracer.wants_payloads:
                tracer.note_values(values)

    def note_state(self, items) -> None:
        wanting = [t for t in self.tracers if t.wants_state]
        if not wanting:
            return
        if len(wanting) > 1:
            items = list(items)  # the hook may receive a one-shot generator
        for tracer in wanting:
            tracer.note_state(items)

    def note_shard_digests(self, parts) -> None:
        for tracer in self.tracers:
            if tracer.wants_payloads or tracer.wants_state:
                tracer.note_shard_digests(parts)

    def close(self) -> None:
        for tracer in self.tracers:
            tracer.close()


class RoundTracer(Tracer):
    """Capture one event per synchronous round, plus samples and heartbeats.

    Parameters
    ----------
    meta:
        Extra key/value pairs merged into the header event (scenario name,
        trial index, solver — whatever identifies the run in its artifact).
    sample_every_s:
        Minimum seconds between resource samples (RSS, CPU).  Samples are
        taken opportunistically on round boundaries — no background thread,
        so an idle tracer costs nothing.  ``None`` disables sampling.
    heartbeat:
        Optional :class:`~repro.obs.heartbeat.Heartbeat`; when given, a
        progress line (round, phase, bits, active nodes, RSS) is emitted at
        most once per its interval.
    clock:
        Time source (``time.perf_counter`` by default; injectable for
        deterministic tests).

    Event shapes (all plain JSON-serializable dicts, one JSONL line each):

    * ``header`` — schema, topology size, mode/backend/budget, fault plan,
      plus ``meta``.
    * ``round`` — ``round`` (1-based ledger index), ``label``, ``phase``
      (label prefix before ``":"``), ``messages``, ``bits``,
      ``max_edge_bits``, ``wall_s`` (time since the previous round event —
      i.e. including the compute that produced the round); optionally
      ``active``/``owned`` (when a driver reported them), ``shards`` (per
      -shard ``[messages, bits, max_edge_bits]`` triples, with
      ``cut_messages`` counting the shard-boundary traffic the coordinator
      relayed) and ``faults`` (nonzero fault-counter deltas since the
      previous round).
    * ``sample`` — ``round``, ``wall_s`` since attach, ``rss_mb``, ``cpu_s``.
    * ``end`` — final ledger aggregates, total ``wall_s``, final resource
      sample, and final fault counters when a fault plan ran.
    """

    enabled = True

    def __init__(self, meta: Optional[Dict[str, Any]] = None,
                 sample_every_s: Optional[float] = 1.0,
                 heartbeat: Optional[Heartbeat] = None,
                 clock: Callable[[], float] = time.perf_counter):
        self.events: List[Dict[str, Any]] = []
        self.meta = dict(meta or {})
        self._sampler = ResourceSampler()
        self._sample_every_s = sample_every_s
        self._heartbeat = heartbeat
        self._clock = clock
        self._network = None
        self._started: Optional[float] = None
        self._last_ts: Optional[float] = None
        self._last_sample_ts: Optional[float] = None
        self._nodes: Optional[Tuple[int, int]] = None
        self._shard_stats: Optional[List[ShardStats]] = None
        self._cut_messages = 0
        self._fault_prev: Optional[Dict[str, int]] = None
        self._closed = False

    # ------------------------------------------------------------- lifecycle
    def attach(self, network) -> None:
        if self._network is network:
            return  # idempotent: a driver re-threading the run's own tracer
        if self._network is not None:
            raise RuntimeError(
                "a RoundTracer traces exactly one run; build a fresh tracer "
                "instead of re-attaching this one to another network"
            )
        if self._closed:
            raise RuntimeError("tracer is closed; build a fresh one per run")
        ledger = network.ledger
        self._network = network
        add_round_observer(ledger, self._on_round)
        now = self._clock()
        self._started = self._last_ts = self._last_sample_ts = now
        header: Dict[str, Any] = {
            "type": "header",
            "schema": TRACE_SCHEMA,
            "n": network.number_of_nodes,
            "m": network.number_of_edges,
            "mode": network.mode,
            "backend": network.backend,
            "bandwidth_bits": network.bandwidth_bits,
            "ledger": type(ledger).__name__,
        }
        plan = getattr(network.transport, "fault_plan", None)
        if plan is not None:
            header["faults"] = plan.canonical()
            self._fault_prev = dict.fromkeys(
                network.transport.fault_stats.as_dict(), 0
            )
        header.update(self.meta)
        self.events.append(header)

    def close(self) -> None:
        """Detach from the ledger and append the ``end`` event (idempotent)."""
        if self._closed:
            return
        self._closed = True
        network = self._network
        if network is None:
            return
        remove_round_observer(network.ledger, self._on_round)
        now = self._clock()
        ledger = network.ledger
        end: Dict[str, Any] = {
            "type": "end",
            "rounds": ledger.rounds,
            "total_bits": ledger.total_bits,
            "total_messages": ledger.total_messages,
            "max_edge_bits": ledger.max_edge_bits,
            "wall_s": round(now - self._started, 6),
        }
        end.update(self._sampler.sample())
        stats = network.fault_stats
        if stats is not None:
            end["faults"] = stats
        self.events.append(end)

    # ----------------------------------------------------------- driver hooks
    def note_nodes(self, active: int, owned: int) -> None:
        self._nodes = (int(active), int(owned))

    def note_shards(self, shard_stats: Sequence[ShardStats],
                    cut_messages: int = 0) -> None:
        self._shard_stats = [tuple(stats) for stats in shard_stats]
        self._cut_messages = int(cut_messages)

    # ---------------------------------------------------------- round events
    def _on_round(self, index: int, label: str, message_count: int,
                  total_bits: int, max_edge_bits: int) -> None:
        now = self._clock()
        event: Dict[str, Any] = {
            "type": "round",
            "round": index,
            "label": label,
            "phase": label.split(":", 1)[0],
            "messages": message_count,
            "bits": total_bits,
            "max_edge_bits": max_edge_bits,
            "wall_s": round(now - self._last_ts, 6),
        }
        if self._nodes is not None:
            event["active"], event["owned"] = self._nodes
        if self._shard_stats is not None:
            event["shards"] = [list(stats) for stats in self._shard_stats]
            event["cut_messages"] = self._cut_messages
            self._shard_stats = None
            self._cut_messages = 0
        if self._fault_prev is not None:
            current = self._network.transport.fault_stats.as_dict()
            deltas = {
                key: current[key] - self._fault_prev.get(key, 0)
                for key in current
                if current[key] != self._fault_prev.get(key, 0)
            }
            if deltas:
                event["faults"] = deltas
            self._fault_prev = current
        self.events.append(event)
        self._last_ts = now
        if (
            self._sample_every_s is not None
            and now - self._last_sample_ts >= self._sample_every_s
        ):
            sample: Dict[str, Any] = {
                "type": "sample",
                "round": index,
                "wall_s": round(now - self._started, 6),
            }
            sample.update(self._sampler.sample())
            self.events.append(sample)
            self._last_sample_ts = now
        if self._heartbeat is not None:
            self._heartbeat.maybe_beat(lambda: self._heartbeat_line(event, now))

    def _heartbeat_line(self, event: Dict[str, Any], now: float) -> str:
        ledger = self._network.ledger
        parts = [
            f"[trace] round {event['round']} {event['phase'] or '-'}:",
            f"{ledger.total_bits} bits",
            f"{ledger.total_messages} msgs",
        ]
        if "active" in event:
            parts.append(f"active {event['active']}/{event['owned']}")
        sample = self._sampler.sample()
        parts.append(f"rss {sample['rss_mb']}MiB")
        parts.append(f"{round(now - self._started, 1)}s")
        return " ".join(parts)


def make_tracer(trace: bool, meta: Optional[Dict[str, Any]] = None,
                heartbeat: Optional[Heartbeat] = None) -> Optional[RoundTracer]:
    """Build a :class:`RoundTracer` when ``trace`` is set, else ``None``.

    The ``None`` return (rather than a :class:`NullTracer`) lets callers pass
    the result straight to ``Network(tracer=...)``, whose default path stays
    allocation-free.
    """
    if not trace:
        return None
    return RoundTracer(meta=meta, heartbeat=heartbeat)

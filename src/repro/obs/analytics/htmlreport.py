"""Self-contained static HTML reports from trace + aggregate artifacts.

``repro report`` renders one HTML file with zero external dependencies —
inline CSS, inline SVG, no scripts to fetch — so the artifact can be
attached to CI runs and opened anywhere.  Charts follow one discipline:

* every chart is single-series (magnitude per phase / shard / time), drawn
  in one categorical hue with light/dark values swapped via CSS custom
  properties and ``prefers-color-scheme``;
* values, labels and legends wear text ink, never the series color; each
  mark carries a native ``<title>`` tooltip;
* every chart sits next to the table of the same numbers, so the data is
  readable without color vision, in print, and by grep.
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.analytics.comm import rss_series, shard_balance
from repro.obs.summary import TraceSummary, summarize_trace, timeline_rows

#: Chart geometry: fixed-width SVGs that scale down via max-width CSS.
_CHART_W = 640
_BAR_H = 22
_BAR_GAP = 6
_LABEL_W = 150
_VALUE_W = 110

_STYLE = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb;
  --surface-2: #f0efec;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #dddcd7;
  --series-1: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19;
    --surface-2: #383835;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #44443f;
    --series-1: #3987e5;
  }
}
body {
  margin: 2rem auto; max-width: 60rem; padding: 0 1rem;
  background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.5 system-ui, sans-serif;
}
h1 { font-size: 1.4rem; }
h2 { font-size: 1.1rem; margin-top: 2.2rem; }
h3 { font-size: 0.95rem; color: var(--text-secondary); }
.meta { color: var(--text-secondary); }
table { border-collapse: collapse; margin: 0.8rem 0; }
th, td {
  padding: 0.25rem 0.7rem; text-align: right;
  border-bottom: 1px solid var(--grid);
}
th:first-child, td:first-child { text-align: left; }
th { color: var(--text-secondary); font-weight: 600; }
svg { max-width: 100%; height: auto; display: block; margin: 0.6rem 0; }
svg .bar { fill: var(--series-1); }
svg .bar:hover { opacity: 0.8; }
svg .line { stroke: var(--series-1); stroke-width: 2; fill: none; }
svg .dot { fill: var(--series-1); }
svg .label { fill: var(--text-secondary); font: 12px system-ui, sans-serif; }
svg .value { fill: var(--text-primary); font: 12px system-ui, sans-serif; }
svg .axis { stroke: var(--grid); stroke-width: 1; }
"""


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:,.4g}"
    return str(value)


def html_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render dict rows (shared keys, insertion order) as an HTML table."""
    if not rows:
        return "<p class='meta'>no rows</p>"
    columns = list(rows[0])
    head = "".join(f"<th>{escape(str(c))}</th>" for c in columns)
    body = "".join(
        "<tr>" + "".join(
            f"<td>{escape(_fmt(row.get(c, '')))}</td>" for c in columns
        ) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def bar_chart(items: Sequence[Tuple[str, float]], title: str,
              unit: str = "") -> str:
    """Horizontal single-hue bar chart with direct value labels."""
    if not items:
        return ""
    peak = max(value for _, value in items) or 1.0
    plot_w = _CHART_W - _LABEL_W - _VALUE_W
    height = len(items) * (_BAR_H + _BAR_GAP) + _BAR_GAP
    parts = [
        f"<svg role='img' aria-label='{escape(title)}' "
        f"viewBox='0 0 {_CHART_W} {height}' width='{_CHART_W}'>"
    ]
    for i, (label, value) in enumerate(items):
        y = _BAR_GAP + i * (_BAR_H + _BAR_GAP)
        w = max(1.0, plot_w * float(value) / peak)
        text = f"{_fmt(value)}{(' ' + unit) if unit else ''}"
        parts.append(
            f"<text class='label' x='{_LABEL_W - 8}' y='{y + _BAR_H - 6}' "
            f"text-anchor='end'>{escape(label)}</text>"
            f"<rect class='bar' x='{_LABEL_W}' y='{y}' width='{w:.1f}' "
            f"height='{_BAR_H}' rx='4'>"
            f"<title>{escape(label)}: {escape(text)}</title></rect>"
            f"<text class='value' x='{_LABEL_W + w + 8:.1f}' "
            f"y='{y + _BAR_H - 6}'>{escape(text)}</text>"
        )
    parts.append(
        f"<line class='axis' x1='{_LABEL_W}' y1='0' x2='{_LABEL_W}' "
        f"y2='{height}'/>"
    )
    parts.append("</svg>")
    return "".join(parts)


def line_chart(points: Sequence[Tuple[float, float]], title: str,
               x_label: str, y_label: str) -> str:
    """Single-series line chart (2px stroke, >=8px hoverable markers)."""
    if len(points) < 2:
        return ""
    height = 220
    pad_l, pad_r, pad_t, pad_b = 60, 16, 12, 32
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    plot_w = _CHART_W - pad_l - pad_r
    plot_h = height - pad_t - pad_b

    def sx(x: float) -> float:
        return pad_l + plot_w * (x - x_lo) / x_span

    def sy(y: float) -> float:
        return pad_t + plot_h * (1.0 - (y - y_lo) / y_span)

    coords = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in points)
    parts = [
        f"<svg role='img' aria-label='{escape(title)}' "
        f"viewBox='0 0 {_CHART_W} {height}' width='{_CHART_W}'>",
        f"<line class='axis' x1='{pad_l}' y1='{pad_t}' x2='{pad_l}' "
        f"y2='{height - pad_b}'/>",
        f"<line class='axis' x1='{pad_l}' y1='{height - pad_b}' "
        f"x2='{_CHART_W - pad_r}' y2='{height - pad_b}'/>",
        f"<text class='value' x='{pad_l - 8}' y='{pad_t + 10}' "
        f"text-anchor='end'>{escape(_fmt(y_hi))}</text>",
        f"<text class='value' x='{pad_l - 8}' y='{height - pad_b}' "
        f"text-anchor='end'>{escape(_fmt(y_lo))}</text>",
        f"<text class='label' x='{pad_l - 8}' y='{pad_t + plot_h / 2:.0f}' "
        f"text-anchor='end'>{escape(y_label)}</text>",
        f"<text class='label' x='{_CHART_W - pad_r}' y='{height - 8}' "
        f"text-anchor='end'>{escape(x_label)}</text>",
        f"<polyline class='line' points='{coords}'/>",
    ]
    for x, y in points:
        parts.append(
            f"<circle class='dot' cx='{sx(x):.1f}' cy='{sy(y):.1f}' r='4'>"
            f"<title>{escape(x_label)} {escape(_fmt(x))}: "
            f"{escape(_fmt(y))} {escape(y_label)}</title></circle>"
        )
    parts.append("</svg>")
    return "".join(parts)


# -------------------------------------------------------------- page builders

def suite_overview_rows(summary: Mapping[str, object]) -> List[Dict[str, object]]:
    """Per-scenario headline means of a suite aggregate, for the overview."""
    rows: List[Dict[str, object]] = []
    for name, entry in sorted(summary.get("scenarios", {}).items()):
        metrics: Mapping[str, Mapping] = entry.get("metrics", {})

        def mean(metric: str) -> object:
            stats = metrics.get(metric)
            return stats.get("mean", "-") if isinstance(stats, Mapping) else "-"

        rows.append({
            "scenario": name,
            "trials": entry.get("trials"),
            "valid": entry.get("valid_trials"),
            "rounds": mean("rounds"),
            "total bits": mean("total_bits"),
            "bits/node": mean("bits_per_node"),
            "messages": mean("total_messages"),
            "max edge bits": mean("max_edge_bits"),
        })
    return rows


def _trace_section(name: str, events: Sequence[Mapping[str, object]]) -> str:
    summary: TraceSummary = summarize_trace(events)
    parts = [f"<h2>trace: {escape(name)}</h2>"]
    if summary.headers:
        head = summary.headers[0]
        meta = "  ".join(
            f"{key}={head[key]}" for key in
            ("scenario", "solver", "n", "m", "mode", "backend", "faults")
            if key in head
        )
        parts.append(f"<p class='meta'>{escape(meta)} "
                     f"trials={summary.trials}</p>")
    parts.append("<h3>phase timeline</h3>")
    parts.append(html_table(timeline_rows(summary)))
    bits = [(t.phase or "unlabeled", float(t.bits)) for t in summary.phases]
    parts.append("<h3>bits by phase</h3>")
    parts.append(bar_chart(bits, f"{name}: bits by phase", unit="bits"))
    wall = [(t.phase or "unlabeled", round(t.wall_s, 4))
            for t in summary.phases]
    parts.append("<h3>wall-clock by phase</h3>")
    parts.append(bar_chart(wall, f"{name}: wall-clock by phase", unit="s"))
    rss = rss_series(events)
    if len(rss) >= 2:
        parts.append("<h3>resident set over the run</h3>")
        parts.append(line_chart(rss, f"{name}: RSS", "wall s", "MiB"))
    balance = shard_balance(events)
    if balance:
        parts.append("<h3>shard balance</h3>")
        parts.append(
            f"<p class='meta'>imbalance ratio "
            f"{_fmt(balance['imbalance_ratio'])}, cut fraction "
            f"{_fmt(balance['cut_fraction'])} over "
            f"{_fmt(balance['sharded_rounds'])} sharded rounds</p>"
        )
        shard_bits: List[int] = balance["shard_bits"]
        parts.append(bar_chart(
            [(f"shard {i}", float(b)) for i, b in enumerate(shard_bits)],
            f"{name}: bits by shard", unit="bits",
        ))
    return "".join(parts)


def render_report(
    title: str,
    summary: Optional[Mapping[str, object]] = None,
    traces: Optional[Sequence[Tuple[str, Sequence[Mapping[str, object]]]]] = None,
    extra_sections: Optional[Sequence[Tuple[str, str]]] = None,
) -> str:
    """Build the full self-contained HTML report document.

    ``summary`` is an optional suite aggregate (rendered as the overview
    table); ``traces`` is ``(name, events)`` pairs, one section each;
    ``extra_sections`` appends ``(heading, html)`` pairs verbatim.
    """
    body: List[str] = [f"<h1>{escape(title)}</h1>"]
    if summary is not None:
        body.append(
            f"<p class='meta'>suite {escape(str(summary.get('suite')))}</p>"
        )
        body.append("<h2>scenario overview</h2>")
        body.append(html_table(suite_overview_rows(summary)))
    for name, events in traces or ():
        body.append(_trace_section(name, events))
    for heading, html in extra_sections or ():
        body.append(f"<h2>{escape(heading)}</h2>")
        body.append(html)
    return (
        "<!doctype html><html lang='en'><head><meta charset='utf-8'>"
        f"<title>{escape(title)}</title>"
        "<meta name='viewport' content='width=device-width, initial-scale=1'>"
        f"<style>{_STYLE}</style></head><body>"
        + "".join(body)
        + "</body></html>\n"
    )

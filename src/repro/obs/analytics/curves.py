"""Reference curves and the comm-volume regression gate.

The paper's headline guarantees are *communication* statements — every node
sends O(log n) bits per round, so ``max_edge_bits`` should track
``c · log2 n`` and per-node volume should stay poly-logarithmic.  This
module turns those shapes into checkable artifacts:

* :data:`REFERENCE_CURVES` — named growth shapes ``f(n)`` (const, log n,
  log² n, √n, n, n·log n) that measured sweeps are fitted against;
* :func:`fit_curve` / :func:`best_fit` — one-parameter least squares
  ``y ≈ c · f(n)`` with a scale-free residual, so "which shape does this
  sweep follow?" is a computation, not a judgement call;
* :func:`build_comm_baseline` — reduce a suite aggregate to its committed
  comm baseline (``BENCH_comm.json``, schema ``repro-comm/1``): per scenario
  the measured means plus the ``c`` coefficients against ``log2 n``;
* :func:`compare_comm` — the gate.  Comm quantities are byte-deterministic
  (unlike timing/RSS), so a coefficient exceeding the committed ``c`` by
  more than the budget is a ``"fail"`` finding; sweep shapes that fit a
  super-logarithmic curve better than ``log n`` are ``"warn"`` findings
  (shape detection on short sweeps is suggestive, not proof).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.compare import Finding

#: Schema identifier of the committed comm baseline artifact.
COMM_SCHEMA = "repro-comm/1"

#: Conventional filename of the committed comm baseline.
COMM_FILENAME = "BENCH_comm.json"


def _log2(n: float) -> float:
    return math.log2(max(2.0, float(n)))


#: Named reference shapes, ordered simplest-growth first — ties in
#: :func:`best_fit` resolve toward the slower-growing curve.
REFERENCE_CURVES: Dict[str, Callable[[float], float]] = {
    "const": lambda n: 1.0,
    "loglog_n": lambda n: math.log2(max(2.0, _log2(n))),
    "log_n": _log2,
    "log2_n": lambda n: _log2(n) ** 2,
    "sqrt_n": lambda n: math.sqrt(max(1.0, float(n))),
    "n": lambda n: max(1.0, float(n)),
    "n_log_n": lambda n: max(1.0, float(n)) * _log2(n),
}

#: Curves growing faster than the paper's per-round bandwidth target.
SUPER_LOGARITHMIC = ("sqrt_n", "n", "n_log_n")


@dataclass(frozen=True)
class CurveFit:
    """One least-squares fit ``y ≈ coefficient · curve(n)`` over a sweep."""

    curve: str
    coefficient: float
    #: RMS residual divided by the mean |y| — scale-free, comparable
    #: across metrics; 0.0 is an exact fit.
    rel_rms: float
    points: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "curve": self.curve,
            "coefficient": round(self.coefficient, 6),
            "rel_rms": round(self.rel_rms, 6),
            "points": self.points,
        }


def fit_curve(points: Sequence[Tuple[float, float]], curve: str) -> CurveFit:
    """Least-squares fit of ``y ≈ c · f(n)`` over ``(n, y)`` points."""
    try:
        f = REFERENCE_CURVES[curve]
    except KeyError:
        raise ValueError(
            f"unknown reference curve: {curve!r} "
            f"(expected one of {sorted(REFERENCE_CURVES)})"
        ) from None
    if not points:
        raise ValueError("cannot fit a curve to zero points")
    xs = [f(n) for n, _ in points]
    ys = [float(y) for _, y in points]
    denom = sum(x * x for x in xs)
    coeff = (sum(x * y for x, y in zip(xs, ys)) / denom) if denom else 0.0
    mean_abs = sum(abs(y) for y in ys) / len(ys)
    rms = math.sqrt(
        sum((y - coeff * x) ** 2 for x, y in zip(xs, ys)) / len(ys)
    )
    rel = (rms / mean_abs) if mean_abs else 0.0
    return CurveFit(curve=curve, coefficient=coeff, rel_rms=rel,
                    points=len(points))


def best_fit(points: Sequence[Tuple[float, float]]) -> CurveFit:
    """The reference curve with the smallest relative residual on a sweep.

    Ties resolve toward the earlier (slower-growing) curve in
    :data:`REFERENCE_CURVES`, so a constant sweep reports ``const``, not an
    equally-zero-residual ``n_log_n``.
    """
    fits = [fit_curve(points, name) for name in REFERENCE_CURVES]
    return min(fits, key=lambda fit: fit.rel_rms)


# ------------------------------------------------------------------ baseline

#: The per-scenario metrics the baseline records coefficients for, in the
#: order they are checked.  All are per-``log2 n`` — the paper's bandwidth
#: unit.
_GATED_METRICS = ("max_edge_bits", "bits_per_node")


def _metric_mean(entry: Mapping[str, object], metric: str) -> Optional[float]:
    stats = entry.get("metrics", {}).get(metric)
    if not isinstance(stats, Mapping) or "mean" not in stats:
        return None
    return float(stats["mean"])


def build_comm_baseline(summary: Mapping[str, object]) -> Dict[str, object]:
    """Reduce a suite aggregate to the committed comm baseline.

    Per scenario: the graph size, the measured means of the gated comm
    metrics, and their coefficients against ``log2 n``.  Scenarios whose
    aggregate lacks the comm columns (non-coloring solvers without ``n``,
    legacy snapshots) are skipped rather than invented.
    """
    scenarios: Dict[str, object] = {}
    for name, entry in sorted(summary.get("scenarios", {}).items()):
        n = _metric_mean(entry, "n")
        if n is None:
            continue
        record: Dict[str, object] = {
            "family": entry.get("family"),
            "solver": entry.get("solver"),
            "n": n,
        }
        gated = False
        for metric in _GATED_METRICS:
            mean = _metric_mean(entry, metric)
            if mean is None:
                continue
            gated = True
            record[metric] = mean
            record[f"log_coeff_{metric}"] = round(mean / _log2(n), 6)
        if gated:
            scenarios[name] = record
    return {
        "schema": COMM_SCHEMA,
        "suite": summary.get("suite"),
        "reference": "log_n",
        "scenarios": scenarios,
    }


def load_comm_baseline(payload: Mapping[str, object]) -> Mapping[str, object]:
    """Validate a parsed comm baseline's schema (callers do the file I/O)."""
    if payload.get("schema") != COMM_SCHEMA:
        raise ValueError(
            f"unsupported comm baseline schema {payload.get('schema')!r} "
            f"(expected {COMM_SCHEMA!r})"
        )
    return payload


# ---------------------------------------------------------------------- gate

def _sweep_findings(summary: Mapping[str, object]) -> List[Finding]:
    """Shape-check (family, solver) sweeps with >= 2 distinct sizes."""
    sweeps: Dict[Tuple[str, str], List[Tuple[float, float]]] = {}
    for entry in summary.get("scenarios", {}).values():
        n = _metric_mean(entry, "n")
        y = _metric_mean(entry, "max_edge_bits")
        if n is None or y is None:
            continue
        key = (str(entry.get("family")), str(entry.get("solver")))
        sweeps.setdefault(key, []).append((n, y))
    findings: List[Finding] = []
    for (family, solver), points in sorted(sweeps.items()):
        if len({n for n, _ in points}) < 2:
            continue
        fit = best_fit(sorted(points))
        detail = (
            f"{family}/{solver} sweep ({fit.points} sizes): max_edge_bits "
            f"best fits {fit.coefficient:.3g}*{fit.curve} "
            f"(rel rms {fit.rel_rms:.3g})"
        )
        if fit.curve in SUPER_LOGARITHMIC:
            findings.append(Finding(
                "warn", f"{family}/{solver}", "max_edge_bits",
                f"super-logarithmic bandwidth shape: {detail}",
            ))
        else:
            findings.append(Finding(
                "info", f"{family}/{solver}", "max_edge_bits", detail,
            ))
    return findings


def compare_comm(
    baseline: Mapping[str, object],
    fresh: Mapping[str, object],
    budget: float = 0.10,
) -> List[Finding]:
    """Gate a fresh suite aggregate against the committed comm baseline.

    ``baseline`` is a parsed ``BENCH_comm.json`` (see
    :func:`build_comm_baseline`); ``fresh`` is a suite aggregate snapshot.
    Comm volumes are byte-deterministic, so a per-``log2 n`` coefficient
    exceeding the committed one by more than ``budget`` (a fraction; 0.10 =
    10%) is a ``"fail"`` finding.  Improvements and set differences are
    informational, and each measured sweep additionally gets a
    reference-curve shape finding (``"warn"`` when the best fit grows
    faster than ``log n``).
    """
    findings: List[Finding] = []
    try:
        load_comm_baseline(baseline)
    except ValueError as exc:
        return [Finding("fail", "-", "schema", str(exc))]
    if baseline.get("suite") != fresh.get("suite"):
        return [Finding(
            "fail", "-", "suite",
            f"suite mismatch: comm baseline is for "
            f"{baseline.get('suite')!r}, fresh run is {fresh.get('suite')!r}",
        )]
    base_scenarios: Mapping[str, Mapping] = baseline.get("scenarios", {})
    fresh_scenarios: Mapping[str, Mapping] = fresh.get("scenarios", {})
    for name in sorted(set(base_scenarios) - set(fresh_scenarios)):
        findings.append(Finding(
            "info", name, "-", "scenario missing from fresh run "
            "(the correctness gate reports this as a failure)",
        ))
    for name in sorted(set(fresh_scenarios) - set(base_scenarios)):
        findings.append(Finding(
            "info", name, "-",
            f"scenario not in the comm baseline (refresh {COMM_FILENAME})",
        ))
    for name in sorted(set(base_scenarios) & set(fresh_scenarios)):
        base = base_scenarios[name]
        entry = fresh_scenarios[name]
        n = _metric_mean(entry, "n")
        if n is None:
            findings.append(Finding(
                "info", name, "n", "fresh aggregate has no n column; "
                "comm coefficients not checked",
            ))
            continue
        for metric in _GATED_METRICS:
            key = f"log_coeff_{metric}"
            if key not in base:
                continue
            mean = _metric_mean(entry, metric)
            if mean is None:
                findings.append(Finding(
                    "fail", name, metric,
                    f"comm column missing from fresh aggregate (baseline "
                    f"records {key}={base[key]})",
                ))
                continue
            old = float(base[key])
            # Same rounding as build_comm_baseline, so an unchanged run
            # compares exactly equal to its own baseline.
            new = round(mean / _log2(n), 6)
            detail = (
                f"{metric}/log2(n): {old:g} -> {new:.6g} vs c*log n "
                f"reference (budget +{budget:.0%})"
            )
            if old > 0 and new > old * (1.0 + budget):
                findings.append(Finding(
                    "fail", name, metric, f"comm regression: {detail}",
                ))
            elif new != old:
                findings.append(Finding("info", name, metric, detail))
    findings.extend(_sweep_findings(fresh))
    return findings

"""Trace-side communication analytics: shard balance and resource series.

These helpers read the *trace* (the ``TRACE_*.jsonl`` event stream written
by :class:`~repro.obs.tracer.RoundTracer`), never the live network — they
are pure post-hoc reductions, so the observation-only contract holds by
construction.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple


def shard_balance(
    events: Sequence[Mapping[str, object]],
) -> Optional[Dict[str, object]]:
    """Per-shard load split of a sharded trace, or ``None`` when serial.

    Folds every round event carrying ``shards`` triples into per-shard
    message/bit totals and reports the balance metrics the ROADMAP asks
    for:

    * ``imbalance_ratio`` — max shard bits over mean shard bits (1.0 is a
      perfect split; 2.0 means the hottest shard carried twice its share);
    * ``cut_fraction`` — shard-boundary messages relayed by the coordinator
      over all messages of the sharded rounds (0.0 means the partition cut
      no traffic).
    """
    shard_messages: List[int] = []
    shard_bits: List[int] = []
    sharded_rounds = 0
    cut_messages = 0
    total_messages = 0
    for event in events:
        if event.get("type") != "round":
            continue
        shards = event.get("shards")
        if not shards:
            continue
        sharded_rounds += 1
        cut_messages += int(event.get("cut_messages", 0))
        total_messages += int(event.get("messages", 0))
        if len(shard_messages) < len(shards):
            grow = len(shards) - len(shard_messages)
            shard_messages.extend([0] * grow)
            shard_bits.extend([0] * grow)
        for i, stats in enumerate(shards):
            shard_messages[i] += int(stats[0])
            shard_bits[i] += int(stats[1])
    if not sharded_rounds:
        return None
    mean_bits = sum(shard_bits) / len(shard_bits)
    return {
        "shards": len(shard_bits),
        "sharded_rounds": sharded_rounds,
        "shard_messages": shard_messages,
        "shard_bits": shard_bits,
        "imbalance_ratio": round(
            (max(shard_bits) / mean_bits) if mean_bits else 1.0, 4
        ),
        "cut_messages": cut_messages,
        "cut_fraction": round(
            (cut_messages / total_messages) if total_messages else 0.0, 4
        ),
    }


def rss_series(
    events: Sequence[Mapping[str, object]],
) -> List[Tuple[float, float]]:
    """The trace's resource-sample curve as ``(wall_s, rss_mb)`` points."""
    series: List[Tuple[float, float]] = []
    for event in events:
        if event.get("type") == "sample" and "rss_mb" in event:
            series.append((
                float(event.get("wall_s", 0.0)), float(event["rss_mb"]),
            ))
    return series

"""repro.obs.analytics — performance intelligence over traces & aggregates.

Pure post-hoc reductions of the artifacts PR 6 introduced (``TRACE_*.jsonl``
event streams, ``BENCH_*.json`` aggregates): comm-volume and shard-balance
summaries, reference-curve fitting with the comm regression gate, the
append-only run-history registry, and the static HTML report renderer.
Nothing here touches a live run — the observation-only contract extends to
analytics by construction (see DESIGN.md, "Analytics invariants").
"""

from repro.obs.analytics.comm import rss_series, shard_balance
from repro.obs.analytics.curves import (
    COMM_FILENAME,
    COMM_SCHEMA,
    REFERENCE_CURVES,
    SUPER_LOGARITHMIC,
    CurveFit,
    best_fit,
    build_comm_baseline,
    compare_comm,
    fit_curve,
    load_comm_baseline,
)
from repro.obs.analytics.history import (
    RUNS_FILENAME,
    RUNS_SCHEMA,
    aggregate_digest,
    append_run,
    detect_trends,
    environment_provenance,
    load_runs,
    localize_digest_change,
    run_record,
    trend_rows,
)
from repro.obs.analytics.htmlreport import (
    bar_chart,
    html_table,
    line_chart,
    render_report,
    suite_overview_rows,
)

__all__ = [
    "COMM_FILENAME",
    "COMM_SCHEMA",
    "REFERENCE_CURVES",
    "RUNS_FILENAME",
    "RUNS_SCHEMA",
    "SUPER_LOGARITHMIC",
    "CurveFit",
    "aggregate_digest",
    "append_run",
    "bar_chart",
    "best_fit",
    "build_comm_baseline",
    "compare_comm",
    "detect_trends",
    "environment_provenance",
    "fit_curve",
    "html_table",
    "line_chart",
    "load_comm_baseline",
    "load_runs",
    "localize_digest_change",
    "render_report",
    "rss_series",
    "run_record",
    "shard_balance",
    "suite_overview_rows",
    "trend_rows",
]

"""Run-history registry: an append-only ``RUNS.jsonl`` of suite runs.

Every ``repro suite run`` appends one record — when the run's aggregate
snapshot was produced, its sha256 digest, validity counts, wall-clock/RSS,
and environment provenance (python/numpy/platform/cpus plus the perf knobs
the aggregate deliberately omits).  The registry is what turns isolated
bench runs into a tracked trajectory: ``repro report trend`` folds the
records into cross-run findings — digest drift is informational (the
aggregate is byte-deterministic, so a changed digest means the *code*
changed what it measures), correctness drops fail, and wall/RSS growth
warns, mirroring the severity conventions of ``suite compare``.

The records never feed back into any run — appending and reading the
registry is observation-only by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import sys
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from repro.experiments.compare import Finding

#: Conventional filename of the registry inside a suite output directory.
RUNS_FILENAME = "RUNS.jsonl"

#: Record schema identifier (bump when the record shape changes).
RUNS_SCHEMA = "repro-runs/1"


def aggregate_digest(summary: Mapping[str, object]) -> str:
    """sha256 of the aggregate's canonical serialization.

    Uses the same byte-stable encoding the committed ``BENCH_suite.json``
    is written with, so the digest of a run equals the digest of its
    artifact file.
    """
    from repro.experiments.artifacts import canonical_dumps

    return hashlib.sha256(canonical_dumps(summary).encode()).hexdigest()


def environment_provenance() -> Dict[str, object]:
    """The machine/toolchain facts a regression hunt needs to rule out."""
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": sys.platform,
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def run_record(
    summary: Mapping[str, object],
    timing: Optional[Mapping[str, object]] = None,
    timestamp: Optional[float] = None,
    knobs: Optional[Mapping[str, object]] = None,
    digest_dir: Optional[Path] = None,
) -> Dict[str, object]:
    """Build one registry record from a run's aggregate (+ optional timing).

    ``knobs`` carries the perf-only execution parameters (backend, shards,
    workers, ledger) that the deterministic aggregate deliberately omits —
    here they are exactly the provenance a trend reader wants.
    ``digest_dir`` records where the run wrote its ``DIGEST_*.jsonl``
    streams so ``repro report trend`` can align them when a later run's
    aggregate digest changes.
    """
    scenarios: Mapping[str, Mapping] = summary.get("scenarios", {})
    record: Dict[str, object] = {
        "schema": RUNS_SCHEMA,
        "ts": round(float(timestamp), 3) if timestamp is not None else None,
        "suite": summary.get("suite"),
        "digest": aggregate_digest(summary),
        "scenarios": sorted(scenarios),
        "trials": sum(int(e.get("trials", 0)) for e in scenarios.values()),
        "valid_trials": sum(
            int(e.get("valid_trials", 0)) for e in scenarios.values()
        ),
        "env": environment_provenance(),
    }
    if summary.get("seed_override") is not None:
        record["seed_override"] = summary["seed_override"]
    if timing is not None:
        record["wall_s"] = round(float(timing.get("total_wall_s", 0.0)), 4)
        rss_map = timing.get("peak_rss_mb") or {}
        if rss_map:
            record["peak_rss_mb"] = max(float(v) for v in rss_map.values())
    if knobs:
        record["knobs"] = dict(knobs)
    if digest_dir is not None:
        record["digest_dir"] = str(digest_dir)
    return record


def append_run(path: Path, record: Mapping[str, object]) -> None:
    """Append one record to the registry (creating the file if needed)."""
    line = json.dumps(dict(record), sort_keys=True, default=str)
    with open(Path(path), "a") as handle:
        handle.write(line + "\n")


def load_runs(path: Path, suite: Optional[str] = None) -> List[Dict[str, object]]:
    """Read the registry; with ``suite`` given, that suite's records only.

    Unparseable lines are skipped (an interrupted append must not brick the
    whole registry), as are records of other schemas.
    """
    runs: List[Dict[str, object]] = []
    registry = Path(path)
    if not registry.exists():
        return runs
    for line in registry.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if not isinstance(record, dict) or record.get("schema") != RUNS_SCHEMA:
            continue
        if suite is not None and record.get("suite") != suite:
            continue
        runs.append(record)
    return runs


#: Most per-scenario digest-drift localizations emitted per run pair before
#: the aligner stops (the first few name the drift; the rest are noise).
LOCALIZE_LIMIT = 3


def localize_digest_change(
    suite: str,
    prev: Mapping[str, object],
    cur: Mapping[str, object],
    limit: int = LOCALIZE_LIMIT,
) -> List[Finding]:
    """Align two runs' stored ``DIGEST_*.jsonl`` streams, per scenario.

    Upgrades the bare "aggregate digest changed" trend finding into
    per-scenario (round, phase, shard) localizations via the forensics
    aligner.  Every obstacle — no recorded ``digest_dir``, both runs
    overwriting the same directory, a stream file missing or unreadable —
    degrades to an ``info`` finding rather than an error: trend reporting
    must never crash on an incomplete registry.
    """
    findings: List[Finding] = []
    dir_a = prev.get("digest_dir")
    dir_b = cur.get("digest_dir")
    if not dir_a or not dir_b:
        findings.append(Finding(
            "info", suite, "digest",
            "no stored digest streams to align (run with --digest DIR to "
            "record them; then a digest change localizes itself)",
        ))
        return findings
    if str(dir_a) == str(dir_b):
        findings.append(Finding(
            "info", suite, "digest",
            f"both runs wrote digest streams to {dir_a} — the earlier run's "
            "streams were overwritten, so there is nothing to align; use "
            "distinct --digest directories per run",
        ))
        return findings
    from repro.obs.forensics import (
        digest_filename, first_divergence, load_digests, render_divergence,
    )

    emitted = 0
    scenarios = sorted(set(prev.get("scenarios") or [])
                       & set(cur.get("scenarios") or []))
    for scenario in scenarios:
        path_a = Path(dir_a) / digest_filename(scenario)
        path_b = Path(dir_b) / digest_filename(scenario)
        missing = [str(p) for p in (path_a, path_b) if not p.exists()]
        if missing:
            findings.append(Finding(
                "info", suite, "digest",
                f"{scenario}: digest stream missing "
                f"({', '.join(missing)}); cannot align",
            ))
            continue
        try:
            div = first_divergence(load_digests(path_a),
                                   load_digests(path_b))
        except (OSError, ValueError) as exc:
            findings.append(Finding(
                "info", suite, "digest",
                f"{scenario}: unreadable digest stream ({exc})",
            ))
            continue
        if div is None:
            continue
        summary_line = render_divergence(div).splitlines()[0]
        findings.append(Finding(
            "info", suite, "digest",
            f"{summary_line} — bisect with "
            f"`repro diff {path_a} {path_b} --bisect`",
        ))
        emitted += 1
        if emitted >= limit:
            remaining = len(scenarios) - scenarios.index(scenario) - 1
            if remaining > 0:
                findings.append(Finding(
                    "info", suite, "digest",
                    f"{remaining} more scenario(s) not aligned "
                    f"(localization limit {limit})",
                ))
            break
    return findings


def detect_trends(
    runs: List[Dict[str, object]],
    wall_budget: float = 0.25,
    rss_budget: float = 0.25,
) -> List[Finding]:
    """Cross-run findings over a registry, grouped per suite.

    Each suite's records are compared consecutive-pairwise in file
    (append) order:

    * ``valid_trials`` dropping between runs of the same digest → ``fail``
      (same workload, fewer valid colorings — a real correctness drift);
    * aggregate digest change → ``info``, upgraded with per-scenario
      localizations when both runs stored ``DIGEST_*.jsonl`` streams
      (:func:`localize_digest_change`);
    * wall-clock / peak-RSS growth beyond the budgets → ``warn`` (machine
      state, same soft severity as the ``suite compare`` budgets).
    """
    findings: List[Finding] = []
    by_suite: Dict[str, List[Dict[str, object]]] = {}
    for record in runs:
        by_suite.setdefault(str(record.get("suite")), []).append(record)
    for suite, records in sorted(by_suite.items()):
        for prev, cur in zip(records, records[1:]):
            if cur.get("digest") != prev.get("digest"):
                findings.append(Finding(
                    "info", suite, "digest",
                    f"aggregate digest changed: {str(prev.get('digest'))[:12]} "
                    f"-> {str(cur.get('digest'))[:12]} (the measured workload "
                    "or its metrics changed)",
                ))
                findings.extend(localize_digest_change(suite, prev, cur))
            elif int(cur.get("valid_trials", 0)) < int(prev.get("valid_trials", 0)):
                findings.append(Finding(
                    "fail", suite, "valid_trials",
                    f"correctness drift across runs: "
                    f"{prev.get('valid_trials')} -> {cur.get('valid_trials')} "
                    "valid trials on an identical aggregate digest",
                ))
            old_wall = float(prev.get("wall_s") or 0.0)
            new_wall = float(cur.get("wall_s") or 0.0)
            if old_wall > 0 and new_wall > old_wall * (1.0 + wall_budget):
                findings.append(Finding(
                    "warn", suite, "wall_s",
                    f"run slowed: {old_wall:g}s -> {new_wall:g}s "
                    f"({(new_wall - old_wall) / old_wall:+.0%}, "
                    f"budget +{wall_budget:.0%})",
                ))
            old_rss = float(prev.get("peak_rss_mb") or 0.0)
            new_rss = float(cur.get("peak_rss_mb") or 0.0)
            if old_rss > 0 and new_rss > old_rss * (1.0 + rss_budget):
                findings.append(Finding(
                    "warn", suite, "peak_rss_mb",
                    f"run peaked higher: {old_rss:g}MiB -> {new_rss:g}MiB "
                    f"({(new_rss - old_rss) / old_rss:+.0%}, "
                    f"budget +{rss_budget:.0%})",
                ))
    return findings


def trend_rows(runs: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Printable per-run rows of a registry (append order preserved)."""
    rows: List[Dict[str, object]] = []
    for record in runs:
        env = record.get("env") or {}
        rows.append({
            "suite": record.get("suite"),
            "digest": str(record.get("digest", ""))[:12],
            "trials": record.get("trials"),
            "valid": record.get("valid_trials"),
            "wall s": record.get("wall_s", "-"),
            "rss MiB": record.get("peak_rss_mb", "-"),
            "python": env.get("python", "-"),
            "cpus": env.get("cpus", "-"),
        })
    return rows

"""Trace summaries: phase timelines and trace-vs-trace comparison.

A *phase timeline* folds a trace's round events by phase (the label prefix
before ``":"`` — the same convention as
:func:`repro.metrics.ledger.rounds_by_phase`), in first-appearance order:
per phase, how many rounds ran, how many messages and bits they moved, and
how much wall-clock they took.  This is the per-phase comparison surface
competing solvers will share.

``compare_traces`` diffs the *deterministic* columns (rounds, messages,
bits) of two timelines; wall-clock is shown but never drives the verdict —
two byte-identical runs on different machines must compare clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.metrics.report import format_table


@dataclass
class PhaseTotals:
    """Accumulated cost of one phase across a trace's round events."""

    phase: str
    rounds: int = 0
    messages: int = 0
    bits: int = 0
    max_edge_bits: int = 0
    wall_s: float = 0.0

    def add_round(self, event: Mapping[str, object]) -> None:
        self.rounds += 1
        self.messages += int(event.get("messages", 0))
        self.bits += int(event.get("bits", 0))
        self.max_edge_bits = max(self.max_edge_bits,
                                 int(event.get("max_edge_bits", 0)))
        self.wall_s += float(event.get("wall_s", 0.0))


@dataclass
class TraceSummary:
    """One trace file reduced to totals plus its per-phase timeline."""

    trials: int = 0
    rounds: int = 0
    messages: int = 0
    bits: int = 0
    max_edge_bits: int = 0
    wall_s: float = 0.0
    samples: int = 0
    peak_rss_mb: float = 0.0
    phases: List[PhaseTotals] = field(default_factory=list)
    headers: List[Dict[str, object]] = field(default_factory=list)

    def phase(self, name: str) -> Optional[PhaseTotals]:
        for totals in self.phases:
            if totals.phase == name:
                return totals
        return None


def summarize_trace(events: Sequence[Mapping[str, object]]) -> TraceSummary:
    """Fold a trace's events into totals and a first-appearance phase timeline.

    Totals are computed from the ``round`` events themselves (not trusted
    from the ``end`` events), so a summary of a truncated trace is honest
    about exactly what it saw.
    """
    summary = TraceSummary()
    by_phase: Dict[str, PhaseTotals] = {}
    for event in events:
        kind = event.get("type")
        if kind == "round":
            label = str(event.get("label", ""))
            phase = str(event.get("phase", label.split(":", 1)[0]))
            totals = by_phase.get(phase)
            if totals is None:
                totals = by_phase[phase] = PhaseTotals(phase=phase)
                summary.phases.append(totals)
            totals.add_round(event)
            summary.rounds += 1
            summary.messages += int(event.get("messages", 0))
            summary.bits += int(event.get("bits", 0))
            summary.max_edge_bits = max(summary.max_edge_bits,
                                        int(event.get("max_edge_bits", 0)))
            summary.wall_s += float(event.get("wall_s", 0.0))
        elif kind == "header":
            summary.trials += 1
            summary.headers.append(dict(event))
        elif kind == "sample":
            summary.samples += 1
            summary.peak_rss_mb = max(summary.peak_rss_mb,
                                      float(event.get("rss_mb", 0.0)))
        elif kind == "end":
            summary.peak_rss_mb = max(summary.peak_rss_mb,
                                      float(event.get("rss_mb", 0.0)))
    return summary


def summary_as_dict(summary: TraceSummary) -> Dict[str, object]:
    """Machine-readable form of a summary (the ``--json`` output shape).

    Plain JSON-serializable values only; phase order is preserved (first
    appearance), everything else is stable across machines — wall-clock
    fields are included but rounded, and no environment state leaks in.
    """
    return {
        "trials": summary.trials,
        "rounds": summary.rounds,
        "messages": summary.messages,
        "bits": summary.bits,
        "max_edge_bits": summary.max_edge_bits,
        "wall_s": round(summary.wall_s, 6),
        "samples": summary.samples,
        "peak_rss_mb": summary.peak_rss_mb,
        "phases": [
            {
                "phase": totals.phase,
                "rounds": totals.rounds,
                "messages": totals.messages,
                "bits": totals.bits,
                "max_edge_bits": totals.max_edge_bits,
                "wall_s": round(totals.wall_s, 6),
            }
            for totals in summary.phases
        ],
    }


def comparison_as_dict(events_a: Sequence[Mapping[str, object]],
                       events_b: Sequence[Mapping[str, object]],
                       name_a: str = "a",
                       name_b: str = "b") -> Dict[str, object]:
    """Machine-readable trace comparison (the ``compare --json`` shape)."""
    drifts = compare_traces(events_a, events_b)
    return {
        "names": [name_a, name_b],
        "a": summary_as_dict(summarize_trace(events_a)),
        "b": summary_as_dict(summarize_trace(events_b)),
        "drift": [
            {"phase": d.phase, "column": d.column, "a": d.a, "b": d.b}
            for d in drifts
        ],
        "identical": not drifts,
    }


def timeline_rows(summary: TraceSummary) -> List[Dict[str, object]]:
    """Printable per-phase rows of one summary (plus a totals row)."""
    rows: List[Dict[str, object]] = []
    for totals in summary.phases:
        rows.append({
            "phase": totals.phase or "-",
            "rounds": totals.rounds,
            "messages": totals.messages,
            "bits": totals.bits,
            "max edge bits": totals.max_edge_bits,
            "wall s": round(totals.wall_s, 4),
        })
    rows.append({
        "phase": "TOTAL",
        "rounds": summary.rounds,
        "messages": summary.messages,
        "bits": summary.bits,
        "max edge bits": summary.max_edge_bits,
        "wall s": round(summary.wall_s, 4),
    })
    return rows


def render_timeline(summary: TraceSummary, title: str = "phase timeline") -> str:
    """The ``repro trace summarize`` output: header line + per-phase table."""
    lines: List[str] = []
    if summary.headers:
        head = summary.headers[0]
        parts = [f"trials={summary.trials}"]
        for key in ("scenario", "solver", "n", "m", "mode", "backend",
                    "bandwidth_bits", "faults"):
            if key in head:
                parts.append(f"{key}={head[key]}")
        if summary.peak_rss_mb:
            parts.append(f"peak_rss={summary.peak_rss_mb}MiB")
        lines.append("  ".join(str(p) for p in parts))
    lines.append(format_table(timeline_rows(summary), title=title))
    return "\n".join(lines)


@dataclass
class PhaseDrift:
    """One phase's deterministic-column difference between two traces."""

    phase: str
    column: str
    a: int
    b: int

    def as_row(self) -> Dict[str, object]:
        delta = self.b - self.a
        pct = (100.0 * delta / self.a) if self.a else float("inf")
        return {
            "phase": self.phase or "-",
            "column": self.column,
            "a": self.a,
            "b": self.b,
            "delta": delta,
            "delta %": round(pct, 2) if self.a else "new",
        }


def compare_traces(events_a: Sequence[Mapping[str, object]],
                   events_b: Sequence[Mapping[str, object]]) -> List[PhaseDrift]:
    """Diff the deterministic per-phase columns of two traces.

    Returns one :class:`PhaseDrift` per (phase, column) that differs in
    rounds, messages, or bits — empty means the two traces describe the
    same per-phase communication, whatever their wall-clocks were.
    """
    a = summarize_trace(events_a)
    b = summarize_trace(events_b)
    drifts: List[PhaseDrift] = []
    names = [t.phase for t in a.phases]
    names.extend(t.phase for t in b.phases if t.phase not in names)
    for name in names:
        pa = a.phase(name) or PhaseTotals(phase=name)
        pb = b.phase(name) or PhaseTotals(phase=name)
        for column in ("rounds", "messages", "bits"):
            va, vb = getattr(pa, column), getattr(pb, column)
            if va != vb:
                drifts.append(PhaseDrift(phase=name, column=column, a=va, b=vb))
    return drifts


def render_comparison(events_a: Sequence[Mapping[str, object]],
                      events_b: Sequence[Mapping[str, object]],
                      name_a: str = "a", name_b: str = "b") -> str:
    """The ``repro trace compare`` output: side-by-side timelines + drift."""
    a = summarize_trace(events_a)
    b = summarize_trace(events_b)
    rows: List[Dict[str, object]] = []
    names = [t.phase for t in a.phases]
    names.extend(t.phase for t in b.phases if t.phase not in names)
    for name in names:
        pa = a.phase(name) or PhaseTotals(phase=name)
        pb = b.phase(name) or PhaseTotals(phase=name)
        rows.append({
            "phase": name or "-",
            f"rounds {name_a}": pa.rounds,
            f"rounds {name_b}": pb.rounds,
            f"bits {name_a}": pa.bits,
            f"bits {name_b}": pb.bits,
            f"wall s {name_a}": round(pa.wall_s, 4),
            f"wall s {name_b}": round(pb.wall_s, 4),
        })
    table = format_table(rows, title=f"phase timelines: {name_a} vs {name_b}")
    drifts = compare_traces(events_a, events_b)
    if not drifts:
        return table + "\nno drift: per-phase rounds/messages/bits identical"
    drift_table = format_table([d.as_row() for d in drifts],
                               title="deterministic drift")
    return table + "\n" + drift_table

"""repro.obs — round-level tracing, telemetry, and trace artifacts.

Observation-only by contract: nothing in this package consumes randomness
or mutates engine state, and a traced run is byte-identical to an untraced
one (see DESIGN.md, "Observability invariants").
"""

from repro.obs.artifacts import (
    TRACE_PREFIX,
    TRACE_SUFFIX,
    load_trace,
    trace_filename,
    write_trace,
)
from repro.obs.heartbeat import Heartbeat
from repro.obs.sampler import (
    ResourceSampler,
    cpu_seconds,
    current_rss_mb,
    peak_rss_mb,
)
from repro.obs.summary import (
    PhaseDrift,
    PhaseTotals,
    TraceSummary,
    compare_traces,
    comparison_as_dict,
    render_comparison,
    render_timeline,
    summarize_trace,
    summary_as_dict,
    timeline_rows,
)
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA,
    CompositeTracer,
    NullTracer,
    RoundTracer,
    Tracer,
    add_round_observer,
    make_tracer,
    remove_round_observer,
)

__all__ = [
    "TRACE_PREFIX",
    "TRACE_SCHEMA",
    "TRACE_SUFFIX",
    "NULL_TRACER",
    "CompositeTracer",
    "Heartbeat",
    "NullTracer",
    "PhaseDrift",
    "PhaseTotals",
    "ResourceSampler",
    "RoundTracer",
    "Tracer",
    "TraceSummary",
    "add_round_observer",
    "remove_round_observer",
    "compare_traces",
    "comparison_as_dict",
    "cpu_seconds",
    "current_rss_mb",
    "load_trace",
    "make_tracer",
    "peak_rss_mb",
    "render_comparison",
    "render_timeline",
    "summarize_trace",
    "summary_as_dict",
    "timeline_rows",
    "trace_filename",
    "write_trace",
]

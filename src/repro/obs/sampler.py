"""Process resource sampling for traces and heartbeats.

The sampler answers "what is this run costing the machine *right now*":
current resident-set size and cumulative CPU time.  Current RSS comes from
``/proc/self/statm`` where available (Linux); elsewhere it degrades to the
``ru_maxrss`` lifetime high-water mark — still useful for spotting growth,
and clearly labelled as a peak by :func:`current_rss_mb` returning the best
available number rather than failing.

Everything here is observation-only: no RNG, no writes, no side effects
beyond reading process counters — the same contract as the rest of
:mod:`repro.obs`.
"""

from __future__ import annotations

import os
import resource
import sys
from typing import Dict


def peak_rss_mb() -> float:
    """Lifetime peak resident-set size of this process, in MiB."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024  # Linux reports KiB; macOS reports bytes
    return round(peak / (1024.0 * 1024.0), 1)


def current_rss_mb() -> float:
    """Current resident-set size in MiB (falls back to the lifetime peak).

    ``/proc/self/statm`` field 1 is resident pages; multiplied by the page
    size it gives the live RSS, which is what a long run's trace should show
    (the peak only ever grows, hiding releases).
    """
    try:
        with open("/proc/self/statm") as fh:
            pages = int(fh.read().split()[1])
        return round(pages * os.sysconf("SC_PAGE_SIZE") / (1024.0 * 1024.0), 1)
    except (OSError, ValueError, IndexError):
        return peak_rss_mb()


def cpu_seconds() -> float:
    """Cumulative user+system CPU time of this process, in seconds."""
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return usage.ru_utime + usage.ru_stime


class ResourceSampler:
    """Produce one resource sample: current RSS and cumulative CPU time."""

    def sample(self) -> Dict[str, float]:
        return {
            "rss_mb": current_rss_mb(),
            "cpu_s": round(cpu_seconds(), 3),
        }

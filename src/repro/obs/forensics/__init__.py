"""repro.obs.forensics — determinism forensics: digests, diff, bisection.

Chained per-round state digests (:class:`DigestTracer` on the PR 6 tracer
seam), byte-reproducible ``DIGEST_<scenario>.jsonl`` artifacts, and the
``repro diff`` debugger that aligns two digest streams, localizes the first
divergent (round, phase, shard), and bisects to the first divergent node
via a round-windowed fine mode.

Observation-only, like the rest of :mod:`repro.obs`: no RNG consumed, no
state mutated, digest-enabled runs byte-identical to untraced ones.
"""

from repro.obs.forensics.artifacts import (
    DIGEST_PREFIX,
    DIGEST_SUFFIX,
    digest_filename,
    load_digests,
    write_digests,
)
from repro.obs.forensics.diff import (
    BisectReport,
    Divergence,
    FineDivergence,
    bisect_divergence,
    first_divergence,
    render_bisect,
    render_divergence,
    spec_from_payload,
    spec_payload,
    split_trials,
)
from repro.obs.forensics.digest import (
    CHAIN_INIT,
    DIGEST_SCHEMA,
    MultisetDigest,
    canonical_bytes,
    hex16,
    payload_hash,
    states_digest,
)
from repro.obs.forensics.tracer import (
    DigestTracer,
    ShardDigestCollector,
)

__all__ = [
    "BisectReport",
    "CHAIN_INIT",
    "DIGEST_PREFIX",
    "DIGEST_SCHEMA",
    "DIGEST_SUFFIX",
    "DigestTracer",
    "Divergence",
    "FineDivergence",
    "MultisetDigest",
    "ShardDigestCollector",
    "bisect_divergence",
    "canonical_bytes",
    "digest_filename",
    "first_divergence",
    "hex16",
    "load_digests",
    "payload_hash",
    "render_bisect",
    "render_divergence",
    "spec_from_payload",
    "spec_payload",
    "split_trials",
    "states_digest",
    "write_digests",
]

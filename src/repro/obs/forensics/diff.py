"""The repro diff debugger: align digest streams, localize, bisect.

Three layers, each built on the one below:

* :func:`first_divergence` — align two ``DIGEST_*.jsonl`` event lists
  trial by trial and round by round (the chain makes prefix equality a
  single comparison per round) and report the first divergent
  (round, phase, shard) with per-component attribution: inbox bytes,
  ledger counters, liveness, solver state, or round structure.
* :func:`bisect_divergence` — re-run both sides' trials in *fine* mode
  over a window around the divergent round (serial, default backend —
  valid because the digest chain is pinned equal across backends and
  shard counts) and name the first divergent node and which component
  diverged first for it.
* ``repro diff`` / ``repro report trend`` (:mod:`repro.cli`,
  :mod:`repro.obs.analytics.history`) — the user-facing surfaces.

The bisection re-run is possible because every digest header embeds the
scenario spec's workload fields (:func:`spec_payload`); performance knobs
(backend/ledger/shards) are deliberately absent and default on re-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Component precedence inside one divergent round — causal order: a round's
#: delivered bytes feed the state computation, which decides halting; the
#: ledger counters summarize the delivery.
_COMPONENT_ORDER = ("structure", "inbox", "counters", "liveness", "state")


# ------------------------------------------------------------- spec embedding
def spec_payload(spec) -> Dict[str, Any]:
    """JSON-safe embedding of a spec's workload fields for digest headers.

    Everything the seed derivation and the solvers read — and nothing the
    byte-identity contract says must not matter (backend, ledger, shards,
    trial-worker count).  Fault plans embed via their canonical encoding,
    which is JSON-round-trip stable by design.
    """
    from repro.faults.plan import FaultPlan

    payload: Dict[str, Any] = {
        "name": spec.name,
        "family": spec.family,
        "solver": spec.solver,
        "family_params": dict(spec.family_params),
        "solver_params": dict(spec.solver_params),
        "mode": spec.mode,
        "trials": spec.trials,
        "seed": spec.seed,
    }
    if spec.bandwidth_bits is not None:
        payload["bandwidth_bits"] = spec.bandwidth_bits
    plan = FaultPlan.coerce(spec.faults)
    if plan is not None:
        payload["faults"] = plan.canonical()
    return payload


def spec_from_payload(payload: Mapping[str, Any]):
    """Rebuild a runnable :class:`ScenarioSpec` from an embedded payload.

    Performance knobs revert to their defaults (serial batch backend) —
    legitimate, because the digest chain is backend- and shard-neutral.
    Node identifiers survive only if they are JSON-native (int/str); every
    in-repo graph family uses int nodes.
    """
    from repro.experiments.spec import ScenarioSpec

    faults = payload.get("faults")
    params: Dict[str, Any] = {}
    if faults:
        params = dict(faults)
        if "crash" in params:
            params["crash"] = {
                int(round_id): list(nodes)
                for round_id, nodes in params["crash"].items()
            }
        if "delay" in params:
            params["delay"] = {
                (sender, receiver): slots
                for sender, receiver, slots in params["delay"]
            }
    return ScenarioSpec(
        name=payload["name"],
        family=payload["family"],
        solver=payload["solver"],
        family_params=dict(payload.get("family_params", {})),
        solver_params=dict(payload.get("solver_params", {})),
        mode=payload.get("mode", "congest"),
        bandwidth_bits=payload.get("bandwidth_bits"),
        trials=int(payload.get("trials", 1)),
        seed=int(payload.get("seed", 0)),
        faults=params,
    )


# ------------------------------------------------------------- stream walking
def split_trials(events: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Group a stream's events into per-trial blocks, in stream order."""
    trials: List[Dict[str, Any]] = []
    current: Optional[Dict[str, Any]] = None
    for event in events:
        kind = event.get("type")
        if kind == "header":
            current = {"header": event, "rounds": [], "fine": {}, "end": None}
            trials.append(current)
        elif current is None:
            raise ValueError("digest stream does not start with a header event")
        elif kind == "round":
            current["rounds"].append(event)
        elif kind == "fine":
            current["fine"][event["round"]] = event
        elif kind == "end":
            current["end"] = event
    return trials


@dataclass
class Divergence:
    """The first point where two digest streams disagree."""

    scenario: str
    trial: int
    pair_index: int
    component: str  # primary: structure | inbox | counters | liveness | state
    components: Tuple[str, ...] = ()
    round: Optional[int] = None
    phase: Optional[str] = None
    label: Optional[str] = None
    shard: Optional[int] = None
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "scenario": self.scenario,
            "trial": self.trial,
            "component": self.component,
            "components": list(self.components),
            "detail": self.detail,
        }
        for key in ("round", "phase", "label", "shard"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


def _round_components(
    round_a: Mapping[str, Any], round_b: Mapping[str, Any]
) -> Tuple[List[str], List[str]]:
    """Which components differ between two aligned round events, and how."""
    components: List[str] = []
    details: List[str] = []
    if round_a.get("label") != round_b.get("label"):
        components.append("structure")
        details.append(
            f"label {round_a.get('label')!r} vs {round_b.get('label')!r}"
        )
    if (round_a.get("payload") != round_b.get("payload")
            or round_a.get("payload_n") != round_b.get("payload_n")):
        components.append("inbox")
        details.append(
            "payload digest "
            f"{round_a.get('payload')}/{round_a.get('payload_n')} vs "
            f"{round_b.get('payload')}/{round_b.get('payload_n')}"
        )
    counter_diffs = [
        f"{key} {round_a.get(key)} vs {round_b.get(key)}"
        for key in ("messages", "bits", "max_edge_bits")
        if round_a.get(key) != round_b.get(key)
    ]
    if counter_diffs:
        components.append("counters")
        details.append(", ".join(counter_diffs))
    if round_a.get("halted") != round_b.get("halted"):
        components.append("liveness")
        details.append(
            f"halted {round_a.get('halted')} vs {round_b.get('halted')}"
        )
    if (round_a.get("state") != round_b.get("state")
            or round_a.get("state_n") != round_b.get("state_n")):
        components.append("state")
        details.append(
            "state digest "
            f"{round_a.get('state')}/{round_a.get('state_n')} vs "
            f"{round_b.get('state')}/{round_b.get('state_n')}"
        )
    return components, details


def _divergent_shard(
    round_a: Mapping[str, Any], round_b: Mapping[str, Any]
) -> Optional[int]:
    shards_a = round_a.get("shards")
    shards_b = round_b.get("shards")
    if (isinstance(shards_a, list) and isinstance(shards_b, list)
            and len(shards_a) == len(shards_b)):
        for index, (part_a, part_b) in enumerate(zip(shards_a, shards_b)):
            if part_a != part_b:
                return index
    return None


#: Header fields that must match for two streams to be alignable at all.
_WORKLOAD_KEYS = ("n", "m", "mode", "bandwidth_bits", "family", "solver",
                  "seed")


def first_divergence(
    events_a: Sequence[Mapping[str, Any]],
    events_b: Sequence[Mapping[str, Any]],
    trial: Optional[int] = None,
) -> Optional[Divergence]:
    """First divergent point between two digest streams, or ``None``.

    Trials align by stream position.  Differing fault plans are reported as
    context, not a mismatch — diffing a clean run against its faulted twin
    is the injection workflow, and the interesting answer is still *where*
    the rounds part ways.  ``trial`` restricts the scan to one trial index.
    """
    trials_a = split_trials(events_a)
    trials_b = split_trials(events_b)
    pairs = min(len(trials_a), len(trials_b))
    for pair_index in range(pairs):
        block_a = trials_a[pair_index]
        block_b = trials_b[pair_index]
        header_a = block_a["header"]
        header_b = block_b["header"]
        trial_index = header_a.get("trial", pair_index)
        if trial is not None and trial_index != trial:
            continue
        scenario = header_a.get("scenario", header_a.get("name", "?"))
        mismatched = [
            key for key in _WORKLOAD_KEYS
            if header_a.get(key) != header_b.get(key)
        ]
        if mismatched:
            return Divergence(
                scenario=scenario, trial=trial_index, pair_index=pair_index,
                component="header", components=("header",),
                detail="workload headers differ on "
                       + ", ".join(
                           f"{key} ({header_a.get(key)!r} vs "
                           f"{header_b.get(key)!r})" for key in mismatched
                       )
                       + " — these streams describe different workloads",
            )
        context = []
        if header_a.get("faults") != header_b.get("faults"):
            context.append(
                f"fault plans differ: {header_a.get('faults')!r} vs "
                f"{header_b.get('faults')!r}"
            )
        rounds_a = block_a["rounds"]
        rounds_b = block_b["rounds"]
        for round_a, round_b in zip(rounds_a, rounds_b):
            if round_a.get("chain") == round_b.get("chain"):
                continue
            components, details = _round_components(round_a, round_b)
            if not components:
                components, details = (
                    ["chain"],
                    [f"chain {round_a.get('chain')} vs {round_b.get('chain')}"
                     " with identical round fields (divergence in an earlier"
                     " unrecorded fold?)"],
                )
            primary = next(
                (c for c in _COMPONENT_ORDER if c in components),
                components[0],
            )
            return Divergence(
                scenario=scenario, trial=trial_index, pair_index=pair_index,
                component=primary, components=tuple(components),
                round=round_a.get("round"), phase=round_a.get("phase"),
                label=round_a.get("label"),
                shard=_divergent_shard(round_a, round_b),
                detail="; ".join(context + details),
            )
        if len(rounds_a) != len(rounds_b):
            longer = rounds_a if len(rounds_a) > len(rounds_b) else rounds_b
            extra = longer[min(len(rounds_a), len(rounds_b))]
            return Divergence(
                scenario=scenario, trial=trial_index, pair_index=pair_index,
                component="structure", components=("structure",),
                round=extra.get("round"), phase=extra.get("phase"),
                label=extra.get("label"),
                detail="; ".join(context + [
                    f"round counts differ: {len(rounds_a)} vs {len(rounds_b)}"
                    " (identical while both ran)"
                ]),
            )
    if len(trials_a) != len(trials_b):
        return Divergence(
            scenario="-", trial=pairs, pair_index=pairs,
            component="trials", components=("trials",),
            detail=f"trial counts differ: {len(trials_a)} vs {len(trials_b)}",
        )
    return None


def render_divergence(div: Optional[Divergence]) -> str:
    """Human-readable one-or-two-line report of a divergence."""
    if div is None:
        return ("digest streams are identical (same chains, same rounds, "
                "same trials)")
    if div.component == "trials":
        return f"streams diverge in shape: {div.detail}"
    if div.component == "header":
        return f"{div.scenario} trial {div.trial}: {div.detail}"
    where = f"round {div.round}"
    if div.phase:
        where += f", phase {div.phase!r}"
    if div.shard is not None:
        where += f", shard {div.shard}"
    lines = [
        f"{div.scenario} trial {div.trial}: first divergence at {where} "
        f"(label {div.label!r})",
        f"  components: {', '.join(div.components)} — first: {div.component}",
    ]
    if div.detail:
        lines.append(f"  {div.detail}")
    return "\n".join(lines)


# ------------------------------------------------------------------ bisection
@dataclass
class FineDivergence:
    """Per-node attribution of a divergence, from a fine-mode re-run."""

    round: int
    node: Optional[str]  # repr() of the node, or None if unlocalized
    component: str  # inbox | liveness | state | unlocalized
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "round": self.round,
            "node": self.node,
            "component": self.component,
            "detail": self.detail,
        }


@dataclass
class BisectReport:
    """Outcome of a fine-mode bisection around a divergent round."""

    divergence: Divergence
    window: Tuple[int, int]
    fine: Optional[FineDivergence] = None
    notes: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "divergence": self.divergence.as_dict(),
            "window": list(self.window),
            "notes": list(self.notes),
        }
        if self.fine is not None:
            out["fine"] = self.fine.as_dict()
        return out


def _fine_rerun(header: Mapping[str, Any], window: Tuple[int, int]):
    """Re-run one trial serially with a fine-mode digest tracer attached."""
    from repro.experiments.runner import run_trial
    from repro.obs.forensics.tracer import DigestTracer

    payload = header.get("spec")
    if payload is None:
        raise ValueError(
            "digest header does not embed the scenario spec; streams "
            "produced by this version always do — re-generate the stream "
            "with --digest before bisecting"
        )
    spec = spec_from_payload(payload)
    trial = int(header.get("trial", 0))
    tracer = DigestTracer(fine_rounds=window)
    try:
        run_trial(spec, trial, tracer=tracer)
    finally:
        tracer.close()
    return split_trials(tracer.events)[0]


def _first_fine_difference(
    fine_a: Mapping[str, Any], fine_b: Mapping[str, Any], round_index: int
) -> Optional[FineDivergence]:
    """Compare two fine events: first differing node in causal order."""
    for component, key in (("inbox", "inbox"), ("liveness", "halted"),
                           ("state", "state")):
        map_a = fine_a.get(key) or {}
        map_b = fine_b.get(key) or {}
        if map_a == map_b:
            continue
        for node in sorted(set(map_a) | set(map_b)):
            value_a = map_a.get(node)
            value_b = map_b.get(node)
            if value_a != value_b:
                return FineDivergence(
                    round=round_index, node=node, component=component,
                    detail=f"{key}[{node}] = {value_a!r} vs {value_b!r}",
                )
    return None


def bisect_divergence(
    events_a: Sequence[Mapping[str, Any]],
    events_b: Sequence[Mapping[str, Any]],
    divergence: Optional[Divergence] = None,
    window: int = 1,
) -> Optional[BisectReport]:
    """Localize a stream divergence to its first divergent node.

    Re-runs both sides' trials in fine mode over ``[round - window,
    round + window]`` and walks the per-node fine data in round order,
    checking inbox bytes, then liveness, then solver state — the causal
    order within a round.  Returns ``None`` when the streams do not
    diverge at all.
    """
    if divergence is None:
        divergence = first_divergence(events_a, events_b)
    if divergence is None:
        return None
    if divergence.round is None:
        report = BisectReport(divergence=divergence, window=(0, 0))
        report.notes.append(
            "divergence has no round coordinate "
            f"(component {divergence.component}); nothing to bisect"
        )
        return report
    lo = max(1, divergence.round - window)
    hi = divergence.round + window
    report = BisectReport(divergence=divergence, window=(lo, hi))
    header_a = split_trials(events_a)[divergence.pair_index]["header"]
    header_b = split_trials(events_b)[divergence.pair_index]["header"]
    fine_block_a = _fine_rerun(header_a, (lo, hi))
    fine_block_b = _fine_rerun(header_b, (lo, hi))
    # Sanity: the re-run must reproduce the stored chain at the divergent
    # round on each side; if it does not, the original run is not
    # reproducible in this environment and the bisection is untrustworthy.
    for side, block, original in (("A", fine_block_a, events_a),
                                  ("B", fine_block_b, events_b)):
        stored = split_trials(original)[divergence.pair_index]["rounds"]
        rerun = block["rounds"]
        stored_at = {r["round"]: r.get("chain") for r in stored}
        rerun_at = {r["round"]: r.get("chain") for r in rerun}
        if stored_at.get(divergence.round) != rerun_at.get(divergence.round):
            report.notes.append(
                f"side {side}: fine re-run did not reproduce the stored "
                f"chain at round {divergence.round} — the original stream "
                "is not reproducible here; treat the node attribution "
                "with suspicion"
            )
    for round_index in range(lo, hi + 1):
        fine_a = fine_block_a["fine"].get(round_index)
        fine_b = fine_block_b["fine"].get(round_index)
        if fine_a is None and fine_b is None:
            continue
        if fine_a is None or fine_b is None:
            report.fine = FineDivergence(
                round=round_index, node=None, component="structure",
                detail="one side's run ended before this round",
            )
            return report
        found = _first_fine_difference(fine_a, fine_b, round_index)
        if found is not None:
            report.fine = found
            return report
    report.fine = FineDivergence(
        round=divergence.round, node=None, component="unlocalized",
        detail="no per-node inbox/liveness/state difference inside the "
               "window (counters-only divergence, or the window is too "
               "narrow — retry with a larger --window)",
    )
    return report


def render_bisect(report: Optional[BisectReport]) -> str:
    """Human-readable bisection report."""
    if report is None:
        return ("digest streams are identical (same chains, same rounds, "
                "same trials); nothing to bisect")
    lines = [render_divergence(report.divergence)]
    lo, hi = report.window
    if report.window != (0, 0):
        lines.append(f"  fine window: rounds {lo}..{hi}")
    fine = report.fine
    if fine is not None:
        if fine.node is not None:
            lines.append(
                f"  first divergent node: {fine.node} at round {fine.round} "
                f"— {fine.component} diverged first"
            )
        else:
            lines.append(f"  {fine.component}: {fine.detail}")
        if fine.node is not None and fine.detail:
            lines.append(f"    {fine.detail}")
    for note in report.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)

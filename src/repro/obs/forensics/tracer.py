"""The digest tracer: chained per-round state digests on the tracer seam.

:class:`DigestTracer` implements the :class:`repro.obs.tracer.Tracer`
protocol and folds, per recorded round, a chained digest over

* delivered message bytes (exchange results, broadcast inboxes, and
  ``broadcast_discard`` sent values),
* per-node solver-visible state and liveness (via the simulator's
  state-digest hook), and
* the ledger's round counters (messages, bits, per-edge maximum),

using the commutative multiset accumulators of
:mod:`repro.obs.forensics.digest`.  The stream is **backend- and
shard-neutral by construction**: multiset sums ignore delivery order, shard
partial sums merge to the serial global sum, and the header deliberately
omits backend/ledger/shard knobs — so two runs of the same workload produce
byte-identical ``DIGEST_*.jsonl`` streams across dict/batch/slot/columnar
and trial-worker counts.  A sharded run additionally records per-shard
sub-digest context in its round events (that is what localizes a divergence
to a shard), so its stream is not byte-equal to a serial one — but its
``chain`` values and final digest are, which is the shard-determinism
contract in digest form.  That is what makes a digest diff a *divergence*
signal rather than a configuration echo.

Observation-only, like every tracer: no RNG is consumed, nothing is
mutated, and no wall-clock readings are taken (a digest stream must be
byte-reproducible, so even timestamps are out).

**Fine mode** (``fine_rounds=(lo, hi)``) additionally records, for rounds
inside the window only, per-receiver inbox digests and per-node state entry
hashes — the data the bisection debugger uses to name the first divergent
node.  Outside the window the per-round cost stays one multiset sum.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.forensics.digest import (
    CHAIN_INIT,
    DIGEST_SCHEMA,
    MultisetDigest,
    delivery_entry_hashes,
    flatten_exchange,
    flatten_inboxes,
    fold_chain,
    hex16,
    label_key,
    node_state_entry,
    value_entry_hash,
)
from repro.obs.tracer import (
    Tracer,
    add_round_observer,
    remove_round_observer,
)

#: One shard's round contribution:
#: (payload_sum, payload_n, state_sum, state_n, halted).
ShardDigestPart = Tuple[int, int, int, int, int]


class DigestTracer(Tracer):
    """Fold a chained determinism digest over every recorded round.

    Parameters
    ----------
    meta:
        Extra key/value pairs merged into the header event (scenario name,
        trial index, embedded scenario spec for the bisection re-run, ...).
        Keep perf knobs (backend, shard count, worker count) out of it —
        the stream's value is that those must *not* change it.
    fine_rounds:
        Optional inclusive ``(lo, hi)`` round window; rounds inside it emit
        an extra ``fine`` event with per-node detail (see module docstring).

    Event shapes (JSON-serializable dicts, one JSONL line each):

    * ``header`` — schema, topology size, mode, bandwidth budget, fault
      plan, plus ``meta``.
    * ``round`` — ``round`` (1-based ledger index), ``label``, ``phase``,
      the ledger counters, ``payload`` (multiset hex) + ``payload_n``,
      ``state``/``state_n``/``halted`` when state was observed, per-shard
      sub-digests when sharded, and ``chain`` — the running chained digest
      through this round.
    * ``fine`` — per-receiver ``inbox`` digests and per-node ``state`` /
      ``halted`` maps for one in-window round (keys are ``repr(node)``).
    * ``end`` — final ledger aggregates and the final ``chain``.
    """

    enabled = True
    wants_payloads = True
    wants_state = True

    def __init__(self, meta: Optional[Dict[str, Any]] = None,
                 fine_rounds: Optional[Tuple[int, int]] = None):
        self.events: List[Dict[str, Any]] = []
        self.meta = dict(meta or {})
        if fine_rounds is not None:
            lo, hi = fine_rounds
            fine_rounds = (int(lo), int(hi))
        self.fine_rounds = fine_rounds
        self._network = None
        self._closed = False
        self._chain = CHAIN_INIT
        self._pending: Optional[Dict[str, Any]] = None
        self._payload = MultisetDigest()
        self._state = MultisetDigest()
        self._halted = 0
        self._state_seen = False
        self._fine_inbox: Dict[Any, MultisetDigest] = {}
        self._fine_state: Dict[Any, Tuple[int, bool]] = {}

    # ------------------------------------------------------------- lifecycle
    def attach(self, network) -> None:
        if self._network is network:
            return  # idempotent: a driver re-threading the run's own tracer
        if self._network is not None:
            raise RuntimeError(
                "a DigestTracer digests exactly one run; build a fresh "
                "tracer instead of re-attaching this one to another network"
            )
        if self._closed:
            raise RuntimeError("tracer is closed; build a fresh one per run")
        self._network = network
        add_round_observer(network.ledger, self._on_round)
        # No backend/ledger/shard fields: the digest stream must be
        # byte-identical across them (that equivalence is the product).
        header: Dict[str, Any] = {
            "type": "header",
            "schema": DIGEST_SCHEMA,
            "n": network.number_of_nodes,
            "m": network.number_of_edges,
            "mode": network.mode,
            "bandwidth_bits": network.bandwidth_bits,
        }
        if self.fine_rounds is not None:
            header["fine_rounds"] = list(self.fine_rounds)
        plan = getattr(network.transport, "fault_plan", None)
        if plan is not None:
            header["faults"] = plan.canonical()
        header.update(self.meta)
        self.events.append(header)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        network = self._network
        if network is None:
            return
        self._finalize_round()
        remove_round_observer(network.ledger, self._on_round)
        ledger = network.ledger
        self.events.append({
            "type": "end",
            "rounds": ledger.rounds,
            "total_bits": ledger.total_bits,
            "total_messages": ledger.total_messages,
            "max_edge_bits": ledger.max_edge_bits,
            "chain": hex16(self._chain),
        })

    @property
    def final_digest(self) -> str:
        """The running chain as hex — the run's ``state_digest`` once closed."""
        return hex16(self._chain)

    # note_nodes stays the inherited no-op on purpose: serial drivers report
    # pre-round active counts and the shard coordinator post-round ones, and
    # the digest stream must not echo that driver difference.

    def _fine_active(self) -> bool:
        if self.fine_rounds is None or self._pending is None:
            return False
        lo, hi = self.fine_rounds
        return lo <= self._pending["round"] <= hi

    # ---------------------------------------------------------- payload hooks
    def _note_edges(self, senders: Sequence[Any], receivers: Sequence[Any],
                    payloads: Sequence[Any]) -> None:
        if not payloads:
            return
        hashes = delivery_entry_hashes(senders, receivers, payloads)
        self._payload.add_many(hashes)
        if self._fine_active():
            fine = self._fine_inbox
            for receiver, entry in zip(receivers, hashes):
                acc = fine.get(receiver)
                if acc is None:
                    acc = fine[receiver] = MultisetDigest()
                acc.add(entry)

    def note_exchange(self, delivered) -> None:
        if delivered:
            self._note_edges(*flatten_exchange(delivered))

    def note_inboxes(self, inboxes) -> None:
        if inboxes:
            self._note_edges(*flatten_inboxes(inboxes))

    def note_values(self, values) -> None:
        # Sent values, hashed per sender.  A discarded inbox cannot affect
        # any node's downstream state, so sent-side hashing is the honest
        # (and backend-neutral) digest for the discard primitive.
        for sender, payload in values.items():
            self._payload.add(value_entry_hash(sender, payload))

    # ------------------------------------------------------------ state hooks
    def note_state(self, items) -> None:
        acc = self._state
        halted = self._halted
        if self._fine_active():
            fine = self._fine_state
            for node, entry, is_halted in items:
                acc.add(entry)
                if is_halted:
                    halted += 1
                fine[node] = (entry, bool(is_halted))
        else:
            for node, entry, is_halted in items:
                acc.add(entry)
                if is_halted:
                    halted += 1
        self._halted = halted
        self._state_seen = True

    def note_shard_digests(self, parts: Sequence[ShardDigestPart]) -> None:
        context: List[List[Any]] = []
        for payload_sum, payload_n, state_sum, state_n, halted in parts:
            self._payload.merge(payload_sum, payload_n)
            self._state.merge(state_sum, state_n)
            self._halted += halted
            if state_n:
                self._state_seen = True
            context.append(
                [hex16(payload_sum), payload_n, hex16(state_sum), state_n,
                 halted]
            )
        if self._pending is not None:
            self._pending["shards"] = context

    # ---------------------------------------------------------- round events
    def _on_round(self, index: int, label: str, message_count: int,
                  total_bits: int, max_edge_bits: int) -> None:
        self._finalize_round()
        pending: Dict[str, Any] = {
            "type": "round",
            "round": index,
            "label": label,
            "phase": label.split(":", 1)[0],
            "messages": message_count,
            "bits": total_bits,
            "max_edge_bits": max_edge_bits,
        }
        self._pending = pending

    def _finalize_round(self) -> None:
        """Fold the accumulated round into the chain and emit its events.

        Deferred until the next round (or ``close``) because payload and
        state hooks fire *after* the ledger observer for the round they
        belong to: the transport records the round, then the network hands
        the delivered payloads to the tracer, then the simulator reports
        post-step state.
        """
        pending = self._pending
        if pending is None:
            return
        payload, state = self._payload, self._state
        # Chain over round identity, counters, and the multiset digests —
        # but not over active/owned or per-shard parts: those are honest
        # context that legitimately differs between serial and sharded
        # drivers, while the chain must not.
        self._chain = fold_chain(
            self._chain,
            pending["round"],
            label_key(pending["label"]),
            pending["messages"],
            pending["bits"],
            pending["max_edge_bits"],
            payload.value,
            payload.count,
            state.value,
            state.count,
            self._halted,
        )
        pending["payload"] = hex16(payload.value)
        pending["payload_n"] = payload.count
        if self._state_seen:
            pending["state"] = hex16(state.value)
            pending["state_n"] = state.count
            pending["halted"] = self._halted
        pending["chain"] = hex16(self._chain)
        self.events.append(pending)
        if self.fine_rounds is not None:
            lo, hi = self.fine_rounds
            if lo <= pending["round"] <= hi:
                fine: Dict[str, Any] = {
                    "type": "fine",
                    "round": pending["round"],
                    "inbox": {
                        repr(node): [hex16(acc.value), acc.count]
                        for node, acc in self._fine_inbox.items()
                    },
                }
                if self._fine_state:
                    fine["state"] = {
                        repr(node): hex16(entry)
                        for node, (entry, _) in self._fine_state.items()
                    }
                    fine["halted"] = {
                        repr(node): halted
                        for node, (_, halted) in self._fine_state.items()
                    }
                self.events.append(fine)
        payload.reset()
        state.reset()
        self._halted = 0
        self._state_seen = False
        self._fine_inbox = {}
        self._fine_state = {}
        self._pending = None


class ShardDigestCollector(Tracer):
    """Per-shard digest accumulator living inside a shard worker.

    The master :class:`DigestTracer` stays in the coordinator process; each
    worker's network carries one of these instead, accumulating the shard's
    payload/state contributions with the *same* entry hashes.  The worker
    ships :meth:`take_round_digest` back with its ``stepped`` reply and the
    coordinator merges the parts via ``note_shard_digests`` — sum-merge, so
    the sharded chain equals the serial one.
    """

    enabled = True

    def __init__(self, wants_payloads: bool = True, wants_state: bool = True):
        self.wants_payloads = wants_payloads
        self.wants_state = wants_state
        self._payload = MultisetDigest()
        self._state = MultisetDigest()
        self._halted = 0

    def note_exchange(self, delivered) -> None:
        if delivered:
            senders, receivers, payloads = flatten_exchange(delivered)
            self._payload.add_many(
                delivery_entry_hashes(senders, receivers, payloads)
            )

    def note_inboxes(self, inboxes) -> None:
        if inboxes:
            senders, receivers, payloads = flatten_inboxes(inboxes)
            self._payload.add_many(
                delivery_entry_hashes(senders, receivers, payloads)
            )

    def note_values(self, values) -> None:
        for sender, payload in values.items():
            self._payload.add(value_entry_hash(sender, payload))

    def note_state(self, items) -> None:
        acc = self._state
        halted = self._halted
        for _node, entry, is_halted in items:
            acc.add(entry)
            if is_halted:
                halted += 1
        self._halted = halted

    def take_round_digest(self) -> ShardDigestPart:
        """Snapshot and reset this shard's contribution for the round."""
        part = (
            self._payload.value,
            self._payload.count,
            self._state.value,
            self._state.count,
            self._halted,
        )
        self._payload.reset()
        self._state.reset()
        self._halted = 0
        return part


__all__ = [
    "DigestTracer",
    "ShardDigestCollector",
    "ShardDigestPart",
]

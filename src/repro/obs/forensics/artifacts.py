"""Digest artifacts: ``DIGEST_<scenario>.jsonl`` files next to traces.

One digest file holds every digested trial of one scenario, in trial order:
each trial contributes its ``header`` event, its ``round`` (and optional
``fine``) stream, and its ``end`` event.  Unlike traces, digest streams
carry **no wall-clock or resource fields** — they are byte-reproducible
artifacts: re-running the same workload must reproduce the file bit for
bit on any backend and trial-worker count, which is exactly what the CI
``forensics-smoke`` job and ``tests/test_forensics.py`` pin.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Mapping

from repro.obs.forensics.digest import DIGEST_SCHEMA

DIGEST_PREFIX = "DIGEST_"
DIGEST_SUFFIX = ".jsonl"


def digest_filename(scenario: str) -> str:
    """Artifact name for one scenario's digest stream (filesystem-safe)."""
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", scenario)
    return f"{DIGEST_PREFIX}{safe}{DIGEST_SUFFIX}"


def write_digests(path: Path, events: Iterable[Mapping[str, object]]) -> Path:
    """Write digest events as JSONL (one event per line, key-sorted).

    Key-sorted serialization is load-bearing here: event dicts are built in
    hook order, and sorting is what makes the byte-identity contract hold
    across code paths that populate the same fields in different orders.
    """
    path = Path(path)
    lines = [json.dumps(dict(event), sort_keys=True, default=str)
             for event in events]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def load_digests(path: Path) -> List[Dict[str, object]]:
    """Load a digest stream back into its event list (schema-checked)."""
    events: List[Dict[str, object]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    headers = [e for e in events if e.get("type") == "header"]
    if events and not headers:
        raise ValueError(f"{path}: no header event — not a digest stream?")
    for header in headers:
        if header.get("schema") != DIGEST_SCHEMA:
            raise ValueError(
                f"{path}: unsupported digest schema {header.get('schema')!r} "
                f"(expected {DIGEST_SCHEMA!r})"
            )
    return events

"""Canonical encodings and multiset digests for determinism forensics.

Everything the forensics layer hashes flows through this module, and two
properties carry the whole subsystem:

* **Canonical bytes.** :func:`canonical_bytes` is a type-tagged,
  length-prefixed encoding with sorted map/set bodies, so the bytes of a
  payload (or a node's solver-visible state) never depend on dict/set
  iteration order, ``PYTHONHASHSEED``, or which transport backend delivered
  it.
* **Commutative multisets.** Per-round digests are *multiset* sums
  (64-bit wrapping sum of per-entry hashes, plus a count), not order-folded
  chains.  The dict, batch, slot and columnar backends deliver the same
  messages in different iteration orders, and shard workers each see only
  their slice — a commutative accumulator makes the per-round digest
  independent of delivery order and lets per-shard partial sums merge into
  exactly the serial global sum.

The only order-sensitive fold is the *chain* (:func:`fold_chain`), which
links the per-round summaries into one tamper-evident running digest; the
round sequence is deterministic by the engine's own contract, so chaining
over it is safe.

Entry hashes reuse the splitmix64 pipeline from :mod:`repro.hashing.keys`
(and its pinned uint64-array twins in :mod:`repro.congest.columnar.kernels`
for the vectorized fast path), so the scalar and vector paths are
bit-identical by the same contract the columnar backend rests on.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

from repro.hashing.keys import _MASK64, MIX64_INIT, element_key, mix64, mix64_step

try:  # pragma: no cover - exercised only when numpy is absent
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

Node = Hashable

#: Stream schema tag written into every digest header.
DIGEST_SCHEMA = "repro-digest/1"

# Domain-separation salts: one per kind of digested entry, so an exchange
# entry can never collide with a state entry built from the same integers.
_EDGE_SALT = 0xD1E5  # delivered (sender, receiver, payload) entries
_VALUE_SALT = 0xD15C  # broadcast_discard per-sender sent values
_STATE_SALT = 0x57A7  # per-node solver-visible state entries
_INT_SALT = 0x1477  # small-int payload fast path
_CHAIN_SALT = 0xC4A1  # chain initialisation

#: Every chain starts here; byte-identical streams share it by construction.
CHAIN_INIT = mix64(_CHAIN_SALT)

#: Use the vectorized kernels only above this batch size: below it the
#: numpy array setup costs more than the scalar loop it replaces.
_VECTOR_MIN = 32


def hex16(value: int) -> str:
    """Fixed-width lowercase hex of a 64-bit digest value."""
    return format(value & _MASK64, "016x")


# --------------------------------------------------------------- canonical
def canonical_bytes(obj: Any) -> bytes:
    """Type-tagged canonical encoding of a payload-like Python value.

    Deterministic across processes and hash seeds: containers are
    length-delimited, dict entries are sorted by their key encoding, sets by
    their element encoding.  Unknown types fall back to ``repr`` (tagged, so
    a string can never forge the encoding of an exotic object).
    """
    out = bytearray()
    _encode(obj, out)
    return bytes(out)


def _encode(obj: Any, out: bytearray) -> None:
    kind = type(obj)
    if obj is None:
        out += b"N;"
    elif kind is bool:
        out += b"T;" if obj else b"F;"
    elif kind is int:
        out += b"i%d;" % obj
    elif kind is float:
        out += b"f%s;" % repr(obj).encode("ascii")
    elif kind is str:
        data = obj.encode("utf-8")
        out += b"s%d:" % len(data)
        out += data
    elif kind is bytes or kind is bytearray:
        out += b"b%d:" % len(obj)
        out += obj
    elif kind is tuple or kind is list:
        out += b"(" if kind is tuple else b"["
        for item in obj:
            _encode(item, out)
        out += b")" if kind is tuple else b"]"
    elif isinstance(obj, dict):
        # Sorting the concatenated key+value encodings sorts by key
        # encoding: key encodings are prefix-free per entry, and Python
        # equality unifies keys (1 == 1.0) whose encodings differ, so keys
        # of one dict always have distinct encodings.
        parts = sorted(
            canonical_bytes(key) + canonical_bytes(value)
            for key, value in obj.items()
        )
        out += b"{"
        for part in parts:
            out += part
        out += b"}"
    elif isinstance(obj, (set, frozenset)):
        parts = sorted(canonical_bytes(item) for item in obj)
        out += b"<"
        for part in parts:
            out += part
        out += b">"
    else:
        data = repr(obj).encode("utf-8")
        out += b"r%d:" % len(data)
        out += data


def hash_bytes(data: bytes) -> int:
    """64-bit blake2b of an encoded value."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8).digest(), "big"
    )


def payload_hash(payload: Any) -> int:
    """64-bit hash of one message payload.

    Plain uint64-range ints (the dominant payload shape: colors, counters,
    packed words) take a pure splitmix64 path that the columnar kernels can
    reproduce vectorized; everything else hashes its canonical bytes.
    """
    if type(payload) is int and 0 <= payload <= _MASK64:
        return mix64(_INT_SALT, payload)
    return hash_bytes(canonical_bytes(payload))


# ------------------------------------------------------------ entry hashes
# Precomputed chain prefixes: mix64(SALT, ...) == chained steps from
# MIX64_INIT, so folding from the precomputed accumulator saves one step
# per entry and gives the vector path a ready-made uint64 seed.
_EDGE_ACC = mix64_step(MIX64_INIT, _EDGE_SALT)
_VALUE_ACC = mix64_step(MIX64_INIT, _VALUE_SALT)
_STATE_ACC = mix64_step(MIX64_INIT, _STATE_SALT)
_INT_ACC = mix64_step(MIX64_INIT, _INT_SALT)

# The same directed edges recur every round of a run, so their two-step key
# prefix is cached by (sender, receiver).  Caching by node *equality* is
# consistent with element_key's own semantics (it already unifies 1, 1.0 and
# True), so a cache hit always returns exactly the uncached value.  Bounded
# by wholesale clearing — entries are cheap to recompute and a massive-n run
# on the scalar path must not hold a multi-hundred-MB cache alive.
_EDGE_PREFIX: Dict[Any, int] = {}
_VALUE_PREFIX: Dict[Any, int] = {}
_PREFIX_CACHE_MAX = 1 << 18


def delivery_entry_hashes(
    senders: Sequence[Node],
    receivers: Sequence[Node],
    payloads: Sequence[Any],
) -> List[int]:
    """Multiset entry hashes for delivered per-edge messages.

    Entry = ``mix64(_EDGE_SALT, key(sender), key(receiver), payload_hash)``.
    Broadcast inboxes fold through the same function with the same
    (sender, receiver) orientation, so an exchange and the broadcast that
    delivers identical bytes produce identical entries.

    When numpy is available and every payload is a plain uint64-range int,
    the whole batch runs through the pinned uint64 kernel twins.
    """
    count = len(payloads)
    if (
        np is not None
        and count >= _VECTOR_MIN
        and all(type(p) is int and 0 <= p <= _MASK64 for p in payloads)
    ):
        from repro.congest.columnar.kernels import (
            element_keys_array,
            mix64_step_vec,
        )

        pay = np.fromiter(payloads, dtype=np.uint64, count=count)
        phashes = mix64_step_vec(np.uint64(_INT_ACC), pay)
        acc = mix64_step_vec(np.uint64(_EDGE_ACC), element_keys_array(senders))
        acc = mix64_step_vec(acc, element_keys_array(receivers))
        acc = mix64_step_vec(acc, phashes)
        return acc.tolist()
    prefixes = _EDGE_PREFIX
    if len(prefixes) > _PREFIX_CACHE_MAX:
        prefixes.clear()
    # Per-call identity memo: broadcast fan-out repeats one payload object
    # per receiver, and identical objects trivially hash identically.  The
    # payloads sequence keeps every object alive, so ids are stable here.
    memo: Dict[int, int] = {}
    memo_get = memo.get
    out: List[int] = []
    append = out.append
    for i in range(count):
        sender = senders[i]
        receiver = receivers[i]
        payload = payloads[i]
        edge = (sender, receiver)
        prefix = prefixes.get(edge)
        if prefix is None:
            prefix = prefixes[edge] = mix64_step(
                mix64_step(_EDGE_ACC, element_key(sender)),
                element_key(receiver),
            )
        entry = memo_get(id(payload))
        if entry is None:
            entry = memo[id(payload)] = payload_hash(payload)
        append(mix64_step(prefix, entry))
    return out


def value_entry_hash(sender: Node, payload: Any) -> int:
    """Multiset entry hash for one ``broadcast_discard`` sent value."""
    prefixes = _VALUE_PREFIX
    prefix = prefixes.get(sender)
    if prefix is None:
        if len(prefixes) > _PREFIX_CACHE_MAX:
            prefixes.clear()
        prefix = prefixes[sender] = mix64_step(_VALUE_ACC, element_key(sender))
    return mix64_step(prefix, payload_hash(payload))


def node_state_entry(node: Node, state: Any) -> int:
    """Multiset entry hash for one node's solver-visible state.

    ``state`` is a :class:`~repro.congest.node.NodeState`; the digested
    value is the canonical encoding of ``(halted, output, memory)`` — the
    full solver-visible surface, RNG-derived fields included.
    """
    return mix64_step(
        mix64_step(_STATE_ACC, element_key(node)),
        hash_bytes(canonical_bytes((state.halted, state.output, state.memory))),
    )


# ------------------------------------------------------------ accumulators
class MultisetDigest:
    """Commutative digest: wrapping 64-bit sum of entry hashes + count.

    Order-independent and mergeable: the sum of per-shard accumulators over
    a partition of the entries equals the serial accumulator over all of
    them, which is exactly the shard-merge contract the coordinator relies
    on.
    """

    __slots__ = ("value", "count")

    def __init__(self, value: int = 0, count: int = 0):
        self.value = value & _MASK64
        self.count = count

    def add(self, entry_hash: int) -> None:
        self.value = (self.value + entry_hash) & _MASK64
        self.count += 1

    def add_many(self, entry_hashes: Iterable[int]) -> None:
        total = self.value
        count = self.count
        for entry_hash in entry_hashes:
            total += entry_hash
            count += 1
        self.value = total & _MASK64
        self.count = count

    def merge(self, value: int, count: int) -> None:
        """Fold another accumulator's (value, count) into this one."""
        self.value = (self.value + value) & _MASK64
        self.count += count

    def snapshot(self) -> Tuple[int, int]:
        return (self.value, self.count)

    def reset(self) -> None:
        self.value = 0
        self.count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MultisetDigest(value=0x{hex16(self.value)}, count={self.count})"


def fold_chain(chain: int, *values: int) -> int:
    """Fold round-summary integers into the running chain digest."""
    acc = chain
    for value in values:
        acc = mix64_step(acc, value)
    return acc


def states_digest(states: Mapping[Node, Any]) -> Tuple[int, int]:
    """Multiset digest (value, count) over a mapping of final node states.

    Uses the same per-node entries as the per-round state digest, so the
    digest of :attr:`Simulator.states` after a run matches the state
    component of the final recorded round when no node mutates afterwards.
    """
    acc = MultisetDigest()
    acc.add_many(
        node_state_entry(node, state) for node, state in states.items()
    )
    return acc.snapshot()


def inbox_count(inboxes: Mapping[Node, Mapping[Node, Any]]) -> int:
    """Total delivered messages across a broadcast inbox mapping."""
    return sum(len(box) for box in inboxes.values())


def flatten_inboxes(
    inboxes: Mapping[Node, Mapping[Node, Any]]
) -> Tuple[List[Node], List[Node], List[Any]]:
    """Flatten ``inbox[receiver][sender] = payload`` to aligned columns.

    Ordered (sender, receiver) orientation matches the exchange mapping's
    ``(sender, receiver)`` keys, so broadcast and exchange digests agree on
    identical delivered bytes.
    """
    senders: List[Node] = []
    receivers: List[Node] = []
    payloads: List[Any] = []
    for receiver, box in inboxes.items():
        for sender, payload in box.items():
            senders.append(sender)
            receivers.append(receiver)
            payloads.append(payload)
    return senders, receivers, payloads


def flatten_exchange(
    delivered: Mapping[Tuple[Node, Node], Any]
) -> Tuple[List[Node], List[Node], List[Any]]:
    """Flatten an exchange result mapping to aligned columns."""
    senders: List[Node] = []
    receivers: List[Node] = []
    payloads: List[Any] = []
    for (sender, receiver), payload in delivered.items():
        senders.append(sender)
        receivers.append(receiver)
        payloads.append(payload)
    return senders, receivers, payloads


def label_key(label: str) -> int:
    """Stable 64-bit key of a round label for the chain fold."""
    return element_key(label)


def merge_shard_parts(
    parts: Sequence[Tuple[int, int, int, int, int]]
) -> Dict[str, int]:
    """Merge per-shard (payload_sum, payload_n, state_sum, state_n, halted).

    Pure sum-merge — shard order does not matter, which is what makes the
    sharded chain equal to the serial one.
    """
    payload = MultisetDigest()
    state = MultisetDigest()
    halted = 0
    for payload_sum, payload_n, state_sum, state_n, shard_halted in parts:
        payload.merge(payload_sum, payload_n)
        state.merge(state_sum, state_n)
        halted += shard_halted
    return {
        "payload_sum": payload.value,
        "payload_n": payload.count,
        "state_sum": state.value,
        "state_n": state.count,
        "halted": halted,
    }

"""Heartbeat emitter: periodic progress lines for long runs.

A :class:`Heartbeat` rate-limits progress output to one line per interval.
It is deliberately dumb — callers decide *what* to say (via a render
callable, so the line is never built when it is not due) and the heartbeat
decides *whether* it is time to say it.  Output goes to stderr by default:
plain lines, no carriage-return tricks, safe to interleave with artifact
writes on stdout and readable in CI logs.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO


class Heartbeat:
    """Emit at most one progress line per ``interval_s`` seconds.

    ``interval_s=0`` emits on every call (useful in tests).  The first call
    after construction starts the clock without emitting, so short runs stay
    silent — the whole point is that only *long* runs get heartbeats.
    """

    def __init__(self, interval_s: float = 10.0,
                 stream: Optional[TextIO] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.interval_s = float(interval_s)
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._last: Optional[float] = None
        self.beats = 0

    def maybe_beat(self, render: Callable[[], str]) -> bool:
        """Emit ``render()`` if the interval has elapsed; report whether it did."""
        now = self._clock()
        if self._last is None:
            self._last = now
            if self.interval_s > 0:
                return False
        if now - self._last < self.interval_s:
            return False
        self._last = now
        self.beat(render())
        return True

    def beat(self, message: str) -> None:
        """Emit ``message`` unconditionally (used for per-trial milestones)."""
        print(message, file=self.stream, flush=True)
        self.beats += 1

"""Trace artifacts: ``TRACE_<scenario>.jsonl`` files next to suite outputs.

One trace file holds every traced trial of one scenario, in trial order:
each trial contributes its ``header`` event, its ``round``/``sample``
stream, and its ``end`` event.  Events are plain JSON objects, one per
line — streamable, greppable, and diffable with standard tools.

Wall-clock and resource fields make traces machine-dependent by nature, so
they are **diagnostic** artifacts: they live next to the byte-deterministic
``BENCH_suite.json`` aggregates but are never part of the regression gate's
byte comparison.  What *is* pinned (by ``tests/test_obs.py`` and the CI
``trace-smoke`` job) is consistency: the per-round ``bits``/``messages`` in
a trace sum exactly to the ledger aggregates the suite artifacts report.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Mapping

from repro.obs.tracer import TRACE_SCHEMA

TRACE_PREFIX = "TRACE_"
TRACE_SUFFIX = ".jsonl"


def trace_filename(scenario: str) -> str:
    """Artifact name for one scenario's trace (filesystem-safe)."""
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", scenario)
    return f"{TRACE_PREFIX}{safe}{TRACE_SUFFIX}"


def write_trace(path: Path, events: Iterable[Mapping[str, object]]) -> Path:
    """Write trace events as JSONL (one event per line, key-sorted)."""
    path = Path(path)
    lines = [json.dumps(dict(event), sort_keys=True, default=str)
             for event in events]
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path


def load_trace(path: Path) -> List[Dict[str, object]]:
    """Load a trace file back into its event list (schema-checked)."""
    events: List[Dict[str, object]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            events.append(json.loads(line))
    headers = [e for e in events if e.get("type") == "header"]
    if events and not headers:
        raise ValueError(f"{path}: no header event — not a trace file?")
    for header in headers:
        if header.get("schema") != TRACE_SCHEMA:
            raise ValueError(
                f"{path}: unsupported trace schema {header.get('schema')!r} "
                f"(expected {TRACE_SCHEMA!r})"
            )
    return events

"""Integer math helpers used throughout the reproduction.

The coloring algorithm of the paper is stated in terms of iterated logarithms
(``log* n``), tetration (``2 ↑↑ i``, used by ``SlackColor``), and various
``log^k log n`` style quantities.  These helpers keep those computations in one
place and make them exact for the small inputs used in tests.
"""

from __future__ import annotations

import math


def ilog2(x: float) -> int:
    """Return ``floor(log2(x))`` for ``x >= 1``, and 0 for smaller values."""
    if x < 2:
        return 0
    return int(math.log2(x))


def log_star(x: float, base: float = 2.0) -> int:
    """Return the iterated logarithm ``log* x``.

    ``log* x`` is the number of times the logarithm must be applied before the
    result drops to at most 1.  It is at most 5 for every input that fits in
    the observable universe, which is exactly why the paper's ``O(log* n)``
    phases terminate so quickly.
    """
    if x <= 1:
        return 0
    count = 0
    value = x
    while value > 1:
        # math.log accepts arbitrarily large integers, so no float(x) cast.
        value = math.log(value, base)
        count += 1
        if count > 128:  # pragma: no cover - defensive, unreachable for finite x
            break
    return count


def tetration(base: int, height: int, cap: int = 2**62) -> int:
    """Return ``base ↑↑ height`` (iterated exponentiation), capped at ``cap``.

    ``SlackColor`` (Alg. 15) tries ``x_i = 2 ↑↑ i`` colors in iteration ``i``.
    The cap prevents the intermediate values from exploding; the algorithm only
    ever needs values up to the node's slack, which is far below the cap.
    """
    if height <= 0:
        return 1
    value = 1
    for _ in range(height):
        if value >= 64:  # 2**64 already exceeds any realistic cap
            return cap
        value = base**value
        if value >= cap:
            return cap
    return value


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``."""
    if low > high:
        raise ValueError(f"empty interval: [{low}, {high}]")
    return max(low, min(high, value))


def poly_log_log(n: int, power: float) -> float:
    """Return ``(log2 log2 n)**power`` with sane behaviour for tiny ``n``."""
    inner = math.log2(max(n, 4))
    return math.log2(max(inner, 2.0)) ** power


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division."""
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)

"""Deterministic, hierarchical random-number streams.

Distributed algorithms are awkward to test when every node shares one global
RNG: the order in which nodes are processed then changes their random choices.
``RngStream`` derives an independent ``random.Random`` per (seed, label) pair
so that per-node randomness is stable regardless of iteration order, which
makes the simulator reproducible and the tests deterministic.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence


def _digest_seed(*parts: object) -> int:
    """Derive a 64-bit seed from arbitrary labelled parts."""
    text = "\x1f".join(repr(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_seed(*parts: object) -> int:
    """Hash arbitrary labelled parts into a stable 31-bit seed.

    Uses SHA-256 rather than ``hash()`` so the value is identical across
    processes and interpreter runs (``hash()`` is salted per process).  This
    is the seed-derivation chain shared by the experiment specs
    (:mod:`repro.experiments.spec`) and the fault-injection layer
    (:mod:`repro.faults`): both hash their workload description through it,
    so a (seed, plan) pair reproduces bit-identically everywhere.
    """
    text = ":".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1)


def derive_rng(seed: int, *labels: object) -> random.Random:
    """Return a ``random.Random`` deterministically derived from labels."""
    return random.Random(_digest_seed(seed, *labels))


class RngStream:
    """A labelled source of independent RNG sub-streams.

    Example
    -------
    >>> stream = RngStream(7)
    >>> a = stream.for_node(3)
    >>> b = stream.for_node(3)
    >>> a.random() == b.random()
    True
    """

    def __init__(self, seed: int):
        self.seed = int(seed)

    def root(self) -> random.Random:
        """RNG for global (non-node-specific) decisions."""
        return derive_rng(self.seed, "root")

    def for_node(self, node: object, *labels: object) -> random.Random:
        """RNG dedicated to ``node`` (optionally further labelled)."""
        return derive_rng(self.seed, "node", node, *labels)

    def for_edge(self, u: object, v: object, *labels: object) -> random.Random:
        """RNG shared by the two endpoints of edge ``{u, v}``.

        The paper repeatedly has the two endpoints of an edge "jointly pick a
        random number"; in a real network one endpoint picks and sends it.  In
        the simulator we derive it from the unordered edge so both endpoints
        agree, and we charge the bits in the calling primitive.
        """
        key = tuple(sorted((repr(u), repr(v))))
        return derive_rng(self.seed, "edge", key, *labels)

    def child(self, *labels: object) -> "RngStream":
        """A new stream whose seed is derived from this one plus labels."""
        return RngStream(_digest_seed(self.seed, "child", *labels))

    def shuffled(self, items: Iterable, *labels: object) -> list:
        """Return a deterministically shuffled copy of ``items``."""
        result = list(items)
        derive_rng(self.seed, "shuffle", *labels).shuffle(result)
        return result

    def choice(self, items: Sequence, *labels: object):
        """Deterministic labelled choice from a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return derive_rng(self.seed, "choice", *labels).choice(list(items))

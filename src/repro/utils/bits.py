"""Bit-size helpers for the CONGEST bandwidth model.

Every message sent through :class:`repro.congest.network.Network` is charged a
number of bits.  These helpers define the canonical cost of the payload types
the algorithms use, so that the accounting is consistent across primitives and
the benchmarks can compare against the paper's ``O(log n)`` budget.
"""

from __future__ import annotations

from typing import Iterable


def bit_length_of_int(value: int) -> int:
    """Bits needed to write ``value`` (at least 1, sign ignored)."""
    return max(1, int(abs(int(value))).bit_length())


def bits_for_range(size: int) -> int:
    """Bits needed to index an element of a set of ``size`` elements."""
    if size <= 1:
        return 1
    return (size - 1).bit_length()


def bits_for_bitstring(bitstring: Iterable[int]) -> int:
    """Cost of sending an explicit bitstring: one bit per entry."""
    return sum(1 for _ in bitstring)


def bits_for_int_list(values: Iterable[int], universe_size: int) -> int:
    """Cost of sending a list of indices into a universe of ``universe_size``."""
    per_item = bits_for_range(universe_size)
    return sum(per_item for _ in values)

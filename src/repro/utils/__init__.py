"""Small shared utilities: math helpers, RNG streams, bit-size helpers."""

from repro.utils.mathx import ilog2, log_star, tetration, clamp
from repro.utils.rng import RngStream, derive_rng
from repro.utils.bits import bit_length_of_int, bits_for_range, bits_for_bitstring

__all__ = [
    "ilog2",
    "log_star",
    "tetration",
    "clamp",
    "RngStream",
    "derive_rng",
    "bit_length_of_int",
    "bits_for_range",
    "bits_for_bitstring",
]

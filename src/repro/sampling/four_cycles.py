"""Local 4-cycle-richness detection (Theorem 3).

Theorem 3: there is an ``O(ε^{-4})``-round CONGEST algorithm that, for each
pair of edges incident on the same vertex, detects w.h.p. whether the pair is
contained in at least ``εΔ`` 4-cycles.

The protocol (Section 3.5): each vertex ``v`` picks a random representative
hash function ``h`` and announces it to its neighbours; each neighbour ``u``
replies with the ``σ``-bit indicator of ``N(u) ¬_h N(u)`` (its neighbours with
a unique low hash value).  With those in hand, ``v`` locally estimates
``|N(u) ∩ N(u')|`` for every pair of its neighbours ``u, u'`` exactly as
``EstimateSimilarity`` would — the number of 4-cycles through the edge pair
``(vu, vu')`` is ``|N(u) ∩ N(u')| − 1`` (discounting ``v`` itself).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Set, Tuple

from repro.congest.bandwidth import bitstring_message, index_message
from repro.congest.network import Network
from repro.hashing.representative import RepresentativeHashFamily
from repro.hashing.setops import unique_part
from repro.utils.rng import RngStream

Node = Hashable
EdgePair = Tuple[Node, Node, Node]  # (center, neighbor_1, neighbor_2)


@dataclass
class FourCycleDetectionResult:
    """Estimates for every wedge (pair of edges sharing a vertex)."""

    threshold: float
    estimates: Dict[EdgePair, float]
    flagged: Set[EdgePair]
    rounds_used: int

    def is_flagged(self, center: Node, u: Node, w: Node) -> bool:
        key = (center,) + tuple(sorted((u, w), key=repr))
        return key in self.flagged


def true_four_cycle_count(network: Network, center: Node, u: Node, w: Node) -> int:
    """Exact number of 4-cycles through the wedge ``u - center - w``."""
    common = network.neighbors(u) & network.neighbors(w)
    return len(common - {center})


def detect_four_cycle_rich_pairs(
    network: Network,
    eps: float = 0.3,
    delta: Optional[int] = None,
    nodes: Optional[Iterable[Node]] = None,
    nu: float = 0.1,
    sigma_cap: Optional[int] = 1024,
    seed: int = 0,
) -> FourCycleDetectionResult:
    """Flag every wedge contained in at least ``ε·Δ`` 4-cycles (Theorem 3)."""
    if delta is None:
        delta = max(1, network.max_degree())
    nodes = list(nodes) if nodes is not None else network.nodes
    rounds_before = network.rounds_used
    stream = RngStream(seed)

    # Round 1: every centre vertex picks one representative hash function for
    # its whole neighbourhood and broadcasts its index.
    lam = max(2, int(math.ceil(8.0 * delta / eps)))
    family = RepresentativeHashFamily(
        universe_label="four-cycles",
        universe_size=max(2, network.number_of_nodes),
        lam=lam,
        alpha=eps ** 2 / 8.0,
        beta=eps / 4.0,
        nu=nu,
        seed=seed,
        sigma_cap=sigma_cap,
    )
    chosen_index: Dict[Node, int] = {
        v: family.sample_index(stream.for_node(v, "four-cycle-hash")) for v in nodes
    }
    network.broadcast(
        {v: index_message(chosen_index[v], family.size, label="four-cycles:index") for v in nodes},
        label="four-cycles:index",
    )

    # Round 2: each neighbour u of a centre v answers with the σ-bit indicator
    # of N(u) ¬_h N(u) under v's hash function.
    sigma = family.sigma
    reply_messages = {}
    replies: Dict[Tuple[Node, Node], FrozenSet[int]] = {}
    for v in nodes:
        h = family.member(chosen_index[v])
        for u in network.neighbors(v):
            neighborhood = set(network.neighbors(u))
            survivors = unique_part(h, neighborhood, neighborhood, sigma)
            values = frozenset(h(x) for x in survivors)
            replies[(u, v)] = values
            bits = [1 if value in values else 0 for value in range(1, sigma + 1)]
            reply_messages[(u, v)] = bitstring_message(bits, label="four-cycles:indicator")
    network.exchange_chunked(reply_messages, label="four-cycles:indicator")

    # Local post-processing at each centre: estimate |N(u) ∩ N(u')| for every
    # pair of neighbours from the received indicators.
    threshold = eps * delta
    estimates: Dict[EdgePair, float] = {}
    flagged: Set[EdgePair] = set()
    for v in nodes:
        neighbors = sorted(network.neighbors(v), key=repr)
        for i, u in enumerate(neighbors):
            for w in neighbors[i + 1:]:
                shared = replies[(u, v)] & replies[(w, v)]
                estimate = len(shared) * family.lam / sigma
                key = (v,) + tuple(sorted((u, w), key=repr))
                estimates[key] = estimate
                if estimate >= threshold:
                    flagged.add(key)
    return FourCycleDetectionResult(
        threshold=threshold,
        estimates=estimates,
        flagged=flagged,
        rounds_used=network.rounds_used - rounds_before,
    )

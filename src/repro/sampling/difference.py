"""Sampling from set differences, two-party and multi-party (Section 2).

Besides intersections, the paper's technique lets parties sample from
*differences*: an element of ``X \\ Y`` is an element of ``X`` whose hash value
is not taken by any element of ``Y`` (restricting attention to the low window
``[σ]`` keeps the exchanged information to ``σ`` bits).  The multi-party form —
a node samples elements of its own set that no *neighbour's* set contains — is
exactly the engine inside ``MultiTrial``: the node's set is its palette and the
neighbours' sets are the colors they are trying.

Two interfaces are provided:

* :func:`sample_from_difference` — the two-party protocol in isolation
  (returns the sampled elements and the exact bit cost);
* :func:`sample_private_elements` — the multi-party protocol on a
  :class:`~repro.congest.network.Network`: every participating node samples up
  to ``count`` elements of its own set that none of its neighbours' sets
  contain, in O(1) (chunked) rounds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set

from repro.congest.bandwidth import bitstring_message, index_message
from repro.congest.message import Message
from repro.congest.network import Network
from repro.hashing.representative import RepresentativeHashFamily
from repro.hashing.setops import unique_part
from repro.sampling.similarity import SimilarityParameters, _scaled
from repro.utils.rng import RngStream

Node = Hashable


@dataclass
class DifferenceSampleResult:
    """Outcome of one two-party difference-sampling execution."""

    elements: List[Hashable]
    bits_exchanged: int
    candidate_count: int

    @property
    def empty(self) -> bool:
        return not self.elements


def sample_from_difference(
    own: Iterable[Hashable],
    other: Iterable[Hashable],
    count: int = 1,
    params: SimilarityParameters = SimilarityParameters(),
    rng: Optional[random.Random] = None,
) -> DifferenceSampleResult:
    """Sample up to ``count`` elements of ``own \\ other`` (two-party protocol).

    The owner of ``own`` picks the shared hash function; the owner of ``other``
    answers with the ``σ``-bit indicator of the hash values its elements
    occupy; the sampler then draws uniformly among its own unique-low-hash
    elements whose value is unoccupied.  Every returned element is guaranteed
    to lie outside ``other`` *unless* a hash collision hid an occupied value —
    with the Lemma 1 parameters that happens with probability ``O(β)``.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    own, other = set(own), set(other)
    rng = rng or random.Random(params.seed)
    if not own:
        return DifferenceSampleResult(elements=[], bits_exchanged=1, candidate_count=0)

    max_size = max(len(own), len(other), 1)
    k = params.scale_factor(max_size)
    scaled_own = _scaled(own, k)
    scaled_other = _scaled(other, k)
    family = params.family(max_size * k, label="difference-sample")
    index = family.sample_index(rng)
    h = family.member(index)
    sigma = family.sigma

    own_unique = unique_part(h, scaled_own, scaled_own, sigma)
    occupied = {h(x) for x in scaled_other if h(x) <= sigma}
    candidates = sorted((x for x in own_unique if h(x) not in occupied), key=repr)
    picked = rng.sample(candidates, min(count, len(candidates))) if candidates else []
    if k > 1:
        picked = [element[0] for element in picked]
    return DifferenceSampleResult(
        elements=picked,
        bits_exchanged=family.index_bits + sigma,
        candidate_count=len(candidates),
    )


def sample_private_elements(
    network: Network,
    sets: Mapping[Node, Set[Hashable]],
    count: int = 1,
    participants: Optional[Iterable[Node]] = None,
    lambda_factor: int = 6,
    sigma: int = 256,
    universe_size: int = 1 << 20,
    nu: float = 0.1,
    seed: int = 0,
    label: str = "difference-sample",
) -> Dict[Node, List[Hashable]]:
    """Every participant samples elements of its set outside all neighbours' sets.

    This is the multi-party difference sampling of Section 2 ("a party samples
    an element in the difference between her set and the union of all her
    neighbors' sets"), implemented with one hash-index broadcast plus one
    chunked ``σ``-bit indicator exchange — the same communication pattern as
    MultiTrial, but over arbitrary sets rather than palettes.

    Returns, per participant, a (possibly shorter than ``count``) list of
    elements of its own set; with the representative-family guarantees each
    returned element lies outside every neighbour's set except with the small
    collision probability of Lemma 1.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    participants = [
        v for v in (participants if participants is not None else network.nodes)
        if sets.get(v)
    ]
    stream = RngStream(seed)
    if not participants:
        network.charge_silent_round(label=f"{label}:setup")
        network.charge_silent_round(label=f"{label}:indicator")
        return {}
    participating = set(participants)

    # Round 1: every participant announces (λ_v, hash index).
    lam_of: Dict[Node, int] = {}
    hash_of: Dict[Node, object] = {}
    sigma_of: Dict[Node, int] = {}
    setup: Dict[Node, Message] = {}
    for v in participants:
        lam = max(2, lambda_factor * len(sets[v]))
        family = RepresentativeHashFamily(
            universe_label=label, universe_size=universe_size, lam=lam,
            alpha=1 / 12, beta=1 / 3, nu=nu, seed=seed,
        )
        index = family.sample_index(stream.for_node(v, label))
        lam_of[v] = lam
        hash_of[v] = family.member(index)
        sigma_of[v] = min(sigma, lam)
        setup[v] = Message(
            content=(lam, index),
            bits=max(1, lam.bit_length()) + family.index_bits,
            label=f"{label}:setup",
        )
    network.broadcast(setup, label=f"{label}:setup")

    # Round 2: each neighbour u of a participant v reports which of v's low
    # hash values its own set occupies (σ_v-bit indicator, chunked).
    indicator_messages = {}
    for v in participants:
        h_v, sigma_v = hash_of[v], sigma_of[v]
        for u in network.neighbors(v):
            occupied = {h_v(x) for x in sets.get(u, ()) if h_v(x) <= sigma_v}
            bits = [1 if value in occupied else 0 for value in range(1, sigma_v + 1)]
            indicator_messages[(u, v)] = bitstring_message(bits, label=f"{label}:indicator")
    delivered = network.exchange_chunked(indicator_messages, label=f"{label}:indicator")

    blocked: Dict[Node, Set[int]] = {v: set() for v in participants}
    for (sender, receiver), payload in delivered.items():
        if receiver in blocked:
            blocked[receiver] |= {i + 1 for i, bit in enumerate(payload) if bit}

    samples: Dict[Node, List[Hashable]] = {}
    for v in participants:
        h_v, sigma_v = hash_of[v], sigma_of[v]
        own_unique = unique_part(h_v, sets[v], sets[v], sigma_v)
        candidates = sorted((x for x in own_unique if h_v(x) not in blocked[v]), key=repr)
        rng = stream.for_node(v, label, "pick")
        samples[v] = rng.sample(candidates, min(count, len(candidates))) if candidates else []
    return samples

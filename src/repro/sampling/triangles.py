"""Local triangle-richness detection (Theorem 2).

Theorem 2: there is an ``O(ε^{-4})``-round CONGEST algorithm that, for each
edge, detects w.h.p. whether the edge is contained in at least ``εΔ``
triangles.  The algorithm is a one-liner given ``EstimateSimilarity``: the
number of triangles containing the edge ``uv`` is exactly ``|N(u) ∩ N(v)|``,
so each edge estimates that intersection and compares against the threshold.

This is the "local" analogue of distributed property testing: instead of a
single node flagging that the whole graph is far from triangle-free, *every*
edge learns whether it personally sits in many triangles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.congest.network import Network
from repro.sampling.similarity import (
    SimilarityParameters,
    SimilarityResult,
    estimate_similarity_on_edges,
)

Node = Hashable
Edge = Tuple[Node, Node]


@dataclass
class TriangleDetectionResult:
    """Per-edge triangle-count estimates and the edges flagged as triangle-rich."""

    threshold: float
    estimates: Dict[Edge, float]
    flagged: Set[Edge]
    rounds_used: int
    edge_results: Dict[Edge, SimilarityResult] = field(repr=False, default_factory=dict)

    def is_flagged(self, u: Node, v: Node) -> bool:
        return (u, v) in self.flagged or (v, u) in self.flagged


def true_triangle_count(network: Network, u: Node, v: Node) -> int:
    """Exact number of triangles containing edge ``uv`` (ground truth helper)."""
    return len(network.neighbors(u) & network.neighbors(v))


def detect_triangle_rich_edges(
    network: Network,
    eps: float = 0.3,
    delta: Optional[int] = None,
    params: Optional[SimilarityParameters] = None,
    edges: Optional[Iterable[Edge]] = None,
    seed: int = 0,
) -> TriangleDetectionResult:
    """Flag every edge contained in at least ``ε·Δ`` triangles (Theorem 2).

    Parameters
    ----------
    eps:
        Richness threshold as a fraction of ``Δ``; also drives the accuracy of
        the underlying similarity estimates.
    delta:
        The maximum degree ``Δ`` against which the threshold is measured.
        Defaults to the true maximum degree of the network (globally known, as
        is standard in the property-testing setting).
    """
    if delta is None:
        delta = max(1, network.max_degree())
    if params is None:
        params = SimilarityParameters.practical(eps=eps / 2.0, seed=seed)
    rounds_before = network.rounds_used
    edges = [tuple(e) for e in (edges if edges is not None else network.graph.edges())]
    neighborhoods = {v: set(network.neighbors(v)) for v in network.nodes}
    similarities = estimate_similarity_on_edges(
        network, neighborhoods, edges=edges, params=params, seed=seed,
        label="triangle-detection",
    )
    threshold = eps * delta
    estimates = {edge: result.estimate for edge, result in similarities.items()}
    flagged = {edge for edge, estimate in estimates.items() if estimate >= threshold}
    return TriangleDetectionResult(
        threshold=threshold,
        estimates=estimates,
        flagged=flagged,
        rounds_used=network.rounds_used - rounds_before,
        edge_results=similarities,
    )

"""``EstimateSimilarity`` (Algorithm 1 of the paper).

Two endpoints of an edge hold sets ``S_u`` and ``S_v`` from a common universe
and want an estimate of ``|S_u ∩ S_v|`` accurate to ``ε·max(|S_u|, |S_v|)``
using a constant number of small messages.  The protocol:

1. if either set is empty, return 0;
2. scale both sets up by a factor ``k`` (Cartesian product with ``[k]``) so
   the representative-family hypotheses of Lemma 1 hold even for small sets;
3. agree on a random member ``h`` of a representative family with parameters
   ``λ = 8·max/ε``, ``β = ε/4``, ``α = ε²/8`` (one ``log F``-bit message);
4. each endpoint sends the ``σ``-bit indicator of ``h(T)`` for
   ``T = S ¬_h S`` (its elements with a unique low hash value);
5. output ``|h(T_u) ∩ h(T_v)| · λ / (σ·k)``.

Lemma 2 shows the output is within ``ε·max(|S_u|, |S_v|)`` of the truth with
probability ``1 − ν``, at a cost of ``O(ε^{-4}·log(1/ν) + log log|U| +
log max(|S_u|,|S_v|))`` bits.

Two interfaces are provided: :func:`estimate_similarity` runs the two-party
protocol in isolation (returning the estimate and exact bit cost; used by the
unit tests and the accuracy benchmarks), and
:func:`estimate_similarity_on_edges` runs it simultaneously on every requested
edge of a :class:`~repro.congest.network.Network`, charging the messages to
the network ledger — this is the form used by sparsity estimation, ACD
computation and triangle/4-cycle detection.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Set, Tuple

from repro.congest.bandwidth import index_message
from repro.congest.message import Message
from repro.congest.network import Network
from repro.hashing.keys import combine_part_keys, element_key
from repro.hashing.representative import RepresentativeHashFamily
from repro.utils.rng import RngStream

Node = Hashable
Edge = Tuple[Node, Node]


@dataclass(frozen=True)
class SimilarityParameters:
    """Tunable parameters of ``EstimateSimilarity``.

    ``eps`` and ``nu`` are the accuracy and failure probability of Lemma 2.
    ``scale_constant`` is the ``96·ln(12/ν)`` factor in the definition of the
    scale-up factor ``k`` (step 2 of Algorithm 1); ``max_scale`` caps ``k`` so
    that graph-wide sweeps on a laptop stay tractable (the paper has no such
    cap — it is a pure running-time knob of the simulation, recorded in
    DESIGN.md, and the default of ``None`` reproduces the paper exactly).
    """

    eps: float = 0.25
    nu: float = 0.05
    scale_constant: float = 96.0
    max_scale: Optional[int] = None
    sigma_cap: Optional[int] = None
    universe_size: int = 1 << 20
    seed: int = 0

    @classmethod
    def practical(cls, eps: float = 0.3, nu: float = 0.1, seed: int = 0) -> "SimilarityParameters":
        """Laptop-scale preset used by the graph-wide primitives.

        The paper's constants (``k``'s ``96·ε^{-3}·ln(12/ν)`` scale-up and
        ``σ = Θ(ε^{-4} log(1/ν))``) are asymptotically tight but enormous for
        per-edge sweeps over thousands of edges in a Python simulation.  This
        preset caps the scale-up factor and ``σ``; the protocol and its
        communication pattern are unchanged, only the concentration constants
        shrink.  DESIGN.md records this as a simulation knob.
        """
        return cls(eps=eps, nu=nu, max_scale=4, sigma_cap=1024, seed=seed)

    def __post_init__(self):
        if not 0 < self.eps < 1:
            raise ValueError(f"eps must be in (0, 1), got {self.eps}")
        if not 0 < self.nu < 1:
            raise ValueError(f"nu must be in (0, 1), got {self.nu}")
        if self.scale_constant <= 0:
            raise ValueError("scale_constant must be positive")

    def scale_factor(self, max_size: int) -> int:
        """The scale-up factor ``k`` of Algorithm 1, step 2."""
        if max_size <= 0:
            return 1
        k = math.ceil(
            self.scale_constant * self.eps ** -3 * math.log(12.0 / self.nu) / max_size
        )
        k = max(1, int(k))
        if self.max_scale is not None:
            k = min(k, max(1, int(self.max_scale)))
        return k

    def family(self, max_size: int, label: str = "similarity") -> RepresentativeHashFamily:
        """The representative family of Algorithm 1, step 4."""
        lam = max(2, int(math.ceil(8.0 * max_size / self.eps)))
        return RepresentativeHashFamily(
            universe_label=label,
            universe_size=self.universe_size,
            lam=lam,
            alpha=self.eps ** 2 / 8.0,
            beta=self.eps / 4.0,
            nu=self.nu,
            seed=self.seed,
            sigma_cap=self.sigma_cap,
        )


@dataclass
class SimilarityResult:
    """Outcome of one two-party ``EstimateSimilarity`` execution."""

    estimate: float
    bits_exchanged: int
    scale_factor: int
    sigma: int
    lam: int
    shared_hash_values: FrozenSet[int]

    def error_against(self, true_intersection: int) -> float:
        return abs(self.estimate - true_intersection)


def _scaled(elements: Iterable[Hashable], k: int) -> Set[Hashable]:
    """Cartesian product ``S × [k]`` used to scale small sets up (step 3)."""
    if k <= 1:
        return set(elements)
    return {(x, j) for x in elements for j in range(k)}


def _low_unique_hashes(h, elements: Set[Hashable], sigma: int) -> Set[int]:
    """Hash values (``<= sigma``) hit by exactly one element of ``elements``.

    Equivalent to ``{h(x) for x in unique_part(h, elements, elements, sigma)}``
    but computed in a single counting pass: a low hash value survives iff
    exactly one element maps to it (set members are pairwise distinct, so the
    "collides with an *other* element" clause reduces to a count).
    """
    counts: Dict[int, int] = {}
    get = counts.get
    for x in elements:
        value = h(x)
        if value <= sigma:
            seen = get(value)
            counts[value] = 1 if seen is None else seen + 1
    return {value for value, count in counts.items() if count == 1}


def _indicator_message(hashes: Set[int], sigma: int, label: str) -> Message:
    """The ``σ``-bit indicator of ``hashes ⊆ [sigma]``, charged ``σ`` bits.

    The charge is the full indicator length (``max(1, sigma)`` bits, exactly
    what :func:`~repro.congest.bandwidth.bitstring_message` declares for a
    ``σ``-position 0/1 string); the *content* carries the equivalent sparse
    encoding — the sorted 1-positions — so a graph-wide sweep does not
    materialise a ``σ``-length tuple per endpoint per edge.  Receivers only
    ever intersect the marked positions, and the simulation reads the hash
    sets directly, so the dense and sparse encodings are interchangeable.
    """
    return Message(content=tuple(sorted(hashes)), bits=max(1, sigma), label=label)


def estimate_similarity(
    set_u: Iterable[Hashable],
    set_v: Iterable[Hashable],
    params: SimilarityParameters = SimilarityParameters(),
    rng: Optional[random.Random] = None,
) -> SimilarityResult:
    """Run the two-party protocol of Algorithm 1 and return its estimate.

    The returned :class:`SimilarityResult` includes the exact number of bits
    the two parties exchanged (hash-family index + two ``σ``-bit indicator
    strings), which the bandwidth benchmarks compare against Lemma 2's bound.
    """
    set_u, set_v = set(set_u), set(set_v)
    if not set_u or not set_v:
        return SimilarityResult(
            estimate=0.0,
            bits_exchanged=1,
            scale_factor=1,
            sigma=0,
            lam=0,
            shared_hash_values=frozenset(),
        )
    rng = rng or random.Random(params.seed)
    max_size = max(len(set_u), len(set_v))
    k = params.scale_factor(max_size)
    scaled_u, scaled_v = _scaled(set_u, k), _scaled(set_v, k)
    family = params.family(max_size * k)
    index = family.sample_index(rng)
    h = family.member(index)
    sigma = family.sigma

    hashes_u = _low_unique_hashes(h, scaled_u, sigma)
    hashes_v = _low_unique_hashes(h, scaled_v, sigma)
    shared = frozenset(hashes_u & hashes_v)
    estimate = len(shared) * family.lam / (sigma * k)

    bits = family.index_bits + 2 * sigma
    return SimilarityResult(
        estimate=estimate,
        bits_exchanged=bits,
        scale_factor=k,
        sigma=sigma,
        lam=family.lam,
        shared_hash_values=shared,
    )


def estimate_similarity_on_edges(
    network: Network,
    sets: Mapping[Node, Set[Hashable]],
    edges: Optional[Iterable[Edge]] = None,
    params: SimilarityParameters = SimilarityParameters(),
    seed: int = 0,
    label: str = "estimate-similarity",
) -> Dict[Edge, SimilarityResult]:
    """Run ``EstimateSimilarity`` simultaneously on many edges of a network.

    Every requested edge runs the two-party protocol in parallel; the whole
    batch costs a constant number of CONGEST rounds (one for the shared hash
    index, one synchronous exchange of the ``σ``-bit indicators), which is the
    point of the paper's construction.  Results are keyed by the edge in the
    orientation given (``(u, v)`` and ``(v, u)`` would hold the same result).
    """
    if edges is None:
        edges = list(network.graph.edges())
    edges = [tuple(edge) for edge in edges]
    stream = RngStream(seed)

    # Per-sweep caches.  A node of degree d participates in up to d requested
    # edges; without these caches its set is copied, scaled and re-keyed once
    # per *edge* instead of once per *node*, which used to dominate the ACD's
    # wall-clock.  All cached values are pure functions of their keys, so the
    # sweep's outputs are bit-identical to the uncached computation:
    #
    # * ``node_sets``   — one set copy per node;
    # * ``families``    — ``params.family(lam_arg)`` is deterministic in its
    #   argument (``params`` is fixed for the sweep), so equal ``max_size * k``
    #   means the *same* family, threshold and seed;
    # * ``scaled_keys`` — the element keys of the scaled set ``S × [k]``:
    #   ``element_key((x, j)) == combine_part_keys((element_key(x), j))``.
    node_sets: Dict[Node, Set[Hashable]] = {}
    families: Dict[int, RepresentativeHashFamily] = {}
    scaled_keys: Dict[Tuple[Node, int], list] = {}

    def _set_of(node: Node) -> Set[Hashable]:
        members = node_sets.get(node)
        if members is None:
            members = set(sets.get(node, ()))
            node_sets[node] = members
        return members

    def _family_for(lam_arg: int) -> RepresentativeHashFamily:
        family = families.get(lam_arg)
        if family is None:
            family = params.family(lam_arg)
            families[lam_arg] = family
        return family

    def _keys_of(node: Node, k: int) -> list:
        keys = scaled_keys.get((node, k))
        if keys is None:
            base = [element_key(x) for x in node_sets[node]]
            if k <= 1:
                keys = base
            else:
                keys = [
                    combine_part_keys((part, j)) for part in base for j in range(k)
                ]
            scaled_keys[(node, k)] = keys
        return keys

    # Round 1: on every edge the endpoint with the smaller identifier draws
    # the shared hash-function index and sends it across (log F bits).
    index_payloads = {}
    per_edge_state: Dict[Edge, Tuple] = {}
    for (u, v) in edges:
        set_u = _set_of(u)
        set_v = _set_of(v)
        if not set_u or not set_v:
            per_edge_state[(u, v)] = None
            continue
        max_size = max(len(set_u), len(set_v))
        k = params.scale_factor(max_size)
        family = _family_for(max_size * k)
        index = family.sample_index(stream.for_edge(u, v, label))
        per_edge_state[(u, v)] = (k, family, index)
        sender, receiver = (u, v) if repr(u) <= repr(v) else (v, u)
        index_payloads[(sender, receiver)] = index_message(
            index, family.size, label=f"{label}:index"
        )
    # The index is O(log F) = O(log n) bits; under a strict (1·log n)-bit
    # budget it may still need a couple of chunked rounds.
    network.exchange_chunked(index_payloads, label=f"{label}:index")

    # Round 2: both endpoints exchange the σ-bit indicator of h(T), where
    # T = S ¬_h S is computed in one counting pass over the precomputed keys.
    # On a sharded network (``Network(shards=N)``) a big enough sweep fans
    # the per-edge hashing out over the persistent compute pool
    # (repro.shard.sweep) — a pure reorganisation of the same hash
    # evaluations, so the hash sets (and everything downstream) are
    # bit-identical to this loop; the accounting rounds below are untouched.
    indicator_payloads = {}
    per_edge_hashes: Dict[Edge, Tuple[Set[int], Set[int]]] = {}
    sharded_hashes = None
    shards = int(getattr(network, "shards", 1) or 1)
    if shards > 1:
        from repro.shard.sweep import (
            MIN_SHARDED_WORK, estimated_work, sharded_edge_hashes,
        )

        tasks = []
        base_keys: Dict[Node, list] = {}
        for (u, v), state in per_edge_state.items():
            if state is None:
                continue
            k, family, index = state
            for node in (u, v):
                if node not in base_keys:
                    base_keys[node] = _keys_of(node, 1)
            tasks.append((len(tasks), u, v, family.family_seed, index,
                          family.lam, family.sigma, k))
        if tasks and estimated_work(tasks, base_keys) >= MIN_SHARDED_WORK:
            sharded_hashes = iter(sharded_edge_hashes(tasks, base_keys, shards))
    for (u, v), state in per_edge_state.items():
        if state is None:
            continue
        k, family, index = state
        sigma = family.sigma
        if sharded_hashes is not None:
            hashes_u, hashes_v = next(sharded_hashes)
        else:
            h = family.member(index)
            hashes_u = h.low_unique_values(_keys_of(u, k), sigma)
            hashes_v = h.low_unique_values(_keys_of(v, k), sigma)
        per_edge_hashes[(u, v)] = (hashes_u, hashes_v)
        indicator_label = f"{label}:indicator"
        indicator_payloads[(u, v)] = _indicator_message(hashes_u, sigma, indicator_label)
        indicator_payloads[(v, u)] = _indicator_message(hashes_v, sigma, indicator_label)
    network.exchange_chunked(indicator_payloads, label=f"{label}:indicator")

    results: Dict[Edge, SimilarityResult] = {}
    for (u, v), state in per_edge_state.items():
        if state is None:
            results[(u, v)] = SimilarityResult(
                estimate=0.0,
                bits_exchanged=1,
                scale_factor=1,
                sigma=0,
                lam=0,
                shared_hash_values=frozenset(),
            )
            continue
        k, family, _index = state
        hashes_u, hashes_v = per_edge_hashes[(u, v)]
        shared = frozenset(hashes_u & hashes_v)
        estimate = len(shared) * family.lam / (family.sigma * k)
        results[(u, v)] = SimilarityResult(
            estimate=estimate,
            bits_exchanged=family.index_bits + 2 * family.sigma,
            scale_factor=k,
            sigma=family.sigma,
            lam=family.lam,
            shared_hash_values=shared,
        )
    return results

"""``EstimateSparsity`` (Algorithm 3, Lemmas 4 and 5).

Sparsity measures how many edges are missing from a node's neighbourhood.
The paper uses two flavours:

* **global sparsity** ``ζ^[Δ]_v = (Δ-1)/2 − (1/2Δ)·Σ_{u∈N(v)} |N(u) ∩ N(v)|``
  (used by (Δ+1)-coloring algorithms), and
* **local sparsity** ``ζ^[d]_v = (d_v-1)/2 − (1/2d_v)·Σ_{u∈N(v)} |N(u) ∩ N(v)|``
  (used by (deg+1)-list-coloring).

Both reduce to estimating ``|N(u) ∩ N(v)|`` on every edge, which
``EstimateSimilarity`` does in ``O(1)`` rounds.  Lemma 4: the global estimate
is within ``εΔ`` of the truth w.p. ``1 − (νΔ)^{εΔ/2}``.  Lemma 5: the local
estimate is within ``εd_v`` w.p. ``1 − (νd_v)^{εd_v/3}`` for nodes with fewer
than ``εd_v/3`` neighbours of degree ``≥ 2d_v`` (higher-degree neighbours make
the per-edge estimates unreliable, so they are excluded from the sum and their
worst-case contribution is accounted separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Optional, Tuple

from repro.congest.network import Network
from repro.sampling.similarity import (
    SimilarityParameters,
    SimilarityResult,
    estimate_similarity_on_edges,
)

Node = Hashable


@dataclass
class SparsityEstimates:
    """Per-node sparsity estimates plus the per-edge similarity data behind them."""

    estimates: Dict[Node, float]
    reliable: Dict[Node, bool]
    edge_similarities: Dict[Tuple[Node, Node], SimilarityResult] = field(repr=False, default_factory=dict)
    rounds_used: int = 0

    def __getitem__(self, node: Node) -> float:
        return self.estimates[node]


def _neighborhoods(network: Network, nodes: Iterable[Node]) -> Dict[Node, set]:
    return {v: set(network.neighbors(v)) for v in nodes}


def estimate_global_sparsity(
    network: Network,
    eps: float = 0.3,
    params: Optional[SimilarityParameters] = None,
    nodes: Optional[Iterable[Node]] = None,
    seed: int = 0,
) -> SparsityEstimates:
    """Estimate ``ζ^[Δ]_v`` for every node (Algorithm 3).

    Every edge runs ``EstimateSimilarity(ε/2)`` on the endpoints'
    neighbourhoods simultaneously, then each node aggregates locally — the
    whole procedure is a constant number of CONGEST rounds.
    """
    if params is None:
        params = SimilarityParameters.practical(eps=eps / 2.0, seed=seed)
    nodes = list(nodes) if nodes is not None else network.nodes
    rounds_before = network.rounds_used
    neighborhoods = _neighborhoods(network, network.nodes)
    edges = [tuple(e) for e in network.graph.edges()]
    similarities = estimate_similarity_on_edges(
        network, neighborhoods, edges=edges, params=params, seed=seed,
        label="estimate-sparsity",
    )
    # Index the (symmetric) similarity estimate by both orientations.
    by_edge: Dict[Tuple[Node, Node], SimilarityResult] = {}
    for (u, v), result in similarities.items():
        by_edge[(u, v)] = result
        by_edge[(v, u)] = result

    delta = max(1, network.max_degree())
    estimates: Dict[Node, float] = {}
    for v in nodes:
        total = sum(by_edge[(v, u)].estimate for u in network.neighbors(v))
        estimates[v] = (delta - 1) / 2.0 - total / (2.0 * delta)
    return SparsityEstimates(
        estimates=estimates,
        reliable={v: True for v in nodes},
        edge_similarities=by_edge,
        rounds_used=network.rounds_used - rounds_before,
    )


def estimate_local_sparsity(
    network: Network,
    eps: float = 0.3,
    params: Optional[SimilarityParameters] = None,
    nodes: Optional[Iterable[Node]] = None,
    seed: int = 0,
) -> SparsityEstimates:
    """Estimate the local sparsity ``ζ^[d]_v`` (Lemma 5 tweak of Algorithm 3).

    Nodes first learn their neighbours' degrees (one round), then run the
    similarity protocol with accuracy ``ε/3`` restricted to neighbours of
    degree below ``2·d_v``.  The result for node ``v`` is flagged as
    ``reliable`` only when fewer than ``ε·d_v/3`` of its neighbours have
    degree at least ``2·d_v`` — Lemma 5's precondition.
    """
    if params is None:
        params = SimilarityParameters.practical(eps=eps / 3.0, seed=seed)
    nodes = list(nodes) if nodes is not None else network.nodes
    rounds_before = network.rounds_used

    # Round 0: everyone announces its degree.
    degree_inbox = network.broadcast(
        {v: network.degree(v) for v in network.nodes}, label="estimate-sparsity:degrees"
    )
    degrees = {v: network.degree(v) for v in network.nodes}

    neighborhoods = _neighborhoods(network, network.nodes)
    edges = [tuple(e) for e in network.graph.edges()]
    similarities = estimate_similarity_on_edges(
        network, neighborhoods, edges=edges, params=params, seed=seed,
        label="estimate-local-sparsity",
    )
    by_edge: Dict[Tuple[Node, Node], SimilarityResult] = {}
    for (u, v), result in similarities.items():
        by_edge[(u, v)] = result
        by_edge[(v, u)] = result

    estimates: Dict[Node, float] = {}
    reliable: Dict[Node, bool] = {}
    for v in nodes:
        dv = max(1, degrees[v])
        usable = [
            u for u in network.neighbors(v)
            if degree_inbox[v].get(u, degrees[u]) < 2 * dv
        ]
        excluded = network.degree(v) - len(usable)
        total = sum(by_edge[(v, u)].estimate for u in usable)
        estimates[v] = (dv - 1) / 2.0 - total / (2.0 * dv)
        reliable[v] = excluded < eps * dv / 3.0
    return SparsityEstimates(
        estimates=estimates,
        reliable=reliable,
        edge_similarities=by_edge,
        rounds_used=network.rounds_used - rounds_before,
    )

"""``JointSample`` (Algorithm 2 of the paper).

Two endpoints of an edge jointly sample an element of the intersection of
their sets without ever exchanging an element explicitly: they agree on a
representative hash function, exchange the ``σ``-bit indicators of their
unique low hash values (exactly as in ``EstimateSimilarity``), and then both
pick the same random shared hash value and output its unique preimage on
their own side.  Lemma 3: when ``|S_u ∩ S_v| >= ε·max(|S_u|, |S_v|)``, both
endpoints output the *same* element of the intersection with probability at
least ``1 − 5ε/4 − ν``.

The module also provides :func:`joint_sample_many`, the multi-element variant
mentioned after Lemma 3 (picking several indices in step 7 costs no extra
rounds).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.hashing.setops import unique_part
from repro.sampling.similarity import SimilarityParameters, _scaled


@dataclass
class JointSampleResult:
    """Outcome of one two-party ``JointSample`` execution."""

    u_element: Optional[Hashable]
    v_element: Optional[Hashable]
    bits_exchanged: int
    shared_hash_count: int

    @property
    def agreed(self) -> bool:
        """True when both endpoints output the same (non-empty) element."""
        return self.u_element is not None and self.u_element == self.v_element

    @property
    def empty(self) -> bool:
        return self.u_element is None and self.v_element is None


def _unscale(element: Hashable, k: int) -> Hashable:
    """Undo the ``S × [k]`` scale-up of Algorithm 1/2, step 3."""
    if k <= 1:
        return element
    return element[0]


def _unique_preimages(h, elements: Set[Hashable], sigma: int) -> Dict[int, Hashable]:
    """Map each low hash value with a unique preimage in ``elements`` to it."""
    survivors = unique_part(h, elements, elements, sigma)
    return {h(x): x for x in survivors}


def joint_sample(
    set_u: Iterable[Hashable],
    set_v: Iterable[Hashable],
    params: SimilarityParameters = SimilarityParameters(),
    rng: Optional[random.Random] = None,
) -> JointSampleResult:
    """Run Algorithm 2 once and return what each endpoint output."""
    results = joint_sample_many(set_u, set_v, count=1, params=params, rng=rng)
    return results[0]


def joint_sample_many(
    set_u: Iterable[Hashable],
    set_v: Iterable[Hashable],
    count: int,
    params: SimilarityParameters = SimilarityParameters(),
    rng: Optional[random.Random] = None,
) -> List[JointSampleResult]:
    """Sample ``count`` elements jointly (multi-index variant of step 7).

    All samples share the one hash-function exchange, so the bit cost of the
    batch equals the cost of a single run plus ``count`` small indices.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    set_u, set_v = set(set_u), set(set_v)
    rng = rng or random.Random(params.seed)
    if not set_u or not set_v:
        return [
            JointSampleResult(None, None, bits_exchanged=1, shared_hash_count=0)
            for _ in range(count)
        ]

    max_size = max(len(set_u), len(set_v))
    k = params.scale_factor(max_size)
    scaled_u, scaled_v = _scaled(set_u, k), _scaled(set_v, k)
    family = params.family(max_size * k, label="joint-sample")
    index = family.sample_index(rng)
    h = family.member(index)
    sigma = family.sigma

    preimages_u = _unique_preimages(h, scaled_u, sigma)
    preimages_v = _unique_preimages(h, scaled_v, sigma)
    shared_values = sorted(set(preimages_u) & set(preimages_v))
    base_bits = family.index_bits + 2 * sigma

    results: List[JointSampleResult] = []
    for _ in range(count):
        if not shared_values:
            results.append(
                JointSampleResult(None, None, bits_exchanged=base_bits, shared_hash_count=0)
            )
            continue
        # Step 7: the endpoints jointly pick a random shared hash value.  One
        # endpoint draws it and sends the log|J|-bit choice across.
        choice = rng.choice(shared_values)
        choice_bits = max(1, (len(shared_values) - 1).bit_length())
        results.append(
            JointSampleResult(
                u_element=_unscale(preimages_u[choice], k),
                v_element=_unscale(preimages_v[choice], k),
                bits_exchanged=base_bits + choice_bits,
                shared_hash_count=len(shared_values),
            )
        )
        base_bits = 0  # the hash exchange is shared by all samples of the batch
    return results


def agreement_rate(
    set_u: Iterable[Hashable],
    set_v: Iterable[Hashable],
    trials: int,
    params: SimilarityParameters = SimilarityParameters(),
    seed: int = 0,
) -> float:
    """Empirical probability that the two endpoints output the same element.

    Used by the Lemma 3 benchmark (E3): the measured rate should be at least
    ``1 − 5ε/4 − ν`` whenever the intersection is an ``ε`` fraction of the
    larger set.
    """
    if trials < 1:
        raise ValueError("trials must be positive")
    agreed = 0
    for trial in range(trials):
        result = joint_sample(set_u, set_v, params=params, rng=random.Random(seed + trial))
        if result.agreed:
            agreed += 1
    return agreed / trials

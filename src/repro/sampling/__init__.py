"""Communication-efficient estimation and sampling primitives (Section 3).

These are the direct applications of representative hash functions:

* :mod:`repro.sampling.similarity` — ``EstimateSimilarity`` (Algorithm 1,
  Lemma 2),
* :mod:`repro.sampling.joint_sample` — ``JointSample`` (Algorithm 2, Lemma 3),
* :mod:`repro.sampling.sparsity` — ``EstimateSparsity`` for global and local
  sparsity (Algorithm 3, Lemmas 4–5),
* :mod:`repro.sampling.triangles` — local triangle-richness detection
  (Theorem 2),
* :mod:`repro.sampling.four_cycles` — local 4-cycle-richness detection
  (Theorem 3).
"""

from repro.sampling.similarity import (
    SimilarityParameters,
    SimilarityResult,
    estimate_similarity,
    estimate_similarity_on_edges,
)
from repro.sampling.joint_sample import JointSampleResult, joint_sample, joint_sample_many
from repro.sampling.difference import (
    DifferenceSampleResult,
    sample_from_difference,
    sample_private_elements,
)
from repro.sampling.sparsity import (
    SparsityEstimates,
    estimate_global_sparsity,
    estimate_local_sparsity,
)
from repro.sampling.triangles import TriangleDetectionResult, detect_triangle_rich_edges
from repro.sampling.four_cycles import FourCycleDetectionResult, detect_four_cycle_rich_pairs

__all__ = [
    "SimilarityParameters",
    "SimilarityResult",
    "estimate_similarity",
    "estimate_similarity_on_edges",
    "JointSampleResult",
    "joint_sample",
    "joint_sample_many",
    "DifferenceSampleResult",
    "sample_from_difference",
    "sample_private_elements",
    "SparsityEstimates",
    "estimate_global_sparsity",
    "estimate_local_sparsity",
    "TriangleDetectionResult",
    "detect_triangle_rich_edges",
    "FourCycleDetectionResult",
    "detect_four_cycle_rich_pairs",
]

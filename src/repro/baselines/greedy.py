"""Centralized greedy list-coloring, used as a ground-truth/quality reference.

This is not a distributed algorithm: it exists so tests and examples can check
that an instance is feasible and compare the distributed solutions against a
straightforward sequential answer.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional

import networkx as nx

from repro.core.problem import ColoringInstance

Node = Hashable
Color = Hashable


def greedy_coloring(
    graph: nx.Graph,
    lists: Optional[Mapping[Node, Iterable[Color]]] = None,
    order: Optional[Iterable[Node]] = None,
) -> Dict[Node, Color]:
    """Sequentially assign every node the first palette color free among neighbours.

    With ``deg+1`` lists the greedy order always finds a free color, so the
    result is a complete proper list-coloring.
    """
    if lists is None:
        instance = ColoringInstance.d1c(graph)
    else:
        instance = ColoringInstance.d1lc(graph, lists)
    coloring: Dict[Node, Color] = {}
    nodes = list(order) if order is not None else sorted(graph.nodes(), key=repr)
    for v in nodes:
        taken = {coloring[u] for u in graph.neighbors(v) if u in coloring}
        available = sorted((c for c in instance.palettes[v] if c not in taken), key=repr)
        if not available:
            raise ValueError(
                f"greedy ran out of colors at node {v!r}; the instance violates "
                "the deg+1 list size requirement"
            )
        coloring[v] = available[0]
    return coloring

"""The classical random-color-trial coloring baseline (Johansson / Luby style).

Every uncolored node repeatedly proposes a uniformly random color from its
current palette and keeps it if no neighbour proposed the same color; adopted
colors are removed from the neighbours' palettes.  With ``deg+1`` lists every
node succeeds with constant probability per iteration, so the algorithm
finishes in ``O(log n)`` rounds w.h.p. — the baseline bound the paper's
``O(log^5 log n)`` result improves on.  It sends one color per round per edge,
so it runs in CONGEST whenever single colors fit in a message (and through the
large-color hashing otherwise).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional

import networkx as nx

from repro.congest.network import Network
from repro.core.d1lc import _build_result
from repro.core.params import ColoringParameters
from repro.core.problem import ColoringInstance
from repro.core.slack import try_random_color
from repro.core.state import ColoringResult, ColoringState

Node = Hashable
Color = Hashable


def johansson_coloring(
    graph: nx.Graph,
    lists: Optional[Mapping[Node, Iterable[Color]]] = None,
    mode: str = "congest",
    seed: int = 0,
    max_iterations: Optional[int] = None,
    params: Optional[ColoringParameters] = None,
    backend: str = "batch",
    ledger: str = "records",
    faults=None,
    fault_seed: Optional[int] = None,
    shards: int = 1,
    tracer=None,
) -> ColoringResult:
    """Color ``graph`` by iterated random color trials.

    Returns the same :class:`~repro.core.state.ColoringResult` structure as the
    main solver, so benchmarks can compare rounds and bits directly.
    ``faults``/``fault_seed`` perturb delivery exactly as in
    :func:`~repro.core.d1lc.solve_instance`, so robustness head-to-heads
    stress the baseline and the pipeline identically.
    """
    if lists is None:
        instance = ColoringInstance.d1c(graph)
    else:
        instance = ColoringInstance.d1lc(graph, lists)
    params = (params or ColoringParameters.small()).with_seed(seed)
    network = Network(graph, mode=mode, backend=backend, ledger=ledger,
                      faults=faults,
                      fault_seed=seed if fault_seed is None else fault_seed,
                      shards=shards, tracer=tracer)
    state = ColoringState(instance, network, params)
    if max_iterations is None:
        max_iterations = 8 * max(4, graph.number_of_nodes().bit_length() ** 2)

    for _ in range(max_iterations):
        uncolored = state.uncolored_nodes()
        if not uncolored:
            break
        if network.tracer.enabled:
            network.tracer.note_nodes(len(uncolored), network.number_of_nodes)
        try_random_color(state, uncolored, label="johansson")
    return _build_result(state, fallback_count=0)

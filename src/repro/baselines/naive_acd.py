"""Naive almost-clique decomposition: ship whole neighbourhoods.

The obvious way to decide whether an edge is an ``ε``-friend edge is for the
endpoints to exchange their full neighbour lists (``d·log n`` bits, i.e.
``Θ(Δ)`` CONGEST rounds via chunking) and intersect them exactly.  This is the
``Ω(Δ)``-round cost the paper's O(1)-round, sampling-based ACD (Section 4.2)
eliminates; the bandwidth ablation (Experiment E12) compares the two.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set, Tuple

from repro.congest.bandwidth import index_message
from repro.congest.message import Message
from repro.congest.network import Network
from repro.core.acd import ACDResult
from repro.core.params import ColoringParameters

Node = Hashable
Edge = Tuple[Node, Node]


def naive_compute_acd(
    network: Network,
    params: Optional[ColoringParameters] = None,
    active: Optional[Iterable[Node]] = None,
) -> ACDResult:
    """Exact-friendship ACD computed by exchanging full neighbour lists."""
    params = params or ColoringParameters.small()
    rounds_before = network.rounds_used
    active_set = set(active) if active is not None else set(network.nodes)
    eps = params.acd_eps

    neighborhoods: Dict[Node, Set[Node]] = {
        v: {u for u in network.neighbors(v) if u in active_set} for v in active_set
    }
    degrees = {v: len(neighborhoods[v]) for v in active_set}

    # One (chunked) exchange shipping the full neighbour list across every
    # active edge: d_v * log n bits per message, i.e. Θ(Δ) rounds.
    id_bits = max(1, (max(2, network.number_of_nodes) - 1).bit_length())
    messages = {}
    for v in active_set:
        payload = Message(
            content=tuple(sorted(neighborhoods[v], key=repr)),
            bits=max(1, id_bits * len(neighborhoods[v])),
            label="naive-acd:neighborhood",
        )
        for u in neighborhoods[v]:
            messages[(v, u)] = payload
    network.exchange_chunked(messages, label="naive-acd:neighborhood")

    friend_edges: Set[Edge] = set()
    for u, v in network.graph.edges():
        if u not in active_set or v not in active_set:
            continue
        du, dv = degrees[u], degrees[v]
        if min(du, dv) == 0 or min(du, dv) < (1 - eps) * max(du, dv):
            continue
        shared = len(neighborhoods[u] & neighborhoods[v])
        if shared >= (1 - eps) * min(du, dv):
            friend_edges.add((u, v))

    friends_of: Dict[Node, Set[Node]] = {v: set() for v in active_set}
    for (u, v) in friend_edges:
        friends_of[u].add(v)
        friends_of[v].add(u)
    dense = {
        v for v in active_set
        if degrees[v] > 0 and len(friends_of[v]) >= (1 - 2 * eps) * degrees[v]
    }

    cliques: Dict[int, Set[Node]] = {}
    clique_of: Dict[Node, int] = {}
    visited: Set[Node] = set()
    next_id = 0
    for v in sorted(dense, key=repr):
        if v in visited:
            continue
        component = {v}
        frontier = [v]
        while frontier:
            current = frontier.pop()
            for u in friends_of[current]:
                if u in dense and u not in component:
                    component.add(u)
                    frontier.append(u)
        visited |= component
        if len(component) > 2:
            cliques[next_id] = component
            for u in component:
                clique_of[u] = next_id
            next_id += 1

    uneven: Set[Node] = set()
    sparse: Set[Node] = set()
    for v in active_set:
        if v in clique_of:
            continue
        dv = degrees[v]
        unevenness = sum(
            max(0, degrees[u] - dv) / (degrees[u] + 1) for u in neighborhoods[v]
        )
        if dv > 0 and unevenness >= params.sparsity_eps * dv:
            uneven.add(v)
        else:
            sparse.add(v)

    return ACDResult(
        sparse_nodes=sparse,
        uneven_nodes=uneven,
        cliques=cliques,
        clique_of=clique_of,
        friend_edges=friend_edges,
        rounds_used=network.rounds_used - rounds_before,
    )

"""Naive MultiTrial: send the tried colors verbatim.

Trying ``x`` colors by listing them costs ``x · log|C|`` bits per edge, i.e.
``Θ(x · log|C| / log n)`` CONGEST rounds — the cost the paper's hashing-based
MultiTrial (Section 4.1) compresses to ``O(1)`` rounds.  Functionally the two
are interchangeable (this one even has slightly better success probability,
having no hash collisions), which is what makes the bandwidth ablation
(Experiment E12) a like-for-like comparison.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Union

from repro.congest.message import Message
from repro.core.slack import announce_adoptions
from repro.core.state import ColoringState

Node = Hashable
Color = Hashable


def naive_multi_trial(
    state: ColoringState,
    tries: Union[int, Mapping[Node, int]],
    participants: Optional[Iterable[Node]] = None,
    label: str = "naive-multitrial",
) -> Set[Node]:
    """Try ``x`` random palette colors per node, sending the colors explicitly."""
    if participants is None:
        participants = state.uncolored_nodes()
    participants = [
        v for v in participants if not state.is_colored(v) and state.palettes[v]
    ]
    if not participants:
        state.network.charge_silent_round(label=f"{label}:colors")
        state.network.charge_silent_round(label=f"{label}:adopt")
        return set()
    participating = set(participants)

    tries_by_node: Dict[Node, int] = (
        {v: tries for v in participants}
        if isinstance(tries, int)
        else {v: int(tries.get(v, 0)) for v in participants}
    )

    color_bits = state.hasher.color_bits()
    trial_colors: Dict[Node, List[Color]] = {}
    for v in participants:
        palette = sorted(state.palettes[v], key=repr)
        rng = state.rng.for_node(v, "naive-multitrial", state.network.rounds_used)
        x = max(1, min(tries_by_node.get(v, 1), len(palette)))
        trial_colors[v] = rng.sample(palette, x)

    # One (chunked) exchange: the full list of tried colors on every edge
    # between participants, encoded per the receiver's color hasher.
    messages = {}
    for v in participants:
        for u in state.network.neighbors(v):
            if u not in participating:
                continue
            encoded = tuple(state.hasher.value_for(u, psi) for psi in trial_colors[v])
            messages[(v, u)] = Message(
                content=encoded,
                bits=max(1, color_bits * len(encoded)),
                label=f"{label}:colors",
            )
    delivered = state.network.exchange_chunked(messages, label=f"{label}:colors")

    blocked: Dict[Node, Set] = {v: set() for v in participants}
    for (sender, receiver), values in delivered.items():
        blocked[receiver].update(values)

    adopted: Dict[Node, Color] = {}
    for v in participants:
        for psi in trial_colors[v]:
            if state.hasher.value_for(v, psi) not in blocked[v]:
                adopted[v] = psi
                state.adopt(v, psi)
                break
    announce_adoptions(state, adopted, label=label)
    return set(adopted)

"""Baseline algorithms the paper compares against (conceptually).

* :mod:`repro.baselines.random_trial` — the classical ``O(log n)``-round
  random color trial algorithm (Johansson / Luby style), which works unchanged
  in CONGEST and is the baseline D1LC/D1C algorithm the paper improves on;
* :mod:`repro.baselines.greedy` — a centralized greedy coloring used as a
  sanity reference for solution quality;
* :mod:`repro.baselines.naive_acd` — an almost-clique decomposition that ships
  entire neighbourhoods (the ``Ω(Δ)``-round approach the paper's O(1)-round
  ACD replaces);
* :mod:`repro.baselines.naive_multitrial` — a MultiTrial that sends the tried
  colors verbatim (``x · log|C|`` bits), the naive implementation the paper's
  hashing-based MultiTrial replaces.
"""

from repro.baselines.random_trial import johansson_coloring
from repro.baselines.greedy import greedy_coloring
from repro.baselines.naive_acd import naive_compute_acd
from repro.baselines.naive_multitrial import naive_multi_trial

__all__ = [
    "johansson_coloring",
    "greedy_coloring",
    "naive_compute_acd",
    "naive_multi_trial",
]

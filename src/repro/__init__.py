"""Reproduction of *Overcoming Congestion in Distributed Coloring* (PODC 2022).

The package provides:

* ``repro.congest`` — a synchronous CONGEST/LOCAL simulator with per-round,
  per-edge bandwidth accounting;
* ``repro.hashing`` — representative hash families and the explicit
  pseudorandom objects of the paper (pairwise-independent hashing, averaging
  samplers, error-correcting codes, universal hashing for huge color spaces);
* ``repro.sampling`` — EstimateSimilarity, JointSample, sparsity estimation,
  and local triangle / 4-cycle detection;
* ``repro.core`` — the (degree+1)-list-coloring pipeline (MultiTrial,
  almost-clique decomposition, SlackColor, dense/sparse phases, Theorem 1);
* ``repro.baselines`` — Johansson-style random trials, naive high-bandwidth
  implementations, and a centralized greedy reference;
* ``repro.shard`` — partition-parallel execution: contiguous shard plans
  with cut-edge routing, a sharded simulator for node programs, and the
  sharded similarity sweep behind ``Network(shards=N)`` — byte-identical to
  serial for any shard count;
* ``repro.graphs`` / ``repro.metrics`` — instance generators, ground-truth
  properties, and experiment reporting.

Quick start::

    import networkx as nx
    from repro import solve_d1c

    result = solve_d1c(nx.gnp_random_graph(200, 0.1, seed=1), seed=0)
    assert result.is_valid
    print(result.summary())
"""

from repro.core import (
    ColoringInstance,
    ColoringParameters,
    ColoringResult,
    ColorSpace,
    solve_d1c,
    solve_d1lc,
    solve_delta_plus_one,
    validate_coloring,
)
from repro.congest import Network

__version__ = "1.0.0"

__all__ = [
    "ColoringInstance",
    "ColoringParameters",
    "ColoringResult",
    "ColorSpace",
    "Network",
    "solve_d1c",
    "solve_d1lc",
    "solve_delta_plus_one",
    "validate_coloring",
    "__version__",
]

"""Pluggable message-transport backends for the CONGEST/LOCAL engine.

A :class:`Transport` owns the *mechanics* of a synchronous round — validating
edges, sizing payloads, enforcing the bandwidth budget, delivering messages
and reporting the round to the ledger — on top of an immutable
:class:`~repro.congest.topology.Topology`.  Two backends are provided:

* :class:`DictTransport` processes one message at a time, exactly as the
  original ``Network.exchange`` did: validate, size, budget-check and deliver
  each entry in order.  It is the reference semantics.
* :class:`BatchTransport` (the default) sizes payloads in bulk with a
  per-round memo for repeated payload objects, defers the bandwidth check to
  a single audit after sizing, and computes chunked-stream accounting
  arithmetically instead of simulating every chunk round edge by edge.
* :class:`SlotTransport` (``backend="slot"``) is the large-n fast path: it
  routes broadcasts over the topology's CSR adjacency arrays (building the
  per-receiver inboxes directly, without materialising a ``(sender,
  receiver) -> payload`` dict of tuple keys first) and keeps one pooled
  payload-sizing cache across rounds, keyed by payload identity and
  invalidated at the start of every round (``id()`` keys are only stable
  while the round's message mapping keeps the payloads alive).

Broadcast inboxes from **both** backends are read-only views: silent nodes
share one immutable empty mapping instead of each allocating a dict every
round (``{v: {} for v in nodes}`` used to dominate broadcast cost on large
sparse rounds).  Callers that want to mutate an inbox must copy it.

The paper-fidelity contract (see DESIGN.md) is that both backends produce
**identical ledgers** — the same rounds, labels, message counts, total bits
and per-round maxima — and deliver the same payloads for the same inputs.
The cross-backend equivalence suite enforces this.
"""

from __future__ import annotations

import math
from types import MappingProxyType
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

from repro.congest.bandwidth import payload_bits
from repro.congest.errors import BandwidthExceeded, ProtocolError
from repro.congest.message import Message, unwrap
from repro.congest.topology import Topology
from repro.metrics.ledger import Ledger

Node = Hashable
DirectedEdge = Tuple[Node, Node]

#: Shared read-only inbox for nodes that received nothing this round.
EMPTY_INBOX: Mapping[Node, Any] = MappingProxyType({})


def _memoized_bits(payload: Any, memo: Dict[int, int]) -> int:
    """Charge for ``payload``, memoized by object identity within one round.

    The single sizing rule for every batched path (exchange and chunked):
    a ``Message`` is charged its declared bits; anything else goes through
    :func:`payload_bits` once per distinct object (a broadcast reuses one
    payload object for all recipients).  Identity keys are safe because the
    caller's message mapping keeps every payload alive for the whole round.
    """
    if isinstance(payload, Message):
        return payload.bits
    key = id(payload)
    bits = memo.get(key)
    if bits is None:
        bits = payload_bits(payload)
        memo[key] = bits
    return bits


class Transport:
    """Base class: delivery mechanics over a topology, charged to a ledger."""

    name = "abstract"

    def __init__(self, topology: Topology, mode: str, bandwidth_bits: int,
                 ledger: Ledger):
        self.topology = topology
        self.mode = mode
        self.bandwidth_bits = int(bandwidth_bits)
        self.ledger = ledger

    # ------------------------------------------------------------- primitives
    def exchange(self, messages: Mapping[DirectedEdge, Any],
                 label: str = "exchange") -> Dict[DirectedEdge, Any]:
        raise NotImplementedError

    def broadcast(
        self,
        values: Mapping[Node, Any],
        label: str = "broadcast",
        senders_only_to: Optional[Mapping[Node, Iterable[Node]]] = None,
    ) -> Dict[Node, Mapping[Node, Any]]:
        raise NotImplementedError

    def broadcast_discard(
        self,
        values: Mapping[Node, Any],
        label: str = "broadcast",
    ) -> None:
        """Broadcast whose inboxes the caller discards.

        Several protocol steps (the ACD's participation and degree
        announcements) broadcast purely so the *ledger* reflects the
        communication; the delivered inboxes are thrown away.  The default
        implementation simply broadcasts and drops the result, so accounting
        is identical by construction; backends that can skip inbox
        materialisation entirely (columnar) override this with an
        accounting-only path charged byte-identically.
        """
        self.broadcast(values, label=label)
        return None

    def charge_silent_round(self, label: str = "silent") -> None:
        self.ledger.record_round(label, 0, 0, 0)

    # ---------------------------------------------------------------- chunked
    def _sizes(self, messages: Mapping[DirectedEdge, Any]) -> Dict[DirectedEdge, int]:
        """Size every payload (backends may memoize repeated payloads)."""
        return {edge: payload_bits(payload) for edge, payload in messages.items()}

    def _validate_edge(self, sender: Node, receiver: Node) -> None:
        if sender == receiver:
            raise ProtocolError(f"node {sender!r} cannot message itself")
        if receiver not in self.topology.neighbors(sender):
            raise ProtocolError(
                f"{sender!r} and {receiver!r} are not adjacent; CONGEST only "
                "allows communication along edges"
            )

    def exchange_chunked(
        self,
        messages: Mapping[DirectedEdge, Any],
        label: str = "exchange-chunked",
    ) -> Dict[DirectedEdge, Any]:
        """Deliver messages that may exceed the per-round budget.

        CONGEST allows a long message to be streamed over several rounds, one
        budget-sized chunk per round; all messages stream in parallel on their
        own edges, so the cost is ``ceil(max_message_bits / budget)`` rounds.
        In LOCAL mode this is exactly one round charged with the true
        per-edge sizes, identical to what :meth:`exchange` would charge.

        The per-round ledger entries mirror a chunk-by-chunk simulation: in
        each round every still-streaming edge contributes ``budget`` bits
        (or its final remainder), and every message is counted once per round
        it occupies its edge.
        """
        if not messages:
            self.ledger.record_round(label, 0, 0, 0)
            return {}
        for sender, receiver in messages:
            self._validate_edge(sender, receiver)
        sizes = self._sizes(messages)
        if self.mode == "local":
            # Exactly one round, charged with the true per-edge sizes — the
            # same record exchange() would produce for these messages.
            self.ledger.record_round(
                label, len(sizes), sum(sizes.values()), max(sizes.values())
            )
        else:
            self._charge_chunked_rounds(label, sizes)
        return {edge: unwrap(payload) for edge, payload in messages.items()}

    def _charge_chunked_rounds(self, label: str, sizes: Mapping[DirectedEdge, int]) -> None:
        """Charge the CONGEST chunk rounds arithmetically (O(edges + rounds)).

        Equivalent to simulating every round over every edge, but grouped by
        each message's chunk count so large fan-outs do not pay
        ``O(rounds * edges)`` in Python.
        """
        budget = self.bandwidth_bits
        zero_count = 0
        finish_count: Dict[int, int] = {}
        finish_bits: Dict[int, int] = {}
        finish_max: Dict[int, int] = {}
        total_rounds = 1
        for bits in sizes.values():
            if bits <= 0:
                zero_count += 1
                continue
            chunks = -(-bits // budget)  # ceil
            remainder = bits - (chunks - 1) * budget
            finish_count[chunks] = finish_count.get(chunks, 0) + 1
            finish_bits[chunks] = finish_bits.get(chunks, 0) + remainder
            if remainder > finish_max.get(chunks, 0):
                finish_max[chunks] = remainder
            if chunks > total_rounds:
                total_rounds = chunks
        streaming = sum(finish_count.values())  # edges still active this round
        record = self.ledger.record_round
        for r in range(1, total_rounds + 1):
            finishing = finish_count.get(r, 0)
            full = streaming - finishing  # edges that send a full budget chunk
            count = streaming + (zero_count if r == 1 else 0)
            bits = budget * full + finish_bits.get(r, 0)
            max_bits = budget if full > 0 else finish_max.get(r, 0)
            record(label, count, bits, max_bits)
            streaming -= finishing

    def broadcast_chunked(
        self,
        values: Mapping[Node, Any],
        label: str = "broadcast-chunked",
    ) -> Dict[Node, Mapping[Node, Any]]:
        """Chunked variant of :meth:`broadcast` for payloads above the budget."""
        messages: Dict[DirectedEdge, Any] = {}
        for sender, payload in values.items():
            for receiver in self.topology.neighbors(sender):
                messages[(sender, receiver)] = payload
        delivered = self.exchange_chunked(messages, label=label)
        return self._inboxes(delivered)

    def _inboxes(self, delivered: Mapping[DirectedEdge, Any]) -> Dict[Node, Mapping[Node, Any]]:
        """Group delivered messages into one inbox per node.

        Both backends share this: real dicts are allocated only for nodes
        that actually received something; every silent node gets the one
        shared immutable empty mapping.  Inboxes are read-only views —
        callers that want to mutate must copy (no in-repo algorithm does).
        """
        inbox: Dict[Node, Mapping[Node, Any]] = dict.fromkeys(
            self.topology.nodes, EMPTY_INBOX
        )
        for (sender, receiver), payload in delivered.items():
            box = inbox[receiver]
            if box is EMPTY_INBOX:
                box = {}
                inbox[receiver] = box
            box[sender] = payload
        return inbox


class DictTransport(Transport):
    """Reference backend: per-message validation, sizing and budget checks.

    This preserves the original ``Network.exchange`` semantics entry by
    entry — including the order in which violations are detected — and is
    the backend the equivalence suite measures :class:`BatchTransport`
    against.
    """

    name = "dict"

    def exchange(self, messages: Mapping[DirectedEdge, Any],
                 label: str = "exchange") -> Dict[DirectedEdge, Any]:
        total_bits = 0
        max_edge_bits = 0
        delivered: Dict[DirectedEdge, Any] = {}
        congest = self.mode == "congest"
        for (sender, receiver), payload in messages.items():
            self._validate_edge(sender, receiver)
            bits = payload_bits(payload)
            if congest and bits > self.bandwidth_bits:
                raise BandwidthExceeded(
                    (sender, receiver), bits, self.bandwidth_bits, label
                )
            total_bits += bits
            max_edge_bits = max(max_edge_bits, bits)
            delivered[(sender, receiver)] = unwrap(payload)
        self.ledger.record_round(label, len(delivered), total_bits, max_edge_bits)
        return delivered

    def broadcast(
        self,
        values: Mapping[Node, Any],
        label: str = "broadcast",
        senders_only_to: Optional[Mapping[Node, Iterable[Node]]] = None,
    ) -> Dict[Node, Mapping[Node, Any]]:
        messages: Dict[DirectedEdge, Any] = {}
        for sender, payload in values.items():
            recipients = (
                self.topology.neighbors(sender)
                if senders_only_to is None or sender not in senders_only_to
                else senders_only_to[sender]
            )
            for receiver in recipients:
                if receiver not in self.topology.neighbors(sender):
                    raise ProtocolError(
                        f"{sender!r} cannot broadcast to non-neighbour {receiver!r}"
                    )
                messages[(sender, receiver)] = payload
        delivered = self.exchange(messages, label=label)
        return self._inboxes(delivered)


class BatchTransport(Transport):
    """Fast backend: bulk sizing, deferred audit, shared inbox buffers.

    The observable behavior (delivered payloads, ledger entries) matches
    :class:`DictTransport` for every in-budget round.  On violating rounds
    the *reported* error may differ: edges are validated inline but the
    budget audit is deferred to the end of the round, so with several
    violations in one round ``dict`` raises for the first offending entry in
    iteration order while ``batch`` raises the edge error it hits first or a
    :class:`BandwidthExceeded` for the largest payload.  Either way the round
    is rejected before it is recorded.
    """

    name = "batch"

    def _round_memo(self) -> Dict[int, int]:
        """The payload-sizing memo for one round (a fresh dict per round).

        :class:`SlotTransport` overrides this with a dict pooled across
        rounds; everything else about sizing, auditing and recording is
        shared, so a fix to the delivery path applies to both backends.
        """
        return {}

    def _bad_edge(self, sender: Node, receiver: Node) -> None:
        """Raise the same ProtocolError the reference backend would."""
        if sender == receiver:
            raise ProtocolError(f"node {sender!r} cannot message itself")
        self.topology.neighbors(sender)  # raises for unknown sender
        raise ProtocolError(
            f"{sender!r} and {receiver!r} are not adjacent; CONGEST only "
            "allows communication along edges"
        )

    def _deliver(self, messages: Mapping[DirectedEdge, Any], label: str,
                 validate: bool) -> Dict[DirectedEdge, Any]:
        neighbor_sets = self.topology.neighbor_sets
        total_bits = 0
        max_edge_bits = 0
        worst_edge: Optional[DirectedEdge] = None
        delivered: Dict[DirectedEdge, Any] = {}
        size_memo = self._round_memo()
        for edge, payload in messages.items():
            if validate:
                sender, receiver = edge
                nbrs = neighbor_sets.get(sender)
                if nbrs is None or receiver not in nbrs:
                    self._bad_edge(sender, receiver)
            bits = _memoized_bits(payload, size_memo)
            delivered[edge] = payload.content if isinstance(payload, Message) else payload
            total_bits += bits
            if bits > max_edge_bits:
                max_edge_bits = bits
                worst_edge = edge
        if (
            self.mode == "congest"
            and max_edge_bits > self.bandwidth_bits
            and worst_edge is not None
        ):
            raise BandwidthExceeded(
                worst_edge, max_edge_bits, self.bandwidth_bits, label
            )
        self.ledger.record_round(label, len(delivered), total_bits, max_edge_bits)
        return delivered

    def exchange(self, messages: Mapping[DirectedEdge, Any],
                 label: str = "exchange") -> Dict[DirectedEdge, Any]:
        return self._deliver(messages, label, validate=True)

    def broadcast(
        self,
        values: Mapping[Node, Any],
        label: str = "broadcast",
        senders_only_to: Optional[Mapping[Node, Iterable[Node]]] = None,
    ) -> Dict[Node, Mapping[Node, Any]]:
        neighbors = self.topology.neighbors
        messages: Dict[DirectedEdge, Any] = {}
        for sender, payload in values.items():
            nbrs = neighbors(sender)  # validates the sender exists
            if senders_only_to is not None and sender in senders_only_to:
                for receiver in senders_only_to[sender]:
                    if receiver not in nbrs:
                        raise ProtocolError(
                            f"{sender!r} cannot broadcast to non-neighbour {receiver!r}"
                        )
                    messages[(sender, receiver)] = payload
            else:
                for receiver in nbrs:
                    messages[(sender, receiver)] = payload
        # Recipients were validated above, so delivery can skip edge checks.
        delivered = self._deliver(messages, label, validate=False)
        return self._inboxes(delivered)

    def _sizes(self, messages: Mapping[DirectedEdge, Any]) -> Dict[DirectedEdge, int]:
        size_memo = self._round_memo()
        return {
            edge: _memoized_bits(payload, size_memo)
            for edge, payload in messages.items()
        }


class SlotTransport(BatchTransport):
    """Large-n fast path: CSR-routed broadcast plus a pooled sizing cache.

    Delivery and accounting are observably identical to the other backends
    (the equivalence suite runs all three): same delivered payloads, same
    inbox ordering (sender-major — each sender's recipients are appended
    before the next sender's), same ledger rounds/counts/bits/maxima.  Two
    mechanical differences:

    * ``broadcast`` walks each sender's CSR neighbor slice and writes
      straight into the per-receiver inboxes, so a broadcast round allocates
      ``O(receivers)`` dicts instead of an ``O(messages)`` tuple-keyed dict
      *plus* the inboxes;
    * payload sizing uses one dict pooled across rounds (cleared per round —
      the "generation" of an ``id()`` key is the round that computed it, and
      a payload object is only guaranteed alive while its round's message
      mapping holds it, so entries never survive into the next round).

    On violating rounds the reported edge may differ from ``dict``/``batch``
    (a broadcast's worst edge is found in CSR order rather than neighbor-set
    iteration order); as with ``batch``, the round is rejected before it is
    recorded.
    """

    name = "slot"

    def __init__(self, topology: Topology, mode: str, bandwidth_bits: int,
                 ledger: Ledger):
        super().__init__(topology, mode, bandwidth_bits, ledger)
        self._size_memo: Dict[int, int] = {}

    def _round_memo(self) -> Dict[int, int]:
        """The pooled sizing cache, invalidated (cleared) for a new round."""
        memo = self._size_memo
        memo.clear()
        return memo

    def broadcast(
        self,
        values: Mapping[Node, Any],
        label: str = "broadcast",
        senders_only_to: Optional[Mapping[Node, Iterable[Node]]] = None,
    ) -> Dict[Node, Mapping[Node, Any]]:
        topology = self.topology
        if senders_only_to is not None:
            # Restricted recipients are rare and per-sender small; the batch
            # path (validated per recipient) already handles them well.
            return super().broadcast(
                values, label=label, senders_only_to=senders_only_to
            )
        nodes = topology.nodes
        indptr = topology.indptr
        indices = topology.indices
        index_of = topology.node_index
        inbox: Dict[Node, Mapping[Node, Any]] = dict.fromkeys(nodes, EMPTY_INBOX)
        size_memo = self._round_memo()
        message_count = 0
        total_bits = 0
        max_edge_bits = 0
        worst_edge: Optional[DirectedEdge] = None
        for sender, payload in values.items():
            i = index_of.get(sender)
            if i is None:
                topology.neighbors(sender)  # raises the canonical ProtocolError
            row = indices[indptr[i]:indptr[i + 1]]
            if not row:
                continue  # an isolated sender contributes no messages
            bits = _memoized_bits(payload, size_memo)
            content = payload.content if isinstance(payload, Message) else payload
            message_count += len(row)
            total_bits += bits * len(row)
            if bits > max_edge_bits:
                max_edge_bits = bits
                worst_edge = (sender, nodes[row[0]])
            for j in row:
                receiver = nodes[j]
                box = inbox[receiver]
                if box is EMPTY_INBOX:
                    box = {}
                    inbox[receiver] = box
                box[sender] = content
        if (
            self.mode == "congest"
            and max_edge_bits > self.bandwidth_bits
            and worst_edge is not None
        ):
            raise BandwidthExceeded(
                worst_edge, max_edge_bits, self.bandwidth_bits, label
            )
        self.ledger.record_round(label, message_count, total_bits, max_edge_bits)
        return inbox


_TRANSPORT_KINDS = {
    "dict": DictTransport,
    "batch": BatchTransport,
    "slot": SlotTransport,
}

#: Backends selectable via ``Network(backend=...)``.  ``columnar`` (the
#: numpy flat-array sibling of ``slot``) is resolved lazily so this module —
#: and every pure-Python backend — imports without numpy installed.
TRANSPORT_BACKENDS: Tuple[str, ...] = tuple(sorted((*_TRANSPORT_KINDS, "columnar")))


def _transport_class(backend):
    if backend == "columnar":
        from repro.congest.columnar.transport import ColumnarTransport

        return ColumnarTransport
    return _TRANSPORT_KINDS[backend]


def make_transport(backend, topology: Topology, mode: str, bandwidth_bits: int,
                   ledger: Ledger, faults=None, fault_seed: int = 0) -> Transport:
    """Build a transport from a backend name (``dict``/``batch``/``slot``/``columnar``).

    ``faults`` optionally wraps the backend in a
    :class:`~repro.faults.transport.FaultyTransport` driven by a
    :class:`~repro.faults.plan.FaultPlan` (or a plain params mapping) and
    ``fault_seed``.  The plan's bandwidth throttle is applied to the budget
    *here*, at the single construction point, so every caller sees the
    throttled budget.  A ``None``/no-op plan changes nothing: the bare
    backend instance is returned, keeping fault-free runs byte-identical.
    """
    # Imported lazily: repro.faults depends on this module for the Transport
    # base class, so a module-level import would be circular.
    from repro.faults.plan import FaultPlan

    plan = FaultPlan.coerce(faults)
    if isinstance(backend, Transport):
        if plan is not None:
            if plan.throttle != 1.0:
                raise ValueError(
                    "a throttled FaultPlan needs make_transport to build the "
                    "backend itself (pass a backend name, not an instance), "
                    "so the budget is scaled before construction"
                )
            from repro.faults.transport import FaultyTransport

            return FaultyTransport(backend, plan, seed=fault_seed)
        return backend
    try:
        cls = _transport_class(backend)
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown transport backend: {backend!r} "
            f"(expected one of {list(TRANSPORT_BACKENDS)})"
        ) from None
    if plan is None:
        return cls(topology, mode, bandwidth_bits, ledger)
    from repro.faults.transport import FaultyTransport

    inner = cls(topology, mode, plan.throttled_bandwidth(bandwidth_bits), ledger)
    return FaultyTransport(inner, plan, seed=fault_seed)

"""Message wrapper carrying an explicit bit-size declaration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Message:
    """A payload with an explicit bandwidth charge.

    Attributes
    ----------
    content:
        The logical content delivered to the receiver.
    bits:
        The number of bits the simulator charges for this message.  This is
        the quantity the paper's analysis bounds (e.g. ``σ`` bits for an
        indicator bitstring, ``log F`` bits for a hash-family index).
    label:
        Optional human-readable tag used in bandwidth reports.
    """

    content: Any
    bits: int
    label: str = field(default="", compare=False)

    def __post_init__(self):
        if self.bits < 0:
            raise ValueError("bits must be non-negative")

    def unwrap(self) -> Any:
        """Return the logical content."""
        return self.content


def unwrap(payload: object) -> object:
    """Return ``payload.content`` if it is a Message, else the payload itself."""
    if isinstance(payload, Message):
        return payload.content
    return payload

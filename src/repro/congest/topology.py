"""Immutable graph topology with CSR-style adjacency.

:class:`Topology` is the structural half of the communication engine (see
DESIGN.md): it is built once from a ``networkx`` graph and never mutated, so
every view the transports and algorithms need — the node list, per-node
neighbor sets, degrees, the contiguous node index — is computed once and
cached.  The CSR arrays (``indptr``/``indices`` over the contiguous index)
give later vectorized/sharded backends a dense representation to work from
without retraversing the ``networkx`` structure.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Iterator, List, Tuple

import networkx as nx

from repro.congest.errors import ProtocolError

Node = Hashable


class Topology:
    """Immutable adjacency structure extracted from an undirected graph.

    Parameters
    ----------
    graph:
        The communication graph.  Self-loops are rejected (CONGEST networks
        are simple graphs).  The graph object is kept only as a reference for
        callers that need ``networkx`` algorithms; all hot-path queries are
        answered from the cached structures.
    """

    __slots__ = (
        "graph",
        "_nodes",
        "_index",
        "_neighbor_sets",
        "_degrees",
        "indptr",
        "indices",
        "_number_of_edges",
        "_max_degree",
    )

    def __init__(self, graph: nx.Graph):
        if any(u == v for u, v in graph.edges()):
            raise ProtocolError("self-loops are not allowed in a CONGEST network")
        self.graph = graph
        self._nodes: Tuple[Node, ...] = tuple(graph.nodes())
        self._index: Dict[Node, int] = {v: i for i, v in enumerate(self._nodes)}
        neighbor_sets: Dict[Node, frozenset] = {}
        degrees: Dict[Node, int] = {}
        indptr = array("l", [0])
        indices = array("l")
        index = self._index
        for v in self._nodes:
            nbrs = frozenset(graph.neighbors(v))
            neighbor_sets[v] = nbrs
            degrees[v] = len(nbrs)
            indices.extend(sorted(index[u] for u in nbrs))
            indptr.append(len(indices))
        self._neighbor_sets = neighbor_sets
        self._degrees = degrees
        self.indptr = indptr
        self.indices = indices
        self._number_of_edges = len(indices) // 2
        self._max_degree = max(degrees.values(), default=0)

    # ------------------------------------------------------------------- views
    @property
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes, in insertion order (cached; never rebuilt)."""
        return self._nodes

    @property
    def number_of_nodes(self) -> int:
        return len(self._nodes)

    @property
    def number_of_edges(self) -> int:
        return self._number_of_edges

    @property
    def neighbor_sets(self) -> Dict[Node, frozenset]:
        """The per-node neighbor sets (treat as read-only)."""
        return self._neighbor_sets

    def neighbors(self, v: Node) -> frozenset:
        try:
            return self._neighbor_sets[v]
        except KeyError:
            raise ProtocolError(f"node {v!r} is not in the network") from None

    def degree(self, v: Node) -> int:
        try:
            return self._degrees[v]
        except KeyError:
            raise ProtocolError(f"node {v!r} is not in the network") from None

    def max_degree(self) -> int:
        return self._max_degree

    def are_adjacent(self, u: Node, v: Node) -> bool:
        return v in self.neighbors(u)

    def has_node(self, v: Node) -> bool:
        return v in self._index

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        """Each undirected edge once, as ``(u, v)`` with ``index(u) < index(v)``."""
        nodes = self._nodes
        indptr = self.indptr
        indices = self.indices
        for i, u in enumerate(nodes):
            for j in indices[indptr[i]:indptr[i + 1]]:
                if i < j:
                    yield (u, nodes[j])

    # ----------------------------------------------------------- index helpers
    @property
    def node_index(self) -> Dict[Node, int]:
        """The contiguous node->index map (treat as read-only).

        Exposed so slot-indexed consumers (the simulator, the slot transport)
        can share the one map built at construction instead of each paying an
        O(n) rebuild per run.
        """
        return self._index

    def index_of(self, v: Node) -> int:
        """Contiguous index of ``v`` in ``[0, n)`` (stable for this topology)."""
        try:
            return self._index[v]
        except KeyError:
            raise ProtocolError(f"node {v!r} is not in the network") from None

    def node_at(self, i: int) -> Node:
        """Inverse of :meth:`index_of`.

        Rejects any index outside ``[0, n)`` — including negative ones, so an
        index-arithmetic underflow fails loudly instead of silently aliasing
        Python's wrap-around indexing.
        """
        if not 0 <= i < len(self._nodes):
            raise ProtocolError(f"node index {i} out of range")
        return self._nodes[i]

    def neighbor_indices(self, i: int) -> List[int]:
        """CSR neighbor slice of the node with contiguous index ``i``."""
        return list(self.indices[self.indptr[i]:self.indptr[i + 1]])

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"Topology(n={self.number_of_nodes}, m={self.number_of_edges}, "
            f"max_degree={self._max_degree})"
        )

"""Per-node state container used by the generic per-node-program simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class NodeState:
    """Mutable state attached to a node during a simulation.

    The generic simulator (``repro.congest.simulator``) keeps one of these per
    node.  Node programs store whatever they need in :attr:`memory`; the
    simulator itself only reads/writes :attr:`halted` and :attr:`output`.
    """

    node: Any
    memory: Dict[str, Any] = field(default_factory=dict)
    halted: bool = False
    output: Optional[Any] = None

    def halt(self, output: Optional[Any] = None) -> None:
        """Mark the node as finished, optionally recording its output."""
        self.halted = True
        if output is not None:
            self.output = output

    def __getitem__(self, key: str) -> Any:
        return self.memory[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self.memory[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self.memory

    def get(self, key: str, default: Any = None) -> Any:
        return self.memory.get(key, default)

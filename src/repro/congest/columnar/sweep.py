"""Vectorized buddy sweep: ``EstimateSimilarity`` over all candidate edges.

This is the columnar backend's reason to exist: the graph-wide buddy test of
the ACD (Section 4.2) dominates every large coloring run (>50% of wall-clock
at n=50k on the slot backend), and its inner kernel — splitmix64 hashing of
every scaled neighborhood element, per edge — vectorizes exactly.

Byte-identity with :func:`repro.sampling.similarity.estimate_similarity_on_
edges` + the ACD's threshold loop is the load-bearing contract:

* the shared hash-function *index* per edge comes from the same SHA-256
  seeded ``random.Random`` stream (``RngStream.for_edge``), replayed here
  with one reused ``Random`` instance (``rng.seed(x)`` is exactly
  ``Random(x)``) — this part is inherently scalar;
* ledger records replay ``exchange_chunked`` on the same label/size
  multisets (``{label}:index`` then ``{label}:indicator``), through the
  transport's vectorized chunk accounting;
* hash values, low-unique filtering and shared-value counting run as flat
  uint64 kernels (:mod:`~repro.congest.columnar.kernels`) over a CSR layout
  of the neighborhood element keys — per-endpoint value multisets are
  reduced by a packed ``(endpoint << 32) | value`` unique/count pass instead
  of per-edge Python dicts;
* estimates and the buddy threshold are evaluated in float64, which matches
  Python exactly because every operand is below 2**53 (guarded below — the
  sweep declines, returning ``None`` before any ledger effect, if the
  parameter regime would break the packing or the float reproduction, and
  the caller falls back to the scalar reference).

The reference implementation ignores the delivered inboxes of both rounds
(only the ledger charge and the locally-computed hash sets matter), so no
inbox is materialised here at all.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Hashable, List, Mapping, Optional, Set, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - package is importable without numpy
    np = None  # type: ignore[assignment]

from repro.congest.columnar.kernels import (
    element_keys_array,
    hash_values_vec,
    member_prefixes_vec,
    scale_keys_vec,
)
from repro.hashing.representative import RepresentativeHashFamily

Node = Hashable
Edge = Tuple[Node, Node]

#: Cap on scaled elements hashed per vector block (bounds temp-array RSS to a
#: few hundred MB; blocks partition the edge list, results are per-edge).
_BLOCK_ELEMENTS = 1 << 22

# Packing guards: endpoint-local hash values share a uint64 with a 32-bit
# endpoint id, and estimates must reproduce Python float division exactly.
_MAX_LAM = 1 << 32
_EXACT_FLOAT = 1 << 53


def _block_ranges(work: "np.ndarray") -> List[Tuple[int, int]]:
    """Partition edges into contiguous blocks of ~_BLOCK_ELEMENTS work."""
    blocks: List[Tuple[int, int]] = []
    start = 0
    acc = 0
    for i, w in enumerate(work.tolist()):
        if acc + w > _BLOCK_ELEMENTS and i > start:
            blocks.append((start, i))
            start = i
            acc = 0
        acc += w
    if start < len(work):
        blocks.append((start, len(work)))
    return blocks


def columnar_buddy_edges(
    network,
    sets: Mapping[Node, Set[Hashable]],
    degrees: Mapping[Node, int],
    edges: List[Edge],
    params,
    seed: int,
    label: str,
    threshold_coeff: float,
) -> Optional[Set[Edge]]:
    """Buddy edges via the vectorized sweep, or ``None`` to decline.

    Produces exactly the set the caller would get from
    ``estimate_similarity_on_edges`` + ``estimate >= threshold_coeff *
    min(degrees[u], degrees[v])``, with identical ledger records.  Declines
    (before touching the ledger) when the transport is not columnar or the
    similarity parameters leave the exactly-reproducible regime.
    """
    transport = network.transport
    if not getattr(transport, "supports_columnar_sweep", False):
        return None
    if getattr(network.tracer, "wants_payloads", False):
        # Digest forensics hashes the real delivered payload bytes; this
        # sweep charges equivalent ledger records without ever materializing
        # them, so under a payload-digesting tracer it declines and the
        # caller takes the reference exchange path (identical digests, at
        # the cost of the sweep speedup).
        return None
    edges = [tuple(edge) for edge in edges]

    # ---------------------------------------------------------------- loop A
    # Scalar per-edge setup: set sizes, scale factor k, family, and the
    # SHA-seeded index draw.  Mirrors the reference's per-sweep caches; no
    # ledger effect yet, so declining below stays side-effect free.
    node_sets: Dict[Node, Set[Hashable]] = {}
    families: Dict[int, RepresentativeHashFamily] = {}
    k_cache: Dict[int, int] = {}
    reprs: Dict[Node, Tuple[str, str]] = {}
    node_local: Dict[Node, int] = {}
    local_nodes: List[Node] = []

    seed_repr = repr(int(seed))
    label_repr = repr(label)
    rng = random.Random()
    sha256 = hashlib.sha256

    empties: List[int] = []
    positions: List[int] = []
    validate_pairs: List[Tuple[Node, Node]] = []
    eu_list: List[int] = []
    ev_list: List[int] = []
    k_list: List[int] = []
    lam_list: List[int] = []
    sigma_list: List[int] = []
    fseed_list: List[int] = []
    index_list: List[int] = []
    ibits_list: List[int] = []
    mindeg_list: List[int] = []

    def _set_of(node: Node) -> Set[Hashable]:
        members = node_sets.get(node)
        if members is None:
            members = set(sets.get(node, ()))
            node_sets[node] = members
        return members

    def _reprs_of(node: Node) -> Tuple[str, str]:
        cached = reprs.get(node)
        if cached is None:
            text = repr(node)
            cached = (text, repr(text))
            reprs[node] = cached
        return cached

    def _local_of(node: Node) -> int:
        slot = node_local.get(node)
        if slot is None:
            slot = len(local_nodes)
            node_local[node] = slot
            local_nodes.append(node)
        return slot

    for pos, (u, v) in enumerate(edges):
        set_u = _set_of(u)
        set_v = _set_of(v)
        if not set_u or not set_v:
            empties.append(pos)
            continue
        du = len(set_u)
        dv = len(set_v)
        max_size = du if du >= dv else dv
        k = k_cache.get(max_size)
        if k is None:
            k = params.scale_factor(max_size)
            k_cache[max_size] = k
        lam_arg = max_size * k
        family = families.get(lam_arg)
        if family is None:
            family = params.family(lam_arg)
            families[lam_arg] = family
        if family.lam >= _MAX_LAM or family.sigma * family.lam >= _EXACT_FLOAT:
            return None  # outside the exactly-reproducible regime
        # RngStream(seed).for_edge(u, v, label) -> Random(sha256 digest of
        # "\x1f".join(repr(p) for p in (seed, "edge", sorted-repr-pair,
        # label))), replayed with one reused Random (seed(x) == Random(x)).
        ru, rru = _reprs_of(u)
        rv, rrv = _reprs_of(v)
        if ru <= rv:
            key_repr = f"({rru}, {rrv})"
            sender, receiver = u, v
        else:
            key_repr = f"({rrv}, {rru})"
            sender, receiver = v, u
        digest = sha256(
            "\x1f".join((seed_repr, "'edge'", key_repr, label_repr)).encode("utf-8")
        ).digest()
        rng.seed(int.from_bytes(digest[:8], "big"))
        index = rng.randrange(family.size)

        positions.append(pos)
        validate_pairs.append((sender, receiver))
        eu_list.append(_local_of(u))
        ev_list.append(_local_of(v))
        k_list.append(k)
        lam_list.append(family.lam)
        sigma_list.append(family.sigma)
        fseed_list.append(family.family_seed)
        index_list.append(index)
        ibits_list.append(family.index_bits)
        mindeg = min(degrees[u], degrees[v])
        mindeg_list.append(mindeg)

    # Validation, in the reference's order (the index-payload round validates
    # every participating edge before anything is charged).
    neighbor_sets = transport.topology.neighbor_sets
    for sender, receiver in validate_pairs:
        nbrs = neighbor_sets.get(sender)
        if sender == receiver or nbrs is None or receiver not in nbrs:
            transport._validate_edge(sender, receiver)  # canonical ProtocolError

    # Round 1: the hash-function index (log F bits per edge, one direction).
    transport.charge_chunked_sizes(
        f"{label}:index", np.array(ibits_list, dtype=np.int64)
    )

    count = len(positions)
    shared_counts = np.zeros(count, dtype=np.int64)
    if count:
        # CSR layout of the participating neighborhoods' element keys.
        key_arrays = [element_keys_array(node_sets[node]) for node in local_nodes]
        key_counts = np.fromiter(
            (arr.size for arr in key_arrays), dtype=np.int64, count=len(key_arrays)
        )
        key_offsets = np.zeros(len(key_arrays) + 1, dtype=np.int64)
        np.cumsum(key_counts, out=key_offsets[1:])
        key_storage = np.concatenate(key_arrays)

        eu = np.array(eu_list, dtype=np.int64)
        ev = np.array(ev_list, dtype=np.int64)
        k_arr = np.array(k_list, dtype=np.int64)
        lam_i64 = np.array(lam_list, dtype=np.int64)
        sigma_i64 = np.array(sigma_list, dtype=np.int64)
        lam_u64 = lam_i64.astype(np.uint64)
        sigma_u64 = sigma_i64.astype(np.uint64)
        prefixes = member_prefixes_vec(
            np.array(fseed_list, dtype=np.uint64), np.array(index_list, dtype=np.uint64)
        )

        work = k_arr * (key_counts[eu] + key_counts[ev])
        for start, stop in _block_ranges(work):
            span = stop - start
            # Endpoints interleave as (u0, v0, u1, v1, ...): endpoint id
            # 2i/2i+1 within the block, edge id = endpoint >> 1.
            ep_nodes = np.empty(2 * span, dtype=np.int64)
            ep_nodes[0::2] = eu[start:stop]
            ep_nodes[1::2] = ev[start:stop]
            k_ep = np.repeat(k_arr[start:stop], 2)
            lens = key_counts[ep_nodes]
            total_base = int(lens.sum())
            # Gather each endpoint's base keys into one contiguous run.
            run_ends = np.cumsum(lens)
            flat = np.arange(total_base, dtype=np.int64)
            flat -= np.repeat(run_ends - lens, lens)
            flat += np.repeat(key_offsets[ep_nodes], lens)
            base_keys = key_storage[flat]
            k_elem = np.repeat(k_ep, lens)
            if int(k_ep.max()) > 1:
                # Scale-up: every base element x expands to the keys of
                # (x, 0) .. (x, k-1).  Expansion order within an endpoint is
                # irrelevant — the downstream reduction only counts values.
                total = int(k_elem.sum())
                keys_rep = np.repeat(base_keys, k_elem)
                exp_ends = np.cumsum(k_elem)
                jj = np.arange(total, dtype=np.int64)
                jj -= np.repeat(exp_ends - k_elem, k_elem)
                kk = np.repeat(k_elem, k_elem)
                scaled = scale_keys_vec(keys_rep, jj.astype(np.uint64))
                keys_final = np.where(kk == 1, keys_rep, scaled)
                elem_per_ep = lens * k_ep
            else:
                keys_final = base_keys
                elem_per_ep = lens
            ep_ids = np.repeat(np.arange(2 * span, dtype=np.int64), elem_per_ep)
            edge_ids = ep_ids >> 1
            values = hash_values_vec(
                prefixes[start:stop][edge_ids],
                keys_final,
                lam_u64[start:stop][edge_ids],
            )
            low = values <= sigma_u64[start:stop][edge_ids]
            # Pack (endpoint, value) into one uint64; a value survives for
            # its endpoint iff exactly one element hit it (low_unique), and
            # an edge shares a value iff both its endpoints' survivors hold
            # it (count == 2 after collapsing endpoint -> edge).
            packed = (ep_ids[low].astype(np.uint64) << np.uint64(32)) | values[low]
            unique, counts = np.unique(packed, return_counts=True)
            survivors = unique[counts == 1]
            by_edge = (survivors >> np.uint64(33) << np.uint64(32)) | (
                survivors & np.uint64(0xFFFFFFFF)
            )
            shared_vals, shared_cnt = np.unique(by_edge, return_counts=True)
            shared_vals = shared_vals[shared_cnt == 2]
            if shared_vals.size:
                edge_hits = (shared_vals >> np.uint64(32)).astype(np.int64)
                shared_counts[start:stop] = np.bincount(edge_hits, minlength=span)

    # Round 2: both endpoints' σ-bit indicators (two directed messages per
    # participating edge, max(1, σ) bits each — σ is already >= 1).
    if count:
        indicator_sizes = np.repeat(np.maximum(sigma_i64, 1), 2)
    else:
        indicator_sizes = np.empty(0, dtype=np.int64)
    transport.charge_chunked_sizes(f"{label}:indicator", indicator_sizes)

    # Estimates and the buddy threshold, in float64 == Python float exactly
    # (all operands < 2**53; int/int true division is correctly rounded in
    # both, so the results are bit-identical to the scalar loop).
    buddies: Set[Edge] = set()
    if count:
        estimates = (shared_counts * lam_i64).astype(np.float64)
        estimates /= (sigma_i64 * k_arr).astype(np.float64)
        thresholds = threshold_coeff * np.array(mindeg_list, dtype=np.float64)
        for i in np.flatnonzero(estimates >= thresholds).tolist():
            buddies.add(edges[positions[i]])
    for pos in empties:
        u, v = edges[pos]
        if 0.0 >= threshold_coeff * min(degrees[u], degrees[v]):
            buddies.add((u, v))
    return buddies

"""The ``columnar`` transport backend: vectorized CSR routing + accounting.

:class:`ColumnarTransport` subclasses the slot backend and keeps its
observable contract — same delivered payloads, same sender-major inbox
insertion order, same ledger rounds/labels/counts/bits/maxima — while moving
the per-round arithmetic off the Python interpreter:

* ``broadcast`` sizes and accounts all senders in one vectorized pass over
  the topology CSR (degree gather, ``bits * degree`` sums, worst-edge argmax)
  and expands the round into one :class:`~repro.congest.columnar.buffers.
  CsrRoundBuffer` ``offsets``/``storage`` pair instead of per-sender Python
  slices;
* ``broadcast_discard`` charges a broadcast whose inboxes the caller throws
  away (the ACD's participation/degree announcements) without materialising
  a single inbox dict;
* chunked-stream accounting (``exchange_chunked``) replaces the per-chunk
  histogram dicts with ``np.bincount`` / ``np.maximum.at`` over the size
  array — identical records, O(edges) numpy instead of O(edges) Python.

Per-edge ``exchange`` rounds are inherited from the batch path unchanged:
their payloads are per-edge Python objects either way, and the equivalence
suite pins that path already.  The byte-identity of every override is pinned
by ``tests/test_columnar.py`` and the four-backend equivalence matrix.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - package is importable without numpy
    np = None  # type: ignore[assignment]

from repro.congest.columnar import require_numpy
from repro.congest.columnar.buffers import CsrRoundBuffer
from repro.congest.errors import BandwidthExceeded
from repro.congest.message import Message
from repro.congest.topology import Topology
from repro.congest.transport import EMPTY_INBOX, SlotTransport, _memoized_bits
from repro.metrics.ledger import Ledger

Node = Any
DirectedEdge = Tuple[Node, Node]

#: Below this many edges the scalar chunk-accounting loop wins (array setup
#: costs more than it saves); the records are identical either way.
_VECTOR_MIN_SIZES = 1024
#: Degenerate budget/size combinations (absurdly many chunk rounds would
#: allocate absurd histograms) fall back to the scalar path, which streams.
_VECTOR_MAX_ROUNDS = 4_000_000


class ColumnarTransport(SlotTransport):
    """Flat-array sibling of :class:`~repro.congest.transport.SlotTransport`."""

    name = "columnar"
    #: The ACD's buddy sweep asks for this before taking its vectorized path,
    #: so wrapped transports (faults rename to ``columnar+faults``) and other
    #: backends fall through to the scalar reference sweep automatically.
    supports_columnar_sweep = True

    def __init__(self, topology: Topology, mode: str, bandwidth_bits: int,
                 ledger: Ledger):
        require_numpy()
        super().__init__(topology, mode, bandwidth_bits, ledger)
        # array("l") exposes the buffer protocol, so these are zero-copy
        # int64 views of the topology CSR.
        self._np_indptr = np.asarray(topology.indptr, dtype=np.int64)
        self._np_indices = np.asarray(topology.indices, dtype=np.int64)
        self._np_degrees = np.diff(self._np_indptr)

    # ------------------------------------------------------------- broadcast
    def _account_broadcast(
        self, senders: List[Node], slots: "np.ndarray", bits: "np.ndarray",
        label: str,
    ) -> Tuple[int, int, int]:
        """Vectorized ledger arithmetic for one broadcast round.

        Returns ``(message_count, total_bits, max_edge_bits)`` after the
        budget audit, matching the slot backend's running-loop accounting:
        isolated senders contribute nothing, and the audited worst edge is
        the first sender (in send order) attaining the maximal per-edge bits,
        paired with the head of its CSR row.
        """
        degrees = self._np_degrees[slots]
        message_count = int(degrees.sum())
        if message_count == 0:
            return 0, 0, 0
        total_bits = int((bits * degrees).sum())
        nonzero = degrees > 0
        max_edge_bits = int(bits[nonzero].max())
        if self.mode == "congest" and max_edge_bits > self.bandwidth_bits:
            first = int(np.flatnonzero(nonzero & (bits == max_edge_bits))[0])
            worst_slot = int(slots[first])
            worst_edge = (
                senders[first],
                self.topology.nodes[int(self._np_indices[int(self._np_indptr[worst_slot])])],
            )
            raise BandwidthExceeded(
                worst_edge, max_edge_bits, self.bandwidth_bits, label
            )
        return message_count, total_bits, max_edge_bits

    def _collect_senders(
        self, values: Mapping[Node, Any]
    ) -> Tuple[List[Node], List[Any], "np.ndarray", "np.ndarray"]:
        """Scalar prologue: slot + sized bits + unwrapped content per sender.

        Sizing goes through the same pooled identity memo as the slot
        backend (``_round_memo``), and an unknown sender raises the canonical
        ProtocolError at the same position in send order.
        """
        topology = self.topology
        index_of = topology.node_index
        count = len(values)
        slots = np.empty(count, dtype=np.int64)
        bits = np.empty(count, dtype=np.int64)
        senders: List[Node] = []
        contents: List[Any] = []
        size_memo = self._round_memo()
        pos = 0
        for sender, payload in values.items():
            i = index_of.get(sender)
            if i is None:
                topology.neighbors(sender)  # raises the canonical ProtocolError
            slots[pos] = i
            bits[pos] = _memoized_bits(payload, size_memo)
            senders.append(sender)
            contents.append(payload.content if isinstance(payload, Message) else payload)
            pos += 1
        return senders, contents, slots, bits

    def broadcast(
        self,
        values: Mapping[Node, Any],
        label: str = "broadcast",
        senders_only_to: Optional[Mapping[Node, Iterable[Node]]] = None,
    ) -> Dict[Node, Mapping[Node, Any]]:
        if senders_only_to is not None:
            # Restricted recipients are rare and per-sender small; the batch
            # path (validated per recipient) already handles them well.
            return super().broadcast(
                values, label=label, senders_only_to=senders_only_to
            )
        nodes = self.topology.nodes
        senders, contents, slots, bits = self._collect_senders(values)
        message_count, total_bits, max_edge_bits = self._account_broadcast(
            senders, slots, bits, label
        )
        buffer = CsrRoundBuffer.from_broadcast(
            self._np_indptr, self._np_indices, slots, contents
        )
        # Replay the buffer receiver-side.  Storage order is sender-major
        # with receivers in CSR row order — the slot backend's exact inbox
        # insertion sequence — and slot-indexed boxes replace per-node dict
        # lookups in the one loop that must stay Python (payloads are boxed).
        boxes: List[Any] = [EMPTY_INBOX] * len(nodes)
        offsets = buffer.offsets.tolist()
        receivers = buffer.receiver_slots.tolist()
        payloads = buffer.storage.tolist()
        for i, sender in enumerate(senders):
            for p in range(offsets[i], offsets[i + 1]):
                j = receivers[p]
                box = boxes[j]
                if box is EMPTY_INBOX:
                    box = {}
                    boxes[j] = box
                box[sender] = payloads[p]
        self.ledger.record_round(label, message_count, total_bits, max_edge_bits)
        return dict(zip(nodes, boxes))

    def broadcast_discard(
        self, values: Mapping[Node, Any], label: str = "broadcast"
    ) -> None:
        """Charge a broadcast whose inboxes the caller discards.

        Identical ledger record (and identical BandwidthExceeded on
        violating rounds) to a full ``broadcast`` of ``values`` — the inbox
        fill is the only thing skipped, which is exactly what the discarding
        call sites (ACD participation/degree announcements) never observe.
        """
        senders, _contents, slots, bits = self._collect_senders(values)
        message_count, total_bits, max_edge_bits = self._account_broadcast(
            senders, slots, bits, label
        )
        self.ledger.record_round(label, message_count, total_bits, max_edge_bits)
        return None

    # --------------------------------------------------------------- chunked
    def charge_chunked_sizes(self, label: str, sizes: "np.ndarray") -> None:
        """The ledger records of :meth:`exchange_chunked` for pre-sized edges.

        ``sizes`` holds per-edge payload bits (int64).  Used by the columnar
        buddy sweep, whose exchanged payloads are statically sized and whose
        inboxes the reference implementation ignores; the records — empty
        round, LOCAL single round, or the CONGEST chunk-round sequence —
        match the reference ``exchange_chunked`` byte for byte.
        """
        if sizes.size == 0:
            self.ledger.record_round(label, 0, 0, 0)
            return
        if self.mode == "local":
            self.ledger.record_round(
                label, int(sizes.size), int(sizes.sum()), int(sizes.max())
            )
            return
        self._charge_chunked_array(label, sizes)

    def _charge_chunked_rounds(
        self, label: str, sizes: Mapping[DirectedEdge, int]
    ) -> None:
        if len(sizes) < _VECTOR_MIN_SIZES:
            super()._charge_chunked_rounds(label, sizes)
            return
        try:
            array = np.fromiter(sizes.values(), dtype=np.int64, count=len(sizes))
        except OverflowError:
            # Payloads beyond int64 bits only arise in adversarial unit
            # tests; the scalar path handles arbitrary Python ints.
            super()._charge_chunked_rounds(label, sizes)
            return
        self._charge_chunked_array(label, array)

    def _charge_chunked_array(self, label: str, sizes: "np.ndarray") -> None:
        """Vectorized twin of ``Transport._charge_chunked_rounds``.

        The reference groups edges by chunk count into three dict histograms
        and then replays the rounds; ``np.bincount``/``np.add.at``/
        ``np.maximum.at`` build the same histograms as arrays.  All values
        re-enter Python as native ints before ``record_round`` so ledgers
        (and their JSON artifacts) are byte-identical.
        """
        budget = self.bandwidth_bits
        positive = sizes[sizes > 0]
        zero_count = int(sizes.size - positive.size)
        record = self.ledger.record_round
        if positive.size == 0:
            record(label, zero_count, 0, 0)
            return
        chunks = -(-positive // budget)  # ceil-divide, like the scalar path
        total_rounds = int(chunks.max())
        if total_rounds > _VECTOR_MAX_ROUNDS:
            SlotTransport._charge_chunked_rounds(
                self, label, dict(enumerate(sizes.tolist()))
            )
            return
        remainder = positive - (chunks - 1) * budget
        finish_count = np.bincount(chunks, minlength=total_rounds + 1).tolist()
        finish_bits = np.zeros(total_rounds + 1, dtype=np.int64)
        np.add.at(finish_bits, chunks, remainder)
        finish_bits = finish_bits.tolist()
        finish_max = np.zeros(total_rounds + 1, dtype=np.int64)
        np.maximum.at(finish_max, chunks, remainder)
        finish_max = finish_max.tolist()
        streaming = int(positive.size)
        for r in range(1, total_rounds + 1):
            finishing = finish_count[r]
            full = streaming - finishing
            count = streaming + (zero_count if r == 1 else 0)
            bits = budget * full + finish_bits[r]
            max_bits = budget if full > 0 else finish_max[r]
            record(label, count, bits, max_bits)
            streaming -= finishing

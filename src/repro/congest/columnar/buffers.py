"""CSR-offset message round buffers and packed cut-edge batches.

The columnar core never stores a round's traffic as per-edge dict entries.
A broadcast round is one ``offsets``/``storage`` pair: ``offsets[i] ..
offsets[i+1]`` delimit sender ``i``'s run in ``storage`` (payload contents)
and ``receiver_slots`` (destination slots), in the sender's CSR adjacency
order.  Written sender-side in one vectorized gather, read receiver-side in
exactly the order the slot backend fills inboxes — sender-major, receivers
in CSR row order — so the resulting inbox dicts reproduce the slot backend's
insertion sequence byte for byte (``tests/test_columnar.py`` pins the
round-trip, including zero-bit and max-width messages).

:class:`PackedEdgeBatch` is the cross-shard sibling: a cut-edge batch packed
as two flat int64 slot arrays plus a payload list, replacing the pickled
list-of-tuples the :class:`~repro.shard.router.ShardRouter` previously
shipped.  It pickles as array buffers (no per-edge tuple boxing) and
iterates as ``(sender_slot, receiver_slot, payload)`` triples, so the
coordinator and worker merge loops consume it unchanged.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - package is importable without numpy
    np = None  # type: ignore[assignment]


def _object_array(payloads: Sequence[object]) -> "np.ndarray":
    # np.array(payloads, dtype=object) would try to broadcast sequence
    # payloads (tuples, lists) into extra dimensions; fill explicitly.
    arr = np.empty(len(payloads), dtype=object)
    arr[:] = list(payloads)
    return arr


class CsrRoundBuffer:
    """One round's messages as flat CSR arrays.

    ``sender_slots[i]`` sent ``storage[offsets[i]:offsets[i+1]]`` to
    ``receiver_slots[offsets[i]:offsets[i+1]]``, in that order.
    """

    __slots__ = ("sender_slots", "offsets", "receiver_slots", "storage")

    def __init__(self, sender_slots, offsets, receiver_slots, storage):
        self.sender_slots = sender_slots
        self.offsets = offsets
        self.receiver_slots = receiver_slots
        self.storage = storage

    @classmethod
    def from_broadcast(cls, indptr, indices, sender_slots, payloads) -> "CsrRoundBuffer":
        """Write-side: expand per-sender payloads over the topology CSR.

        ``indptr``/``indices`` are the topology CSR as int64 arrays,
        ``sender_slots`` the int64 slots of the senders in send order, and
        ``payloads`` the aligned per-sender payload contents (each sender
        broadcasts one content to its whole CSR row).
        """
        counts = indptr[sender_slots + 1] - indptr[sender_slots]
        offsets = np.zeros(len(sender_slots) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        # Gather each sender's CSR row into one flat run: position p of the
        # flat output maps to indices[row_start + (p - run_start)].
        flat = np.arange(total, dtype=np.int64)
        flat -= np.repeat(offsets[:-1], counts)
        flat += np.repeat(indptr[sender_slots], counts)
        receiver_slots = indices[flat]
        storage = np.repeat(_object_array(payloads), counts)
        return cls(np.asarray(sender_slots, dtype=np.int64), offsets, receiver_slots, storage)

    def __len__(self) -> int:
        return int(self.offsets[-1]) if len(self.offsets) else 0

    def entries(self) -> Iterator[Tuple[int, int, object]]:
        """Yield ``(sender_slot, receiver_slot, payload)`` in storage order.

        Storage order is sender-major (senders in send order, receivers in
        CSR row order) — the exact insertion sequence of the slot backend's
        inbox fill.
        """
        senders = self.sender_slots.tolist()
        offsets = self.offsets.tolist()
        receivers = self.receiver_slots.tolist()
        payloads = self.storage.tolist()
        for i, sender in enumerate(senders):
            for pos in range(offsets[i], offsets[i + 1]):
                yield sender, receivers[pos], payloads[pos]

    def fill_inboxes(self, inboxes: List[dict], nodes: Sequence[object]) -> None:
        """Read-side: replay the buffer into per-slot inbox dicts.

        ``inboxes`` is indexed by receiver slot; senders are boxed back to
        node objects via ``nodes``.  Insertion order per receiver equals the
        slot backend's because :meth:`entries` is sender-major.
        """
        for sender_slot, receiver_slot, payload in self.entries():
            inboxes[receiver_slot][nodes[sender_slot]] = payload


class PackedEdgeBatch:
    """A cut-edge batch as flat slot arrays plus a payload list.

    Iterates as ``(sender_slot, receiver_slot, payload)`` triples — the
    protocol the sharded coordinator and worker merge loops already speak —
    and pickles as two int64 buffers plus the payload list instead of one
    boxed tuple per edge.
    """

    __slots__ = ("sender_slots", "receiver_slots", "payloads")

    def __init__(self, sender_slots, receiver_slots, payloads):
        self.sender_slots = sender_slots
        self.receiver_slots = receiver_slots
        self.payloads = payloads

    @classmethod
    def from_triples(
        cls, triples: Sequence[Tuple[int, int, object]]
    ) -> "PackedEdgeBatch":
        count = len(triples)
        senders = np.fromiter((t[0] for t in triples), dtype=np.int64, count=count)
        receivers = np.fromiter((t[1] for t in triples), dtype=np.int64, count=count)
        return cls(senders, receivers, [t[2] for t in triples])

    def __len__(self) -> int:
        return len(self.payloads)

    def __iter__(self) -> Iterator[Tuple[int, int, object]]:
        return zip(self.sender_slots.tolist(), self.receiver_slots.tolist(), self.payloads)

    def __reduce__(self):
        return (PackedEdgeBatch, (self.sender_slots, self.receiver_slots, self.payloads))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedEdgeBatch):
            return NotImplemented
        return list(self) == list(other)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"PackedEdgeBatch({len(self)} edges)"

"""Vectorized twins of the fault layer's per-edge decisions.

:class:`~repro.faults.transport.FaultyTransport` makes every drop/corrupt
decision as a pure function of ``(master_seed, round_id, sender_key,
receiver_key, salt)`` through ``mix64`` — deliberately so (its module
docstring calls the decisions replayable).  These kernels evaluate the same
functions over flat edge arrays, bit for bit:

* :func:`drop_mask` — which directed edges the drop fault eats this round;
* :func:`corruption_seeds` — the per-edge seeds the corrupt fault hands to
  ``corrupt_payload``;
* :func:`crash_mask` — which directed edges touch a crashed endpoint.

``tests/test_columnar.py`` pins each against the scalar formulas and against
a live ``FaultyTransport`` round.  They are not yet wired into delivery —
fault runs keep the reference transport path (the fault wrapper renames the
backend to ``columnar+faults``, which the ACD's columnar gate rejects), so
fault-free and faulted runs alike stay byte-identical today; these kernels
are the pinned foundation for a future vectorized fault delivery path.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - package is importable without numpy
    np = None  # type: ignore[assignment]

from repro.congest.columnar.kernels import mix64_vec
from repro.faults.transport import _CORRUPT_SALT, _DROP_SALT

#: float(1 << 53), the denominator of repro.faults.corruption.to_unit.
_F53 = float(1 << 53)


def to_unit_vec(mixed) -> "np.ndarray":
    """Array twin of ``repro.faults.corruption.to_unit``: top 53 bits / 2^53.

    uint64 -> float64 conversion after the shift is exact (the operand fits
    in 53 bits), so each element equals the scalar ``(mixed >> 11) / _F53``.
    """
    return (np.asarray(mixed, dtype=np.uint64) >> np.uint64(11)).astype(np.float64) / _F53


def _edge_draws(master_seed: int, round_id: int, sender_keys, receiver_keys, salt: int):
    return mix64_vec(
        np.uint64(master_seed),
        np.uint64(round_id),
        np.asarray(sender_keys, dtype=np.uint64),
        np.asarray(receiver_keys, dtype=np.uint64),
        np.uint64(salt),
    )


def drop_mask(
    master_seed: int,
    round_id: int,
    sender_keys,
    receiver_keys,
    drop_probability: float,
) -> "np.ndarray":
    """True where the drop fault would eat the directed edge this round.

    Matches ``FaultyTransport._filter``'s ``to_unit(mix64(master, round,
    sender_key, receiver_key, _DROP_SALT)) < drop`` element for element.
    """
    draws = _edge_draws(master_seed, round_id, sender_keys, receiver_keys, _DROP_SALT)
    return to_unit_vec(draws) < drop_probability


def corruption_seeds(
    master_seed: int,
    round_id: int,
    sender_keys,
    receiver_keys,
) -> "np.ndarray":
    """The per-edge corruption seeds ``FaultyTransport`` hands to ``corrupt_payload``."""
    return _edge_draws(master_seed, round_id, sender_keys, receiver_keys, _CORRUPT_SALT)


def crash_mask(crashed_slots, sender_slots, receiver_slots) -> "np.ndarray":
    """True where either endpoint of the directed edge has crashed.

    ``crashed_slots`` is a boolean column over topology slots (e.g.
    :class:`~repro.congest.columnar.state.SlotMasks.crashed`);
    ``sender_slots``/``receiver_slots`` are aligned int arrays.
    """
    crashed = np.asarray(crashed_slots, dtype=bool)
    return crashed[sender_slots] | crashed[receiver_slots]

"""uint64-array twins of the scalar splitmix64 hashing kernels.

Byte-identity contract: every function here reproduces its scalar counterpart
in :mod:`repro.hashing.keys` / :mod:`repro.hashing.representative` bit for
bit.  The scalar kernels already operate on 64-bit masked integers, so the
vectorization is mechanical — numpy's wrapping uint64 arithmetic *is* the
``& MASK64`` discipline of the scalar code — but any drift here silently
changes colorings, so ``tests/test_columnar.py`` pins each function against
the scalar implementation on adversarial inputs (0, MASK64, bit-boundary
values, random draws).

All functions accept numpy uint64 arrays (scalars broadcast) and run inside
``np.errstate(over="ignore")``: wraparound is the intended semantics.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - package is importable without numpy
    np = None  # type: ignore[assignment]

from repro.hashing.keys import _MASK64 as MASK64
from repro.hashing.keys import MIX64_INIT, element_key

# The splitmix64 constants, named as in repro.hashing.keys.
_GOLDEN = 0x9E3779B97F4A7C15
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB
# combine_part_keys appends this salt so tuple keys never collide with the
# bare chain of their parts (see repro.hashing.keys.combine_part_keys).
_TUPLE_SALT = 0x7157

_TWO64 = 1 << 64


def _u64(value: int) -> "np.uint64":
    return np.uint64(value & MASK64)


def mix64_step_vec(acc, value):
    """Array twin of :func:`repro.hashing.keys.mix64_step`.

    ``acc`` and ``value`` broadcast against each other; the result carries
    the broadcast shape.  Matches the scalar kernel bit for bit: absorb via
    xor, advance by the golden-ratio increment, then the splitmix64
    finalizer.
    """
    with np.errstate(over="ignore"):
        acc = np.bitwise_xor(np.asarray(acc, dtype=np.uint64), np.asarray(value, dtype=np.uint64))
        acc = acc + _u64(_GOLDEN)
        z = np.bitwise_xor(acc, acc >> np.uint64(30)) * _u64(_MIX_A)
        z = np.bitwise_xor(z, z >> np.uint64(27)) * _u64(_MIX_B)
        return np.bitwise_xor(z, z >> np.uint64(31))


def mix64_vec(*values):
    """Array twin of :func:`repro.hashing.keys.mix64`: chain steps from MIX64_INIT."""
    acc = _u64(MIX64_INIT)
    for value in values:
        acc = mix64_step_vec(acc, value)
    return acc


def scale_keys_vec(base_keys, j_values):
    """Vectorized ``combine_part_keys((key, j))`` for aligned arrays.

    ``element_key((part, j))`` for an already-keyed part and a small
    non-negative int ``j`` is ``mix64(part_key, j, 0x7157)`` — the scaled-key
    construction of the similarity sweep (``similarity._scaled_keys``).
    """
    return mix64_vec(base_keys, j_values, _u64(_TUPLE_SALT))


def member_prefixes_vec(family_seeds, indices):
    """Vectorized ``RepresentativeHashFunction._prefix`` for aligned arrays."""
    return mix64_step_vec(mix64_step_vec(_u64(MIX64_INIT), family_seeds), indices)


def hash_values_vec(prefixes, keys, lams):
    """Vectorized hash draw of ``RepresentativeHashFunction.low_unique_values``.

    Returns ``1 + finalize(prefix ^ key) % lam`` per element — the inlined
    splitmix64 body of the scalar hot loop, bit for bit.
    """
    mixed = mix64_step_vec(prefixes, keys)
    with np.errstate(over="ignore"):
        return np.uint64(1) + mixed % np.asarray(lams, dtype=np.uint64)


def low_unique_values_vec(prefix: int, keys, sigma: int, lam: int):
    """Array twin of ``RepresentativeHashFunction.low_unique_values``.

    Returns the sorted uint64 array of values ``<= sigma`` hit by exactly one
    key — the set the scalar kernel returns as ``{value: count == 1}``
    restricted to its True entries.
    """
    values = hash_values_vec(_u64(prefix), np.asarray(keys, dtype=np.uint64), _u64(lam))
    low = values[values <= _u64(sigma)]
    unique, counts = np.unique(low, return_counts=True)
    return unique[counts == 1]


def element_keys_array(elements: Iterable[object]) -> "np.ndarray":
    """``element_key`` over a collection, as a uint64 array.

    Fast path: when every element is a plain non-negative int below 2**64,
    ``element_key`` is the identity and the array is built directly.  Any
    other element type (bool, negative int, tuple, str, ...) falls back to
    the scalar ``element_key`` per element — correctness over speed, since a
    silent numeric cast (e.g. float -> uint64) would diverge from the scalar
    keying of the reference backends.
    """
    items: Sequence[object] = elements if isinstance(elements, (list, tuple)) else list(elements)
    # `type(x) is int` deliberately excludes bool: element_key(True) == 1 is
    # only reached through the scalar fallback's isinstance(bool) branch.
    if all(type(x) is int and 0 <= x < _TWO64 for x in items):
        return np.fromiter(items, dtype=np.uint64, count=len(items))
    return np.fromiter(
        (element_key(x) for x in items), dtype=np.uint64, count=len(items)
    )

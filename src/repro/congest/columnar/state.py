"""Flat boolean slot columns mirroring per-node liveness.

The simulator's per-node truth lives in :class:`~repro.congest.node.
NodeState` objects (``halted``) and the fault plan's crash schedule.  For
array-level consumers — vectorized fault kernels
(:func:`~repro.congest.columnar.faults.crash_mask`), observability, tests —
:class:`SlotMasks` keeps the same facts as two numpy bool columns indexed by
topology slot, updated at the exact points the simulator already touches
per-node state (halt refilter, crash application).  It observes; it never
decides — the active list and ``NodeState.halted`` remain authoritative, so
simulation behavior is identical with or without numpy installed.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - package is importable without numpy
    np = None  # type: ignore[assignment]


class SlotMasks:
    """``halted``/``crashed`` bool columns over the topology's slots.

    Slots outside the owned range are born halted (they are some other
    shard's to run), matching the simulator's owned-only active set, so
    ``active_count`` needs no ownership bookkeeping of its own.
    """

    __slots__ = ("halted", "crashed")

    def __init__(self, slot_count: int, owned: range):
        self.halted = np.ones(slot_count, dtype=bool)
        self.halted[owned.start:owned.stop] = False
        self.crashed = np.zeros(slot_count, dtype=bool)

    @staticmethod
    def available() -> bool:
        return np is not None

    def halt(self, slot: int) -> None:
        self.halted[slot] = True

    def crash(self, slot: int) -> None:
        self.crashed[slot] = True
        self.halted[slot] = True

    def active_count(self) -> int:
        """Owned, not-yet-halted slots (non-owned slots count as halted)."""
        return int(self.halted.size - int(self.halted.sum()))

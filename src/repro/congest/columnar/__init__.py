"""Columnar execution core: flat-array state + vectorized CSR routing.

``backend="columnar"`` replaces the hot per-round Python loops of the slot
backend with flat numpy columns wherever the work is vectorizable while
keeping every observable byte — ledgers, inboxes, colorings, fault counters —
identical to the slot backend (the equivalence suite runs all four backends
against the ``dict`` reference).  The package splits along the byte-identity
seams:

* :mod:`~repro.congest.columnar.kernels` — uint64-array twins of the scalar
  splitmix64 hashing kernels (``mix64_step`` / ``combine_part_keys`` /
  ``low_unique_values``), pinned bit-for-bit;
* :mod:`~repro.congest.columnar.buffers` — CSR-offset message round buffers
  (one ``offsets``/``storage`` pair per round, written sender-side, read
  receiver-side in slot order) and packed cut-edge batches for the sharded
  router;
* :mod:`~repro.congest.columnar.transport` — the ``ColumnarTransport``
  backend (vectorized broadcast routing and chunked-round accounting);
* :mod:`~repro.congest.columnar.sweep` — the vectorized
  ``EstimateSimilarity`` buddy sweep driving the ACD, the dominant compute
  of every large coloring run;
* :mod:`~repro.congest.columnar.faults` — vectorized twins of the fault
  layer's per-edge drop/corrupt/crash decisions (pure functions of
  ``(master_seed, round, edge)``, matching ``FaultyTransport`` bit-for-bit);
* :mod:`~repro.congest.columnar.state` — flat boolean slot masks the
  simulator keeps in sync with per-node halt/crash state.

numpy is an *optional* dependency of the repo as a whole: every module here
degrades to ``HAVE_NUMPY = False`` importably, and only constructing the
columnar backend (or calling a kernel) raises the clean :class:`ImportError`
below.  The dict/batch/slot backends never touch this package.
"""

from __future__ import annotations

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    HAVE_NUMPY = False

#: The one message a numpy-less install sees when asking for the columnar
#: backend — actionable, and explicit that the pure-Python backends remain.
NUMPY_HINT = (
    "the 'columnar' backend requires numpy, which is not installed; "
    "install numpy or use backend='slot' (the pure-Python large-n fast "
    "path, byte-identical to columnar)"
)


def require_numpy() -> None:
    """Raise a clean, actionable ImportError when numpy is missing."""
    if not HAVE_NUMPY:
        raise ImportError(NUMPY_HINT)

"""Synchronous CONGEST / LOCAL network simulator.

The simulator is the substrate every distributed primitive in this
reproduction runs on.  A :class:`~repro.congest.network.Network` wraps a
``networkx`` graph and exposes synchronous communication primitives
(:meth:`~repro.congest.network.Network.exchange`,
:meth:`~repro.congest.network.Network.broadcast`).  Each call is one CONGEST
round: the round counter advances and each per-edge payload is charged its bit
size against the bandwidth budget (``O(log n)`` bits in CONGEST, unlimited in
LOCAL mode).  Oversized messages raise
:class:`~repro.congest.errors.BandwidthExceeded`, so the coloring algorithms
cannot accidentally cheat the model.
"""

from repro.congest.errors import BandwidthExceeded, CongestError, ProtocolError
from repro.congest.bandwidth import payload_bits
from repro.congest.message import Message
from repro.congest.node import NodeState
from repro.congest.network import Network, RoundRecord
from repro.congest.program import NodeProgram, ProgramContext
from repro.congest.simulator import Simulator, SimulationResult

__all__ = [
    "BandwidthExceeded",
    "CongestError",
    "ProtocolError",
    "payload_bits",
    "Message",
    "NodeState",
    "Network",
    "RoundRecord",
    "NodeProgram",
    "ProgramContext",
    "Simulator",
    "SimulationResult",
]

"""Synchronous CONGEST / LOCAL network simulator.

The simulator is the substrate every distributed primitive in this
reproduction runs on.  It is layered (see DESIGN.md):

* :class:`~repro.congest.topology.Topology` — immutable CSR-style adjacency;
* :class:`~repro.congest.transport.Transport` — pluggable delivery backends
  (:class:`~repro.congest.transport.DictTransport` reference semantics,
  :class:`~repro.congest.transport.BatchTransport` batched fast path);
* :class:`~repro.metrics.ledger.Ledger` — pluggable bandwidth accounting.

A :class:`~repro.congest.network.Network` facade wires the three together and
exposes the synchronous communication primitives
(:meth:`~repro.congest.network.Network.exchange`,
:meth:`~repro.congest.network.Network.broadcast`).  Each call is one CONGEST
round: the round counter advances and each per-edge payload is charged its bit
size against the bandwidth budget (``O(log n)`` bits in CONGEST, unlimited in
LOCAL mode).  Oversized messages raise
:class:`~repro.congest.errors.BandwidthExceeded`, so the coloring algorithms
cannot accidentally cheat the model.
"""

from repro.congest.errors import BandwidthExceeded, CongestError, ProtocolError
from repro.congest.bandwidth import payload_bits
from repro.congest.message import Message
from repro.congest.node import NodeState
from repro.congest.topology import Topology
from repro.congest.transport import (
    BatchTransport,
    DictTransport,
    SlotTransport,
    TRANSPORT_BACKENDS,
    Transport,
    make_transport,
)
from repro.congest.network import DEFAULT_BACKEND, Network, RoundRecord
from repro.congest.program import NodeProgram, ProgramContext
from repro.congest.simulator import Simulator, SimulationResult

__all__ = [
    "BandwidthExceeded",
    "CongestError",
    "ProtocolError",
    "payload_bits",
    "Message",
    "NodeState",
    "Topology",
    "Transport",
    "DictTransport",
    "BatchTransport",
    "SlotTransport",
    "TRANSPORT_BACKENDS",
    "make_transport",
    "DEFAULT_BACKEND",
    "Network",
    "RoundRecord",
    "NodeProgram",
    "ProgramContext",
    "Simulator",
    "SimulationResult",
]

"""Exception types raised by the CONGEST simulator."""

from __future__ import annotations


class CongestError(Exception):
    """Base class for all simulator errors."""


class BandwidthExceeded(CongestError):
    """A single-round per-edge message exceeded the bandwidth budget.

    The CONGEST model allows ``O(log n)`` bits per edge per round.  The
    simulator enforces the concrete budget configured on the network; any
    primitive that tries to push more bits through an edge in one round gets
    this exception instead of silently violating the model.
    """

    def __init__(self, edge, bits: int, budget: int, label: str = ""):
        self.edge = edge
        self.bits = bits
        self.budget = budget
        self.label = label
        super().__init__(
            f"message on edge {edge} uses {bits} bits, budget is {budget} bits"
            + (f" (round label: {label})" if label else "")
        )


class ProtocolError(CongestError):
    """An algorithm used the network API incorrectly.

    Examples: sending a message between non-adjacent nodes, or addressing a
    node that does not exist in the graph.
    """

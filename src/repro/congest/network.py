"""The synchronous CONGEST / LOCAL network.

A :class:`Network` wraps an undirected ``networkx`` graph and provides the
communication primitives the coloring algorithms are written against.  All
communication goes through :meth:`Network.exchange` (per-edge directed
messages) or :meth:`Network.broadcast` (same message to all neighbours); every
call is exactly one synchronous round, and every per-edge payload is charged
its bit size against the bandwidth budget.

The budget defaults to ``ceil(bandwidth_factor * log2 n)`` bits, i.e. the
CONGEST model with ``log n`` bandwidth used in the paper (Theorem 1).  LOCAL
mode (``mode="local"``) removes the budget and is used by the LOCAL baselines
and by ablation benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Tuple

import networkx as nx

from repro.congest.bandwidth import payload_bits
from repro.congest.errors import BandwidthExceeded, ProtocolError
from repro.congest.message import unwrap

Node = Hashable
DirectedEdge = Tuple[Node, Node]


@dataclass
class RoundRecord:
    """Accounting for a single synchronous round."""

    index: int
    label: str
    message_count: int
    total_bits: int
    max_edge_bits: int


@dataclass
class BandwidthLedger:
    """Aggregate communication statistics over an execution."""

    rounds: int = 0
    total_bits: int = 0
    total_messages: int = 0
    max_edge_bits: int = 0
    records: List[RoundRecord] = field(default_factory=list)

    def record_round(self, label: str, message_count: int, total_bits: int,
                     max_edge_bits: int) -> None:
        self.rounds += 1
        self.total_bits += total_bits
        self.total_messages += message_count
        self.max_edge_bits = max(self.max_edge_bits, max_edge_bits)
        self.records.append(
            RoundRecord(
                index=self.rounds,
                label=label,
                message_count=message_count,
                total_bits=total_bits,
                max_edge_bits=max_edge_bits,
            )
        )

    def rounds_by_label(self) -> Dict[str, int]:
        """Number of rounds spent under each label (useful in benchmarks)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.label] = counts.get(record.label, 0) + 1
        return counts


class Network:
    """A synchronous message-passing network over an undirected graph.

    Parameters
    ----------
    graph:
        The communication graph.  Self-loops are rejected.
    mode:
        ``"congest"`` (default) enforces the per-edge bandwidth budget;
        ``"local"`` allows messages of arbitrary size.
    bandwidth_bits:
        Explicit per-edge per-round budget in bits.  When omitted it defaults
        to ``ceil(bandwidth_factor * log2(max(n, 2)))``.
    bandwidth_factor:
        Multiplier on ``log2 n`` for the default budget.  The paper's
        algorithms use a constant number of ``log n``-bit words per round; a
        factor of 32 words keeps the accounting honest (every primitive still
        uses ``O(log n)`` bits) while leaving room for the constant factors
        that the paper hides in Θ-notation.
    """

    def __init__(
        self,
        graph: nx.Graph,
        mode: str = "congest",
        bandwidth_bits: Optional[int] = None,
        bandwidth_factor: float = 32.0,
    ):
        if mode not in ("congest", "local"):
            raise ValueError(f"unknown mode: {mode!r}")
        if any(u == v for u, v in graph.edges()):
            raise ProtocolError("self-loops are not allowed in a CONGEST network")
        self.graph = graph
        self.mode = mode
        self.bandwidth_factor = float(bandwidth_factor)
        n = max(graph.number_of_nodes(), 2)
        if bandwidth_bits is None:
            bandwidth_bits = int(math.ceil(bandwidth_factor * math.log2(n)))
        self.bandwidth_bits = int(bandwidth_bits)
        self.ledger = BandwidthLedger()
        self._adjacency: Dict[Node, frozenset] = {
            v: frozenset(graph.neighbors(v)) for v in graph.nodes()
        }

    # ------------------------------------------------------------------ views
    @property
    def nodes(self) -> List[Node]:
        return list(self.graph.nodes())

    @property
    def number_of_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def rounds_used(self) -> int:
        return self.ledger.rounds

    def neighbors(self, v: Node) -> frozenset:
        try:
            return self._adjacency[v]
        except KeyError:
            raise ProtocolError(f"node {v!r} is not in the network") from None

    def degree(self, v: Node) -> int:
        return len(self.neighbors(v))

    def max_degree(self) -> int:
        if not self._adjacency:
            return 0
        return max(len(nbrs) for nbrs in self._adjacency.values())

    def are_adjacent(self, u: Node, v: Node) -> bool:
        return v in self.neighbors(u)

    # ---------------------------------------------------------- communication
    def exchange(
        self,
        messages: Mapping[DirectedEdge, Any],
        label: str = "exchange",
    ) -> Dict[DirectedEdge, Any]:
        """Run one synchronous round delivering per-edge directed messages.

        ``messages`` maps ``(sender, receiver)`` to a payload.  The result
        maps the same ``(sender, receiver)`` keys to the (unwrapped) payloads,
        i.e. entry ``(u, v)`` is what ``v`` received from ``u`` this round.
        Nodes that send nothing simply do not appear.

        Raises
        ------
        ProtocolError
            If a message is addressed along a non-edge.
        BandwidthExceeded
            If any single payload exceeds the bandwidth budget (CONGEST mode).
        """
        total_bits = 0
        max_edge_bits = 0
        delivered: Dict[DirectedEdge, Any] = {}
        for (sender, receiver), payload in messages.items():
            if sender == receiver:
                raise ProtocolError(f"node {sender!r} cannot message itself")
            if receiver not in self.neighbors(sender):
                raise ProtocolError(
                    f"{sender!r} and {receiver!r} are not adjacent; CONGEST only "
                    "allows communication along edges"
                )
            bits = payload_bits(payload)
            if self.mode == "congest" and bits > self.bandwidth_bits:
                raise BandwidthExceeded(
                    (sender, receiver), bits, self.bandwidth_bits, label
                )
            total_bits += bits
            max_edge_bits = max(max_edge_bits, bits)
            delivered[(sender, receiver)] = unwrap(payload)
        self.ledger.record_round(label, len(delivered), total_bits, max_edge_bits)
        return delivered

    def broadcast(
        self,
        values: Mapping[Node, Any],
        label: str = "broadcast",
        senders_only_to: Optional[Mapping[Node, Iterable[Node]]] = None,
    ) -> Dict[Node, Dict[Node, Any]]:
        """Each node in ``values`` sends the same payload to (all) neighbours.

        Returns an inbox per node: ``inbox[v][u]`` is the payload ``v``
        received from neighbour ``u``.  ``senders_only_to`` optionally
        restricts each sender's recipients to a subset of its neighbours.
        """
        messages: Dict[DirectedEdge, Any] = {}
        for sender, payload in values.items():
            recipients = (
                self.neighbors(sender)
                if senders_only_to is None or sender not in senders_only_to
                else senders_only_to[sender]
            )
            for receiver in recipients:
                if receiver not in self.neighbors(sender):
                    raise ProtocolError(
                        f"{sender!r} cannot broadcast to non-neighbour {receiver!r}"
                    )
                messages[(sender, receiver)] = payload
        delivered = self.exchange(messages, label=label)
        inbox: Dict[Node, Dict[Node, Any]] = {v: {} for v in self.nodes}
        for (sender, receiver), payload in delivered.items():
            inbox[receiver][sender] = payload
        return inbox

    def exchange_chunked(
        self,
        messages: Mapping[DirectedEdge, Any],
        label: str = "exchange-chunked",
    ) -> Dict[DirectedEdge, Any]:
        """Deliver messages that may exceed the per-round budget.

        CONGEST allows a long message to be streamed over several rounds, one
        budget-sized chunk per round.  This helper charges
        ``ceil(max_message_bits / budget)`` rounds (all messages stream in
        parallel on their own edges) and then delivers the full payloads.  In
        LOCAL mode it behaves exactly like :meth:`exchange` (one round).

        The paper's primitives use this for the ``σ``-bit indicator strings of
        ``EstimateSimilarity``/``MultiTrial``: with constant ``ε`` those are
        ``O(log n)`` bits, i.e. a constant number of rounds, but the constant
        depends on ``ε`` — the simulator makes that cost explicit.
        """
        if not messages:
            self.ledger.record_round(label, 0, 0, 0)
            return {}
        sizes = {edge: payload_bits(payload) for edge, payload in messages.items()}
        for (sender, receiver) in messages:
            if sender == receiver:
                raise ProtocolError(f"node {sender!r} cannot message itself")
            if receiver not in self.neighbors(sender):
                raise ProtocolError(
                    f"{sender!r} and {receiver!r} are not adjacent; CONGEST only "
                    "allows communication along edges"
                )
        if self.mode == "local":
            chunk_rounds = 1
        else:
            max_bits = max(sizes.values())
            chunk_rounds = max(1, math.ceil(max_bits / self.bandwidth_bits))
        remaining = dict(sizes)
        for _ in range(chunk_rounds):
            round_bits = 0
            round_max = 0
            count = 0
            budget = self.bandwidth_bits if self.mode == "congest" else max(remaining.values(), default=0)
            for edge, left in list(remaining.items()):
                if left <= 0:
                    continue
                sent = min(left, budget) if self.mode == "congest" else left
                remaining[edge] = left - sent
                round_bits += sent
                round_max = max(round_max, sent)
                count += 1
            self.ledger.record_round(label, count, round_bits, round_max)
        return {edge: unwrap(payload) for edge, payload in messages.items()}

    def broadcast_chunked(
        self,
        values: Mapping[Node, Any],
        label: str = "broadcast-chunked",
    ) -> Dict[Node, Dict[Node, Any]]:
        """Chunked variant of :meth:`broadcast` for payloads above the budget."""
        messages: Dict[DirectedEdge, Any] = {}
        for sender, payload in values.items():
            for receiver in self.neighbors(sender):
                messages[(sender, receiver)] = payload
        delivered = self.exchange_chunked(messages, label=label)
        inbox: Dict[Node, Dict[Node, Any]] = {v: {} for v in self.nodes}
        for (sender, receiver), payload in delivered.items():
            inbox[receiver][sender] = payload
        return inbox

    def charge_silent_round(self, label: str = "silent") -> None:
        """Advance the round counter without sending anything.

        Used when an algorithm must stay synchronised across phases even
        though some nodes have nothing to say this round.
        """
        self.ledger.record_round(label, 0, 0, 0)

    # -------------------------------------------------------------- reporting
    def summary(self) -> Dict[str, Any]:
        """Return a compact dictionary describing resource usage so far."""
        return {
            "mode": self.mode,
            "nodes": self.number_of_nodes,
            "edges": self.graph.number_of_edges(),
            "bandwidth_bits": self.bandwidth_bits,
            "rounds": self.ledger.rounds,
            "total_bits": self.ledger.total_bits,
            "total_messages": self.ledger.total_messages,
            "max_edge_bits": self.ledger.max_edge_bits,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"Network(n={self.number_of_nodes}, m={self.graph.number_of_edges()}, "
            f"mode={self.mode!r}, bandwidth={self.bandwidth_bits} bits, "
            f"rounds={self.ledger.rounds})"
        )

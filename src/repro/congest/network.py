"""The synchronous CONGEST / LOCAL network.

A :class:`Network` is a thin facade over the three layers of the
communication engine (see DESIGN.md):

* :class:`~repro.congest.topology.Topology` — immutable CSR-style adjacency
  (cached node list, neighbor sets, degrees, contiguous node index);
* :class:`~repro.congest.transport.Transport` — the delivery mechanics,
  selected via ``backend=`` (``"batch"`` by default, ``"dict"`` for the
  per-message reference semantics, ``"slot"`` for the CSR-routed large-n
  fast path);
* :class:`~repro.metrics.ledger.Ledger` — the bandwidth accounting, selected
  via ``ledger=`` (``"records"`` keeps the full round history, ``"counters"``
  keeps aggregates only for big runs).

All communication goes through :meth:`Network.exchange` (per-edge directed
messages) or :meth:`Network.broadcast` (same message to all neighbours); every
call is exactly one synchronous round, and every per-edge payload is charged
its bit size against the bandwidth budget.

The budget defaults to ``ceil(bandwidth_factor * log2 n)`` bits, i.e. the
CONGEST model with ``log n`` bandwidth used in the paper (Theorem 1).  LOCAL
mode (``mode="local"``) removes the budget and is used by the LOCAL baselines
and by ablation benchmarks.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, Iterable, Mapping, Optional, Tuple

import networkx as nx

from repro.congest.errors import ProtocolError  # noqa: F401  (re-export)
from repro.congest.topology import Topology
from repro.congest.transport import Transport, make_transport
from repro.metrics.ledger import (  # noqa: F401  (RoundRecord re-exported)
    BandwidthLedger,
    Ledger,
    RoundRecord,
    ledger_class,
    make_ledger,
)
from repro.obs.tracer import NULL_TRACER, Tracer

Node = Hashable
DirectedEdge = Tuple[Node, Node]

DEFAULT_BACKEND = "batch"


class Network:
    """A synchronous message-passing network over an undirected graph.

    Parameters
    ----------
    graph:
        The communication graph.  Self-loops are rejected.
    mode:
        ``"congest"`` (default) enforces the per-edge bandwidth budget;
        ``"local"`` allows messages of arbitrary size.
    bandwidth_bits:
        Explicit per-edge per-round budget in bits.  When omitted it defaults
        to ``ceil(bandwidth_factor * log2(max(n, 2)))``.
    bandwidth_factor:
        Multiplier on ``log2 n`` for the default budget.  The paper's
        algorithms use a constant number of ``log n``-bit words per round; a
        factor of 32 words keeps the accounting honest (every primitive still
        uses ``O(log n)`` bits) while leaving room for the constant factors
        that the paper hides in Θ-notation.
    backend:
        Transport backend: ``"batch"`` (default), ``"dict"``, or ``"slot"``.
        All charge identical ledgers; ``"dict"`` keeps the original
        message-at-a-time reference implementation and ``"slot"`` is the
        CSR-routed large-n fast path.
    ledger:
        Ledger kind (``"records"`` / ``"counters"``) or a
        :class:`~repro.metrics.ledger.Ledger` instance to share.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` (or a params mapping
        like ``{"drop": 0.01}``) that deterministically perturbs delivery —
        see :mod:`repro.faults`.  ``None`` or an all-default plan leaves the
        transport unwrapped, byte-identical to a fault-free network.  The
        plan's ``throttle`` factor scales the bandwidth budget (and
        :attr:`bandwidth_bits` reports the throttled value).
    fault_seed:
        Seed for the fault layer's RNG; combined with the plan through the
        repo-wide ``derive_seed`` chain so a fixed (seed, plan) pair
        reproduces byte-identically across backends and processes.
    shards:
        Partition-parallel execution width (default 1 = everything in this
        process).  Like ``backend``/``ledger`` this is a performance knob
        with no observable effect on results: primitives that know how to
        shard (the per-edge similarity sweep driving ACD/sparsity/detection
        — see :mod:`repro.shard`) fan their compute over ``shards``
        persistent workers, producing bit-identical outputs and charging the
        identical ledger.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` observing this run.  The
        default is the shared :data:`~repro.obs.tracer.NULL_TRACER`, which
        installs nothing — untraced runs execute the exact code they always
        did.  Passing a :class:`~repro.obs.tracer.RoundTracer` attaches it to
        the ledger's round seam; tracing is observation-only (no RNG, no
        state mutation) and a traced run is byte-identical to an untraced
        one.
    """

    def __init__(
        self,
        graph: nx.Graph,
        mode: str = "congest",
        bandwidth_bits: Optional[int] = None,
        bandwidth_factor: float = 32.0,
        backend: str = DEFAULT_BACKEND,
        ledger: Any = None,
        faults: Any = None,
        fault_seed: int = 0,
        shards: int = 1,
        tracer: Optional[Tracer] = None,
    ):
        if mode not in ("congest", "local"):
            raise ValueError(f"unknown mode: {mode!r}")
        if int(shards) < 1:
            raise ValueError(f"shards must be >= 1, got {shards!r}")
        self.shards = int(shards)
        self.graph = graph
        self.bandwidth_factor = float(bandwidth_factor)
        if isinstance(backend, Transport):
            if faults is not None:
                from repro.faults.plan import FaultPlan

                if FaultPlan.coerce(faults) is not None:
                    raise ValueError(
                        "faults= conflicts with an already-built transport "
                        "instance; wrap it via make_transport(faults=...) first"
                    )
            # Adopt the instance's wiring wholesale: the facade's views and
            # accounting must describe the transport that actually runs, not
            # freshly-built ones it would silently bypass.  Conflicting
            # explicit arguments are rejected rather than silently ignored.
            if backend.topology.graph is not graph:
                raise ValueError(
                    "transport instance was built on a different graph than "
                    "the one passed to Network"
                )
            if mode != backend.mode:
                raise ValueError(
                    f"mode={mode!r} conflicts with the transport instance's "
                    f"mode={backend.mode!r}"
                )
            if bandwidth_bits is not None and int(bandwidth_bits) != backend.bandwidth_bits:
                raise ValueError(
                    f"bandwidth_bits={bandwidth_bits} conflicts with the "
                    f"transport instance's budget of {backend.bandwidth_bits}"
                )
            if ledger is not None:
                if isinstance(ledger, Ledger):
                    if ledger is not backend.ledger:
                        raise ValueError(
                            "ledger instance conflicts with the transport "
                            "instance's ledger (the transport's own ledger is "
                            "always used)"
                        )
                elif ledger_class(ledger) is not type(backend.ledger):
                    raise ValueError(
                        f"ledger={ledger!r} conflicts with the transport "
                        f"instance's {type(backend.ledger).__name__}"
                    )
            self.transport = backend
            self.topology = backend.topology
            self.mode = backend.mode
            self.bandwidth_bits = backend.bandwidth_bits
            self.ledger: Ledger = backend.ledger
        else:
            self.mode = mode
            self.topology = Topology(graph)
            n = max(self.topology.number_of_nodes, 2)
            if bandwidth_bits is None:
                bandwidth_bits = int(math.ceil(bandwidth_factor * math.log2(n)))
            self.ledger = make_ledger(ledger)
            self.transport = make_transport(
                backend, self.topology, self.mode, int(bandwidth_bits),
                self.ledger, faults=faults, fault_seed=fault_seed,
            )
            # The transport owns the effective budget: a fault plan's
            # throttle factor may have scaled it at construction.
            self.bandwidth_bits = self.transport.bandwidth_bits
        self.backend = self.transport.name
        self.tracer: Tracer = NULL_TRACER if tracer is None else tracer
        if self.tracer.enabled:
            self.tracer.attach(self)

    # ------------------------------------------------------------------ views
    @property
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes, in insertion order (cached — safe in hot loops)."""
        return self.topology.nodes

    @property
    def number_of_nodes(self) -> int:
        return self.topology.number_of_nodes

    @property
    def number_of_edges(self) -> int:
        return self.topology.number_of_edges

    @property
    def rounds_used(self) -> int:
        return self.ledger.rounds

    def neighbors(self, v: Node) -> frozenset:
        return self.topology.neighbors(v)

    def degree(self, v: Node) -> int:
        return self.topology.degree(v)

    def max_degree(self) -> int:
        return self.topology.max_degree()

    def are_adjacent(self, u: Node, v: Node) -> bool:
        return self.topology.are_adjacent(u, v)

    def index_of(self, v: Node) -> int:
        """Contiguous index of ``v`` (see :meth:`Topology.index_of`)."""
        return self.topology.index_of(v)

    def node_at(self, i: int) -> Node:
        """Node with contiguous index ``i`` (see :meth:`Topology.node_at`)."""
        return self.topology.node_at(i)

    # ---------------------------------------------------------- communication
    def exchange(
        self,
        messages: Mapping[DirectedEdge, Any],
        label: str = "exchange",
    ) -> Dict[DirectedEdge, Any]:
        """Run one synchronous round delivering per-edge directed messages.

        ``messages`` maps ``(sender, receiver)`` to a payload.  The result
        maps the same ``(sender, receiver)`` keys to the (unwrapped) payloads,
        i.e. entry ``(u, v)`` is what ``v`` received from ``u`` this round.
        Nodes that send nothing simply do not appear.

        Raises
        ------
        ProtocolError
            If a message is addressed along a non-edge.
        BandwidthExceeded
            If any single payload exceeds the bandwidth budget (CONGEST mode).
        """
        delivered = self.transport.exchange(messages, label=label)
        if self.tracer.wants_payloads:
            self.tracer.note_exchange(delivered)
        return delivered

    def broadcast(
        self,
        values: Mapping[Node, Any],
        label: str = "broadcast",
        senders_only_to: Optional[Mapping[Node, Iterable[Node]]] = None,
    ) -> Dict[Node, Mapping[Node, Any]]:
        """Each node in ``values`` sends the same payload to (all) neighbours.

        Returns an inbox per node: ``inbox[v][u]`` is the payload ``v``
        received from neighbour ``u``.  ``senders_only_to`` optionally
        restricts each sender's recipients to a subset of its neighbours.
        Inboxes are read-only views (empty ones are shared); copy before
        mutating.
        """
        inboxes = self.transport.broadcast(
            values, label=label, senders_only_to=senders_only_to
        )
        if self.tracer.wants_payloads:
            self.tracer.note_inboxes(inboxes)
        return inboxes

    def broadcast_discard(
        self,
        values: Mapping[Node, Any],
        label: str = "broadcast",
    ) -> None:
        """:meth:`broadcast` for callers that discard the inboxes.

        Ledger accounting is identical to a full broadcast; backends that
        can skip inbox materialisation (columnar) do so here.
        """
        self.transport.broadcast_discard(values, label=label)
        if self.tracer.wants_payloads:
            self.tracer.note_values(values)

    def exchange_chunked(
        self,
        messages: Mapping[DirectedEdge, Any],
        label: str = "exchange-chunked",
    ) -> Dict[DirectedEdge, Any]:
        """Deliver messages that may exceed the per-round budget.

        CONGEST allows a long message to be streamed over several rounds, one
        budget-sized chunk per round.  This helper charges
        ``ceil(max_message_bits / budget)`` rounds (all messages stream in
        parallel on their own edges) and then delivers the full payloads.  In
        LOCAL mode it charges exactly one round with the true per-edge sizes,
        identical to :meth:`exchange`.

        The paper's primitives use this for the ``σ``-bit indicator strings of
        ``EstimateSimilarity``/``MultiTrial``: with constant ``ε`` those are
        ``O(log n)`` bits, i.e. a constant number of rounds, but the constant
        depends on ``ε`` — the simulator makes that cost explicit.
        """
        delivered = self.transport.exchange_chunked(messages, label=label)
        if self.tracer.wants_payloads:
            self.tracer.note_exchange(delivered)
        return delivered

    def broadcast_chunked(
        self,
        values: Mapping[Node, Any],
        label: str = "broadcast-chunked",
    ) -> Dict[Node, Mapping[Node, Any]]:
        """Chunked variant of :meth:`broadcast` for payloads above the budget."""
        inboxes = self.transport.broadcast_chunked(values, label=label)
        if self.tracer.wants_payloads:
            self.tracer.note_inboxes(inboxes)
        return inboxes

    def charge_silent_round(self, label: str = "silent") -> None:
        """Advance the round counter without sending anything.

        Used when an algorithm must stay synchronised across phases even
        though some nodes have nothing to say this round.
        """
        self.transport.charge_silent_round(label=label)

    # -------------------------------------------------------------- reporting
    @property
    def fault_stats(self) -> Optional[Dict[str, int]]:
        """Fault-layer outcome counters, or ``None`` on a fault-free network."""
        stats = getattr(self.transport, "fault_stats", None)
        return None if stats is None else stats.as_dict()

    def summary(self) -> Dict[str, Any]:
        """Return a compact dictionary describing resource usage so far."""
        summary = {
            "mode": self.mode,
            "backend": self.backend,
            "nodes": self.number_of_nodes,
            "edges": self.number_of_edges,
            "bandwidth_bits": self.bandwidth_bits,
            "rounds": self.ledger.rounds,
            "total_bits": self.ledger.total_bits,
            "total_messages": self.ledger.total_messages,
            "max_edge_bits": self.ledger.max_edge_bits,
        }
        plan = getattr(self.transport, "fault_plan", None)
        if plan is not None:
            summary["faults"] = plan.canonical()
            summary.update(self.fault_stats or {})
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"Network(n={self.number_of_nodes}, m={self.number_of_edges}, "
            f"mode={self.mode!r}, backend={self.backend!r}, "
            f"bandwidth={self.bandwidth_bits} bits, rounds={self.ledger.rounds})"
        )

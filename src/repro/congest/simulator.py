"""Generic round-by-round driver for :class:`NodeProgram` algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional

from repro.congest.network import Network
from repro.congest.node import NodeState
from repro.congest.program import NodeProgram, ProgramContext
from repro.utils.rng import RngStream

Node = Hashable


@dataclass
class SimulationResult:
    """Outcome of driving a node program to completion."""

    rounds: int
    outputs: Dict[Node, Any]
    states: Dict[Node, NodeState] = field(repr=False, default_factory=dict)
    halted: bool = True

    def all_halted(self) -> bool:
        return self.halted


class Simulator:
    """Drives a :class:`NodeProgram` synchronously on a :class:`Network`.

    Parameters
    ----------
    network:
        The communication substrate (CONGEST or LOCAL).
    program:
        The per-node program to execute.
    seed:
        Seed for the per-node random streams.  Each node receives its own
        deterministic ``random.Random``, so results are reproducible and
        independent of node iteration order.
    """

    def __init__(self, network: Network, program: NodeProgram, seed: int = 0):
        self.network = network
        self.program = program
        self.rng_stream = RngStream(seed)
        self.states: Dict[Node, NodeState] = {
            v: NodeState(node=v) for v in network.nodes
        }
        self._round_index = 0
        self._pending_inboxes: Dict[Node, Dict[Node, Any]] = {
            v: {} for v in network.nodes
        }
        for v in network.nodes:
            self.program.init(self._context(v))

    def _context(self, node: Node) -> ProgramContext:
        return ProgramContext(
            network=self.network,
            node=node,
            state=self.states[node],
            rng=self.rng_stream.for_node(node),
            round_index=self._round_index,
        )

    def step(self, label: Optional[str] = None) -> bool:
        """Execute one synchronous round.  Returns True if any node is active."""
        active = [v for v in self.network.nodes if not self.states[v].halted]
        if not active:
            return False
        outgoing: Dict[tuple, Any] = {}
        for v in active:
            ctx = self._context(v)
            sends = self.program.step(ctx, self._pending_inboxes.get(v, {}))
            if not sends:
                continue
            for receiver, payload in sends.items():
                outgoing[(v, receiver)] = payload
        delivered = self.network.exchange(
            outgoing, label=label or type(self.program).__name__
        )
        next_inboxes: Dict[Node, Dict[Node, Any]] = {v: {} for v in self.network.nodes}
        for (sender, receiver), payload in delivered.items():
            next_inboxes[receiver][sender] = payload
        self._pending_inboxes = next_inboxes
        self._round_index += 1
        return any(not self.states[v].halted for v in self.network.nodes)

    def run(self, max_rounds: int = 10_000, label: Optional[str] = None) -> SimulationResult:
        """Run until every node halts or ``max_rounds`` rounds have elapsed."""
        halted = True
        for _ in range(max_rounds):
            if not self.step(label=label):
                break
        else:
            halted = all(self.states[v].halted for v in self.network.nodes)
        outputs = {
            v: self.program.finish(self._context(v)) for v in self.network.nodes
        }
        return SimulationResult(
            rounds=self._round_index,
            outputs=outputs,
            states=dict(self.states),
            halted=halted,
        )

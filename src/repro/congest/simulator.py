"""Generic round-by-round driver for :class:`NodeProgram` algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from repro.congest.network import Network
from repro.congest.node import NodeState
from repro.congest.program import NodeProgram, ProgramContext
from repro.congest.columnar.state import SlotMasks
from repro.utils.rng import RngStream

Node = Hashable


@dataclass
class SimulationResult:
    """Outcome of driving a node program to completion."""

    rounds: int
    outputs: Dict[Node, Any]
    states: Dict[Node, NodeState] = field(repr=False, default_factory=dict)
    halted: bool = True

    def all_halted(self) -> bool:
        return self.halted


class Simulator:
    """Drives a :class:`NodeProgram` synchronously on a :class:`Network`.

    Parameters
    ----------
    network:
        The communication substrate (CONGEST or LOCAL, any transport
        backend — the driver only uses the public ``Network`` interface).
    program:
        The per-node program to execute.
    seed:
        Seed for the per-node random streams.  Each node receives its own
        deterministic ``random.Random``, so results are reproducible and
        independent of node iteration order.

    Each node's :class:`ProgramContext` is created once and reused every
    round (its ``round_index`` is updated in place) — programs may rely on
    the context identity being stable across rounds.  Consequently
    ``ctx.rng`` is one continuously-advancing stream per node: draws in
    ``init`` and successive rounds never repeat.  (Before contexts were
    reused, the per-node rng was re-seeded identically every round, so a
    program drawing in ``step`` saw the same sequence each round — almost
    certainly never what an algorithm wants, but note the change if
    comparing randomized node-program outputs across versions.)

    Large-n fast path (see DESIGN.md "fast-path invariants"): per-node
    bookkeeping — states, contexts, pending inboxes, the active set — is
    stored in lists indexed by the topology's contiguous node index, and the
    active set is maintained *incrementally*: a node leaves it when it halts
    and is never rescanned.  ``NodeState.halt`` is therefore final — a
    program must not clear ``state.halted`` by hand to resurrect a node (no
    in-repo program ever did; the previous implementation rescanned all n
    nodes every round, which happened to tolerate it).

    Inbox and outbox dicts are pooled across rounds: each slot owns one inbox
    dict that is cleared and refilled between rounds, and one outgoing-message
    dict is reused for every ``exchange`` call.  The per-round contract is
    unchanged — ``step`` always receives a **private mutable dict** (shared
    with no other node) holding exactly the messages delivered last round —
    but the dict is only guaranteed to hold those messages *for the duration
    of the call*: a program that wants to keep an inbox across rounds must
    copy it.

    ``slots`` optionally restricts the simulator to *own* only a contiguous
    range of the topology's node indices: states, contexts, rngs and inboxes
    are built (and ``init``/``step``/``finish`` run) for the owned slots only.
    This is the seam the sharded execution layer (:mod:`repro.shard`) plugs
    into — each shard worker drives one ``Simulator`` over its slice, with a
    transport that delivers only to owned receivers.  With the default
    ``slots=None`` the simulator owns every node and behaves exactly as
    before.
    """

    def __init__(self, network: Network, program: NodeProgram, seed: int = 0,
                 slots: Optional[range] = None):
        self.network = network
        self.program = program
        self.rng_stream = RngStream(seed)
        topology = network.topology
        nodes = topology.nodes
        self._nodes = nodes
        self._slot_of = topology.node_index
        if slots is None:
            owned = range(len(nodes))
        else:
            if slots.step != 1 or slots.start < 0 or slots.stop > len(nodes):
                raise ValueError(
                    f"slots must be a unit-step range within [0, {len(nodes)}), "
                    f"got {slots!r}"
                )
            owned = slots
        self._owned = owned
        # Slot-indexed lists span the full topology so global indices stay
        # valid; entries outside the owned range are never populated.
        self._state_list: List[Optional[NodeState]] = [None] * len(nodes)
        self._context_list: List[Optional[ProgramContext]] = [None] * len(nodes)
        self._inbox_list: List[Optional[Dict[Node, Any]]] = [None] * len(nodes)
        for i in owned:
            v = nodes[i]
            state = NodeState(node=v)
            self._state_list[i] = state
            self._context_list[i] = ProgramContext(
                network=network,
                node=v,
                state=state,
                rng=self.rng_stream.for_node(v),
                round_index=0,
            )
            self._inbox_list[i] = {}
        self.states: Dict[Node, NodeState] = {
            nodes[i]: self._state_list[i] for i in owned
        }
        self._contexts: Dict[Node, ProgramContext] = {
            nodes[i]: self._context_list[i] for i in owned
        }
        self._round_index = 0
        self._outgoing: Dict[tuple, Any] = {}
        for i in owned:
            self.program.init(self._context_list[i])
        # Incremental active set: slots leave on halt (a program may already
        # halt in init), and are never rescanned.
        self._active: List[int] = [
            i for i in owned if not self._state_list[i].halted
        ]
        # Flat boolean liveness columns for array-level consumers (vectorized
        # fault kernels, observability).  Observation only: NodeState.halted
        # and the active list stay authoritative, and without numpy the
        # masks are simply absent.
        self.slot_masks = SlotMasks(len(nodes), owned) if SlotMasks.available() else None
        if self.slot_masks is not None:
            for i in owned:
                if self._state_list[i].halted:
                    self.slot_masks.halt(i)

    @property
    def has_active(self) -> bool:
        """True while at least one owned node has not halted."""
        return bool(self._active)

    @property
    def active_count(self) -> int:
        """Number of owned nodes that have not halted."""
        return len(self._active)

    def _context(self, node: Node) -> ProgramContext:
        ctx = self._contexts[node]
        ctx.round_index = self._round_index
        return ctx

    def _apply_crashes(self) -> None:
        """Halt nodes the network's fault plan crashes before this round.

        Crash rounds are counted on the ledger's clock — the same clock the
        fault transport uses to suppress the crashed nodes' messages — so a
        node scheduled to crash "at round r" neither steps nor communicates
        from the r-th recorded round on.  Halting is final, exactly like a
        voluntary halt; the node's mail stops being collected and its output
        is whatever it had computed so far.
        """
        plan = getattr(self.network.transport, "fault_plan", None)
        if plan is None or not plan.crash:
            return
        crashed = plan.crashed_by(self.network.ledger.rounds)
        if not crashed:
            return
        state_list = self._state_list
        slot_of = self._slot_of
        changed = False
        masks = self.slot_masks
        for v in crashed:
            i = slot_of.get(v)
            state = state_list[i] if i is not None else None
            if state is not None and not state.halted:
                state.halted = True
                changed = True
                if masks is not None:
                    masks.crash(i)
        if changed:
            self._active = [i for i in self._active if not state_list[i].halted]

    def step(self, label: Optional[str] = None) -> bool:
        """Execute one synchronous round.  Returns True if any node is active."""
        active = self._active
        if not active:
            return False
        self._apply_crashes()
        active = self._active
        if not active:
            return False
        nodes = self._nodes
        context_list = self._context_list
        inbox_list = self._inbox_list
        state_list = self._state_list
        program_step = self.program.step
        round_index = self._round_index
        tracer = self.network.tracer
        if tracer.enabled:
            # Observation only: counts as of the round about to execute.
            tracer.note_nodes(len(active), len(self._owned))
        outgoing = self._outgoing
        outgoing.clear()
        for i in active:
            ctx = context_list[i]
            ctx.round_index = round_index
            # Programs always get a private mutable dict (the historical
            # contract); the pooled per-slot dict holds this round's mail.
            sends = program_step(ctx, inbox_list[i])
            if not sends:
                continue
            v = nodes[i]
            for receiver, payload in sends.items():
                outgoing[(v, receiver)] = payload
        delivered = self.network.exchange(
            outgoing, label=label or type(self.program).__name__
        )
        # Drop freshly-halted slots from the active set (no O(n) rescan), and
        # recycle every pooled inbox that was readable this round.
        masks = self.slot_masks
        if masks is None:
            self._active = [i for i in active if not state_list[i].halted]
        else:
            still_active: List[int] = []
            for i in active:
                if state_list[i].halted:
                    masks.halt(i)
                else:
                    still_active.append(i)
            self._active = still_active
        for i in active:
            box = inbox_list[i]
            if box:
                box.clear()
        # Refill from this round's deliveries.  Mail for an already-halted
        # receiver is dropped: it could never be read (the node will not step
        # again), and leaving it would accrete stale entries in a pooled box.
        # Mail for a slot outside the owned range is likewise dropped (it is
        # some other shard's to deliver; a correctly-routed transport never
        # produces it).
        slot_of = self._slot_of
        for (sender, receiver), payload in delivered.items():
            i = slot_of[receiver]
            state = state_list[i]
            if state is not None and not state.halted:
                inbox_list[i][sender] = payload
        self._round_index += 1
        if tracer.wants_state:
            # Observation only: hash the post-step solver-visible state of
            # every owned node (halted ones included — their frozen state is
            # part of the global picture a digest must cover).
            tracer.note_state(self.state_digest_items())
        return bool(self._active)

    def state_digest_items(self):
        """Yield ``(node, entry_hash, halted)`` for every owned node.

        The forensics state-digest hook: entry hashes cover the canonical
        encoding of each node's full solver-visible surface — ``halted``,
        ``output`` and ``memory`` (RNG-derived fields included).  Pure
        reader; consumes no randomness.
        """
        from repro.obs.forensics.digest import node_state_entry

        nodes = self._nodes
        state_list = self._state_list
        for i in self._owned:
            state = state_list[i]
            yield (nodes[i], node_state_entry(nodes[i], state), state.halted)

    def state_digest(self):
        """Multiset digest ``(value, count)`` of all owned nodes' state."""
        from repro.obs.forensics.digest import states_digest

        return states_digest(self.states)

    def finish_outputs(self) -> Dict[Node, Any]:
        """Collect ``program.finish`` for every owned node, in slot order.

        The one finish epilogue, shared by :meth:`run` and the sharded
        workers (:mod:`repro.shard.sim`) so the two cannot drift.
        """
        nodes = self._nodes
        return {
            nodes[i]: self.program.finish(self._context(nodes[i]))
            for i in self._owned
        }

    def run(self, max_rounds: int = 10_000, label: Optional[str] = None) -> SimulationResult:
        """Run until every node halts or ``max_rounds`` rounds have elapsed."""
        for _ in range(max_rounds):
            if not self.step(label=label):
                break
        outputs = self.finish_outputs()
        return SimulationResult(
            rounds=self._round_index,
            outputs=outputs,
            states=dict(self.states),
            halted=not self._active,
        )

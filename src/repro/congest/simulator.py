"""Generic round-by-round driver for :class:`NodeProgram` algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional

from repro.congest.network import Network
from repro.congest.node import NodeState
from repro.congest.program import NodeProgram, ProgramContext
from repro.utils.rng import RngStream

Node = Hashable


@dataclass
class SimulationResult:
    """Outcome of driving a node program to completion."""

    rounds: int
    outputs: Dict[Node, Any]
    states: Dict[Node, NodeState] = field(repr=False, default_factory=dict)
    halted: bool = True

    def all_halted(self) -> bool:
        return self.halted


class Simulator:
    """Drives a :class:`NodeProgram` synchronously on a :class:`Network`.

    Parameters
    ----------
    network:
        The communication substrate (CONGEST or LOCAL, any transport
        backend — the driver only uses the public ``Network`` interface).
    program:
        The per-node program to execute.
    seed:
        Seed for the per-node random streams.  Each node receives its own
        deterministic ``random.Random``, so results are reproducible and
        independent of node iteration order.

    Each node's :class:`ProgramContext` is created once and reused every
    round (its ``round_index`` is updated in place) — programs may rely on
    the context identity being stable across rounds.  Consequently
    ``ctx.rng`` is one continuously-advancing stream per node: draws in
    ``init`` and successive rounds never repeat.  (Before contexts were
    reused, the per-node rng was re-seeded identically every round, so a
    program drawing in ``step`` saw the same sequence each round — almost
    certainly never what an algorithm wants, but note the change if
    comparing randomized node-program outputs across versions.)
    """

    def __init__(self, network: Network, program: NodeProgram, seed: int = 0):
        self.network = network
        self.program = program
        self.rng_stream = RngStream(seed)
        self.states: Dict[Node, NodeState] = {
            v: NodeState(node=v) for v in network.nodes
        }
        self._round_index = 0
        self._pending_inboxes: Dict[Node, Dict[Node, Any]] = {}
        self._contexts: Dict[Node, ProgramContext] = {
            v: ProgramContext(
                network=network,
                node=v,
                state=self.states[v],
                rng=self.rng_stream.for_node(v),
                round_index=0,
            )
            for v in network.nodes
        }
        for v in network.nodes:
            self.program.init(self._contexts[v])

    def _context(self, node: Node) -> ProgramContext:
        ctx = self._contexts[node]
        ctx.round_index = self._round_index
        return ctx

    def step(self, label: Optional[str] = None) -> bool:
        """Execute one synchronous round.  Returns True if any node is active."""
        states = self.states
        active = [v for v in self.network.nodes if not states[v].halted]
        if not active:
            return False
        contexts = self._contexts
        pending = self._pending_inboxes
        round_index = self._round_index
        outgoing: Dict[tuple, Any] = {}
        for v in active:
            ctx = contexts[v]
            ctx.round_index = round_index
            # Programs always get a private mutable dict (the historical
            # contract); empty ones are only allocated for active nodes.
            sends = self.program.step(ctx, pending.get(v) or {})
            if not sends:
                continue
            for receiver, payload in sends.items():
                outgoing[(v, receiver)] = payload
        delivered = self.network.exchange(
            outgoing, label=label or type(self.program).__name__
        )
        # Inboxes are allocated only for nodes that actually received mail;
        # everyone else reads the shared empty inbox above.
        next_inboxes: Dict[Node, Dict[Node, Any]] = {}
        for (sender, receiver), payload in delivered.items():
            box = next_inboxes.get(receiver)
            if box is None:
                box = {}
                next_inboxes[receiver] = box
            box[sender] = payload
        self._pending_inboxes = next_inboxes
        self._round_index += 1
        return any(not states[v].halted for v in self.network.nodes)

    def run(self, max_rounds: int = 10_000, label: Optional[str] = None) -> SimulationResult:
        """Run until every node halts or ``max_rounds`` rounds have elapsed."""
        halted = True
        for _ in range(max_rounds):
            if not self.step(label=label):
                break
        else:
            halted = all(self.states[v].halted for v in self.network.nodes)
        outputs = {
            v: self.program.finish(self._context(v)) for v in self.network.nodes
        }
        return SimulationResult(
            rounds=self._round_index,
            outputs=outputs,
            states=dict(self.states),
            halted=halted,
        )

"""Generic round-by-round driver for :class:`NodeProgram` algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional

from repro.congest.network import Network
from repro.congest.node import NodeState
from repro.congest.program import NodeProgram, ProgramContext
from repro.utils.rng import RngStream

Node = Hashable


@dataclass
class SimulationResult:
    """Outcome of driving a node program to completion."""

    rounds: int
    outputs: Dict[Node, Any]
    states: Dict[Node, NodeState] = field(repr=False, default_factory=dict)
    halted: bool = True

    def all_halted(self) -> bool:
        return self.halted


class Simulator:
    """Drives a :class:`NodeProgram` synchronously on a :class:`Network`.

    Parameters
    ----------
    network:
        The communication substrate (CONGEST or LOCAL, any transport
        backend — the driver only uses the public ``Network`` interface).
    program:
        The per-node program to execute.
    seed:
        Seed for the per-node random streams.  Each node receives its own
        deterministic ``random.Random``, so results are reproducible and
        independent of node iteration order.

    Each node's :class:`ProgramContext` is created once and reused every
    round (its ``round_index`` is updated in place) — programs may rely on
    the context identity being stable across rounds.  Consequently
    ``ctx.rng`` is one continuously-advancing stream per node: draws in
    ``init`` and successive rounds never repeat.  (Before contexts were
    reused, the per-node rng was re-seeded identically every round, so a
    program drawing in ``step`` saw the same sequence each round — almost
    certainly never what an algorithm wants, but note the change if
    comparing randomized node-program outputs across versions.)

    Large-n fast path (see DESIGN.md "fast-path invariants"): per-node
    bookkeeping — states, contexts, pending inboxes, the active set — is
    stored in lists indexed by the topology's contiguous node index, and the
    active set is maintained *incrementally*: a node leaves it when it halts
    and is never rescanned.  ``NodeState.halt`` is therefore final — a
    program must not clear ``state.halted`` by hand to resurrect a node (no
    in-repo program ever did; the previous implementation rescanned all n
    nodes every round, which happened to tolerate it).

    Inbox and outbox dicts are pooled across rounds: each slot owns one inbox
    dict that is cleared and refilled between rounds, and one outgoing-message
    dict is reused for every ``exchange`` call.  The per-round contract is
    unchanged — ``step`` always receives a **private mutable dict** (shared
    with no other node) holding exactly the messages delivered last round —
    but the dict is only guaranteed to hold those messages *for the duration
    of the call*: a program that wants to keep an inbox across rounds must
    copy it.
    """

    def __init__(self, network: Network, program: NodeProgram, seed: int = 0):
        self.network = network
        self.program = program
        self.rng_stream = RngStream(seed)
        topology = network.topology
        nodes = topology.nodes
        self._nodes = nodes
        self._slot_of = topology.node_index
        self._state_list: List[NodeState] = [NodeState(node=v) for v in nodes]
        self.states: Dict[Node, NodeState] = {
            v: self._state_list[i] for i, v in enumerate(nodes)
        }
        self._round_index = 0
        self._context_list: List[ProgramContext] = [
            ProgramContext(
                network=network,
                node=v,
                state=self._state_list[i],
                rng=self.rng_stream.for_node(v),
                round_index=0,
            )
            for i, v in enumerate(nodes)
        ]
        self._contexts: Dict[Node, ProgramContext] = {
            v: self._context_list[i] for i, v in enumerate(nodes)
        }
        # One pooled inbox dict per slot, cleared and refilled across rounds.
        self._inbox_list: List[Dict[Node, Any]] = [{} for _ in nodes]
        self._outgoing: Dict[tuple, Any] = {}
        for ctx in self._context_list:
            self.program.init(ctx)
        # Incremental active set: slots leave on halt (a program may already
        # halt in init), and are never rescanned.
        self._active: List[int] = [
            i for i, state in enumerate(self._state_list) if not state.halted
        ]

    def _context(self, node: Node) -> ProgramContext:
        ctx = self._contexts[node]
        ctx.round_index = self._round_index
        return ctx

    def _apply_crashes(self) -> None:
        """Halt nodes the network's fault plan crashes before this round.

        Crash rounds are counted on the ledger's clock — the same clock the
        fault transport uses to suppress the crashed nodes' messages — so a
        node scheduled to crash "at round r" neither steps nor communicates
        from the r-th recorded round on.  Halting is final, exactly like a
        voluntary halt; the node's mail stops being collected and its output
        is whatever it had computed so far.
        """
        plan = getattr(self.network.transport, "fault_plan", None)
        if plan is None or not plan.crash:
            return
        crashed = plan.crashed_by(self.network.ledger.rounds)
        if not crashed:
            return
        state_list = self._state_list
        slot_of = self._slot_of
        changed = False
        for v in crashed:
            i = slot_of.get(v)
            if i is not None and not state_list[i].halted:
                state_list[i].halted = True
                changed = True
        if changed:
            self._active = [i for i in self._active if not state_list[i].halted]

    def step(self, label: Optional[str] = None) -> bool:
        """Execute one synchronous round.  Returns True if any node is active."""
        active = self._active
        if not active:
            return False
        self._apply_crashes()
        active = self._active
        if not active:
            return False
        nodes = self._nodes
        context_list = self._context_list
        inbox_list = self._inbox_list
        state_list = self._state_list
        program_step = self.program.step
        round_index = self._round_index
        outgoing = self._outgoing
        outgoing.clear()
        for i in active:
            ctx = context_list[i]
            ctx.round_index = round_index
            # Programs always get a private mutable dict (the historical
            # contract); the pooled per-slot dict holds this round's mail.
            sends = program_step(ctx, inbox_list[i])
            if not sends:
                continue
            v = nodes[i]
            for receiver, payload in sends.items():
                outgoing[(v, receiver)] = payload
        delivered = self.network.exchange(
            outgoing, label=label or type(self.program).__name__
        )
        # Drop freshly-halted slots from the active set (no O(n) rescan), and
        # recycle every pooled inbox that was readable this round.
        self._active = [i for i in active if not state_list[i].halted]
        for i in active:
            box = inbox_list[i]
            if box:
                box.clear()
        # Refill from this round's deliveries.  Mail for an already-halted
        # receiver is dropped: it could never be read (the node will not step
        # again), and leaving it would accrete stale entries in a pooled box.
        slot_of = self._slot_of
        for (sender, receiver), payload in delivered.items():
            i = slot_of[receiver]
            if not state_list[i].halted:
                inbox_list[i][sender] = payload
        self._round_index += 1
        return bool(self._active)

    def run(self, max_rounds: int = 10_000, label: Optional[str] = None) -> SimulationResult:
        """Run until every node halts or ``max_rounds`` rounds have elapsed."""
        for _ in range(max_rounds):
            if not self.step(label=label):
                break
        outputs = {
            v: self.program.finish(self._context(v)) for v in self._nodes
        }
        return SimulationResult(
            rounds=self._round_index,
            outputs=outputs,
            states=dict(self.states),
            halted=not self._active,
        )

"""Canonical bit-cost model for message payloads.

The CONGEST model charges messages by their length in bits.  Rather than force
every algorithm to hand-compute sizes, :func:`payload_bits` assigns a cost to
the payload types used throughout the reproduction:

* ``None`` / booleans — 1 bit,
* integers — their binary length,
* floats — 64 bits (used only for diagnostics, never in the core algorithms),
* strings — 8 bits per character (IDs and debug labels),
* lists/tuples/sets/frozensets — the sum of their members plus a small length
  header,
* :class:`~repro.congest.message.Message` — whatever the sender declared.

Algorithms that know a tighter encoding (e.g. a ``σ``-bit indicator bitstring,
or an index into a hash family of size ``F``) wrap their payload in a
:class:`~repro.congest.message.Message` with an explicit bit count; the
explicit count is what the simulator charges, and it is the number the paper's
analysis talks about.
"""

from __future__ import annotations

from typing import Iterable

from repro.congest.message import Message

_LENGTH_HEADER_BITS = 8


def payload_bits(payload: object) -> int:
    """Return the number of bits charged for ``payload``."""
    if isinstance(payload, Message):
        return payload.bits
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return max(1, abs(payload).bit_length())
    if isinstance(payload, float):
        return 64
    if isinstance(payload, str):
        return max(1, 8 * len(payload))
    if isinstance(payload, (list, tuple, set, frozenset)):
        return _LENGTH_HEADER_BITS + sum(payload_bits(item) for item in payload)
    if isinstance(payload, dict):
        return _LENGTH_HEADER_BITS + sum(
            payload_bits(k) + payload_bits(v) for k, v in payload.items()
        )
    raise TypeError(
        f"cannot charge bandwidth for payload of type {type(payload).__name__}; "
        "wrap it in Message(content, bits=...)"
    )


def bitstring_message(bits: Iterable[int], label: str = "bitstring") -> Message:
    """Package an explicit 0/1 bitstring, charged one bit per position.

    Indicator strings are the bulkiest payloads the primitives build (σ bits
    per edge per round), so coercion and validation run at C speed: ``map``
    does the per-entry ``int()`` and a single set comparison checks the whole
    string is 0/1.
    """
    values = tuple(map(int, bits))
    if not set(values) <= {0, 1}:
        raise ValueError("bitstring entries must be 0 or 1")
    return Message(content=values, bits=max(1, len(values)), label=label)


def index_message(index: int, family_size: int, label: str = "index") -> Message:
    """Package an index into a family of ``family_size`` elements.

    This is how hash-function indices are sent: the cost is ``log2 F`` bits,
    independent of how complicated the indexed object is.
    """
    if family_size <= 0:
        raise ValueError("family_size must be positive")
    if not 0 <= index < family_size:
        raise ValueError(f"index {index} out of range for family of size {family_size}")
    width = max(1, (family_size - 1).bit_length())
    return Message(content=index, bits=width, label=label)


def integer_message(value: int, universe_size: int, label: str = "int") -> Message:
    """Package an integer known to lie in ``[0, universe_size)``."""
    if universe_size <= 0:
        raise ValueError("universe_size must be positive")
    width = max(1, (universe_size - 1).bit_length())
    return Message(content=int(value), bits=width, label=label)

"""Per-node program abstraction for the generic simulator.

Simple distributed algorithms (the Johansson/Luby baseline, flooding helpers,
the triangle detector used in the examples) are most naturally written as a
*node program*: a recipe every node runs independently, seeing only its own
state and the messages its neighbours sent last round.  The generic
:class:`~repro.congest.simulator.Simulator` drives such programs round by
round on a :class:`~repro.congest.network.Network`.

The heavyweight coloring pipeline (``repro.core``) is instead written directly
against the ``Network`` primitives, because its many interleaved sub-phases
would be unreadable in a purely event-driven style; both styles are charged by
the same ledger.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Mapping, Optional

from repro.congest.network import Network
from repro.congest.node import NodeState

Node = Hashable


@dataclass
class ProgramContext:
    """Everything a node program can see when it runs a round for a node."""

    network: Network
    node: Node
    state: NodeState
    rng: random.Random
    round_index: int

    @property
    def neighbors(self) -> frozenset:
        return self.network.neighbors(self.node)

    @property
    def degree(self) -> int:
        return self.network.degree(self.node)


class NodeProgram:
    """Base class for per-node programs.

    Subclasses override :meth:`init` and :meth:`step`.  In each round the
    simulator calls :meth:`step` for every non-halted node with the messages
    received from its neighbours in the previous round; the return value is a
    mapping ``neighbor -> payload`` of messages to send this round (or ``None``
    / ``{}`` to stay silent).  A node finishes by calling ``ctx.state.halt()``.
    """

    def init(self, ctx: ProgramContext) -> None:
        """Set up per-node state before the first round."""

    def step(
        self, ctx: ProgramContext, inbox: Mapping[Node, Any]
    ) -> Optional[Dict[Node, Any]]:
        """Run one round for one node; return the messages to send."""
        raise NotImplementedError

    def finish(self, ctx: ProgramContext) -> Any:
        """Produce the node's final output after it halted (or the run ended)."""
        return ctx.state.output

"""Palette (color list) generators for the list-coloring problems.

The (degree+1)-list-coloring problem (D1LC) hands every node ``v`` a list of
``d_v + 1`` colors from an arbitrary color space; (deg+1)-coloring (D1C) and
(Δ+1)-coloring are the special cases where the lists are ``{0..d_v}`` and
``{0..Δ}``.  These generators produce the different flavours, including lists
drawn from a huge color space (``|C| ≈ 2^{60}``), which exercises the
large-color machinery of Appendix D.3.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Optional, Set

import networkx as nx

Node = Hashable
Palette = Set[int]


def numeric_degree_lists(graph: nx.Graph, extra: int = 0) -> Dict[Node, Palette]:
    """D1C palettes: node ``v`` gets ``{0, ..., d_v + extra}``."""
    if extra < 0:
        raise ValueError("extra must be non-negative")
    return {v: set(range(graph.degree(v) + 1 + extra)) for v in graph.nodes()}


def delta_plus_one_lists(graph: nx.Graph, extra: int = 0) -> Dict[Node, Palette]:
    """(Δ+1)-coloring palettes: every node gets ``{0, ..., Δ + extra}``."""
    delta = max((d for _, d in graph.degree()), default=0)
    palette = set(range(delta + 1 + extra))
    return {v: set(palette) for v in graph.nodes()}


def degree_plus_one_lists(
    graph: nx.Graph,
    color_space_size: Optional[int] = None,
    extra: int = 0,
    seed: int = 0,
) -> Dict[Node, Palette]:
    """D1LC palettes: ``d_v + 1 + extra`` colors sampled from a shared space.

    ``color_space_size`` defaults to ``4(Δ + 1)``, which makes neighbouring
    lists overlap heavily (the hard case for list coloring) while still giving
    the adversary room to hand different nodes different lists.
    """
    rng = random.Random(seed)
    delta = max((d for _, d in graph.degree()), default=0)
    if color_space_size is None:
        color_space_size = 4 * (delta + 1)
    if color_space_size < delta + 1 + extra:
        raise ValueError("color space must contain at least Δ + 1 + extra colors")
    lists: Dict[Node, Palette] = {}
    for v in graph.nodes():
        need = graph.degree(v) + 1 + extra
        lists[v] = set(rng.sample(range(color_space_size), need))
    return lists


def huge_color_space_lists(
    graph: nx.Graph,
    color_space_bits: int = 60,
    extra: int = 0,
    seed: int = 0,
) -> Dict[Node, Palette]:
    """D1LC palettes drawn from a gigantic color space (Appendix D.3 regime).

    Colors are random integers below ``2^color_space_bits``; sending one
    verbatim would take ``color_space_bits`` bits, far above the CONGEST
    budget for large ``color_space_bits``, so the coloring pipeline must go
    through the universal-hashing machinery.
    """
    if color_space_bits < 16:
        raise ValueError("color_space_bits should be at least 16 to be interesting")
    rng = random.Random(seed)
    space = 1 << color_space_bits
    lists: Dict[Node, Palette] = {}
    for v in graph.nodes():
        need = graph.degree(v) + 1 + extra
        palette: Set[int] = set()
        while len(palette) < need:
            palette.add(rng.randrange(space))
        lists[v] = palette
    return lists


def shared_pool_lists(
    graph: nx.Graph,
    pool_size: Optional[int] = None,
    extra: int = 0,
    seed: int = 0,
) -> Dict[Node, Palette]:
    """Adversarial palettes maximising conflicts: all lists drawn from a tiny pool.

    With ``pool_size`` barely above ``Δ``, neighbouring lists are nearly
    identical, which maximises color contention — useful for stress tests.
    """
    rng = random.Random(seed)
    delta = max((d for _, d in graph.degree()), default=0)
    if pool_size is None:
        pool_size = delta + 2
    pool_size = max(pool_size, delta + 1 + extra)
    lists: Dict[Node, Palette] = {}
    for v in graph.nodes():
        need = graph.degree(v) + 1 + extra
        lists[v] = set(rng.sample(range(pool_size), need))
    return lists

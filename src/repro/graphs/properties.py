"""Exact (centralised) graph properties used as ground truth.

The distributed primitives estimate these quantities with small messages; the
tests and benchmarks compare the estimates against the exact values computed
here (which a simulator is allowed to compute centrally — a real network is
not, which is the whole point of the paper).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

import networkx as nx

Node = Hashable


def neighborhood_edge_count(graph: nx.Graph, node: Node) -> int:
    """``m(N(v))``: number of edges between neighbours of ``node``."""
    neighbors = set(graph.neighbors(node))
    count = 0
    for u in neighbors:
        for w in graph.neighbors(u):
            if w in neighbors and repr(w) > repr(u):
                count += 1
    return count


def exact_global_sparsity(graph: nx.Graph, node: Node, delta: Optional[int] = None) -> float:
    """Exact ``ζ^[Δ]_v`` (Definition 1)."""
    if delta is None:
        delta = max((d for _, d in graph.degree()), default=1)
    delta = max(1, delta)
    missing = delta * (delta - 1) / 2.0 - neighborhood_edge_count(graph, node)
    return missing / delta


def exact_local_sparsity(graph: nx.Graph, node: Node) -> float:
    """Exact ``ζ^[d]_v`` (Definition 1 / Definition 4)."""
    degree = max(1, graph.degree(node))
    missing = degree * (degree - 1) / 2.0 - neighborhood_edge_count(graph, node)
    return missing / degree


def is_balanced_edge(graph: nx.Graph, u: Node, v: Node, eps: float) -> bool:
    """``ε``-balanced (Definition 2): degrees within a ``(1 − ε)`` factor."""
    du, dv = graph.degree(u), graph.degree(v)
    return min(du, dv) >= (1 - eps) * max(du, dv)


def is_friend_edge(graph: nx.Graph, u: Node, v: Node, eps: float) -> bool:
    """``ε``-friend (Definition 2): balanced and sharing most neighbours."""
    if not graph.has_edge(u, v):
        return False
    if not is_balanced_edge(graph, u, v, eps):
        return False
    shared = len(set(graph.neighbors(u)) & set(graph.neighbors(v)))
    return shared >= (1 - eps) * min(graph.degree(u), graph.degree(v))


def unevenness(graph: nx.Graph, node: Node) -> float:
    """``η_v = Σ_{u∈N(v)} max(0, d_u − d_v) / (d_u + 1)`` (Definition 5)."""
    dv = graph.degree(node)
    total = 0.0
    for u in graph.neighbors(node):
        du = graph.degree(u)
        total += max(0, du - dv) / (du + 1)
    return total


def validate_acd(
    graph: nx.Graph,
    sparse_nodes: Iterable[Node],
    uneven_nodes: Iterable[Node],
    almost_cliques: Iterable[Set[Node]],
    eps_sparse: float,
    eps_clique: float,
) -> Dict[str, object]:
    """Check the four properties of a (deg+1) almost-clique decomposition (Def. 6).

    Returns a report dictionary with, for each property, the list of violating
    nodes (empty lists mean the decomposition is valid).  The checks use a
    small multiplicative tolerance nowhere — they are exactly the inequalities
    of Definition 6 — so callers deciding what counts as "close enough" for a
    randomized decomposition do so explicitly in their own assertions.
    """
    sparse_nodes = set(sparse_nodes)
    uneven_nodes = set(uneven_nodes)
    almost_cliques = [set(c) for c in almost_cliques]
    dense_nodes = set().union(*almost_cliques) if almost_cliques else set()

    all_nodes = set(graph.nodes())
    covered = sparse_nodes | uneven_nodes | dense_nodes
    uncovered = all_nodes - covered
    overlapping: List[Node] = []
    seen: Set[Node] = set()
    for part in (sparse_nodes, uneven_nodes):
        overlapping.extend(part & dense_nodes)
    for clique in almost_cliques:
        overlapping.extend(clique & seen)
        seen |= clique

    sparse_violations = [
        v for v in sparse_nodes
        if exact_local_sparsity(graph, v) < eps_sparse * graph.degree(v)
    ]
    uneven_violations = [
        v for v in uneven_nodes
        if unevenness(graph, v) < eps_sparse * graph.degree(v)
    ]
    degree_violations: List[Node] = []
    membership_violations: List[Node] = []
    for clique in almost_cliques:
        size = len(clique)
        for v in clique:
            if graph.degree(v) > (1 + eps_clique) * size:
                degree_violations.append(v)
            in_clique_neighbors = sum(1 for u in graph.neighbors(v) if u in clique)
            if (1 + eps_clique) * max(in_clique_neighbors, 1) < size:
                membership_violations.append(v)

    return {
        "uncovered": sorted(uncovered, key=repr),
        "overlapping": sorted(set(overlapping), key=repr),
        "sparse_violations": sorted(sparse_violations, key=repr),
        "uneven_violations": sorted(uneven_violations, key=repr),
        "degree_violations": sorted(degree_violations, key=repr),
        "membership_violations": sorted(membership_violations, key=repr),
    }


def acd_report_is_clean(report: Mapping[str, object], allow_sparse_slack: bool = True) -> bool:
    """True when the ACD report contains no partition/degree violations.

    ``sparse_violations`` and ``uneven_violations`` measure how aggressively
    the decomposition classified nodes as sparse/uneven; randomized
    decompositions may produce a few borderline members, so those two checks
    can be relaxed with ``allow_sparse_slack``.
    """
    hard_keys = ["uncovered", "overlapping", "degree_violations", "membership_violations"]
    if not allow_sparse_slack:
        hard_keys += ["sparse_violations", "uneven_violations"]
    return all(not report[key] for key in hard_keys)

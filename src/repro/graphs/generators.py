"""Graph generators for the coloring, sparsity and detection experiments.

All generators return plain ``networkx.Graph`` objects with integer node
labels and are fully determined by their ``seed`` argument.  The planted
generators additionally return the ground-truth structure (which nodes belong
to which planted almost-clique, which edges are triangle-rich, ...) so that
tests and benchmarks can score the distributed algorithms against the truth.
"""

from __future__ import annotations

import itertools
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx


def gnp_graph(n: int, p: float, seed: int = 0) -> nx.Graph:
    """Erdős–Rényi ``G(n, p)`` graph (isolated nodes kept)."""
    if n < 1:
        raise ValueError("n must be positive")
    if not 0 <= p <= 1:
        raise ValueError("p must lie in [0, 1]")
    return nx.gnp_random_graph(n, p, seed=seed)


def gnp_fast_graph(n: int, p: Optional[float] = None,
                   avg_degree: Optional[float] = None, seed: int = 0) -> nx.Graph:
    """Sparse-time Erdős–Rényi ``G(n, p)`` (geometric edge skipping).

    Samples exactly the ``G(n, p)`` distribution in ``O(n + m)`` expected
    time (Batagelj–Brandes, via ``nx.fast_gnp_random_graph``) instead of
    :func:`gnp_graph`'s ``O(n²)`` pair enumeration — the difference between
    minutes and milliseconds at ``n = 500 000``.  The *edge stream differs*
    from :func:`gnp_graph` for the same seed (a different algorithm consumes
    the RNG differently), so this is a separate family: committed baselines
    built on ``gnp`` stay byte-identical, and large-n suites opt into
    ``gnp_fast`` explicitly.  ``avg_degree`` is accepted in place of ``p``
    (``p = avg_degree / n``) for the degree-targeted large-n scenarios.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if (p is None) == (avg_degree is None):
        raise ValueError("give exactly one of p / avg_degree")
    if p is None:
        if avg_degree < 0:
            raise ValueError("avg_degree must be non-negative")
        p = min(1.0, float(avg_degree) / max(1, n))
    if not 0 <= p <= 1:
        raise ValueError("p must lie in [0, 1]")
    return nx.fast_gnp_random_graph(n, p, seed=seed)


def power_law_graph(n: int, attachment: int = 3, triangle_prob: float = 0.3,
                    seed: int = 0) -> nx.Graph:
    """Power-law graph with tunable clustering (Holme–Kim model).

    This is the "social network" style workload the paper's introduction
    motivates: highly skewed degrees and dense local neighbourhoods, which is
    where (deg+1)-list-coloring differs most from (Δ+1)-coloring.
    """
    if n < 4:
        raise ValueError("n must be at least 4")
    attachment = max(1, min(attachment, n - 1))
    return nx.powerlaw_cluster_graph(n, attachment, triangle_prob, seed=seed)


def random_regular_graph(n: int, degree: int, seed: int = 0) -> nx.Graph:
    """A random ``degree``-regular graph (``n * degree`` must be even).

    A ``degree``-regular graph on ``n`` nodes only exists when ``n * degree``
    is even; an odd product is rejected rather than silently returning a graph
    on a different node count than requested.
    """
    if degree >= n:
        raise ValueError("degree must be below n")
    if (n * degree) % 2 == 1:
        raise ValueError(
            f"no {degree}-regular graph on {n} nodes exists: n * degree must be "
            "even (use n + 1 or degree + 1 explicitly)"
        )
    return nx.random_regular_graph(degree, n, seed=seed)


def random_geometric_graph(n: int, radius: float = 0.15, seed: int = 0) -> nx.Graph:
    """Random geometric graph: ``n`` points in the unit square, edges below ``radius``.

    Geometric graphs are the "radio network" workload: degrees are governed by
    local point density, neighbourhoods are dense (two neighbours of a node
    are themselves likely close), and there is no global symmetry — a natural
    stress test for the almost-clique decomposition and for frequency
    assignment style coloring scenarios.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if not 0 < radius <= math.sqrt(2):
        raise ValueError("radius must lie in (0, sqrt(2)]")
    return nx.random_geometric_graph(n, radius, seed=seed)


def degree_range_graph(n: int, low: int, high: int, seed: int = 0) -> nx.Graph:
    """Graph whose degrees concentrate inside ``[low, high]``.

    The D1LC algorithm of the paper processes nodes in degree ranges
    ``[log^7 x, x]``; this generator produces instances living inside one such
    range by overlaying a ``low``-regular backbone with random extra edges.
    """
    if not 1 <= low <= high < n:
        raise ValueError("need 1 <= low <= high < n")
    rng = random.Random(seed)
    graph = nx.random_regular_graph(low, n if (n * low) % 2 == 0 else n + 1, seed=seed)
    graph = nx.Graph(graph)
    nodes = list(graph.nodes())
    extra_per_node = max(0, (high - low) // 2)
    for v in nodes:
        for _ in range(rng.randint(0, extra_per_node)):
            u = rng.choice(nodes)
            if u != v and graph.degree(v) < high and graph.degree(u) < high:
                graph.add_edge(u, v)
    return graph


@dataclass
class PlantedAlmostCliques:
    """A graph with planted almost-cliques plus sparse background nodes."""

    graph: nx.Graph
    cliques: List[Set[int]]
    sparse_nodes: Set[int] = field(default_factory=set)

    def clique_of(self, node: int) -> Optional[int]:
        for index, members in enumerate(self.cliques):
            if node in members:
                return index
        return None


def planted_almost_cliques(
    num_cliques: int = 4,
    clique_size: int = 20,
    dropout: float = 0.1,
    num_sparse: int = 20,
    sparse_degree: int = 6,
    cross_edges: int = 10,
    seed: int = 0,
) -> PlantedAlmostCliques:
    """Plant ``num_cliques`` almost-cliques, plus sparse background nodes.

    Each planted clique is a complete graph on ``clique_size`` nodes with a
    ``dropout`` fraction of its edges removed (so its members are dense but
    not perfectly so), a few random edges crossing between cliques, and
    ``num_sparse`` background nodes with low-degree random attachments.  The
    returned structure records the planted membership, which the ACD
    experiments compare against.
    """
    if num_cliques < 1 or clique_size < 3:
        raise ValueError("need at least one clique of size >= 3")
    if not 0 <= dropout < 0.5:
        raise ValueError("dropout must be in [0, 0.5)")
    rng = random.Random(seed)
    graph = nx.Graph()
    cliques: List[Set[int]] = []
    next_node = 0
    for _ in range(num_cliques):
        members = set(range(next_node, next_node + clique_size))
        next_node += clique_size
        graph.add_nodes_from(members)
        for u, v in itertools.combinations(sorted(members), 2):
            if rng.random() >= dropout:
                graph.add_edge(u, v)
        cliques.append(members)

    # A few cross edges between cliques (they should not merge the cliques).
    all_clique_nodes = [v for members in cliques for v in sorted(members)]
    for _ in range(cross_edges):
        u, v = rng.sample(all_clique_nodes, 2)
        graph.add_edge(u, v)

    sparse_nodes: Set[int] = set()
    for _ in range(num_sparse):
        v = next_node
        next_node += 1
        sparse_nodes.add(v)
        graph.add_node(v)
        candidates = all_clique_nodes + sorted(sparse_nodes - {v})
        degree = min(sparse_degree, len(candidates))
        for u in rng.sample(candidates, degree):
            graph.add_edge(u, v)
    return PlantedAlmostCliques(graph=graph, cliques=cliques, sparse_nodes=sparse_nodes)


def ring_of_cliques(num_cliques: int, clique_size: int) -> nx.Graph:
    """``num_cliques`` cliques arranged in a ring, one bridge edge between consecutive ones."""
    if num_cliques < 2 or clique_size < 2:
        raise ValueError("need at least two cliques of size >= 2")
    return nx.ring_of_cliques(num_cliques, clique_size)


@dataclass
class TriangleRichGraph:
    """A sparse background graph with planted triangle-rich edges."""

    graph: nx.Graph
    rich_edges: Set[Tuple[int, int]]


def triangle_rich_graph(
    n: int = 120,
    background_p: float = 0.02,
    planted_cliques: int = 3,
    clique_size: int = 14,
    seed: int = 0,
) -> TriangleRichGraph:
    """Sparse ``G(n, p)`` background plus planted cliques whose edges are triangle-rich."""
    rng = random.Random(seed)
    graph = nx.gnp_random_graph(n, background_p, seed=seed)
    rich_edges: Set[Tuple[int, int]] = set()
    nodes = list(graph.nodes())
    for _ in range(planted_cliques):
        members = rng.sample(nodes, min(clique_size, len(nodes)))
        for u, v in itertools.combinations(members, 2):
            graph.add_edge(u, v)
            rich_edges.add((min(u, v), max(u, v)))
    return TriangleRichGraph(graph=graph, rich_edges=rich_edges)


@dataclass
class FourCycleRichGraph:
    """A sparse background graph with planted complete-bipartite (C4-rich) blocks."""

    graph: nx.Graph
    rich_centers: Set[int]


def four_cycle_rich_graph(
    n: int = 120,
    background_p: float = 0.02,
    planted_blocks: int = 2,
    side_size: int = 10,
    seed: int = 0,
) -> FourCycleRichGraph:
    """Sparse background plus planted ``K_{s,s}`` blocks, whose wedges are 4-cycle-rich."""
    rng = random.Random(seed)
    graph = nx.gnp_random_graph(n, background_p, seed=seed)
    nodes = list(graph.nodes())
    rich_centers: Set[int] = set()
    for _ in range(planted_blocks):
        members = rng.sample(nodes, min(2 * side_size, len(nodes)))
        left, right = members[:side_size], members[side_size:]
        for u in left:
            for v in right:
                graph.add_edge(u, v)
        rich_centers.update(left)
        rich_centers.update(right)
    return FourCycleRichGraph(graph=graph, rich_centers=rich_centers)


def locally_sparse_graph(n: int = 100, degree: int = 8, seed: int = 0) -> nx.Graph:
    """A graph with (near) triangle-free neighbourhoods: a random bipartite graph.

    Every node's neighbourhood is (almost) an independent set, so its local
    sparsity is close to the maximum ``(d_v - 1)/2`` — the regime where slack
    generation gives every node linear slack.
    """
    half = max(2, n // 2)
    p = min(1.0, degree / half)
    return nx.bipartite.random_graph(half, n - half, p, seed=seed)

"""Graph, palette and instance generators used by tests, examples and benchmarks."""

from repro.graphs.generators import (
    gnp_fast_graph,
    gnp_graph,
    power_law_graph,
    random_geometric_graph,
    random_regular_graph,
    planted_almost_cliques,
    ring_of_cliques,
    triangle_rich_graph,
    four_cycle_rich_graph,
    locally_sparse_graph,
    degree_range_graph,
)
from repro.graphs.lists import (
    degree_plus_one_lists,
    delta_plus_one_lists,
    numeric_degree_lists,
    huge_color_space_lists,
    shared_pool_lists,
)
from repro.graphs.properties import (
    exact_global_sparsity,
    exact_local_sparsity,
    is_friend_edge,
    is_balanced_edge,
    validate_acd,
    neighborhood_edge_count,
)

__all__ = [
    "gnp_fast_graph",
    "gnp_graph",
    "power_law_graph",
    "random_geometric_graph",
    "random_regular_graph",
    "planted_almost_cliques",
    "ring_of_cliques",
    "triangle_rich_graph",
    "four_cycle_rich_graph",
    "locally_sparse_graph",
    "degree_range_graph",
    "degree_plus_one_lists",
    "delta_plus_one_lists",
    "numeric_degree_lists",
    "huge_color_space_lists",
    "shared_pool_lists",
    "exact_global_sparsity",
    "exact_local_sparsity",
    "is_friend_edge",
    "is_balanced_edge",
    "validate_acd",
    "neighborhood_edge_count",
]

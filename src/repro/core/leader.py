"""Leader selection, inliers and outliers for almost-cliques (Appendix D.1, E.2).

The dense-node phase needs, in each almost-clique ``C``:

* a *leader* whose slackability is (up to constants) as small as the best
  node's — selected as ``argmin_{v∈C} (e_v + a_v + κ_v)`` where ``e_v`` is the
  external degree, ``a_v`` the anti-degree (non-neighbours inside ``C``) and
  ``κ_v`` the chromatic slack accumulated during GenerateSlack (Lemma 12);
* a split of ``C`` into *inliers* (neighbours of the leader sharing many of
  its neighbours and of moderate degree) and *outliers* (everyone else), per
  Appendix E.2;
* an estimate of the clique's slackability — ``e_x + ζ̂_x + κ_x`` where
  ``ζ̂_x`` counts missing edges in the leader's in-clique neighbourhood
  (Lemma 16) — to classify the clique as *low-slack* or *high-slack* against
  the threshold ``ℓ = log^{2.1} Δ``.

The communication involved (announcing clique identifiers, counting common
neighbours with the leader, forwarding ``O(log Δ)``-bit aggregates to the
leader) is a constant number of CONGEST rounds; the simulator charges those
rounds and performs the equivalent aggregation centrally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional, Set

from repro.congest.bandwidth import integer_message
from repro.core.acd import ACDResult
from repro.core.state import ColoringState

Node = Hashable


@dataclass
class LeaderInfo:
    """Per-almost-clique roles and slackability classification."""

    clique_id: int
    leader: Node
    inliers: Set[Node]
    outliers: Set[Node]
    low_slack: bool
    slackability_estimate: float
    clique_size: int
    max_degree: int

    @property
    def members(self) -> Set[Node]:
        return self.inliers | self.outliers | {self.leader}


def select_leaders(
    state: ColoringState,
    acd: ACDResult,
    label: str = "leader",
) -> Dict[int, LeaderInfo]:
    """Choose a leader, inliers and outliers for every almost-clique."""
    network = state.network
    params = state.params
    if not acd.cliques:
        return {}

    # Round: every dense node announces its clique identifier so neighbours
    # can tell in-clique from external edges.
    clique_count = max(2, len(acd.cliques) + 1)
    network.broadcast(
        {
            v: integer_message(acd.clique_of[v], clique_count, label=f"{label}:clique-id")
            for v in acd.clique_of
        },
        label=f"{label}:clique-id",
    )
    # Rounds: members forward their (e_v + a_v + κ_v) aggregate towards the
    # clique leader candidate (diameter ≤ 2, so two forwarding rounds).
    network.charge_silent_round(label=f"{label}:aggregate")
    network.charge_silent_round(label=f"{label}:aggregate")

    delta = max(1, state.instance.max_degree())
    ell = params.ell(delta)
    results: Dict[int, LeaderInfo] = {}
    for clique_id, members in acd.cliques.items():
        members = set(members)
        size = len(members)
        scores: Dict[Node, float] = {}
        external: Dict[Node, int] = {}
        anti: Dict[Node, int] = {}
        for v in members:
            neighbors = network.neighbors(v)
            in_clique = neighbors & members
            external[v] = len(neighbors - members)
            anti[v] = max(0, size - 1 - len(in_clique))
            scores[v] = external[v] + anti[v] + state.chromatic_slack[v]
        leader = min(sorted(members, key=repr), key=lambda v: scores[v])

        # Lemma 16: estimate the leader's sparsity by counting the edges inside
        # its in-clique neighbourhood (each such neighbour reports how many of
        # the leader's neighbours it is adjacent to — one more round).
        leader_neighbors = network.neighbors(leader) & members
        in_clique_edges = 0
        for u in leader_neighbors:
            in_clique_edges += len(network.neighbors(u) & leader_neighbors)
        in_clique_edges //= 2
        d_leader = max(1, len(network.neighbors(leader)))
        sparsity_estimate = (
            d_leader * (d_leader - 1) / 2.0 - in_clique_edges
        ) / d_leader
        slackability = external[leader] + sparsity_estimate + state.chromatic_slack[leader]

        # Outliers (Appendix E.2): fewest common neighbours with the leader,
        # largest original degree, and the leader's in-clique non-neighbours.
        others = sorted(members - {leader}, key=repr)
        common_with_leader = {
            v: len(network.neighbors(v) & leader_neighbors) for v in others
        }
        by_common = sorted(others, key=lambda v: (common_with_leader[v], repr(v)))
        take_common = int(max(d_leader, size) * params.outlier_common_fraction)
        outliers: Set[Node] = set(by_common[:take_common])
        by_degree = sorted(others, key=lambda v: (-network.degree(v), repr(v)))
        take_degree = int(size * params.outlier_degree_fraction)
        outliers |= set(by_degree[:take_degree])
        outliers |= {v for v in others if v not in network.neighbors(leader)}

        inliers = set(others) - outliers
        results[clique_id] = LeaderInfo(
            clique_id=clique_id,
            leader=leader,
            inliers=inliers,
            outliers=outliers,
            low_slack=slackability <= ell,
            slackability_estimate=slackability,
            clique_size=size,
            max_degree=max((network.degree(v) for v in members), default=1),
        )
    network.charge_silent_round(label=f"{label}:sparsity-count")
    return results

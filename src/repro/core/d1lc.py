"""Top-level (degree+1)-list-coloring driver (Theorem 1, Algorithm 7).

The full algorithm repeatedly runs the per-degree-range pipeline — compute an
almost-clique decomposition of the currently relevant nodes, color the sparse
and uneven ones (Algorithm 8), then the dense ones (Algorithm 9) — and
finishes the (w.h.p. small, shattered) leftovers with a deterministic
fallback.  The paper schedules the pipeline over ``O(log* n)`` degree ranges
``[log^7 x, x]``; with laptop-scale degrees every range collapses to "all
nodes of degree above a small cutoff", so the driver simply iterates the
pipeline on the uncolored nodes above the cutoff until no progress is made
(``max_phase_iterations`` bounds the loop), which preserves both the round
structure and the bandwidth accounting.  See DESIGN.md for the substitution
notes.

Public entry points:

* :func:`solve_d1lc` — general list-coloring,
* :func:`solve_d1c` — (deg+1)-coloring (Corollary 1),
* :func:`solve_delta_plus_one` — (Δ+1)-coloring.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional

import networkx as nx

from repro.congest.network import Network
from repro.core.acd import compute_acd
from repro.core.dense_phase import run_dense_phase
from repro.core.params import ColoringParameters
from repro.core.problem import ColoringInstance, ColorSpace
from repro.core.shattering import deterministic_fallback
from repro.core.sparse_phase import run_sparse_phase
from repro.core.state import ColoringResult, ColoringState
from repro.core.validate import validate_coloring
from repro.metrics.ledger import bits_by_phase, messages_by_phase, rounds_by_phase

Node = Hashable
Color = Hashable


def _build_result(state: ColoringState, fallback_count: int) -> ColoringResult:
    network = state.network
    report = validate_coloring(state.instance, state.colors)
    return ColoringResult(
        coloring=dict(state.colors),
        report=report,
        rounds=network.ledger.rounds,
        rounds_by_phase=rounds_by_phase(network),
        total_bits=network.ledger.total_bits,
        total_messages=network.ledger.total_messages,
        bits_by_phase=bits_by_phase(network),
        messages_by_phase=messages_by_phase(network),
        max_edge_bits=network.ledger.max_edge_bits,
        bandwidth_bits=network.bandwidth_bits,
        fallback_nodes=fallback_count,
        parameters=state.params,
        mode=network.mode,
        fault_stats=network.fault_stats,
    )


def solve_instance(
    instance: ColoringInstance,
    params: Optional[ColoringParameters] = None,
    mode: str = "congest",
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    backend: str = "batch",
    ledger: str = "records",
    faults=None,
    fault_seed: Optional[int] = None,
    shards: int = 1,
    tracer=None,
) -> ColoringResult:
    """Run the full D1LC pipeline on a prepared instance.

    ``backend`` selects the transport engine (``"batch"`` / ``"dict"``) and
    ``ledger`` the accounting depth (``"records"`` / ``"counters"``); both
    choices change performance only, never the reported rounds or bits.

    ``faults`` optionally perturbs delivery with a deterministic
    :class:`~repro.faults.plan.FaultPlan` (or a ``{"drop": 0.01}``-style
    mapping); ``fault_seed`` defaults to the solver seed so a fixed
    (seed, plan) pair reproduces byte-identically on every backend.  The
    resulting :class:`ColoringResult` then carries ``fault_stats`` and its
    validity reports how the coloring held up *under* the faults.

    ``tracer`` optionally attaches a :class:`~repro.obs.tracer.RoundTracer`
    to the run's network.  Tracing is observation-only (no RNG, no state
    mutation; the result is byte-identical either way), and the caller that
    built the tracer owns closing it — ``solve_instance`` never does.
    """
    params = params or ColoringParameters.small()
    if seed is not None:
        params = params.with_seed(seed)
    network = Network(
        instance.graph,
        mode=mode,
        bandwidth_bits=bandwidth_bits,
        backend=backend,
        ledger=ledger,
        faults=faults,
        fault_seed=params.seed if fault_seed is None else fault_seed,
        shards=shards,
        tracer=tracer,
    )
    state = ColoringState(instance, network, params)

    for _iteration in range(max(1, params.max_phase_iterations)):
        active = {
            v for v in state.uncolored_nodes()
            if state.uncolored_degree(v) >= params.low_degree_cutoff
        }
        if not active:
            break
        if network.tracer.enabled:
            # Observation only: pipeline-level progress for the trace.
            network.tracer.note_nodes(len(active), network.number_of_nodes)
        uncolored_before = len(state.uncolored_nodes())
        acd = compute_acd(network, params, active=active)
        run_sparse_phase(state, acd, label="sparse")
        run_dense_phase(state, acd, label="dense")
        if len(state.uncolored_nodes()) >= uncolored_before:
            break  # no progress; hand the rest to the fallback

    fallback_colored = deterministic_fallback(state, label="fallback")
    return _build_result(state, fallback_count=len(fallback_colored))


def solve_d1lc(
    graph: nx.Graph,
    lists: Optional[Mapping[Node, Iterable[Color]]] = None,
    params: Optional[ColoringParameters] = None,
    mode: str = "congest",
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    color_space: Optional[ColorSpace] = None,
    backend: str = "batch",
    ledger: str = "records",
    faults=None,
    fault_seed: Optional[int] = None,
    shards: int = 1,
    tracer=None,
) -> ColoringResult:
    """Solve (degree+1)-list-coloring on ``graph`` (Theorem 1).

    ``lists`` maps every node to its palette (at least ``d_v + 1`` colors); if
    omitted, the numeric D1C palettes ``{0..d_v}`` are used.  ``mode`` selects
    CONGEST (default) or LOCAL bandwidth accounting, ``backend`` the transport
    engine (``"batch"`` / ``"dict"``).
    """
    if lists is None:
        instance = ColoringInstance.d1c(graph)
    else:
        instance = ColoringInstance.d1lc(graph, lists, color_space=color_space)
    return solve_instance(
        instance, params=params, mode=mode, bandwidth_bits=bandwidth_bits,
        seed=seed, backend=backend, ledger=ledger, faults=faults,
        fault_seed=fault_seed, shards=shards, tracer=tracer,
    )


def solve_d1c(
    graph: nx.Graph,
    params: Optional[ColoringParameters] = None,
    mode: str = "congest",
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    backend: str = "batch",
    ledger: str = "records",
    faults=None,
    fault_seed: Optional[int] = None,
    shards: int = 1,
    tracer=None,
) -> ColoringResult:
    """Solve (deg+1)-coloring (Corollary 1)."""
    return solve_instance(
        ColoringInstance.d1c(graph), params=params, mode=mode,
        bandwidth_bits=bandwidth_bits, seed=seed, backend=backend,
        ledger=ledger, faults=faults, fault_seed=fault_seed, shards=shards,
        tracer=tracer,
    )


def solve_delta_plus_one(
    graph: nx.Graph,
    params: Optional[ColoringParameters] = None,
    mode: str = "congest",
    bandwidth_bits: Optional[int] = None,
    seed: Optional[int] = None,
    backend: str = "batch",
    ledger: str = "records",
    faults=None,
    fault_seed: Optional[int] = None,
    shards: int = 1,
    tracer=None,
) -> ColoringResult:
    """Solve (Δ+1)-coloring with the same pipeline."""
    return solve_instance(
        ColoringInstance.delta_plus_one(graph), params=params, mode=mode,
        bandwidth_bits=bandwidth_bits, seed=seed, backend=backend,
        ledger=ledger, faults=faults, fault_seed=fault_seed, shards=shards,
        tracer=tracer,
    )

"""The paper's primary contribution: ultrafast (degree+1)-list-coloring in CONGEST.

The public entry points are:

* :func:`repro.core.d1lc.solve_d1lc` — full D1LC pipeline (Theorem 1),
* :func:`repro.core.d1lc.solve_d1c` — (deg+1)-coloring (Corollary 1),
* :func:`repro.core.d1lc.solve_delta_plus_one` — (Δ+1)-coloring,
* :class:`repro.core.params.ColoringParameters` — every constant of the paper,
* the individual subroutines (MultiTrial, SlackColor, ACD, ...) for users who
  want to compose them differently.
"""

from repro.core.params import ColoringParameters
from repro.core.problem import ColoringInstance, ColorSpace
from repro.core.validate import ColoringReport, validate_coloring
from repro.core.state import ColoringState, ColoringResult
from repro.core.acd import ACDResult, compute_acd
from repro.core.multitrial import multi_trial
from repro.core.slack import generate_slack, try_color, try_random_color
from repro.core.slack_color import slack_color
from repro.core.d1lc import solve_d1lc, solve_d1c, solve_delta_plus_one

__all__ = [
    "ColoringParameters",
    "ColoringInstance",
    "ColorSpace",
    "ColoringReport",
    "validate_coloring",
    "ColoringState",
    "ColoringResult",
    "ACDResult",
    "compute_acd",
    "multi_trial",
    "generate_slack",
    "try_color",
    "try_random_color",
    "slack_color",
    "solve_d1lc",
    "solve_d1c",
    "solve_delta_plus_one",
]

"""``SynchColorTrial`` (Algorithm 14): leader-coordinated color trials in a clique.

Random color trials inside an almost-clique waste most colors to collisions:
nearly everyone is adjacent to nearly everyone, so two members trying the same
color both fail.  ``SynchColorTrial`` removes the collisions *inside* the
clique: the leader permutes its own palette and hands each uncolored inlier a
*distinct* color; members then try their assigned color with the usual
``TryColor`` (conflicts can now only come from outside the clique or from the
assigned color missing from the member's own palette).

Colors travel through the large-color machinery of Appendix D.3 when the
color space is too big to send verbatim.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Set

from repro.core.leader import LeaderInfo
from repro.core.slack import try_color
from repro.core.state import ColoringState

Node = Hashable
Color = Hashable


def synch_color_trial(
    state: ColoringState,
    leaders: Mapping[int, LeaderInfo],
    exclude: Optional[Set[Node]] = None,
    label: str = "synch-trial",
) -> Set[Node]:
    """Run one synchronized color trial in every almost-clique.

    ``exclude`` removes nodes (the put-aside sets) from the distribution.
    Returns the set of nodes colored by the trial.
    """
    network = state.network
    exclude = exclude or set()

    # Round: each leader deals a distinct palette color to every uncolored,
    # non-put-aside inlier adjacent to it.
    assignments: Dict[Node, Color] = {}
    any_assignment = False
    for cid, info in leaders.items():
        leader = info.leader
        recipients = [
            v for v in sorted(info.inliers, key=repr)
            if not state.is_colored(v) and v not in exclude
            and v in network.neighbors(leader)
        ]
        if not recipients:
            continue
        palette = sorted(state.palettes[leader], key=repr)
        rng = state.rng.for_node(leader, "synch-trial", network.rounds_used)
        rng.shuffle(palette)
        for v, color in zip(recipients, palette):
            assignments[v] = color
            any_assignment = True
    if any_assignment:
        # One membership map for the whole trial: the old per-recipient
        # ``_clique_of`` scan rebuilt every clique's member set per lookup —
        # O(cliques) set unions per assignment, the dominant cost of dense
        # phases on graphs with many small cliques.  First-match order is
        # preserved (cliques partition the nodes, so it never matters).
        clique_of: Dict[Node, int] = {}
        for cid, info in leaders.items():
            for member in info.members:
                if member not in clique_of:
                    clique_of[member] = cid
        messages = {}
        for v, color in assignments.items():
            if v not in clique_of:
                raise KeyError(f"node {v!r} belongs to no almost-clique")
            leader = leaders[clique_of[v]].leader
            messages[(leader, v)] = state.hasher.encode_for(v, color, label=f"{label}:deal")
        network.exchange(messages, label=f"{label}:deal")
    else:
        network.charge_silent_round(label=f"{label}:deal")

    # The recipients try the dealt color if it belongs to their own palette.
    # In hashed mode the dealt color arrives as a hash value; the recipient
    # tries the unique palette color matching it (Appendix D.3).
    proposals: Dict[Node, Color] = {}
    for v, color in assignments.items():
        if state.is_colored(v):
            continue
        value = state.hasher.value_for(v, color)
        matching = [c for c in state.palettes[v] if state.hasher.matches(v, c, value)]
        if matching:
            proposals[v] = sorted(matching, key=repr)[0]
    return try_color(state, proposals, label=label)


def _clique_of(leaders: Mapping[int, LeaderInfo], node: Node) -> int:
    """Linear membership scan; kept for ad-hoc callers and tests.

    The trial itself uses a prebuilt node->clique map (same first-match
    semantics) instead of paying this scan per recipient.
    """
    for cid, info in leaders.items():
        if node in info.members:
            return cid
    raise KeyError(f"node {node!r} belongs to no almost-clique")

"""Problem instances: D1LC, D1C and (Δ+1)-coloring, plus the color space model.

The (degree+1)-list-coloring problem (D1LC) hands every node ``v`` a palette
``Ψ(v)`` of at least ``d_v + 1`` colors from a common color space ``C``; a
valid solution assigns every node a color from its own palette such that no
edge is monochromatic.  D1C and (Δ+1)-coloring are the special cases with
numeric palettes ``{0..d_v}`` and ``{0..Δ}``.

The :class:`ColorSpace` records how big ``C`` is, because that is what decides
whether a color can be sent verbatim in one CONGEST message or must go through
the universal-hashing machinery of Appendix D.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional

import networkx as nx

Node = Hashable
Color = Hashable


@dataclass(frozen=True)
class ColorSpace:
    """Description of the color space ``C``.

    ``bits`` is ``ceil(log2 |C|)`` — the cost of writing one color verbatim.
    For huge spaces (``|C| = exp(n^Θ(1))``) only ``bits`` matters; the space is
    never materialised.
    """

    bits: int
    size: Optional[int] = None

    def __post_init__(self):
        if self.bits < 1:
            raise ValueError("a color space needs at least 1 bit")
        if self.size is not None and self.size < 2:
            raise ValueError("a color space needs at least 2 colors")

    @classmethod
    def from_colors(cls, colors: Iterable[Color]) -> "ColorSpace":
        colors = set(colors)
        size = max(2, len(colors))
        numeric = all(isinstance(c, int) for c in colors)
        if numeric and colors:
            span = max(max(colors) + 1, size)
            return cls(bits=max(1, (span - 1).bit_length()), size=span)
        return cls(bits=max(1, (size - 1).bit_length()), size=size)

    @classmethod
    def numeric(cls, size: int) -> "ColorSpace":
        return cls(bits=max(1, (max(2, size) - 1).bit_length()), size=max(2, size))

    @classmethod
    def huge(cls, bits: int) -> "ColorSpace":
        return cls(bits=bits, size=None)

    def fits_in(self, bandwidth_bits: int) -> bool:
        """Can a single color be sent verbatim within one message budget?"""
        return self.bits <= bandwidth_bits


@dataclass
class ColoringInstance:
    """A list-coloring instance: graph + per-node palettes + color space."""

    graph: nx.Graph
    palettes: Dict[Node, FrozenSet[Color]]
    color_space: ColorSpace
    name: str = "d1lc"
    #: Lazy cache of the graph's max degree.  The graph is immutable for the
    #: lifetime of an instance (the same invariant Topology relies on), and
    #: ``max_degree`` sits on per-round hot paths (MultiTrial recomputed a
    #: full networkx degree sweep per call — 80% of a large-n run).
    _max_degree: Optional[int] = field(default=None, init=False, repr=False,
                                       compare=False)

    def __post_init__(self):
        missing = [v for v in self.graph.nodes() if v not in self.palettes]
        if missing:
            raise ValueError(f"palettes missing for nodes: {missing[:5]}")

    # ------------------------------------------------------------- constructors
    @classmethod
    def d1lc(
        cls,
        graph: nx.Graph,
        lists: Mapping[Node, Iterable[Color]],
        color_space: Optional[ColorSpace] = None,
        name: str = "d1lc",
    ) -> "ColoringInstance":
        """A general list-coloring instance; lists must have ``>= d_v + 1`` colors."""
        palettes: Dict[Node, FrozenSet[Color]] = {}
        for v in graph.nodes():
            palette = frozenset(lists[v])
            need = graph.degree(v) + 1
            if len(palette) < need:
                raise ValueError(
                    f"node {v!r} has degree {graph.degree(v)} but only "
                    f"{len(palette)} colors; D1LC requires at least {need}"
                )
            palettes[v] = palette
        if color_space is None:
            all_colors = set().union(*palettes.values()) if palettes else {0, 1}
            color_space = ColorSpace.from_colors(all_colors)
        return cls(graph=graph, palettes=palettes, color_space=color_space, name=name)

    @classmethod
    def d1c(cls, graph: nx.Graph) -> "ColoringInstance":
        """(deg+1)-coloring: node ``v`` may use colors ``{0, ..., d_v}``."""
        palettes = {
            v: frozenset(range(graph.degree(v) + 1)) for v in graph.nodes()
        }
        delta = max((d for _, d in graph.degree()), default=1)
        return cls(
            graph=graph,
            palettes=palettes,
            color_space=ColorSpace.numeric(delta + 1),
            name="d1c",
        )

    @classmethod
    def delta_plus_one(cls, graph: nx.Graph) -> "ColoringInstance":
        """(Δ+1)-coloring: every node may use colors ``{0, ..., Δ}``."""
        delta = max((d for _, d in graph.degree()), default=1)
        palette = frozenset(range(delta + 1))
        palettes = {v: palette for v in graph.nodes()}
        return cls(
            graph=graph,
            palettes=palettes,
            color_space=ColorSpace.numeric(delta + 1),
            name="delta+1",
        )

    # ----------------------------------------------------------------- accessors
    @property
    def nodes(self):
        return list(self.graph.nodes())

    def degree(self, v: Node) -> int:
        return self.graph.degree(v)

    def max_degree(self) -> int:
        delta = self._max_degree
        if delta is None:
            delta = max((d for _, d in self.graph.degree()), default=0)
            self._max_degree = delta
        return delta

    def palette(self, v: Node) -> FrozenSet[Color]:
        return self.palettes[v]

    def slack(self, v: Node) -> int:
        """Initial slack: palette size minus degree (at least 1 in D1LC)."""
        return len(self.palettes[v]) - self.graph.degree(v)

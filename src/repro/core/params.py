"""Every constant of the D1LC algorithm, in one configurable place.

The paper fixes a number of constants (``p_g = 1/10`` for slack generation,
``α = 1/12`` and ``β = 1/3`` inside MultiTrial, ``ℓ = log^{2.1} Δ`` for the
low-/high-slack threshold, the ``log^7`` degree threshold of Theorem 1, the
outlier fractions 1/3 and 1/6, the put-aside sampling probability
``ℓ² / (48 Δ_C)``, ...).  Those constants are tuned for asymptotic statements
about graphs whose minimum degree is ``log^7 n`` — astronomically large.  To
run the *same* algorithms on laptop-sized graphs, every constant is exposed
here with the paper's value as the default and a :meth:`ColoringParameters.small`
preset that scales the thresholds down (documented as a simulation knob in
DESIGN.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class ColoringParameters:
    """Parameters of the D1LC pipeline.

    Attributes
    ----------
    slack_probability:
        ``p_g`` of GenerateSlack (Algorithm 10); paper value 1/10.
    multitrial_alpha, multitrial_beta:
        The ``α = 1/12`` and ``β = 1/3`` of Section 4.1.
    multitrial_nu_exponent:
        The ``c > 3`` in ``ν_λ = max(n^{-c}, 12·exp(−αλ/45))``.
    multitrial_sigma_floor, multitrial_sigma_per_try:
        Lower bound and per-tried-color scaling of the observation window
        ``σ``.  The paper takes ``σ = Θ(β^{-2} α^{-1} log(1/ν)) = Θ(log n)``;
        the floor/per-try form produces the same ``Θ(log n)`` window while
        letting the ``small()`` preset shrink the constant.
    acd_eps:
        ``ε`` of the almost-clique decomposition (ε-friend / ε-buddy edges).
    sparsity_eps:
        ``ε_sp`` used to classify sparse and uneven nodes.
    ell_exponent:
        Exponent in ``ℓ = log^{2.1} Δ`` separating low- and high-slack cliques.
    degree_exponent:
        The ``7`` of the ``log^7 n`` degree threshold of Theorem 1.
    low_degree_cutoff:
        Nodes of degree below this participate in the randomized pipeline but
        are allowed to fall through to the deterministic post-shattering
        fallback (the paper's shattering framework).
    outlier_common_fraction, outlier_degree_fraction:
        The ``max(d_x, |C|)/3`` and ``|C|/6`` outlier fractions (Appendix E.2).
    putaside_constant:
        The 48 in the put-aside sampling probability ``ℓ²/(48 Δ_C)``.
    slack_color_kappa:
        The ``κ ∈ (1/s_min, 1]`` parameter of SlackColor (Algorithm 15).
    slack_color_initial_trials:
        Number of plain random color trials at the top of SlackColor.
    start_slack_fraction:
        ``ε̂`` used when identifying ``V_start`` after slack generation.
    uniform:
        Use the explicit/uniform implementations of Section 5 (pairwise
        independent hashing + averaging samplers) instead of representative
        hash families inside MultiTrial and the ACD buddy test.
    similarity_sigma_cap, similarity_max_scale:
        Simulation-scale caps forwarded to the embedded EstimateSimilarity
        calls (see :class:`repro.sampling.similarity.SimilarityParameters`).
    seed:
        Master seed for all randomness of a solver run.
    """

    # --- slack generation
    slack_probability: float = 0.1
    # --- MultiTrial
    multitrial_alpha: float = 1.0 / 12.0
    multitrial_beta: float = 1.0 / 3.0
    multitrial_nu_exponent: float = 4.0
    multitrial_sigma_floor: int = 96
    multitrial_sigma_per_try: int = 24
    multitrial_lambda_factor: int = 6
    # --- ACD
    acd_eps: float = 0.15
    sparsity_eps: float = 0.1
    # --- dense phase
    ell_exponent: float = 2.1
    degree_exponent: float = 7.0
    outlier_common_fraction: float = 1.0 / 3.0
    outlier_degree_fraction: float = 1.0 / 6.0
    putaside_constant: float = 48.0
    # --- SlackColor
    slack_color_kappa: float = 0.25
    slack_color_initial_trials: int = 2
    # --- phase structure
    low_degree_cutoff: int = 4
    start_slack_fraction: float = 0.05
    max_phase_iterations: int = 8
    # --- implementation selection
    uniform: bool = False
    similarity_sigma_cap: Optional[int] = 1024
    similarity_max_scale: Optional[int] = 4
    # --- randomness
    seed: int = 0

    # ------------------------------------------------------------------ presets
    @classmethod
    def paper(cls, seed: int = 0) -> "ColoringParameters":
        """The paper's constants, with only the σ window capped for tractability.

        The observation window of the embedded EstimateSimilarity calls is
        ``Θ(ε^{-4} log(1/ν))`` in the paper — millions of bits per edge for the
        ε used by the ACD, which a per-edge Python simulation cannot
        materialise.  The cap keeps the window very large (8192 bits, i.e.
        dozens of chunked CONGEST rounds) while every other constant matches
        the paper; use :meth:`small` for routine experimentation.
        """
        return cls(
            multitrial_sigma_floor=324,  # 3 · β^{-2} · α^{-1} with α=1/12, β=1/3
            multitrial_sigma_per_try=48,
            similarity_sigma_cap=8192,
            similarity_max_scale=32,
            low_degree_cutoff=4,
            seed=seed,
        )

    @classmethod
    def small(cls, seed: int = 0, uniform: bool = False) -> "ColoringParameters":
        """Constants scaled for laptop-sized graphs (degrees ~10–200)."""
        return cls(
            acd_eps=0.3,
            sparsity_eps=0.1,
            multitrial_sigma_floor=64,
            multitrial_sigma_per_try=16,
            slack_color_kappa=0.5,
            low_degree_cutoff=3,
            similarity_sigma_cap=512,
            similarity_max_scale=2,
            uniform=uniform,
            seed=seed,
        )

    def with_seed(self, seed: int) -> "ColoringParameters":
        return replace(self, seed=seed)

    # ------------------------------------------------------------ derived values
    def ell(self, delta: int) -> float:
        """``ℓ = log^{ell_exponent} Δ``, the low/high-slack threshold."""
        return math.log2(max(delta, 4)) ** self.ell_exponent

    def degree_threshold(self, upper: float) -> float:
        """``log^{degree_exponent} x``, the lower end of a degree-range phase."""
        return math.log2(max(upper, 4)) ** self.degree_exponent

    def multitrial_nu(self, lam: int, n: int) -> float:
        """``ν_λ = max(n^{-c}, 12·exp(−αλ/45))`` of Section 4.1."""
        n = max(n, 2)
        from_n = n ** (-self.multitrial_nu_exponent)
        from_lam = 12.0 * math.exp(-self.multitrial_alpha * lam / 45.0)
        return min(0.5, max(from_n, from_lam))

    def multitrial_sigma(self, lam: int, tries: int, n: int) -> int:
        """Observation window ``σ_λ`` for MultiTrial.

        ``Θ(β^{-2} α^{-1} log(1/ν))`` in the paper; here a floor plus a
        per-tried-color term, capped at ``λ`` (hash values cannot exceed the
        range).  Both forms are ``Θ(log n)`` for the paper's parameters.
        """
        nu = self.multitrial_nu(lam, n)
        from_nu = int(math.ceil(3.0 * math.log(1.0 / nu)
                                / (self.multitrial_beta ** 2 * self.multitrial_alpha)))
        sigma = max(self.multitrial_sigma_floor,
                    self.multitrial_sigma_per_try * max(1, tries))
        sigma = max(sigma, min(from_nu, 4 * self.multitrial_sigma_floor))
        return max(1, min(sigma, lam))

    def putaside_probability(self, ell: float, clique_degree: int) -> float:
        """``p_s = ℓ² / (48 Δ_C)`` (Algorithm 13), clamped to [0, 1]."""
        if clique_degree <= 0:
            return 0.0
        return min(1.0, ell ** 2 / (self.putaside_constant * clique_degree))

"""Handling colors from huge color spaces (Appendix D.3).

List-coloring palettes may contain colors from a space of size up to
``exp(n^Θ(1))``, i.e. colors that take far more than ``O(log n)`` bits to
write down.  Appendix D.3 resolves this with per-node approximately universal
hash functions: every node ``v`` picks ``h_v : C -> [n^d]`` and broadcasts its
index once; from then on, whenever a neighbour needs to tell ``v`` about a
color ``ψ`` (its tried color, its adopted color, a color it suggests ``v``
try), it sends ``h_v(ψ)`` instead.  Since no two colors relevant to ``v``'s
neighbourhood collide under ``h_v`` w.h.p. (for ``d >= 6``), the hash values
are a faithful stand-in for the colors.

:class:`ColorHasher` packages this: it auto-detects whether colors are small
enough to send verbatim, performs the one-round setup broadcast when hashing
is needed, and exposes encoding helpers that return
:class:`~repro.congest.message.Message` objects with the correct bit charge.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Optional

from repro.congest.bandwidth import index_message
from repro.congest.message import Message
from repro.congest.network import Network
from repro.core.params import ColoringParameters
from repro.core.problem import ColorSpace
from repro.hashing.universal import ApproximatelyUniversalFamily, UniversalHashFunction
from repro.utils.rng import RngStream

Node = Hashable
Color = Hashable

#: Exponent ``d`` of the hash range ``M = n^d``; Appendix D.3 shows ``d >= 6``
#: suffices for no collision to occur in any 2-neighbourhood w.h.p.
_RANGE_EXPONENT = 6


class ColorHasher:
    """Per-node color encoding for CONGEST messages.

    In *direct* mode (small color spaces) colors are sent verbatim.  In
    *hashed* mode (huge color spaces) each node owns a universal hash function
    and neighbours address colors to it by hash value.
    """

    def __init__(
        self,
        network: Network,
        color_space: ColorSpace,
        params: ColoringParameters,
        rng_stream: RngStream,
    ):
        self.network = network
        self.color_space = color_space
        self.params = params
        self._rng_stream = rng_stream
        # Colors are sent verbatim when they comfortably fit in one message.
        self.mode = "direct" if color_space.bits <= network.bandwidth_bits else "hashed"
        self._functions: Dict[Node, UniversalHashFunction] = {}
        if self.mode == "hashed":
            n = max(2, network.number_of_nodes)
            modulus = max(4, n ** _RANGE_EXPONENT)
            self.family = ApproximatelyUniversalFamily(
                color_space_bits=color_space.bits,
                modulus=modulus,
                eps=1.0,
                seed=params.seed,
            )
        else:
            self.family = None

    # ------------------------------------------------------------------- setup
    def setup(self) -> None:
        """Broadcast every node's hash-function index (one round; no-op in direct mode)."""
        if self.mode == "direct":
            return
        indices = {
            v: self.family.sample_index(self._rng_stream.for_node(v, "color-hash"))
            for v in self.network.nodes
        }
        self._functions = {v: self.family.member(indices[v]) for v in self.network.nodes}
        self.network.broadcast(
            {
                v: index_message(indices[v], self.family.family_size, label="color-hash:index")
                for v in self.network.nodes
            },
            label="color-hash:setup",
        )

    # --------------------------------------------------------------- encodings
    def color_bits(self) -> int:
        """Bits charged for one encoded color."""
        if self.mode == "direct":
            return self.color_space.bits
        return self.family.value_bits

    def value_for(self, owner: Node, color: Color) -> Hashable:
        """The representation of ``color`` in messages addressed to ``owner``."""
        if self.mode == "direct":
            return color
        return self._functions[owner](color)

    def encode_for(self, owner: Node, color: Color, label: str = "color") -> Message:
        """Package ``color`` for a message addressed to ``owner``."""
        return Message(content=self.value_for(owner, color), bits=self.color_bits(), label=label)

    def encode_shared(self, color: Color, label: str = "color") -> Optional[Message]:
        """One message reusable for every receiver, or ``None`` in hashed mode.

        In direct mode the encoding is receiver-independent (the color is
        sent verbatim), so a sender announcing one color to its whole
        neighbourhood can build a single frozen :class:`Message` and address
        it to everyone — content, bits and label are exactly what
        :meth:`encode_for` would produce per receiver, and payload sizing is
        identity-memoized per round, so the ledger sees identical charges.
        In hashed mode encodings are per-receiver; callers fall back to
        :meth:`encode_for`.
        """
        if self.mode != "direct":
            return None
        return Message(content=color, bits=self.color_space.bits, label=label)

    def matches(self, owner: Node, color: Color, received_value: Hashable) -> bool:
        """Does ``color`` (known to ``owner``) correspond to a received encoding?"""
        return self.value_for(owner, color) == received_value

    def remove_matching(self, owner: Node, palette: set, received_value: Hashable) -> None:
        """Remove from ``palette`` every color matching ``received_value`` for ``owner``.

        In hashed mode there is at most one such color w.h.p.; removing all
        matches keeps the coloring sound even in the (negligible) collision
        case, at the cost of at most one spuriously discarded color.
        """
        doomed = [c for c in palette if self.matches(owner, c, received_value)]
        for color in doomed:
            palette.discard(color)

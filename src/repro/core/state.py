"""Mutable execution state of the coloring pipeline, shared by all subroutines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set

from repro.congest.network import Network
from repro.core.large_colors import ColorHasher
from repro.core.params import ColoringParameters
from repro.core.problem import ColoringInstance
from repro.core.validate import ColoringReport, validate_coloring
from repro.utils.rng import RngStream

Node = Hashable
Color = Hashable


class ColoringState:
    """Everything the coloring subroutines read and update.

    The state owns the (mutable) palettes, the partial coloring, the per-node
    original palettes (needed for chromatic slack), and the color hasher that
    decides how colors travel over the network.  All communication still goes
    through :attr:`network`, so the ledger keeps measuring rounds and bits.
    """

    def __init__(
        self,
        instance: ColoringInstance,
        network: Network,
        params: Optional[ColoringParameters] = None,
        seed: Optional[int] = None,
    ):
        self.instance = instance
        self.network = network
        self.params = params or ColoringParameters.small()
        self.rng = RngStream(self.params.seed if seed is None else seed)
        self.colors: Dict[Node, Optional[Color]] = {v: None for v in instance.nodes}
        self.palettes: Dict[Node, Set[Color]] = {
            v: set(instance.palettes[v]) for v in instance.nodes
        }
        self.original_palettes = {v: frozenset(instance.palettes[v]) for v in instance.nodes}
        self._uncolored: Set[Node] = set(instance.nodes)
        self.hasher = ColorHasher(network, instance.color_space, self.params, self.rng)
        self.hasher.setup()
        #: chromatic slack κ_v: neighbours colored outside v's original palette
        #: during GenerateSlack (Definition 7); updated by the slack routines.
        self.chromatic_slack: Dict[Node, int] = {v: 0 for v in instance.nodes}

    # --------------------------------------------------------------- basic views
    @property
    def nodes(self) -> List[Node]:
        return self.instance.nodes

    def is_colored(self, v: Node) -> bool:
        return self.colors[v] is not None

    def uncolored_nodes(self) -> Set[Node]:
        return set(self._uncolored)

    def uncolored_degree(self, v: Node) -> int:
        return sum(1 for u in self.network.neighbors(v) if u in self._uncolored)

    def uncolored_neighbors(self, v: Node) -> Set[Node]:
        return {u for u in self.network.neighbors(v) if u in self._uncolored}

    def palette(self, v: Node) -> Set[Color]:
        return self.palettes[v]

    def slack(self, v: Node) -> int:
        """Current slack: available colors minus uncolored neighbours."""
        return len(self.palettes[v]) - self.uncolored_degree(v)

    # ------------------------------------------------------------------ mutation
    def adopt(self, v: Node, color: Color) -> None:
        """Permanently color ``v`` with ``color`` (local bookkeeping only).

        Neighbours learn about the adoption through the broadcast performed by
        the calling subroutine; this method only records the decision.
        """
        if self.colors[v] is not None:
            raise ValueError(f"node {v!r} is already colored")
        if color not in self.palettes[v]:
            raise ValueError(f"color {color!r} is not in the palette of {v!r}")
        self.colors[v] = color
        self._uncolored.discard(v)

    def remove_from_palette(self, v: Node, encoded_value: Hashable) -> None:
        """Remove the color matching ``encoded_value`` from ``v``'s palette."""
        self.hasher.remove_matching(v, self.palettes[v], encoded_value)

    def note_chromatic_slack(self, v: Node, neighbor_color_outside_palette: bool) -> None:
        if neighbor_color_outside_palette:
            self.chromatic_slack[v] += 1

    # ----------------------------------------------------------------- reporting
    def report(self) -> ColoringReport:
        return validate_coloring(self.instance, self.colors)


@dataclass
class ColoringResult:
    """Final outcome of a coloring run: the coloring plus resource accounting."""

    coloring: Dict[Node, Optional[Color]]
    report: ColoringReport
    rounds: int
    rounds_by_phase: Dict[str, int]
    total_bits: int
    max_edge_bits: int
    bandwidth_bits: int
    fallback_nodes: int
    parameters: ColoringParameters
    mode: str
    #: Fault-layer counters (delivered/dropped/corrupted messages, crashed
    #: nodes) when the run was perturbed; ``None`` on a fault-free network.
    fault_stats: Optional[Dict[str, int]] = None
    #: Communication-volume breakdown read off the run's ledger: total
    #: message count plus per-phase bit/message totals (the label prefix
    #: before ``":"``).  Deterministic across backends/ledgers/shards, like
    #: the headline ``total_bits``.
    total_messages: int = 0
    bits_by_phase: Dict[str, int] = field(default_factory=dict)
    messages_by_phase: Dict[str, int] = field(default_factory=dict)

    @property
    def is_valid(self) -> bool:
        return self.report.is_valid

    @property
    def randomized_rounds(self) -> int:
        """Rounds excluding the deterministic post-shattering fallback.

        The paper's round bounds apply to the randomized part; the fallback
        colors the (w.h.p. poly-log sized) leftover components and its cost is
        reported separately.
        """
        fallback = sum(
            count for phase, count in self.rounds_by_phase.items() if phase.startswith("fallback")
        )
        return self.rounds - fallback

    def summary(self) -> Dict[str, object]:
        return {
            "valid": self.is_valid,
            "colored": self.report.colored_nodes,
            "nodes": self.report.total_nodes,
            "rounds": self.rounds,
            "randomized_rounds": self.randomized_rounds,
            "fallback_nodes": self.fallback_nodes,
            "total_bits": self.total_bits,
            "total_messages": self.total_messages,
            "max_edge_bits": self.max_edge_bits,
            "bandwidth_bits": self.bandwidth_bits,
            "mode": self.mode,
        }

"""``MultiTrial`` — trying many colors in one round (Section 4.1, Algorithm 4).

A node with enough slack can color itself w.h.p. by trying ``x`` colors at
once, but naively describing ``x`` arbitrary colors takes ``x·log|C|`` bits.
MultiTrial compresses the exchange with representative hash functions:

1. each participating node ``v`` sets ``λ_v = 6·|Ψ_v|``, picks a random member
   ``h_v`` of the shared representative family for range ``λ_v`` and
   broadcasts ``(λ_v, index)`` — ``O(log n)`` bits;
2. ``v`` picks its ``x`` trial colors uniformly from ``Ψ_v ¬_{h_v} Ψ_v`` (its
   palette colors with a unique low hash value);
3. for every participating neighbour ``u``, ``v`` sends a ``σ_{λ_u}``-bit
   indicator of which low hash values (under ``u``'s function) its trial
   colors occupy;
4. ``v`` adopts any trial color whose own hash value was not flagged by any
   neighbour, and announces the adoption.

Lemma 6: when ``x <= |Ψ_v| / (2|N(v)|)``, a single MultiTrial colors ``v``
with probability at least ``1 − (7/8)^x − 2ν``, even conditioned on the other
nodes' choices.

The uniform implementation (Algorithm 5) replaces the representative family
with an explicit pairwise-independent function chosen to have few collisions
in ``Ψ_v`` plus a representative multiset of hash values to observe; it is
selected with ``ColoringParameters.uniform``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple, Union

from repro.congest.bandwidth import bitstring_message
from repro.congest.message import Message
from repro.core.slack import announce_adoptions
from repro.core.state import ColoringState
from repro.hashing.multiset import RepresentativeMultisetFamily
from repro.hashing.pairwise import PairwiseHashFamily
from repro.hashing.representative import RepresentativeHashFamily
from repro.hashing.setops import unique_part

Node = Hashable
Color = Hashable


def _universe_size(state: ColoringState) -> int:
    space = state.instance.color_space
    if space.size is not None:
        return max(2, space.size)
    return 2 ** min(space.bits, 64)


def _representative_family(state: ColoringState, lam: int) -> RepresentativeHashFamily:
    """The shared family ``H_λ`` all nodes agree on for range ``λ``."""
    params = state.params
    n = max(2, state.network.number_of_nodes)
    nu = params.multitrial_nu(lam, n)
    return RepresentativeHashFamily(
        universe_label="multitrial",
        universe_size=_universe_size(state),
        lam=lam,
        alpha=params.multitrial_alpha,
        beta=params.multitrial_beta,
        nu=nu,
        seed=params.seed,
    )


def _pairwise_family(state: ColoringState, lam: int) -> PairwiseHashFamily:
    return PairwiseHashFamily(
        universe_label="multitrial-uniform",
        universe_size=_universe_size(state),
        lam=lam,
        seed=state.params.seed,
    )


def _normalize_tries(
    tries: Union[int, Mapping[Node, int]], participants: Iterable[Node]
) -> Dict[Node, int]:
    if isinstance(tries, int):
        return {v: tries for v in participants}
    return {v: int(tries.get(v, 0)) for v in participants}


def multi_trial(
    state: ColoringState,
    tries: Union[int, Mapping[Node, int]],
    participants: Optional[Iterable[Node]] = None,
    label: str = "multitrial",
    cap_tries_by_slack: bool = True,
) -> Set[Node]:
    """Run one MultiTrial step for ``participants`` and return the newly colored nodes.

    ``tries`` is either a single ``x`` for everyone or a per-node mapping.
    When ``cap_tries_by_slack`` is set, each node's ``x`` is clamped to
    ``|Ψ_v| / (2·(uncolored degree))`` — the hypothesis of Lemma 6 — so that
    callers can pass the schedule of Algorithm 15 verbatim.
    """
    if participants is None:
        participants = state.uncolored_nodes()
    participants = [
        v for v in participants if not state.is_colored(v) and state.palettes[v]
    ]
    tries_by_node = _normalize_tries(tries, participants)
    participants = [v for v in participants if tries_by_node.get(v, 0) >= 1]
    if not participants:
        for suffix in ("setup", "indicator", "adopt"):
            state.network.charge_silent_round(label=f"{label}:{suffix}")
        return set()

    if cap_tries_by_slack:
        # Lemma 6 requires x <= |Ψ_v| / (2 |N(v)|) where N(v) is the set of
        # neighbours that may try colors concurrently, i.e. the participating
        # uncolored neighbours of this invocation.
        participating_set = set(participants)
        for v in participants:
            competing = sum(
                1 for u in state.network.neighbors(v) if u in participating_set
            )
            ceiling = max(1, len(state.palettes[v]) // max(1, 2 * competing))
            tries_by_node[v] = max(1, min(tries_by_node[v], ceiling))

    if state.params.uniform:
        return _multi_trial_uniform(state, tries_by_node, participants, label)
    return _multi_trial_representative(state, tries_by_node, participants, label)


# --------------------------------------------------------------------------- #
# Representative-hash-function implementation (Algorithm 4)
# --------------------------------------------------------------------------- #

def _multi_trial_representative(
    state: ColoringState,
    tries_by_node: Dict[Node, int],
    participants: List[Node],
    label: str,
) -> Set[Node]:
    params = state.params
    n = max(2, state.network.number_of_nodes)
    participating = set(participants)

    # Step 1: pick λ_v, a hash function index, and broadcast both.
    lam_of: Dict[Node, int] = {}
    hash_of: Dict[Node, object] = {}
    sigma_of: Dict[Node, int] = {}
    setup_payload: Dict[Node, Message] = {}
    for v in participants:
        lam = max(2, params.multitrial_lambda_factor * len(state.palettes[v]))
        family = _representative_family(state, lam)
        index = family.sample_index(state.rng.for_node(v, "multitrial", state.network.rounds_used))
        lam_of[v] = lam
        hash_of[v] = family.member(index)
        sigma_of[v] = params.multitrial_sigma(lam, tries_by_node[v], n)
        lam_bits = max(1, (params.multitrial_lambda_factor * (state.instance.max_degree() + 1)).bit_length())
        setup_payload[v] = Message(
            content=(lam, index),
            bits=lam_bits + family.index_bits,
            label=f"{label}:setup",
        )
    state.network.broadcast_chunked(setup_payload, label=f"{label}:setup")

    # Step 2: each node samples its trial colors from Ψ_v ¬_{h_v} Ψ_v.
    trial_colors: Dict[Node, List[Color]] = {}
    for v in participants:
        palette = state.palettes[v]
        candidates = sorted(
            unique_part(hash_of[v], palette, palette, sigma_of[v]), key=repr
        )
        rng = state.rng.for_node(v, "multitrial-colors", state.network.rounds_used)
        x = min(tries_by_node[v], len(candidates))
        trial_colors[v] = rng.sample(candidates, x) if x > 0 else []

    # Step 3: σ-bit indicators between participating neighbours.
    indicator_messages = {}
    for v in participants:
        for u in state.network.neighbors(v):
            if u not in participating:
                continue
            sigma_u = sigma_of[u]
            hit = {hash_of[u](psi) for psi in trial_colors[v]}
            bits = [1 if value in hit else 0 for value in range(1, sigma_u + 1)]
            indicator_messages[(v, u)] = bitstring_message(bits, label=f"{label}:indicator")
    delivered = state.network.exchange_chunked(indicator_messages, label=f"{label}:indicator")

    blocked: Dict[Node, Set[int]] = {v: set() for v in participants}
    for (sender, receiver), payload in delivered.items():
        values = {i + 1 for i, bit in enumerate(payload) if bit}
        blocked[receiver] |= values

    # Step 4: adopt any unblocked trial color, then announce adoptions.
    adopted: Dict[Node, Color] = {}
    for v in participants:
        for psi in trial_colors[v]:
            if hash_of[v](psi) not in blocked[v]:
                adopted[v] = psi
                state.adopt(v, psi)
                break
    announce_adoptions(state, adopted, label=label)
    return set(adopted)


# --------------------------------------------------------------------------- #
# Uniform implementation (Algorithm 5): pairwise hashing + averaging samplers
# --------------------------------------------------------------------------- #

def _multi_trial_uniform(
    state: ColoringState,
    tries_by_node: Dict[Node, int],
    participants: List[Node],
    label: str,
) -> Set[Node]:
    params = state.params
    bandwidth = state.network.bandwidth_bits
    participating = set(participants)

    lam_of: Dict[Node, int] = {}
    hash_of: Dict[Node, object] = {}
    sample_of: Dict[Node, List[int]] = {}
    setup_payload: Dict[Node, Message] = {}
    for v in participants:
        palette = state.palettes[v]
        lam = max(2, params.multitrial_lambda_factor * len(palette))
        family = _pairwise_family(state, lam)
        rng = state.rng.for_node(v, "multitrial-uniform", state.network.rounds_used)
        # Step 1: a hash function with at most λ_v/3 collisions inside Ψ_v.
        hash_index = family.find_low_collision_index(palette, max(1, lam // 3), rng)
        h = family.member(hash_index)
        # Step 2: a representative multiset of σ_v observation points in [λ_v].
        sigma = min(max(bandwidth, params.multitrial_sigma_floor), lam)
        sigma = max(sigma, params.multitrial_sigma_per_try * tries_by_node[v])
        sigma = min(sigma, lam)
        multisets = RepresentativeMultisetFamily(
            domain_size=lam, count=sigma, seed=params.seed
        )
        multiset_index = multisets.sample_index(rng)
        sample = multisets.member(multiset_index).points()
        lam_of[v], hash_of[v], sample_of[v] = lam, h, sample
        lam_bits = max(1, (params.multitrial_lambda_factor * (state.instance.max_degree() + 1)).bit_length())
        setup_payload[v] = Message(
            content=(lam, hash_index, multiset_index),
            bits=lam_bits + family.index_bits + multisets.index_bits,
            label=f"{label}:setup",
        )
    state.network.broadcast_chunked(setup_payload, label=f"{label}:setup")

    # Step 3: trial colors are palette colors whose hash lies in the sampled multiset.
    trial_colors: Dict[Node, List[Color]] = {}
    for v in participants:
        sample_set = set(sample_of[v])
        candidates = sorted(
            (c for c in state.palettes[v] if hash_of[v](c) in sample_set), key=repr
        )
        rng = state.rng.for_node(v, "multitrial-uniform-colors", state.network.rounds_used)
        x = min(tries_by_node[v], len(candidates))
        trial_colors[v] = rng.sample(candidates, x) if x > 0 else []

    # Step 4: indicators indexed by the *positions* of the receiver's multiset.
    indicator_messages = {}
    for v in participants:
        for u in state.network.neighbors(v):
            if u not in participating:
                continue
            tried_hashes = {hash_of[u](psi) for psi in trial_colors[v]}
            bits = [1 if point in tried_hashes else 0 for point in sample_of[u]]
            indicator_messages[(v, u)] = bitstring_message(bits, label=f"{label}:indicator")
    delivered = state.network.exchange_chunked(indicator_messages, label=f"{label}:indicator")

    blocked_positions: Dict[Node, Set[int]] = {v: set() for v in participants}
    for (sender, receiver), payload in delivered.items():
        positions = {i for i, bit in enumerate(payload) if bit}
        blocked_positions[receiver] |= positions

    adopted: Dict[Node, Color] = {}
    for v in participants:
        sample = sample_of[v]
        for psi in trial_colors[v]:
            value = hash_of[v](psi)
            positions = {i for i, point in enumerate(sample) if point == value}
            if positions & blocked_positions[v]:
                continue
            adopted[v] = psi
            state.adopt(v, psi)
            break
    announce_adoptions(state, adopted, label=label)
    return set(adopted)

"""Deterministic post-shattering fallback.

The randomized pipeline colors every node w.h.p. when degrees are large, but
nodes of degree ``o(log n)`` may fail; the shattering framework [BEPS16]
guarantees that the failed nodes form components of poly-logarithmic size,
which are then finished off deterministically.

The paper finishes with a network decomposition plus the deterministic
algorithm of [GK21] (and a color-space reduction for huge color spaces,
Lemma 17).  This reproduction substitutes a simpler deterministic finisher
with the same interface guarantees (documented in DESIGN.md): the uncolored
nodes repeatedly run priority color trials ordered by identifier, so in every
round the locally-highest-priority uncolored node of each component succeeds.
The round cost is bounded by the component size — poly-logarithmic whenever
shattering applies — and is reported separately from the randomized rounds.
Large color spaces still go through the per-node hashing of Appendix D.3, so
no message exceeds the bandwidth.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Optional, Set

from repro.core.slack import try_color
from repro.core.state import ColoringState

Node = Hashable
Color = Hashable


def deterministic_fallback(
    state: ColoringState,
    nodes: Optional[Iterable[Node]] = None,
    label: str = "fallback",
    max_iterations: Optional[int] = None,
) -> Set[Node]:
    """Color every remaining uncolored node deterministically.

    Returns the set of nodes colored by the fallback.  Completeness is
    guaranteed: a D1LC palette always retains at least one free color while
    any neighbour is uncolored, and the identifier-based priority makes at
    least one node of every uncolored component succeed per iteration.
    """
    targets = set(nodes) if nodes is not None else state.uncolored_nodes()
    targets = {v for v in targets if not state.is_colored(v)}
    if not targets:
        return set()
    if max_iterations is None:
        max_iterations = 2 * len(targets) + 4

    priority = {v: rank for rank, v in enumerate(sorted(targets, key=repr))}
    colored: Set[Node] = set()
    for _ in range(max_iterations):
        remaining = [v for v in targets if not state.is_colored(v)]
        if not remaining:
            break
        proposals: Dict[Node, Color] = {}
        for v in remaining:
            palette = state.palettes[v]
            if not palette:
                continue
            proposals[v] = sorted(palette, key=repr)[0]
        newly = try_color(state, proposals, priority=priority, label=label)
        colored |= newly
        if not newly:
            break
    return colored

"""Validation of (partial) colorings against a list-coloring instance."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.core.problem import ColoringInstance

Node = Hashable
Color = Hashable


@dataclass
class ColoringReport:
    """Outcome of validating a (possibly partial) coloring."""

    total_nodes: int
    colored_nodes: int
    uncolored: List[Node] = field(default_factory=list)
    conflicts: List[Tuple[Node, Node]] = field(default_factory=list)
    palette_violations: List[Node] = field(default_factory=list)

    @property
    def is_complete(self) -> bool:
        return not self.uncolored

    @property
    def is_proper(self) -> bool:
        """No monochromatic edge and no palette violation (may be partial)."""
        return not self.conflicts and not self.palette_violations

    @property
    def is_valid(self) -> bool:
        """Complete and proper — what Theorem 1 promises w.h.p."""
        return self.is_complete and self.is_proper

    def summary(self) -> str:
        return (
            f"colored {self.colored_nodes}/{self.total_nodes}, "
            f"{len(self.conflicts)} conflicts, "
            f"{len(self.palette_violations)} palette violations"
        )


def validate_coloring(
    instance: ColoringInstance,
    coloring: Mapping[Node, Optional[Color]],
) -> ColoringReport:
    """Check a coloring for completeness, properness and palette membership."""
    uncolored: List[Node] = []
    palette_violations: List[Node] = []
    for v in instance.graph.nodes():
        color = coloring.get(v)
        if color is None:
            uncolored.append(v)
            continue
        if color not in instance.palettes[v]:
            palette_violations.append(v)
    conflicts: List[Tuple[Node, Node]] = []
    for u, v in instance.graph.edges():
        cu, cv = coloring.get(u), coloring.get(v)
        if cu is not None and cu == cv:
            conflicts.append((u, v))
    colored = instance.graph.number_of_nodes() - len(uncolored)
    return ColoringReport(
        total_nodes=instance.graph.number_of_nodes(),
        colored_nodes=colored,
        uncolored=uncolored,
        conflicts=conflicts,
        palette_violations=palette_violations,
    )


def assert_valid_coloring(
    instance: ColoringInstance,
    coloring: Mapping[Node, Optional[Color]],
) -> ColoringReport:
    """Raise ``AssertionError`` with a readable message unless the coloring is valid."""
    report = validate_coloring(instance, coloring)
    if not report.is_valid:
        raise AssertionError(f"invalid coloring: {report.summary()}")
    return report

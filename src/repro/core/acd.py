"""Almost-clique decomposition in CONGEST (Section 4.2, Definition 6, Algorithm 6).

An almost-clique decomposition (ACD) partitions the vertices into *sparse*
nodes, *uneven* nodes (many much-higher-degree neighbours), and *dense* nodes
grouped into almost-cliques — highly connected, low-diameter clusters whose
members have similar degrees.  The decomposition drives the dense-node phase
of the D1LC algorithm.

The CONGEST implementation follows the paper:

1. nodes announce whether they participate and their (induced) degree;
2. every edge whose endpoints have ``ε``-balanced degrees runs a *buddy test*
   that distinguishes ``ε``-friend edges (endpoints sharing most of their
   neighbourhoods, Definition 2) from edges far from being friends — either
   via ``EstimateSimilarity`` (Section 4.2) or via the uniform Algorithm 6
   (pairwise hashing + representative multisets + an error-correcting code);
3. nodes with mostly-friend neighbourhoods are *dense*; almost-cliques are the
   connected components of dense nodes under friend edges (diameter ≤ 2, so
   identifying components takes O(1) rounds of min-ID propagation);
4. non-dense nodes are *uneven* if their unevenness (Definition 5) is large,
   otherwise *sparse*.

The whole procedure costs ``O(1)`` rounds for constant ``ε`` — the statement
benchmarked by Experiment E8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from repro.congest.bandwidth import bitstring_message, index_message, integer_message
from repro.congest.message import Message
from repro.congest.network import Network
from repro.core.params import ColoringParameters
from repro.hashing.ecc import ErrorCorrectingCode, hamming_distance
from repro.hashing.multiset import RepresentativeMultisetFamily
from repro.hashing.pairwise import PairwiseHashFamily
from repro.sampling.similarity import SimilarityParameters, estimate_similarity_on_edges
from repro.utils.rng import RngStream

Node = Hashable
Edge = Tuple[Node, Node]


@dataclass
class ACDResult:
    """A (deg+1) almost-clique decomposition (Definition 6)."""

    sparse_nodes: Set[Node]
    uneven_nodes: Set[Node]
    cliques: Dict[int, Set[Node]]
    clique_of: Dict[Node, int]
    friend_edges: Set[Edge] = field(default_factory=set, repr=False)
    rounds_used: int = 0

    @property
    def dense_nodes(self) -> Set[Node]:
        return set(self.clique_of)

    def clique_members(self, node: Node) -> Set[Node]:
        return self.cliques[self.clique_of[node]]

    def partition_summary(self) -> Dict[str, int]:
        return {
            "sparse": len(self.sparse_nodes),
            "uneven": len(self.uneven_nodes),
            "dense": len(self.dense_nodes),
            "cliques": len(self.cliques),
        }


# --------------------------------------------------------------------------- #
# Buddy tests
# --------------------------------------------------------------------------- #

def _similarity_buddy_edges(
    network: Network,
    neighborhoods: Dict[Node, Set[Node]],
    degrees: Dict[Node, int],
    candidate_edges: List[Edge],
    params: ColoringParameters,
    seed: int,
) -> Set[Edge]:
    """Buddy test via ``EstimateSimilarity`` (the Section 4.2 construction)."""
    eps = params.acd_eps
    # The buddy threshold needs the per-edge estimate to be accurate to a small
    # fraction of min(d_u, d_v); with the simulation-scale σ cap this requires a
    # larger observation window than the default similarity preset, so the cap
    # is raised here (still Θ(log n) up to the ε-dependent constant, i.e. the
    # ACD stays O(1) rounds for constant ε as in Section 4.2).
    sigma_cap = params.similarity_sigma_cap
    if sigma_cap is not None:
        sigma_cap = max(sigma_cap, 4096)
    sim_params = SimilarityParameters(
        eps=eps / 2.0,
        nu=0.1,
        max_scale=params.similarity_max_scale,
        sigma_cap=sigma_cap,
        seed=seed,
    )
    if network.backend == "columnar" and getattr(
        network.transport, "supports_columnar_sweep", False
    ):
        # The columnar backend runs this sweep — the dominant compute of
        # every large run — as flat uint64 kernels, byte-identical to the
        # scalar path below (fault-wrapped transports rename the backend to
        # "columnar+faults" and therefore keep the reference path).  It
        # declines (returning None, before any ledger effect) outside its
        # exactly-reproducible parameter regime.
        from repro.congest.columnar.sweep import columnar_buddy_edges

        buddies = columnar_buddy_edges(
            network, neighborhoods, degrees, candidate_edges,
            params=sim_params, seed=seed, label="acd:buddy",
            threshold_coeff=1.0 - 1.5 * eps,
        )
        if buddies is not None:
            return buddies
    results = estimate_similarity_on_edges(
        network, neighborhoods, edges=candidate_edges, params=sim_params,
        seed=seed, label="acd:buddy",
    )
    buddies: Set[Edge] = set()
    for (u, v), result in results.items():
        threshold = (1.0 - 1.5 * eps) * min(degrees[u], degrees[v])
        if result.estimate >= threshold:
            buddies.add((u, v))
    return buddies


def _uniform_buddy_edges(
    network: Network,
    neighborhoods: Dict[Node, Set[Node]],
    degrees: Dict[Node, int],
    candidate_edges: List[Edge],
    params: ColoringParameters,
    seed: int,
) -> Set[Edge]:
    """Buddy test via the uniform Algorithm 6 (no representative families).

    One endpoint picks an (almost) pairwise-independent hash function with few
    collisions among its own neighbours and announces it; both endpoints then
    sample the same representative multiset of hash values, mark which sampled
    values are hit by exactly one of their neighbours, and compare.  Sharing
    few marked values rules the edge out immediately.  Sharing many could also
    be caused by hash collisions, so the endpoints additionally compare random
    positions of the error-corrected encodings of the unique preimages — the
    ECC guarantees that genuinely different neighbours disagree on a constant
    fraction of positions.
    """
    eps = params.acd_eps
    stream = RngStream(seed)
    bandwidth = network.bandwidth_bits
    id_bits = max(8, (max(2, network.number_of_nodes) - 1).bit_length())
    code = ErrorCorrectingCode(word_bits=id_bits, expansion=3, seed=params.seed)

    # Round A: the lexicographically larger endpoint picks the hash function
    # (few collisions among its own neighbours) and sends (λ, index).
    setup_messages = {}
    edge_state: Dict[Edge, Tuple] = {}
    for (u, v) in candidate_edges:
        chooser, other = (v, u) if repr(v) >= repr(u) else (u, v)
        lam = max(2, int(math.ceil(6 * max(degrees[u], degrees[v]) / eps)))
        family = PairwiseHashFamily(
            universe_label="acd-uniform",
            universe_size=max(2, network.number_of_nodes),
            lam=lam,
            seed=params.seed,
        )
        rng = stream.for_edge(u, v, "uniform-buddy")
        max_collisions = max(1, int(eps * degrees[chooser] / 3.0))
        hash_index = family.find_low_collision_index(
            neighborhoods[chooser], max_collisions, rng
        )
        # σ = Θ(log n) observation points; a few bandwidth-widths (delivered
        # over chunked rounds) keep enough of the chooser's neighbourhood in
        # view for the marked-position comparison to have low variance.
        sigma = min(max(4 * bandwidth, 256), lam)
        multisets = RepresentativeMultisetFamily(domain_size=lam, count=sigma, seed=params.seed)
        multiset_index = multisets.sample_index(rng)
        sample = multisets.member(multiset_index).points()
        edge_state[(u, v)] = (family.member(hash_index), sample, chooser)
        setup_messages[(chooser, other)] = Message(
            content=(lam, hash_index, multiset_index),
            bits=max(1, lam.bit_length()) + family.index_bits + multisets.index_bits,
            label="acd:uniform-setup",
        )
    if setup_messages:
        network.exchange(setup_messages, label="acd:uniform-setup")
    else:
        network.charge_silent_round(label="acd:uniform-setup")

    # Round B: both endpoints send, for each sampled hash value, whether it is
    # hit by exactly one of their neighbours.
    def unique_marks(node: Node, h, sample: List[int]) -> Tuple[List[int], Dict[int, Node]]:
        buckets: Dict[int, List[Node]] = {}
        for w in neighborhoods[node]:
            buckets.setdefault(h(w), []).append(w)
        marks, owners = [], {}
        for position, value in enumerate(sample):
            bucket = buckets.get(value, [])
            if len(bucket) == 1:
                marks.append(1)
                owners[position] = bucket[0]
            else:
                marks.append(0)
        return marks, owners

    mark_messages = {}
    mark_data: Dict[Tuple[Node, Edge], Tuple[List[int], Dict[int, Node]]] = {}
    for (u, v), (h, sample, _chooser) in edge_state.items():
        for side, peer in ((u, v), (v, u)):
            marks, owners = unique_marks(side, h, sample)
            mark_data[(side, (u, v))] = (marks, owners)
            mark_messages[(side, peer)] = bitstring_message(marks, label="acd:uniform-marks")
    network.exchange_chunked(mark_messages, label="acd:uniform-marks")

    # Round C: positions marked by both endpoints are compared through the ECC.
    #
    # Algorithm 6 rejects the edge when too few sampled positions are marked
    # by both endpoints.  With λ = 6·max(d_u, d_v)/ε only a ~ε/6 fraction of
    # uniformly sampled hash values are hit by a neighbourhood at all, so the
    # workable form of that test normalises by the positions the *chooser*
    # marked: on an ε-friend edge almost all of them are also uniquely hit by
    # the other endpoint, while on a far-from-friend edge only a small
    # fraction are.  The exchanged messages are exactly those of Algorithm 6;
    # only the acceptance threshold is expressed relative to the chooser's
    # marks (a simulation-scale normalisation recorded in DESIGN.md).
    buddies: Set[Edge] = set()
    ecc_messages = {}
    ecc_state: Dict[Edge, Tuple[List[int], List[int], List[int]]] = {}
    for (u, v), (h, sample, chooser) in edge_state.items():
        marks_u, owners_u = mark_data[(u, (u, v))]
        marks_v, owners_v = mark_data[(v, (u, v))]
        chooser_marks = marks_u if chooser == u else marks_v
        marked_positions = [i for i in range(len(sample)) if chooser_marks[i]]
        common = [i for i in range(len(sample)) if marks_u[i] and marks_v[i]]
        if len(marked_positions) < 8:
            continue  # not enough observations to decide; treat as non-friend
        if len(common) <= (1.0 - 2.0 * eps) * len(marked_positions):
            continue  # too few shared unique hashes: not a friend edge
        # Concatenate the error-corrected encodings of the shared preimages and
        # compare a representative sample of positions.
        word_u: List[int] = []
        word_v: List[int] = []
        for i in common:
            word_u.extend(code.encode(owners_u[i]))
            word_v.extend(code.encode(owners_v[i]))
        length = len(word_u)
        sigma_prime = min(max(bandwidth, 64), length)
        sampler = RepresentativeMultisetFamily(domain_size=length, count=sigma_prime, seed=params.seed)
        rng = stream.for_edge(u, v, "uniform-buddy-ecc")
        positions = [p - 1 for p in sampler.member(sampler.sample_index(rng)).points()]
        bits_u = [word_u[p] for p in positions]
        bits_v = [word_v[p] for p in positions]
        ecc_state[(u, v)] = (bits_u, bits_v, positions)
        ecc_messages[(u, v)] = bitstring_message(bits_u, label="acd:uniform-ecc")
        ecc_messages[(v, u)] = bitstring_message(bits_v, label="acd:uniform-ecc")
    network.exchange_chunked(ecc_messages, label="acd:uniform-ecc")
    for (u, v), (bits_u, bits_v, positions) in ecc_state.items():
        disagreements = hamming_distance(bits_u, bits_v)
        if disagreements < eps * len(positions):
            buddies.add((u, v))
    return buddies


# --------------------------------------------------------------------------- #
# The decomposition itself
# --------------------------------------------------------------------------- #

def _unevenness(degrees: Dict[Node, int], neighbors: Dict[Node, Set[Node]], v: Node) -> float:
    dv = degrees[v]
    return sum(
        max(0, degrees[u] - dv) / (degrees[u] + 1) for u in neighbors[v]
    )


def compute_acd(
    network: Network,
    params: Optional[ColoringParameters] = None,
    active: Optional[Iterable[Node]] = None,
    seed: Optional[int] = None,
) -> ACDResult:
    """Compute a (deg+1) almost-clique decomposition of the active subgraph.

    ``active`` restricts the decomposition to an induced subgraph (the D1LC
    driver passes the uncolored nodes of the current degree range); degrees
    and neighbourhoods are taken within that subgraph, as the paper's phases
    require.  Runs in ``O(1)`` CONGEST rounds for constant ``ε``.
    """
    params = params or ColoringParameters.small()
    seed = params.seed if seed is None else seed
    rounds_before = network.rounds_used

    active_set = set(active) if active is not None else set(network.nodes)

    # Round 1: participation + induced degree announcement.  The simulator
    # computes neighborhoods/degrees from the graph directly, so the inboxes
    # of both broadcasts are discarded — broadcast_discard charges them
    # identically while letting the columnar backend skip the inbox fill.
    network.broadcast_discard(
        {v: Message(content=True, bits=1, label="acd:participation") for v in active_set},
        label="acd:participation",
    )
    neighborhoods: Dict[Node, Set[Node]] = {
        v: {u for u in network.neighbors(v) if u in active_set} for v in active_set
    }
    degrees = {v: len(neighborhoods[v]) for v in active_set}
    network.broadcast_discard(
        {
            v: integer_message(degrees[v], max(2, network.number_of_nodes), label="acd:degree")
            for v in active_set
        },
        label="acd:degrees",
    )

    eps = params.acd_eps
    candidate_edges: List[Edge] = []
    for u, v in network.graph.edges():
        if u not in active_set or v not in active_set:
            continue
        du, dv = degrees[u], degrees[v]
        if min(du, dv) == 0:
            continue
        if min(du, dv) >= (1.0 - eps) * max(du, dv):
            candidate_edges.append((u, v))

    if params.uniform:
        friend_edges = _uniform_buddy_edges(
            network, neighborhoods, degrees, candidate_edges, params, seed
        )
    else:
        friend_edges = _similarity_buddy_edges(
            network, neighborhoods, degrees, candidate_edges, params, seed
        )
    friends_of: Dict[Node, Set[Node]] = {v: set() for v in active_set}
    for (u, v) in friend_edges:
        friends_of[u].add(v)
        friends_of[v].add(u)

    # Dense nodes: most of their neighbourhood are friends.
    dense: Set[Node] = {
        v for v in active_set
        if degrees[v] > 0 and len(friends_of[v]) >= (1.0 - 2.0 * eps) * degrees[v]
    }

    # Almost-cliques: connected components of dense nodes under friend edges.
    # Each component has diameter at most 2, so the distributed version is two
    # rounds of min-identifier flooding over friend edges; the simulator
    # computes the same components centrally and charges those rounds.
    clique_of: Dict[Node, int] = {}
    cliques: Dict[int, Set[Node]] = {}
    visited: Set[Node] = set()
    next_id = 0
    for v in sorted(dense, key=repr):
        if v in visited:
            continue
        component = {v}
        frontier = [v]
        while frontier:
            current = frontier.pop()
            for u in friends_of[current]:
                if u in dense and u not in component:
                    component.add(u)
                    frontier.append(u)
        visited |= component
        cliques[next_id] = component
        for u in component:
            clique_of[u] = next_id
        next_id += 1
    network.charge_silent_round(label="acd:clique-id")
    network.charge_silent_round(label="acd:clique-id")

    # Post-filter cliques against the Definition 6 degree/membership bounds;
    # evicted nodes (and members of disbanded tiny cliques) fall back to the
    # sparse / uneven classes.
    evicted: Set[Node] = set()
    for clique_id in list(cliques):
        members = cliques[clique_id]
        changed = True
        while changed and members:
            changed = False
            size = len(members)
            for v in sorted(members, key=repr):
                in_clique = len(neighborhoods[v] & members)
                too_big = degrees[v] > (1.0 + 2 * eps) * size
                too_detached = (1.0 + 2 * eps) * max(in_clique, 1) < size
                if too_big or too_detached:
                    members.discard(v)
                    evicted.add(v)
                    clique_of.pop(v, None)
                    changed = True
        if len(members) <= 2:
            for v in members:
                evicted.add(v)
                clique_of.pop(v, None)
            del cliques[clique_id]

    uneven: Set[Node] = set()
    sparse: Set[Node] = set()
    for v in active_set:
        if v in clique_of:
            continue
        if degrees[v] > 0 and _unevenness(degrees, neighborhoods, v) >= params.sparsity_eps * degrees[v]:
            uneven.add(v)
        else:
            sparse.add(v)

    return ACDResult(
        sparse_nodes=sparse,
        uneven_nodes=uneven,
        cliques=cliques,
        clique_of=clique_of,
        friend_edges=friend_edges,
        rounds_used=network.rounds_used - rounds_before,
    )

"""Coloring the dense nodes (Algorithm 9).

Dense nodes live in almost-cliques, where random color trials mostly collide;
the algorithm therefore coordinates them through a leader:

1. pick a leader, inliers and outliers per clique (Appendix D.1);
2. ``GenerateSlack`` among the dense nodes;
3. low-slack cliques sample a put-aside set ``P_C`` (Algorithm 13) whose
   members wait until the very end, handing everyone else temporary slack;
4. ``SlackColor`` the outliers (their neighbourhoods are irregular enough that
   they behave like sparse nodes);
5. ``SynchColorTrial``: the leader deals distinct palette colors to the
   uncolored inliers, eliminating in-clique collisions;
6. ``SlackColor`` the remaining dense nodes (now slack-rich thanks to the
   put-aside sets and the synchronized trial);
7. the leaders collect the put-aside palettes and color ``P_C`` (Appendix D.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Set

from repro.core.acd import ACDResult
from repro.core.leader import LeaderInfo, select_leaders
from repro.core.putaside import color_put_aside, compute_put_aside
from repro.core.slack import generate_slack
from repro.core.slack_color import slack_color
from repro.core.state import ColoringState
from repro.core.synch_trial import synch_color_trial

Node = Hashable


@dataclass
class DensePhaseOutcome:
    """Bookkeeping of one dense phase."""

    colored: Set[Node] = field(default_factory=set)
    leftover: Set[Node] = field(default_factory=set)
    leaders: Dict[int, LeaderInfo] = field(default_factory=dict)
    put_aside: Dict[int, Set[Node]] = field(default_factory=dict)


def run_dense_phase(
    state: ColoringState,
    acd: ACDResult,
    label: str = "dense",
) -> DensePhaseOutcome:
    """Color the dense nodes of the current ACD (Algorithm 9)."""
    outcome = DensePhaseOutcome()
    params = state.params
    dense_nodes = {v for v in acd.dense_nodes if not state.is_colored(v)}
    if not dense_nodes:
        return outcome

    # Step 1: leaders, inliers, outliers.
    outcome.leaders = select_leaders(state, acd, label=f"{label}:leader")

    # Step 2: slack generation among dense nodes.
    colored_now = generate_slack(state, dense_nodes, label=f"{label}:slack")
    outcome.colored |= colored_now

    # Step 3: put-aside sets in low-slack almost-cliques.
    outcome.put_aside = compute_put_aside(state, outcome.leaders, label=f"{label}:put-aside")
    put_aside_nodes: Set[Node] = set()
    for members in outcome.put_aside.values():
        put_aside_nodes |= members

    delta = max(1, state.instance.max_degree())
    ell = params.ell(delta)
    s_min = max(4, int(min(ell, max(4.0, delta / 8.0))))

    # Step 4: color the outliers.
    outliers: Set[Node] = set()
    for info in outcome.leaders.values():
        outliers |= {v for v in info.outliers | {info.leader} if not state.is_colored(v)}
    if outliers:
        outlier_outcome = slack_color(state, outliers, s_min=s_min, label=f"{label}:outliers")
        outcome.colored |= outlier_outcome.colored
        outcome.leftover |= outlier_outcome.dropped

    # Step 5: synchronized color trial dealt by the leaders.
    outcome.colored |= synch_color_trial(
        state, outcome.leaders, exclude=put_aside_nodes, label=f"{label}:synch"
    )

    # Step 6: SlackColor the remaining (non-put-aside) dense nodes.
    remaining = {
        v for v in dense_nodes
        if not state.is_colored(v) and v not in put_aside_nodes
    }
    if remaining:
        rest_outcome = slack_color(state, remaining, s_min=s_min, label=f"{label}:rest")
        outcome.colored |= rest_outcome.colored
        outcome.leftover |= rest_outcome.dropped

    # Step 7: the leaders color the put-aside sets.
    outcome.colored |= color_put_aside(
        state, outcome.leaders, outcome.put_aside, label=f"{label}:put-aside-color"
    )

    outcome.leftover = {v for v in outcome.leftover if not state.is_colored(v)}
    outcome.leftover |= {v for v in dense_nodes if not state.is_colored(v)}
    return outcome

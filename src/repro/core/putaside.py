"""Put-aside sets: temporary slack for very dense almost-cliques (Alg. 13, App. D.2).

Low-slack almost-cliques (slackability below ``ℓ = log^{2.1} Δ``) contain
nodes with almost no slack of their own.  The algorithm *puts aside* a small
set ``P_C`` of inliers per such clique — they stay uncolored while the rest of
the clique colors itself, which hands every remaining member ``Ω(ℓ)``
temporary slack — and colors ``P_C`` at the very end by centralising the
relevant palettes at the leader (through in-clique relays, Appendix D.2).

Construction (Algorithm 13): every inlier joins a sample ``S_C`` independently
with probability ``p_s = ℓ²/(48·Δ_C)`` and stays in ``P_C`` only if none of its
neighbours in *other* cliques were sampled too (so put-aside sets of different
cliques are mutually non-adjacent and can all wait until the end).  The leader
then truncates ``P_C`` to ``Θ(ℓ)`` elements (Appendix D.2), which is all the
slack the rest of the algorithm needs.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Mapping, Optional, Set

from repro.congest.message import Message
from repro.core.leader import LeaderInfo
from repro.core.slack import announce_adoptions
from repro.core.state import ColoringState

Node = Hashable
Color = Hashable


def compute_put_aside(
    state: ColoringState,
    leaders: Mapping[int, LeaderInfo],
    label: str = "put-aside",
) -> Dict[int, Set[Node]]:
    """Sample the put-aside sets of all low-slack almost-cliques (Algorithm 13)."""
    network = state.network
    params = state.params
    delta = max(1, state.instance.max_degree())
    ell = params.ell(delta)

    low_slack = {cid: info for cid, info in leaders.items() if info.low_slack}
    if not low_slack:
        network.charge_silent_round(label=f"{label}:sample")
        return {}

    clique_of: Dict[Node, int] = {}
    for cid, info in leaders.items():
        for v in info.members:
            clique_of[v] = cid

    # Step 1: independent sampling of inliers, announced to all neighbours.
    sampled: Set[Node] = set()
    for cid, info in low_slack.items():
        probability = params.putaside_probability(ell, info.max_degree)
        for v in sorted(info.inliers, key=repr):
            if state.is_colored(v):
                continue
            if state.rng.for_node(v, "put-aside").random() < probability:
                sampled.add(v)
    network.broadcast(
        {v: Message(content=True, bits=1, label=f"{label}:sample") for v in sampled},
        label=f"{label}:sample",
    )

    # Step 2: drop sampled nodes with a sampled neighbour in another clique.
    put_aside: Dict[int, Set[Node]] = {cid: set() for cid in low_slack}
    for v in sampled:
        cid = clique_of[v]
        conflict = any(
            u in sampled and clique_of.get(u) != cid for u in network.neighbors(v)
        )
        if not conflict:
            put_aside[cid].add(v)

    # Step 3 (Appendix D.2): the leader truncates P_C to Θ(ℓ) members.
    cap = max(1, int(math.ceil(2 * ell)))
    for cid in put_aside:
        members = sorted(put_aside[cid], key=repr)
        put_aside[cid] = set(members[:cap])
    network.charge_silent_round(label=f"{label}:truncate")
    return {cid: nodes for cid, nodes in put_aside.items() if nodes}


def color_put_aside(
    state: ColoringState,
    leaders: Mapping[int, LeaderInfo],
    put_aside: Mapping[int, Set[Node]],
    label: str = "put-aside-color",
) -> Set[Node]:
    """Color the put-aside sets at the end of the dense phase (Appendix D.2).

    Each member of ``P_C`` forwards ``|N(v) ∩ P_C| + 1`` palette colors and its
    adjacency within ``P_C`` to the leader through disjoint relay groups of
    in-clique neighbours; the leader then colors ``P_C`` locally and sends the
    colors back.  The simulator performs the equivalent centralised assignment
    and charges a constant number of (chunked) rounds for the relayed traffic,
    matching the paper's O(1)-round argument.
    """
    network = state.network
    colored: Set[Node] = set()
    any_work = False
    adopted: Dict[Node, Color] = {}
    for cid, members in put_aside.items():
        members = {v for v in members if not state.is_colored(v)}
        if not members:
            continue
        any_work = True
        # Relay traffic: each member ships |N(v) ∩ P_C| + 1 colors plus its
        # in-P_C adjacency to the leader.  Charge the equivalent rounds.
        used: Dict[Node, Color] = {}
        for v in sorted(members, key=repr):
            forbidden = {
                used[u] for u in network.neighbors(v) if u in used
            }
            available = sorted(
                (c for c in state.palettes[v] if c not in forbidden), key=repr
            )
            if not available:
                continue  # handled by the fallback; cannot happen with d+1 lists
            choice = available[0]
            used[v] = choice
            adopted[v] = choice
            state.adopt(v, choice)
            colored.add(v)
    if any_work:
        # palette upload to the leader (relayed, chunked) + color download.
        network.charge_silent_round(label=f"{label}:collect")
        network.charge_silent_round(label=f"{label}:collect")
    announce_adoptions(state, adopted, label=label)
    return colored

"""Coloring the sparse and uneven nodes (Algorithm 8, Appendix D).

Sparse nodes have many missing edges in their neighbourhood, so after
``GenerateSlack`` (every node trying a random color with constant probability)
they end up with *permanent slack*: pairs of neighbours that adopted the same
color, or neighbours that adopted colors outside the node's palette, each free
up a palette color relative to the uncolored degree.  Uneven nodes get slack
from their higher-degree neighbours' larger palettes.  Nodes with slack linear
in their degree are colored by ``SlackColor`` in ``O(log* n)`` MultiTrial
steps.

Following Appendix D, the set ``V_start`` — sparse nodes that did *not*
receive permanent slack but are adjacent to many nodes that did — is
identified *after* slack generation, by looking at the observed slack: those
nodes are colored first, while their slack-rich neighbours are still
uncolored and therefore provide temporary slack.  Nodes that neither received
slack nor have slack-rich neighbours join the ``BAD`` set, which the
shattering framework leaves to the deterministic fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Set

from repro.congest.message import Message
from repro.core.acd import ACDResult
from repro.core.slack import generate_slack
from repro.core.slack_color import slack_color
from repro.core.state import ColoringState

Node = Hashable


@dataclass
class SparsePhaseOutcome:
    """Bookkeeping of one sparse/uneven phase."""

    colored: Set[Node] = field(default_factory=set)
    start_set: Set[Node] = field(default_factory=set)
    bad_set: Set[Node] = field(default_factory=set)
    leftover: Set[Node] = field(default_factory=set)


def run_sparse_phase(
    state: ColoringState,
    acd: ACDResult,
    label: str = "sparse",
) -> SparsePhaseOutcome:
    """Color the sparse and uneven nodes of the current ACD (Algorithm 8)."""
    outcome = SparsePhaseOutcome()
    params = state.params
    targets = {
        v for v in (acd.sparse_nodes | acd.uneven_nodes) if not state.is_colored(v)
    }
    if not targets:
        return outcome

    # Step 2 (of Alg. 8): slack generation restricted to sparse ∪ uneven nodes.
    colored_now = generate_slack(state, targets, label=f"{label}:slack")
    outcome.colored |= colored_now
    targets -= colored_now

    # Step 1 (performed after slack generation, as Appendix D prescribes):
    # classify the remaining nodes by the slack they actually received.
    # One round: every node announces whether it considers itself slack-rich.
    slack_rich: Set[Node] = set()
    induced_degree: Dict[Node, int] = {}
    for v in targets:
        induced_degree[v] = sum(1 for u in state.network.neighbors(v) if u in targets)
        threshold = params.start_slack_fraction * max(1, induced_degree[v])
        if state.slack(v) - 1 >= threshold:
            slack_rich.add(v)
    state.network.broadcast(
        {v: Message(content=True, bits=1, label=f"{label}:slack-rich") for v in slack_rich},
        label=f"{label}:slack-rich",
    )
    for v in targets:
        if v in slack_rich:
            continue
        threshold = params.start_slack_fraction * max(1, induced_degree[v])
        rich_neighbors = sum(
            1 for u in state.network.neighbors(v) if u in slack_rich
        )
        if rich_neighbors >= threshold:
            outcome.start_set.add(v)
        else:
            outcome.bad_set.add(v)

    # Step 3: color V_start first — its slack is temporary (uncolored
    # slack-rich neighbours), so it must go before them.
    s_min = max(4, int(params.start_slack_fraction
                       * max(1, min((induced_degree[v] for v in targets), default=1))))
    if outcome.start_set:
        start_outcome = slack_color(
            state, outcome.start_set, s_min=s_min, label=f"{label}:start"
        )
        outcome.colored |= start_outcome.colored
        outcome.leftover |= start_outcome.dropped

    # Step 4: color the remaining sparse and uneven nodes.  BAD nodes (the
    # shattering candidates) are included: they are not *guaranteed* slack, but
    # the warm-up random trials of SlackColor color most of them anyway, and
    # whoever fails simply drops out to the deterministic fallback as the
    # shattering framework prescribes.
    rest = {v for v in targets - outcome.start_set if not state.is_colored(v)}
    if rest:
        rest_outcome = slack_color(state, rest, s_min=s_min, label=f"{label}:rest")
        outcome.colored |= rest_outcome.colored
        outcome.leftover |= rest_outcome.dropped

    outcome.leftover |= {v for v in outcome.bad_set if not state.is_colored(v)}
    outcome.leftover = {v for v in outcome.leftover if not state.is_colored(v)}
    return outcome

"""``SlackColor`` (Algorithm 15): coloring nodes that have slack linear in their degree.

Nodes that enter SlackColor have slack ``s(v) = Ω(d(v))`` and at least
``s_min`` (a lower bound known to all participants).  The procedure tries an
exponentially growing number of colors per step — ``x_i = 2 ↑↑ i`` through a
tetration schedule, then powers ``ρ^{iκ}`` of ``ρ = s_min^{1/(1+κ)}`` — so that
after ``O(log* s_min)`` iterations every participant has been colored with
probability ``1 − exp(−s_min^{Ω(1)})``.  Each iteration is a constant number
of MultiTrial invocations, i.e. a constant number of CONGEST rounds.

Nodes whose uncolored degree stays too large relative to their slack drop out
("terminate" in the paper's pseudocode); they are returned to the caller and
handled by the shattering fallback, exactly as in the Local algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set

from repro.core.multitrial import multi_trial
from repro.core.slack import try_random_color
from repro.core.state import ColoringState
from repro.utils.mathx import log_star, tetration

Node = Hashable


@dataclass
class SlackColorOutcome:
    """What happened to the participants of one SlackColor invocation."""

    colored: Set[Node] = field(default_factory=set)
    dropped: Set[Node] = field(default_factory=set)
    iterations: int = 0

    @property
    def remaining(self) -> Set[Node]:
        """Participants neither colored nor dropped (should be empty)."""
        return set()


def _active(state: ColoringState, nodes: Iterable[Node]) -> List[Node]:
    return [v for v in nodes if not state.is_colored(v)]


def slack_color(
    state: ColoringState,
    nodes: Iterable[Node],
    s_min: int,
    label: str = "slack-color",
) -> SlackColorOutcome:
    """Run Algorithm 15 on ``nodes`` with common slack lower bound ``s_min``."""
    params = state.params
    outcome = SlackColorOutcome()
    participants: Set[Node] = set(_active(state, nodes))
    if not participants:
        return outcome
    s_min = max(2, int(s_min))
    kappa = min(1.0, max(1.0 / s_min, params.slack_color_kappa))

    def register_colored(newly: Set[Node]) -> None:
        outcome.colored |= newly & participants
        participants.difference_update(newly)

    def competing_degree(v: Node) -> int:
        """Uncolored neighbours that compete for colors *in this invocation*.

        SlackColor is always run on a set whose complement provides temporary
        slack (uncolored inliers while the outliers color, put-aside nodes
        while the rest of the clique colors, slack-rich sparse nodes while
        ``V_start`` colors).  Only participants try colors concurrently, so
        only they can steal a palette color during the run.
        """
        return sum(1 for u in state.network.neighbors(v) if u in participants)

    def slack_here(v: Node) -> int:
        return len(state.palettes[v]) - competing_degree(v)

    def drop(condition) -> None:
        doomed = {v for v in participants if condition(v)}
        outcome.dropped |= doomed
        participants.difference_update(doomed)

    # Step 1: a constant number of plain random color trials.
    for _ in range(max(1, params.slack_color_initial_trials)):
        register_colored(try_random_color(state, participants, label=f"{label}:warmup"))
        if not participants:
            return outcome

    # Step 2: nodes without slack at least twice their competing degree leave.
    drop(lambda v: slack_here(v) < 2 * competing_degree(v))
    if not participants:
        return outcome

    # Steps 3-8: tetration schedule x_i = 2 ↑↑ i.
    rho = max(2.0, s_min ** (1.0 / (1.0 + kappa)))
    rho_kappa = max(2.0, rho ** kappa)
    for i in range(log_star(rho) + 1):
        x_i = min(tetration(2, i), 4 * s_min)
        for _ in range(2):
            register_colored(
                multi_trial(state, x_i, participants, label=f"{label}:tetration")
            )
            outcome.iterations += 1
            if not participants:
                return outcome
        bound = lambda v, x=x_i: competing_degree(v) > slack_here(v) / min(2.0 * x, rho_kappa)
        drop(bound)
        if not participants:
            return outcome

    # Steps 9-13: geometric schedule x_i = ρ^{iκ}.
    for i in range(1, int(math.ceil(1.0 / kappa)) + 1):
        x_i = max(1, min(int(rho ** (i * kappa)), 4 * s_min))
        for _ in range(3):
            register_colored(
                multi_trial(state, x_i, participants, label=f"{label}:geometric")
            )
            outcome.iterations += 1
            if not participants:
                return outcome
        limit = min(rho ** ((i + 1) * kappa), rho)
        drop(lambda v, lim=limit: competing_degree(v) > slack_here(v) / lim)
        if not participants:
            return outcome

    # Step 14: one final MultiTrial with x = ρ.
    register_colored(
        multi_trial(state, max(1, int(rho)), participants, label=f"{label}:final")
    )
    outcome.iterations += 1
    # Whoever is still uncolored failed the w.h.p. guarantee and is handed to
    # the caller (shattering fallback).
    outcome.dropped |= participants
    return outcome

"""Color trials and slack generation (Algorithms 10–12).

``TryColor`` (Alg. 12) is the basic building block: a set of nodes each
propose one color, announce it to their neighbours, keep it if no conflicting
neighbour proposed the same color, and finally announce the adopted colors so
neighbours can prune their palettes.  ``TryRandomColor`` (Alg. 11) proposes a
uniformly random palette color, and ``GenerateSlack`` (Alg. 10) has every node
do so independently with probability ``p_g`` — the step that creates
*permanent slack* (sparse nodes lose fewer palette colors than uncolored
neighbours) and *chromatic slack* (neighbours adopting colors outside one's
palette, Definition 7).

All color traffic goes through the :class:`~repro.core.large_colors.ColorHasher`,
so the same code handles numeric palettes and palettes drawn from a
``exp(n^Θ(1))``-sized space (Appendix D.3).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Set

from repro.core.state import ColoringState

Node = Hashable
Color = Hashable


def announce_adoptions(
    state: ColoringState,
    adopted: Mapping[Node, Color],
    label: str = "announce",
    track_chromatic_slack: bool = False,
) -> None:
    """One round: newly colored nodes tell neighbours, who prune their palettes.

    When ``track_chromatic_slack`` is set (only during GenerateSlack), every
    uncolored receiver also checks whether the announced color lies outside
    its *original* palette and, if so, increments its chromatic slack ``κ_v``
    (Definition 7) — the quantity later used for leader selection.
    """
    if not adopted:
        state.network.charge_silent_round(label=f"{label}:adopt")
        return
    messages = {}
    for v, color in adopted.items():
        # Direct mode: one receiver-independent Message reused for the whole
        # neighbourhood (payload sizing is identity-memoized per round, so the
        # ledger charges are unchanged); hashed mode encodes per receiver.
        shared = state.hasher.encode_shared(color, label=f"{label}:adopt")
        if shared is None:
            for u in state.network.neighbors(v):
                messages[(v, u)] = state.hasher.encode_for(u, color, label=f"{label}:adopt")
        else:
            for u in state.network.neighbors(v):
                messages[(v, u)] = shared
    delivered = state.network.exchange(messages, label=f"{label}:adopt")
    for (sender, receiver), value in delivered.items():
        if state.is_colored(receiver):
            continue
        if track_chromatic_slack:
            in_original = any(
                state.hasher.matches(receiver, c, value)
                for c in state.original_palettes[receiver]
            )
            state.note_chromatic_slack(receiver, not in_original)
        state.remove_from_palette(receiver, value)


def try_color(
    state: ColoringState,
    proposals: Mapping[Node, Color],
    priority: Optional[Mapping[Node, int]] = None,
    label: str = "try-color",
    track_chromatic_slack: bool = False,
) -> Set[Node]:
    """Algorithm 12: try one color per proposing node, resolve conflicts, announce.

    ``priority`` optionally ranks proposers (lower rank wins): a proposer only
    treats higher- or equal-priority neighbours as conflicting, which realises
    the paper's ``N^+ / N^-`` refinement while preserving the correctness
    requirement ``u ∈ N^-(v) → v ∈ N^+(u)``.  Returns the set of nodes that
    adopted their proposal.
    """
    proposals = {
        v: color for v, color in proposals.items()
        if not state.is_colored(v) and color in state.palettes[v]
    }
    if not proposals:
        state.network.charge_silent_round(label=f"{label}:propose")
        state.network.charge_silent_round(label=f"{label}:adopt")
        return set()

    # Round 1: everyone announces the color it is trying.  As in
    # announce_adoptions, direct mode shares one Message per proposer.
    messages = {}
    for v, color in proposals.items():
        shared = state.hasher.encode_shared(color, label=f"{label}:propose")
        if shared is None:
            for u in state.network.neighbors(v):
                messages[(v, u)] = state.hasher.encode_for(u, color, label=f"{label}:propose")
        else:
            for u in state.network.neighbors(v):
                messages[(v, u)] = shared
    delivered = state.network.exchange(messages, label=f"{label}:propose")
    received: Dict[Node, Dict[Node, Hashable]] = {v: {} for v in proposals}
    for (sender, receiver), value in delivered.items():
        if receiver in received:
            received[receiver][sender] = value

    # Conflict resolution: keep the color unless a conflicting (higher- or
    # equal-priority) neighbour proposed a color with the same encoding.
    adopted: Dict[Node, Color] = {}
    for v, color in proposals.items():
        own_value = state.hasher.value_for(v, color)
        conflict = False
        for u, value in received[v].items():
            if u not in proposals:
                continue
            if priority is not None and priority.get(u, 0) > priority.get(v, 0):
                continue  # u has strictly lower priority; v wins this conflict
            if value == own_value:
                conflict = True
                break
        if not conflict:
            adopted[v] = color
            state.adopt(v, color)

    # Round 2: adopted colors are announced and palettes pruned.
    announce_adoptions(
        state, adopted, label=label, track_chromatic_slack=track_chromatic_slack
    )
    return set(adopted)


def try_random_color(
    state: ColoringState,
    nodes: Iterable[Node],
    label: str = "try-random-color",
    track_chromatic_slack: bool = False,
    priority: Optional[Mapping[Node, int]] = None,
) -> Set[Node]:
    """Algorithm 11: every listed (uncolored) node tries a random palette color."""
    proposals: Dict[Node, Color] = {}
    for v in nodes:
        if state.is_colored(v):
            continue
        palette = state.palettes[v]
        if not palette:
            continue
        rng = state.rng.for_node(v, "try-random", state.network.rounds_used)
        proposals[v] = rng.choice(sorted(palette, key=repr))
    return try_color(
        state,
        proposals,
        priority=priority,
        label=label,
        track_chromatic_slack=track_chromatic_slack,
    )


def generate_slack(
    state: ColoringState,
    nodes: Optional[Iterable[Node]] = None,
    label: str = "generate-slack",
) -> Set[Node]:
    """Algorithm 10: each node tries a random color with probability ``p_g``.

    Returns the set of nodes colored by the trial.  Chromatic slack is tracked
    during this (and only this) procedure, as Definition 7 prescribes.
    """
    nodes = list(nodes) if nodes is not None else state.nodes
    participants = []
    for v in nodes:
        if state.is_colored(v):
            continue
        rng = state.rng.for_node(v, "generate-slack")
        if rng.random() < state.params.slack_probability:
            participants.append(v)
    return try_random_color(
        state, participants, label=label, track_chromatic_slack=True
    )

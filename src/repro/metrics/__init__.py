"""Experiment metrics, validity checking and reporting helpers."""

from repro.metrics.ledger import (
    BandwidthLedger,
    CounterLedger,
    ExperimentRecord,
    Ledger,
    RecordingLedger,
    RoundBudgetCheck,
    RoundRecord,
    make_ledger,
    rounds_by_phase,
    summarize_ledger,
)
from repro.metrics.report import format_table, format_series

__all__ = [
    "BandwidthLedger",
    "CounterLedger",
    "ExperimentRecord",
    "Ledger",
    "RecordingLedger",
    "RoundBudgetCheck",
    "RoundRecord",
    "make_ledger",
    "rounds_by_phase",
    "summarize_ledger",
    "format_table",
    "format_series",
]

"""Experiment metrics, validity checking and reporting helpers."""

from repro.metrics.ledger import ExperimentRecord, RoundBudgetCheck, summarize_ledger
from repro.metrics.report import format_table, format_series

__all__ = [
    "ExperimentRecord",
    "RoundBudgetCheck",
    "summarize_ledger",
    "format_table",
    "format_series",
]

"""Experiment metrics, validity checking and reporting helpers."""

from repro.metrics.ledger import (
    BandwidthLedger,
    CounterLedger,
    ExperimentRecord,
    Ledger,
    NO_RECORDS,
    RecordingLedger,
    RoundBudgetCheck,
    RoundRecord,
    bits_by_phase,
    make_ledger,
    messages_by_phase,
    rounds_by_phase,
    summarize_ledger,
)
from repro.metrics.report import (
    aggregate_rows,
    format_series,
    format_table,
    mean,
    median,
    percentile,
    summary_stats,
)

__all__ = [
    "BandwidthLedger",
    "CounterLedger",
    "ExperimentRecord",
    "Ledger",
    "NO_RECORDS",
    "RecordingLedger",
    "RoundBudgetCheck",
    "RoundRecord",
    "bits_by_phase",
    "make_ledger",
    "messages_by_phase",
    "rounds_by_phase",
    "summarize_ledger",
    "format_table",
    "format_series",
    "aggregate_rows",
    "mean",
    "median",
    "percentile",
    "summary_stats",
]

"""Bandwidth ledgers and experiment-level accounting.

The ledger is the accounting half of the communication engine (see
DESIGN.md): every transport backend reports each synchronous round to a
ledger via :meth:`Ledger.record_round`, and the ledger aggregates rounds,
bits and messages.  Two implementations are provided:

* :class:`RecordingLedger` (the default, historically named
  ``BandwidthLedger``) keeps a full per-round :class:`RoundRecord` history —
  what the benchmarks and the phase breakdowns consume;
* :class:`CounterLedger` keeps only the aggregate counters plus per-label
  round counts, for big runs where a million :class:`RoundRecord` objects
  would dominate memory.

Both report identical headline numbers (``rounds``, ``total_bits``,
``total_messages``, ``max_edge_bits``) for the same execution; the
paper-fidelity invariant is that swapping the ledger never changes what is
charged, only what is remembered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union


@dataclass
class RoundRecord:
    """Accounting for a single synchronous round."""

    index: int
    label: str
    message_count: int
    total_bits: int
    max_edge_bits: int


#: Round observer signature: ``(index, label, message_count, total_bits,
#: max_edge_bits)``, called after the ledger aggregates are updated.
RoundObserver = Callable[[int, str, int, int, int], None]

#: The one (immutable, shared) empty history every :class:`CounterLedger`
#: reports.  A tuple, so a caller that tries to mutate what it wrongly
#: assumes is its own private list fails loudly instead of silently sharing
#: state across accesses.
NO_RECORDS: Tuple[RoundRecord, ...] = ()


class Ledger:
    """Base class: aggregate communication statistics over an execution.

    ``observer`` is the observability seam (see :mod:`repro.obs`): when set,
    it is called once per recorded round with the round's accounting, *after*
    the aggregates are updated.  Observers must be pure readers — the
    observation-only contract pins that a ledger with an observer charges
    exactly the same rounds/bits as one without.  The default is ``None``,
    which keeps the per-round cost at a single attribute check.
    """

    __slots__ = ("rounds", "total_bits", "total_messages", "max_edge_bits",
                 "observer")

    def __init__(self) -> None:
        self.rounds = 0
        self.total_bits = 0
        self.total_messages = 0
        self.max_edge_bits = 0
        self.observer: Optional[RoundObserver] = None

    def record_round(self, label: str, message_count: int, total_bits: int,
                     max_edge_bits: int) -> None:
        raise NotImplementedError

    def _bump(self, label: str, message_count: int, total_bits: int,
              max_edge_bits: int) -> None:
        self.rounds += 1
        self.total_bits += total_bits
        self.total_messages += message_count
        if max_edge_bits > self.max_edge_bits:
            self.max_edge_bits = max_edge_bits
        if self.observer is not None:
            self.observer(self.rounds, label, message_count, total_bits,
                          max_edge_bits)

    def rounds_by_label(self) -> Dict[str, int]:
        """Number of rounds spent under each label (useful in benchmarks)."""
        raise NotImplementedError

    def bits_by_label(self) -> Dict[str, int]:
        """Total bits charged under each label."""
        raise NotImplementedError

    def messages_by_label(self) -> Dict[str, int]:
        """Total messages delivered under each label."""
        raise NotImplementedError


class RecordingLedger(Ledger):
    """Full-history ledger: keeps one :class:`RoundRecord` per round."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        super().__init__()
        self.records: List[RoundRecord] = []

    def record_round(self, label: str, message_count: int, total_bits: int,
                     max_edge_bits: int) -> None:
        self._bump(label, message_count, total_bits, max_edge_bits)
        self.records.append(
            RoundRecord(
                index=self.rounds,
                label=label,
                message_count=message_count,
                total_bits=total_bits,
                max_edge_bits=max_edge_bits,
            )
        )

    def rounds_by_label(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            counts[record.label] = counts.get(record.label, 0) + 1
        return counts

    def bits_by_label(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for record in self.records:
            totals[record.label] = totals.get(record.label, 0) + record.total_bits
        return totals

    def messages_by_label(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for record in self.records:
            totals[record.label] = totals.get(record.label, 0) + record.message_count
        return totals


#: Historical name, kept because algorithms and tests refer to it.
BandwidthLedger = RecordingLedger


class CounterLedger(Ledger):
    """Counters-only ledger for big runs: no per-round history.

    Per-label round/bit/message counts are still maintained (three dict
    increments per round) because the phase breakdowns in results and the
    trace summaries depend on them; everything else is a plain counter.
    ``records`` is always the shared immutable :data:`NO_RECORDS` tuple.
    """

    __slots__ = ("_label_rounds", "_label_bits", "_label_messages")

    def __init__(self) -> None:
        super().__init__()
        self._label_rounds: Dict[str, int] = {}
        self._label_bits: Dict[str, int] = {}
        self._label_messages: Dict[str, int] = {}

    @property
    def records(self) -> Sequence[RoundRecord]:
        return NO_RECORDS

    def record_round(self, label: str, message_count: int, total_bits: int,
                     max_edge_bits: int) -> None:
        self._bump(label, message_count, total_bits, max_edge_bits)
        self._label_rounds[label] = self._label_rounds.get(label, 0) + 1
        self._label_bits[label] = self._label_bits.get(label, 0) + total_bits
        self._label_messages[label] = (
            self._label_messages.get(label, 0) + message_count
        )

    def rounds_by_label(self) -> Dict[str, int]:
        return dict(self._label_rounds)

    def bits_by_label(self) -> Dict[str, int]:
        return dict(self._label_bits)

    def messages_by_label(self) -> Dict[str, int]:
        return dict(self._label_messages)


_LEDGER_KINDS = {
    "records": RecordingLedger,
    "full": RecordingLedger,
    "counters": CounterLedger,
}


def ledger_class(spec: Union[str, Ledger]) -> type:
    """Resolve a ledger spec (kind name or instance) to its concrete class."""
    if isinstance(spec, Ledger):
        return type(spec)
    try:
        return _LEDGER_KINDS[spec]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown ledger kind: {spec!r} (expected one of {sorted(_LEDGER_KINDS)} "
            "or a Ledger instance)"
        ) from None


def make_ledger(spec: Union[str, Ledger, None] = "records") -> Ledger:
    """Build a ledger from a spec: a kind name, an instance, or ``None``.

    ``"records"`` (default) keeps the full round history; ``"counters"``
    keeps aggregates only.  Passing an existing :class:`Ledger` instance
    returns it unchanged (so an experiment can share one ledger across
    several networks).
    """
    if spec is None:
        return RecordingLedger()
    if isinstance(spec, Ledger):
        return spec
    try:
        return _LEDGER_KINDS[spec]()
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown ledger kind: {spec!r} (expected one of {sorted(_LEDGER_KINDS)} "
            "or a Ledger instance)"
        ) from None


@dataclass
class RoundBudgetCheck:
    """Did an execution stay within the CONGEST bandwidth budget?"""

    bandwidth_bits: int
    max_edge_bits: int

    @property
    def respected(self) -> bool:
        return self.max_edge_bits <= self.bandwidth_bits


@dataclass
class ExperimentRecord:
    """One measurement row of an experiment (one workload/parameter point)."""

    name: str
    parameters: Dict[str, object] = field(default_factory=dict)
    measurements: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {"experiment": self.name}
        row.update(self.parameters)
        row.update(self.measurements)
        return row


def summarize_ledger(network) -> Dict[str, float]:
    """Extract the headline resource numbers from a network's ledger."""
    ledger = network.ledger
    return {
        "rounds": float(ledger.rounds),
        "total_bits": float(ledger.total_bits),
        "total_messages": float(ledger.total_messages),
        "max_edge_bits": float(ledger.max_edge_bits),
        "bandwidth_bits": float(network.bandwidth_bits),
        "bits_per_round_per_edge": (
            ledger.total_bits / max(1, ledger.rounds) / max(1, network.number_of_edges)
        ),
    }


def _totals_by_phase(by_label: Dict[str, int], prefix_split: str) -> Dict[str, int]:
    """Fold per-label totals into per-phase totals (prefix before ``:``).

    A label without the separator is its own phase; an empty label folds into
    the ``""`` phase — unlabeled rounds stay visible rather than vanishing.
    """
    totals: Dict[str, int] = {}
    for label, value in by_label.items():
        phase = label.split(prefix_split, 1)[0]
        totals[phase] = totals.get(phase, 0) + value
    return totals


def rounds_by_phase(network, prefix_split: str = ":") -> Dict[str, int]:
    """Aggregate round counts by phase label prefix (the part before ``:``)."""
    return _totals_by_phase(network.ledger.rounds_by_label(), prefix_split)


def phase_column_name(kind: str, phase: str) -> str:
    """Flat column name for one phase's totals in a trial row.

    The empty phase (unlabeled rounds) maps to ``"unlabeled"`` so the column
    name stays non-degenerate and the rounds stay visible in aggregates.
    """
    return f"phase_{kind}_{phase or 'unlabeled'}"


def comm_row_metrics(network, prefix_split: str = ":") -> Dict[str, object]:
    """Flat comm-volume columns for one trial row, from either ledger.

    Emits the total message count, bits-per-node, and one
    ``phase_bits_<phase>`` / ``phase_messages_<phase>`` column per phase that
    charged anything — the columns the suite aggregates (and the analytics
    layer on top of them) treat as first-class communication metrics.  Both
    ledgers support the per-label folds, so the columns are available on
    ``records`` and ``counters`` runs alike and are byte-identical across
    backends, shard counts and ledgers.
    """
    ledger = network.ledger
    nodes = max(1, network.number_of_nodes)
    metrics: Dict[str, object] = {
        "total_messages": ledger.total_messages,
        "bits_per_node": round(ledger.total_bits / nodes, 4),
    }
    for phase, bits in sorted(bits_by_phase(network, prefix_split).items()):
        metrics[phase_column_name("bits", phase)] = bits
    for phase, msgs in sorted(messages_by_phase(network, prefix_split).items()):
        metrics[phase_column_name("messages", phase)] = msgs
    return metrics


def bits_by_phase(network, prefix_split: str = ":") -> Dict[str, int]:
    """Aggregate total bits by phase label prefix (the part before ``:``)."""
    return _totals_by_phase(network.ledger.bits_by_label(), prefix_split)


def messages_by_phase(network, prefix_split: str = ":") -> Dict[str, int]:
    """Aggregate message counts by phase label prefix (the part before ``:``)."""
    return _totals_by_phase(network.ledger.messages_by_label(), prefix_split)

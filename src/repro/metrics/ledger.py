"""Experiment-level accounting built on top of the network ledger."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.congest.network import BandwidthLedger, Network


@dataclass
class RoundBudgetCheck:
    """Did an execution stay within the CONGEST bandwidth budget?"""

    bandwidth_bits: int
    max_edge_bits: int

    @property
    def respected(self) -> bool:
        return self.max_edge_bits <= self.bandwidth_bits


@dataclass
class ExperimentRecord:
    """One measurement row of an experiment (one workload/parameter point)."""

    name: str
    parameters: Dict[str, object] = field(default_factory=dict)
    measurements: Dict[str, float] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {"experiment": self.name}
        row.update(self.parameters)
        row.update(self.measurements)
        return row


def summarize_ledger(network: Network) -> Dict[str, float]:
    """Extract the headline resource numbers from a network's ledger."""
    ledger: BandwidthLedger = network.ledger
    return {
        "rounds": float(ledger.rounds),
        "total_bits": float(ledger.total_bits),
        "total_messages": float(ledger.total_messages),
        "max_edge_bits": float(ledger.max_edge_bits),
        "bandwidth_bits": float(network.bandwidth_bits),
        "bits_per_round_per_edge": (
            ledger.total_bits / max(1, ledger.rounds) / max(1, network.graph.number_of_edges())
        ),
    }


def rounds_by_phase(network: Network, prefix_split: str = ":") -> Dict[str, int]:
    """Aggregate round counts by phase label prefix (the part before ``:``)."""
    totals: Dict[str, int] = {}
    for label, count in network.ledger.rounds_by_label().items():
        phase = label.split(prefix_split, 1)[0]
        totals[phase] = totals.get(phase, 0) + count
    return totals

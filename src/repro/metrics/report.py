"""Plain-text table formatting for the benchmark harness.

``pytest-benchmark`` measures wall-clock time; the quantities the paper talks
about (rounds, bits, success probabilities, accuracy) are printed by the
benchmarks themselves using these helpers, so that running
``pytest benchmarks/ --benchmark-only`` reproduces the series recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import math

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Format a list of dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(x_label: str, y_label: str, points: Iterable[tuple], title: str = "") -> str:
    """Format an (x, y) series as a two-column table."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, title=title)


# --------------------------------------------------------------------------- #
# Aggregation helpers (used by the experiment suite's artifact store)
# --------------------------------------------------------------------------- #

def _stable(value: float) -> float:
    """Round to a fixed precision so aggregates serialize byte-identically."""
    rounded = round(float(value), 6)
    return rounded + 0.0  # normalize -0.0


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return _stable(sum(values) / len(values))


def median(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return _stable(ordered[mid])
    return _stable((ordered[mid - 1] + ordered[mid]) / 2)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must lie in [0, 100]")
    ordered = sorted(values)
    if q == 0:
        return _stable(ordered[0])
    rank = math.ceil(q / 100 * len(ordered))
    return _stable(ordered[rank - 1])


def summary_stats(values: Sequence[float]) -> Dict[str, float]:
    """The headline statistics the suite aggregates per scenario metric."""
    return {
        "mean": mean(values),
        "median": median(values),
        "p95": percentile(values, 95),
        "min": _stable(min(values)),
        "max": _stable(max(values)),
    }


def aggregate_rows(
    rows: Sequence[Mapping[str, object]],
    exclude: Optional[Iterable[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Aggregate every numeric column shared by all ``rows`` into summary stats.

    Boolean and non-numeric columns are skipped; so are columns named in
    ``exclude`` and columns missing from any row (aggregates must be a
    deterministic function of the full trial set).
    """
    if not rows:
        return {}
    excluded = set(exclude or ())
    stats: Dict[str, Dict[str, float]] = {}
    for key in rows[0]:
        if key in excluded:
            continue
        values = [row.get(key) for row in rows]
        if any(isinstance(v, bool) or not isinstance(v, (int, float)) for v in values):
            continue
        stats[key] = summary_stats(values)  # type: ignore[arg-type]
    return stats

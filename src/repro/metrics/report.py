"""Plain-text table formatting for the benchmark harness.

``pytest-benchmark`` measures wall-clock time; the quantities the paper talks
about (rounds, bits, success probabilities, accuracy) are printed by the
benchmarks themselves using these helpers, so that running
``pytest benchmarks/ --benchmark-only`` reproduces the series recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence


def _render(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Format a list of dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_render(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(x_label: str, y_label: str, points: Iterable[tuple], title: str = "") -> str:
    """Format an (x, y) series as a two-column table."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, title=title)

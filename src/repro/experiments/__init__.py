"""Experiment orchestration: declarative scenario suites, runner, artifacts, gate.

The subsystem the benchmarks and the ``repro suite`` CLI are built on:

* :mod:`repro.experiments.spec` — :class:`ScenarioSpec` and deterministic
  per-trial seed derivation;
* :mod:`repro.experiments.registry` — graph families, solvers, and the named
  suites (``smoke``, ``coloring``, ``bandwidth``, ``detection``, ``scaling``,
  ``scale``);
* :mod:`repro.experiments.runner` — serial / process-parallel trial execution
  with results independent of worker count;
* :mod:`repro.experiments.artifacts` — JSONL trial store plus the
  byte-deterministic ``BENCH_suite.json`` aggregate snapshot;
* :mod:`repro.experiments.compare` — the regression gate diffing a fresh run
  against the committed baseline.
"""

from repro.experiments.artifacts import (
    SUITE_FILENAME,
    TIMING_FILENAME,
    TRIALS_FILENAME,
    aggregate_suite,
    canonical_dumps,
    load_suite_summary,
    load_suite_timing,
    load_trial_rows,
    merge_timing,
    timing_summary,
    write_suite_artifacts,
    write_trial_rows,
)
from repro.experiments.compare import (
    Finding,
    compare_rss,
    compare_summaries,
    compare_timing,
    gate_passes,
)
from repro.experiments.registry import (
    FAMILY_PARAM_KEYS,
    GRAPH_FAMILIES,
    SOLVER_PARAM_KEYS,
    SOLVERS,
    check_spec_params,
    get_suite,
    suite_names,
    validate_spec,
)
from repro.experiments.runner import (
    ScenarioResult,
    SuiteResult,
    profile_filename,
    run_scenarios,
    run_suite,
    run_traced_trial,
    run_trial,
)
from repro.experiments.spec import ScenarioSpec, derive_seed, trial_seeds

__all__ = [
    "ScenarioSpec",
    "ScenarioResult",
    "SuiteResult",
    "FAMILY_PARAM_KEYS",
    "Finding",
    "GRAPH_FAMILIES",
    "SOLVER_PARAM_KEYS",
    "SOLVERS",
    "SUITE_FILENAME",
    "TIMING_FILENAME",
    "TRIALS_FILENAME",
    "aggregate_suite",
    "canonical_dumps",
    "check_spec_params",
    "compare_rss",
    "compare_summaries",
    "compare_timing",
    "derive_seed",
    "gate_passes",
    "get_suite",
    "load_suite_summary",
    "load_suite_timing",
    "load_trial_rows",
    "merge_timing",
    "profile_filename",
    "run_scenarios",
    "run_suite",
    "run_traced_trial",
    "run_trial",
    "suite_names",
    "timing_summary",
    "trial_seeds",
    "validate_spec",
    "write_suite_artifacts",
    "write_trial_rows",
]

"""Trial execution: serial or process-parallel, with deterministic results.

The runner turns scenario specs into trial rows.  Every trial is an
independent unit of work — build the graph from its derived graph seed, run
the solver with its derived solver seed, collect metrics — so trials can be
fanned out over a :class:`~concurrent.futures.ProcessPoolExecutor` freely:
results depend only on the spec and the trial index, never on scheduling.
The only non-deterministic field is each row's ``wall_s`` timing, which the
artifact store keeps out of the aggregate snapshot for exactly that reason.
"""

from __future__ import annotations

import contextlib
import cProfile
import functools
import io
import os
import pstats
import resource
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

import repro

from repro.experiments.registry import GRAPH_FAMILIES, SOLVERS, validate_spec
from repro.experiments.spec import ScenarioSpec, trial_seeds
from repro.obs.artifacts import trace_filename, write_trace
from repro.obs.tracer import RoundTracer

#: Row keys describing execution rather than the measured workload; they are
#: excluded from aggregation (timing/memory) or aggregated specially
#: (identity).
NON_METRIC_KEYS = (
    "scenario", "family", "solver", "trial", "graph_seed", "solver_seed", "wall_s",
    "peak_rss_mb", "state_digest",
)


def peak_rss_mb() -> float:
    """Peak resident-set size of the calling process, in MiB.

    ``ru_maxrss`` is a lifetime high-water mark, so a trial's value is an
    upper bound: a light scenario that runs after a heavy one in the same
    (worker) process reports the heavy one's peak.  Regressions still
    surface — the per-suite maximum only ever grows because *some* scenario
    needed that much — and the number is machine state, so it lives in the
    timing artifact, never the byte-stable aggregate.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024  # Linux reports KiB; macOS reports bytes
    return round(peak / (1024.0 * 1024.0), 1)

#: Number of cumulative-time hotspots written per scenario profile.
PROFILE_TOP = 25


def profile_filename(scenario: str) -> str:
    """Name of the per-scenario hotspot file written next to trial artifacts."""
    return f"PROFILE_{scenario}.txt"


@dataclass
class ScenarioResult:
    """All trial rows of one scenario plus its wall-clock cost."""

    spec: ScenarioSpec
    rows: List[Dict[str, object]]
    wall_s: float

    @property
    def valid_trials(self) -> int:
        return sum(1 for row in self.rows if row.get("valid"))

    @property
    def peak_rss_mb(self) -> float:
        """Highest per-trial peak RSS observed for this scenario (MiB)."""
        return max((float(row.get("peak_rss_mb", 0.0)) for row in self.rows),
                   default=0.0)


@dataclass
class SuiteResult:
    """Ordered scenario results of one suite run."""

    suite: str
    scenarios: List[ScenarioResult] = field(default_factory=list)
    wall_s: float = 0.0
    #: Base-seed override the run was launched with (``repro suite run
    #: --seed N``); recorded in the aggregate so ``suite compare`` can
    #: refuse to diff runs that sampled different workloads.
    seed_override: Optional[int] = None

    def rows(self) -> List[Dict[str, object]]:
        return [row for scenario in self.scenarios for row in scenario.rows]

    def rows_for(self, scenario_name: str) -> List[Dict[str, object]]:
        for scenario in self.scenarios:
            if scenario.spec.name == scenario_name:
                return scenario.rows
        raise KeyError(f"no scenario named {scenario_name!r} in suite {self.suite!r}")


def run_trial(spec: ScenarioSpec, trial: int,
              tracer: Optional[RoundTracer] = None) -> Dict[str, object]:
    """Execute one trial of ``spec`` and return its flat row.

    ``tracer`` optionally observes the trial's run (forwarded to the solver's
    network).  Tracing is observation-only, so the returned row is
    byte-identical with or without it; the caller owns closing the tracer.
    """
    graph_seed, solver_seed = trial_seeds(spec, trial)
    graph, truth = GRAPH_FAMILIES[spec.family](graph_seed, **dict(spec.family_params))
    start = time.perf_counter()
    metrics = SOLVERS[spec.solver](spec, graph, truth, solver_seed,
                                   tracer=tracer)
    wall_s = time.perf_counter() - start
    row: Dict[str, object] = {
        "scenario": spec.name,
        "family": spec.family,
        "solver": spec.solver,
        "trial": trial,
        "graph_seed": graph_seed,
        "solver_seed": solver_seed,
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
    }
    row.update(metrics)
    row["wall_s"] = round(wall_s, 4)
    row["peak_rss_mb"] = peak_rss_mb()
    return row


def run_instrumented_trial(spec: ScenarioSpec, trial: int,
                           trace: bool = False, digest: bool = False,
                           fine_rounds=None):
    """Execute one trial with tracing and/or digesting attached.

    Returns ``(row, trace_events, digest_events)`` where the event lists are
    ``None`` for instruments that were off.  When both are on they share one
    ledger through a :class:`~repro.obs.tracer.CompositeTracer`.  All events
    are plain JSON-serializable dicts, so the triple crosses the process-pool
    boundary like any other result and the parent writes per-scenario
    ``TRACE_*.jsonl`` / ``DIGEST_*.jsonl`` artifacts in deterministic trial
    order.  A digested row additionally carries the run's final chained
    ``state_digest`` (a non-metric key: identity, not measurement).
    """
    meta = {
        "scenario": spec.name,
        "trial": trial,
        "solver": spec.solver,
        "family": spec.family,
    }
    round_tracer = RoundTracer(meta=dict(meta)) if trace else None
    digest_tracer = None
    if digest:
        from repro.obs.forensics import DigestTracer
        from repro.obs.forensics.diff import spec_payload

        # The header embeds the spec so `repro diff --bisect` can re-run the
        # exact workload in fine mode from the stream alone.
        digest_tracer = DigestTracer(
            meta={**meta, "spec": spec_payload(spec)}, fine_rounds=fine_rounds,
        )
    tracers = [t for t in (round_tracer, digest_tracer) if t is not None]
    if not tracers:
        tracer = None
    elif len(tracers) == 1:
        tracer = tracers[0]
    else:
        from repro.obs.tracer import CompositeTracer

        tracer = CompositeTracer(tracers)
    try:
        row = run_trial(spec, trial, tracer=tracer)
    finally:
        for member in tracers:
            member.close()
    if digest_tracer is not None:
        row["state_digest"] = digest_tracer.final_digest
    return (row,
            round_tracer.events if round_tracer is not None else None,
            digest_tracer.events if digest_tracer is not None else None)


def run_traced_trial(spec: ScenarioSpec, trial: int):
    """Execute one traced trial; return ``(row, trace_events)``.

    Kept as the historical two-tuple API; new instrumentation goes through
    :func:`run_instrumented_trial`.
    """
    row, trace_events, _ = run_instrumented_trial(spec, trial, trace=True)
    return row, trace_events


@contextlib.contextmanager
def _workers_can_import_repro():
    """Ensure worker processes can import ``repro``, whatever the start method.

    Under the ``spawn`` start method a worker must import this module just to
    unpickle the submitted task, *before* any initializer could patch
    ``sys.path`` — so a parent that made ``repro`` importable by mutating
    ``sys.path`` (rather than via ``PYTHONPATH``) needs the package root
    exported through the environment, which every start method inherits.
    """
    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    previous = os.environ.get("PYTHONPATH")
    parts = previous.split(os.pathsep) if previous else []
    if pkg_root in parts:
        yield
        return
    os.environ["PYTHONPATH"] = os.pathsep.join([pkg_root] + parts)
    try:
        yield
    finally:
        if previous is None:
            del os.environ["PYTHONPATH"]
        else:
            os.environ["PYTHONPATH"] = previous


def run_scenarios(
    specs: Sequence[ScenarioSpec],
    workers: int = 1,
    suite: str = "adhoc",
    progress=None,
    profile_dir: Optional[Path] = None,
    trace_dir: Optional[Path] = None,
    digest_dir: Optional[Path] = None,
) -> SuiteResult:
    """Run every trial of every spec, serially or across worker processes.

    ``progress`` is an optional callable receiving one completed trial row at
    a time (the CLI uses it for live output).  Rows are always assembled in
    (spec order, trial order), so a parallel run's result is identical to a
    serial run's apart from wall-clock fields.

    ``profile_dir`` enables evidence gathering for perf work: every scenario
    is wrapped in ``cProfile`` and its top-``PROFILE_TOP`` cumulative hotspots
    are written to ``PROFILE_<scenario>.txt`` in that directory, next to the
    trial artifacts.  Profiling forces serial execution (``workers`` is
    ignored) and inflates the ``wall_s`` fields with profiler overhead, so a
    profiled run must not be used to refresh timing baselines.

    ``trace_dir`` attaches a :class:`~repro.obs.tracer.RoundTracer` to every
    trial and writes one ``TRACE_<scenario>.jsonl`` per scenario into that
    directory (all trials, in trial order).  ``digest_dir`` does the same
    with a :class:`~repro.obs.forensics.DigestTracer` and per-scenario
    ``DIGEST_<scenario>.jsonl`` streams (and stamps each row's
    ``state_digest``); both may be on at once.  Instrumentation is
    observation-only: rows and aggregates are byte-identical to an
    uninstrumented run, whatever the worker count.
    """
    for spec in specs:
        validate_spec(spec)
    tasks = [(index, spec, trial)
             for index, spec in enumerate(specs)
             for trial in range(spec.trials)]
    results: Dict[tuple, Dict[str, object]] = {}
    traces: Dict[tuple, List[Dict[str, object]]] = {}
    digests: Dict[tuple, List[Dict[str, object]]] = {}
    instrumented = trace_dir is not None or digest_dir is not None
    suite_start = time.perf_counter()

    def record(key, outcome) -> Dict[str, object]:
        # One unpacking seam for all three execution paths: instrumented
        # tasks return (row, trace_events, digest_events), plain ones just
        # the row.
        if not instrumented:
            results[key] = outcome
        else:
            results[key], trace_events, digest_events = outcome
            if trace_dir is not None:
                traces[key] = trace_events
            if digest_dir is not None:
                digests[key] = digest_events
        return results[key]

    if instrumented:
        # functools.partial of a module-level function pickles under every
        # process-pool start method.
        task = functools.partial(run_instrumented_trial,
                                 trace=trace_dir is not None,
                                 digest=digest_dir is not None)
    else:
        task = run_trial
    if profile_dir is not None:
        profile_dir = Path(profile_dir)
        profile_dir.mkdir(parents=True, exist_ok=True)
        for index, spec in enumerate(specs):
            profiler = cProfile.Profile()
            for trial in range(spec.trials):
                profiler.enable()
                outcome = task(spec, trial)
                profiler.disable()
                row = record((index, trial), outcome)
                if progress is not None:
                    progress(row)
            stream = io.StringIO()
            pstats.Stats(profiler, stream=stream).sort_stats(
                "cumulative").print_stats(PROFILE_TOP)
            (profile_dir / profile_filename(spec.name)).write_text(stream.getvalue())
    elif workers <= 1 or len(tasks) <= 1:
        for index, spec, trial in tasks:
            row = record((index, trial), task(spec, trial))
            if progress is not None:
                progress(row)
    else:
        with _workers_can_import_repro(), ProcessPoolExecutor(
            max_workers=min(workers, len(tasks)),
        ) as pool:
            futures = {
                pool.submit(task, spec, trial): (index, trial)
                for index, spec, trial in tasks
            }
            for future, key in futures.items():
                row = record(key, future.result())
                if progress is not None:
                    progress(row)

    if trace_dir is not None:
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        for index, spec in enumerate(specs):
            events = [event
                      for trial in range(spec.trials)
                      for event in traces[(index, trial)]]
            write_trace(trace_dir / trace_filename(spec.name), events)
    if digest_dir is not None:
        from repro.obs.forensics import digest_filename, write_digests

        digest_dir = Path(digest_dir)
        digest_dir.mkdir(parents=True, exist_ok=True)
        for index, spec in enumerate(specs):
            events = [event
                      for trial in range(spec.trials)
                      for event in digests[(index, trial)]]
            write_digests(digest_dir / digest_filename(spec.name), events)

    suite_result = SuiteResult(suite=suite)
    for index, spec in enumerate(specs):
        rows = [results[(index, trial)] for trial in range(spec.trials)]
        scenario_wall = sum(float(row["wall_s"]) for row in rows)
        suite_result.scenarios.append(
            ScenarioResult(spec=spec, rows=rows, wall_s=round(scenario_wall, 4))
        )
    suite_result.wall_s = round(time.perf_counter() - suite_start, 4)
    return suite_result


def run_suite(
    name: str,
    workers: int = 1,
    backend: Optional[str] = None,
    trials: Optional[int] = None,
    progress=None,
    only: Optional[Sequence[str]] = None,
    profile_dir: Optional[Path] = None,
    seed: Optional[int] = None,
    faults: Optional[Mapping[str, object]] = None,
    shards: Optional[int] = None,
    trace_dir: Optional[Path] = None,
    digest_dir: Optional[Path] = None,
) -> SuiteResult:
    """Resolve a named suite and run it, with optional global overrides.

    ``backend`` overrides the transport backend of every scenario (a
    performance-only knob: the aggregate artifact is identical across
    backends, which the CI smoke job exploits to cross-check the transport
    engine).  ``trials`` overrides every scenario's trial count.  ``only``
    restricts the run to the named scenarios (unknown names are an error) —
    note the resulting aggregate then covers a scenario *subset* and will not
    gate cleanly against a full-suite baseline.  ``profile_dir`` is forwarded
    to :func:`run_scenarios` (per-scenario cProfile hotspots).

    ``seed`` overrides every scenario's base seed — the run then samples
    *different* graphs and randomness, so the override is recorded in the
    aggregate (``seed_override``) and ``suite compare`` refuses to diff it
    against a baseline produced with a different seed.  ``faults`` replaces
    every scenario's fault plan (``{"drop": 0.01}``-style mapping, from
    ``repro suite run --faults ...``); the aggregate records the plan per
    scenario, so a faulted run never gates silently against a clean
    baseline either.
    """
    from dataclasses import replace

    from repro.experiments.registry import get_suite

    specs = get_suite(name)
    if only:
        wanted = set(only)
        unknown = wanted - {spec.name for spec in specs}
        if unknown:
            raise ValueError(
                f"suite {name!r} has no scenarios named: {sorted(unknown)}"
            )
        specs = [spec for spec in specs if spec.name in wanted]
    if backend is not None:
        specs = [replace(spec, backend=backend) for spec in specs]
    if shards is not None:
        # A performance-only knob like backend: byte-identical aggregates
        # for any value (the CI shard-smoke job gates exactly this).
        specs = [replace(spec, shards=int(shards)) for spec in specs]
    if trials is not None:
        specs = [replace(spec, trials=trials) for spec in specs]
    if faults is not None:
        specs = [replace(spec, faults=dict(faults)) for spec in specs]
    if seed is not None:
        specs = [replace(spec, seed=int(seed)) for spec in specs]
    result = run_scenarios(specs, workers=workers, suite=name,
                           progress=progress, profile_dir=profile_dir,
                           trace_dir=trace_dir, digest_dir=digest_dir)
    result.seed_override = None if seed is None else int(seed)
    return result

"""Trial execution: serial or process-parallel, with deterministic results.

The runner turns scenario specs into trial rows.  Every trial is an
independent unit of work — build the graph from its derived graph seed, run
the solver with its derived solver seed, collect metrics — so trials can be
fanned out over a :class:`~concurrent.futures.ProcessPoolExecutor` freely:
results depend only on the spec and the trial index, never on scheduling.
The only non-deterministic field is each row's ``wall_s`` timing, which the
artifact store keeps out of the aggregate snapshot for exactly that reason.
"""

from __future__ import annotations

import contextlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import repro

from repro.experiments.registry import GRAPH_FAMILIES, SOLVERS, validate_spec
from repro.experiments.spec import ScenarioSpec, trial_seeds

#: Row keys describing execution rather than the measured workload; they are
#: excluded from aggregation (timing) or aggregated specially (identity).
NON_METRIC_KEYS = (
    "scenario", "family", "solver", "trial", "graph_seed", "solver_seed", "wall_s",
)


@dataclass
class ScenarioResult:
    """All trial rows of one scenario plus its wall-clock cost."""

    spec: ScenarioSpec
    rows: List[Dict[str, object]]
    wall_s: float

    @property
    def valid_trials(self) -> int:
        return sum(1 for row in self.rows if row.get("valid"))


@dataclass
class SuiteResult:
    """Ordered scenario results of one suite run."""

    suite: str
    scenarios: List[ScenarioResult] = field(default_factory=list)
    wall_s: float = 0.0

    def rows(self) -> List[Dict[str, object]]:
        return [row for scenario in self.scenarios for row in scenario.rows]

    def rows_for(self, scenario_name: str) -> List[Dict[str, object]]:
        for scenario in self.scenarios:
            if scenario.spec.name == scenario_name:
                return scenario.rows
        raise KeyError(f"no scenario named {scenario_name!r} in suite {self.suite!r}")


def run_trial(spec: ScenarioSpec, trial: int) -> Dict[str, object]:
    """Execute one trial of ``spec`` and return its flat row."""
    graph_seed, solver_seed = trial_seeds(spec, trial)
    graph, truth = GRAPH_FAMILIES[spec.family](graph_seed, **dict(spec.family_params))
    start = time.perf_counter()
    metrics = SOLVERS[spec.solver](spec, graph, truth, solver_seed)
    wall_s = time.perf_counter() - start
    row: Dict[str, object] = {
        "scenario": spec.name,
        "family": spec.family,
        "solver": spec.solver,
        "trial": trial,
        "graph_seed": graph_seed,
        "solver_seed": solver_seed,
        "n": graph.number_of_nodes(),
        "m": graph.number_of_edges(),
    }
    row.update(metrics)
    row["wall_s"] = round(wall_s, 4)
    return row


@contextlib.contextmanager
def _workers_can_import_repro():
    """Ensure worker processes can import ``repro``, whatever the start method.

    Under the ``spawn`` start method a worker must import this module just to
    unpickle the submitted task, *before* any initializer could patch
    ``sys.path`` — so a parent that made ``repro`` importable by mutating
    ``sys.path`` (rather than via ``PYTHONPATH``) needs the package root
    exported through the environment, which every start method inherits.
    """
    pkg_root = str(Path(repro.__file__).resolve().parent.parent)
    previous = os.environ.get("PYTHONPATH")
    parts = previous.split(os.pathsep) if previous else []
    if pkg_root in parts:
        yield
        return
    os.environ["PYTHONPATH"] = os.pathsep.join([pkg_root] + parts)
    try:
        yield
    finally:
        if previous is None:
            del os.environ["PYTHONPATH"]
        else:
            os.environ["PYTHONPATH"] = previous


def run_scenarios(
    specs: Sequence[ScenarioSpec],
    workers: int = 1,
    suite: str = "adhoc",
    progress=None,
) -> SuiteResult:
    """Run every trial of every spec, serially or across worker processes.

    ``progress`` is an optional callable receiving one completed trial row at
    a time (the CLI uses it for live output).  Rows are always assembled in
    (spec order, trial order), so a parallel run's result is identical to a
    serial run's apart from wall-clock fields.
    """
    for spec in specs:
        validate_spec(spec)
    tasks = [(index, spec, trial)
             for index, spec in enumerate(specs)
             for trial in range(spec.trials)]
    results: Dict[tuple, Dict[str, object]] = {}
    suite_start = time.perf_counter()
    if workers <= 1 or len(tasks) <= 1:
        for index, spec, trial in tasks:
            row = run_trial(spec, trial)
            results[(index, trial)] = row
            if progress is not None:
                progress(row)
    else:
        with _workers_can_import_repro(), ProcessPoolExecutor(
            max_workers=min(workers, len(tasks)),
        ) as pool:
            futures = {
                pool.submit(run_trial, spec, trial): (index, trial)
                for index, spec, trial in tasks
            }
            for future, key in futures.items():
                results[key] = future.result()
                if progress is not None:
                    progress(results[key])

    suite_result = SuiteResult(suite=suite)
    for index, spec in enumerate(specs):
        rows = [results[(index, trial)] for trial in range(spec.trials)]
        scenario_wall = sum(float(row["wall_s"]) for row in rows)
        suite_result.scenarios.append(
            ScenarioResult(spec=spec, rows=rows, wall_s=round(scenario_wall, 4))
        )
    suite_result.wall_s = round(time.perf_counter() - suite_start, 4)
    return suite_result


def run_suite(
    name: str,
    workers: int = 1,
    backend: Optional[str] = None,
    trials: Optional[int] = None,
    progress=None,
) -> SuiteResult:
    """Resolve a named suite and run it, with optional global overrides.

    ``backend`` overrides the transport backend of every scenario (a
    performance-only knob: the aggregate artifact is identical across
    backends, which the CI smoke job exploits to cross-check the transport
    engine).  ``trials`` overrides every scenario's trial count.
    """
    from dataclasses import replace

    from repro.experiments.registry import get_suite

    specs = get_suite(name)
    if backend is not None:
        specs = [replace(spec, backend=backend) for spec in specs]
    if trials is not None:
        specs = [replace(spec, trials=trials) for spec in specs]
    return run_scenarios(specs, workers=workers, suite=name, progress=progress)

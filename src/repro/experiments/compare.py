"""Regression gate: diff a fresh suite aggregate against a committed baseline.

The gate fails on anything that should never drift silently across PRs:

* suite/scenario set mismatches (a scenario vanished or appeared — either way
  the committed baseline must be refreshed deliberately);
* correctness drift (``valid_trials`` dropped);
* cost regressions: any higher-is-worse metric's mean grew by more than the
  allowed fraction.

Improvements (means shrinking) are reported as informational findings so a
PR that makes things faster shows up in the compare output, but they do not
fail the gate — refreshing the baseline is still recommended.

Wall-clock is gated *separately* and opt-in (:func:`compare_timing`): timing
is machine- and load-dependent, so exceeding the budget produces ``"warn"``
findings by default — visible in the output, but never failing the
correctness gate — and ``"fail"`` findings only when the caller asks for
strict timing enforcement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

#: Metrics where a larger mean is a regression.  Anything not listed is
#: reported when it drifts but never fails the gate (e.g. ``flagged_edges``
#: moves legitimately with detection randomness).
HIGHER_IS_WORSE = (
    "rounds",
    "randomized_rounds",
    "fallback_nodes",
    "total_bits",
    "bits_per_edge",
    "bits_per_node",
    "total_messages",
    "max_edge_bits",
    "colors_used",
)


@dataclass(frozen=True)
class Finding:
    """One compare observation; ``severity`` is ``"fail"``, ``"warn"`` or ``"info"``."""

    severity: str
    scenario: str
    metric: str
    detail: str

    def as_row(self) -> Dict[str, object]:
        return {
            "severity": self.severity,
            "scenario": self.scenario,
            "metric": self.metric,
            "detail": self.detail,
        }


def compare_summaries(
    baseline: Mapping[str, object],
    fresh: Mapping[str, object],
    max_regression: float = 0.10,
) -> List[Finding]:
    """Diff two aggregate snapshots; ``max_regression`` is a fraction (0.10 = 10%)."""
    findings: List[Finding] = []
    if baseline.get("suite") != fresh.get("suite"):
        findings.append(Finding(
            "fail", "-", "suite",
            f"suite mismatch: baseline={baseline.get('suite')!r} fresh={fresh.get('suite')!r}",
        ))
        return findings
    if baseline.get("seed_override") != fresh.get("seed_override"):
        findings.append(Finding(
            "fail", "-", "seed",
            f"seed override mismatch: baseline={baseline.get('seed_override')!r} "
            f"fresh={fresh.get('seed_override')!r} — the runs sampled "
            "different workloads; re-run with the baseline's --seed",
        ))
        return findings
    if bool(baseline.get("digests")) != bool(fresh.get("digests")):
        missing, present = (("baseline", "fresh")
                            if fresh.get("digests") else ("fresh", "baseline"))
        findings.append(Finding(
            "fail", "-", "digests",
            f"digest mismatch: the {present} run recorded state digests but "
            f"the {missing} one did not — a digested aggregate cannot gate "
            "against an undigested one; re-run both with (or both without) "
            "--digest, or refresh the committed baseline",
        ))
        return findings

    base_scenarios: Mapping[str, Mapping] = baseline.get("scenarios", {})
    fresh_scenarios: Mapping[str, Mapping] = fresh.get("scenarios", {})
    for name in sorted(set(base_scenarios) - set(fresh_scenarios)):
        findings.append(Finding("fail", name, "-", "scenario missing from fresh run"))
    for name in sorted(set(fresh_scenarios) - set(base_scenarios)):
        findings.append(Finding(
            "fail", name, "-",
            "new scenario not in baseline (refresh the committed BENCH_suite.json)",
        ))

    for name in sorted(set(base_scenarios) & set(fresh_scenarios)):
        findings.extend(_compare_scenario(
            name, base_scenarios[name], fresh_scenarios[name], max_regression
        ))
    return findings


def _compare_scenario(
    name: str,
    base: Mapping[str, object],
    fresh: Mapping[str, object],
    max_regression: float,
) -> List[Finding]:
    findings: List[Finding] = []
    if base.get("faults") != fresh.get("faults"):
        findings.append(Finding(
            "fail", name, "faults",
            f"fault plan changed: {base.get('faults')} -> {fresh.get('faults')} "
            "(a faulted run must not gate against a differently-faulted "
            "baseline)",
        ))
        return findings
    if base.get("trials") != fresh.get("trials"):
        findings.append(Finding(
            "fail", name, "trials",
            f"trial count changed: {base.get('trials')} -> {fresh.get('trials')}",
        ))
        return findings
    base_valid = int(base.get("valid_trials", 0))
    fresh_valid = int(fresh.get("valid_trials", 0))
    if fresh_valid < base_valid:
        findings.append(Finding(
            "fail", name, "valid_trials",
            f"correctness drift: {base_valid} -> {fresh_valid} valid trials",
        ))
    base_digests = base.get("state_digest")
    fresh_digests = fresh.get("state_digest")
    if base_digests is not None and fresh_digests is not None \
            and base_digests != fresh_digests:
        drifted_trials = [str(i) for i, (a, b)
                          in enumerate(zip(base_digests, fresh_digests))
                          if a != b]
        findings.append(Finding(
            "fail", name, "state_digest",
            f"state digest drift in trial(s) {', '.join(drifted_trials) or '-'}"
            " — the runs diverged somewhere; localize it with "
            "`repro diff <baseline DIGEST stream> <fresh DIGEST stream>`",
        ))

    base_metrics: Mapping[str, Mapping] = base.get("metrics", {})
    fresh_metrics: Mapping[str, Mapping] = fresh.get("metrics", {})
    for metric in sorted(set(base_metrics) - set(fresh_metrics)):
        findings.append(Finding("fail", name, metric, "metric missing from fresh run"))
    for metric in sorted(set(fresh_metrics) - set(base_metrics)):
        findings.append(Finding(
            "fail", name, metric,
            "new metric not in baseline (refresh the committed BENCH_suite.json)",
        ))
    for metric in sorted(set(base_metrics) & set(fresh_metrics)):
        old_stats = base_metrics[metric]
        new_stats = fresh_metrics[metric]
        old = float(old_stats.get("mean", 0.0))
        new = float(new_stats.get("mean", 0.0))
        if old != new:
            change = (new - old) / old if old else float("inf")
            detail = f"mean {old:g} -> {new:g} ({change:+.1%})"
            if metric in HIGHER_IS_WORSE and change > max_regression:
                findings.append(Finding("fail", name, metric, f"regression: {detail}"))
            else:
                findings.append(Finding("info", name, metric, detail))
        # The gate keys off the mean, but any drifting statistic must be
        # surfaced — otherwise the snapshot silently stops matching the
        # committed baseline byte-for-byte.
        drifted = [
            f"{stat} {old_stats[stat]:g} -> {new_stats[stat]:g}"
            for stat in sorted((set(old_stats) & set(new_stats)) - {"mean"})
            if float(old_stats[stat]) != float(new_stats[stat])
        ]
        if drifted:
            findings.append(Finding("info", name, metric, "; ".join(drifted)))
    return findings


def compare_timing(
    baseline: Mapping[str, object],
    fresh: Mapping[str, object],
    budget: float = 0.25,
    strict: bool = False,
) -> List[Finding]:
    """Soft wall-clock gate: is the fresh run within budget of the baseline?

    ``baseline`` and ``fresh`` are per-suite timing entries
    (``{"total_wall_s": ..., "scenarios": {name: wall_s}}`` — see
    :func:`repro.experiments.artifacts.load_suite_timing`).  ``budget`` is
    the allowed fractional slowdown (0.25 = a scenario may be up to 25%
    slower than the committed baseline).  Violations are ``"warn"`` findings
    by default — timing depends on the machine and its load, so they never
    fail :func:`gate_passes` — and ``"fail"`` findings when ``strict`` is
    set.  Scenario-set differences are informational only: the correctness
    gate already fails on those.  Speedups are never flagged.
    """
    severity = "fail" if strict else "warn"
    findings: List[Finding] = []
    base_scenarios: Mapping[str, object] = baseline.get("scenarios", {})
    fresh_scenarios: Mapping[str, object] = fresh.get("scenarios", {})
    for name in sorted(set(base_scenarios) - set(fresh_scenarios)):
        findings.append(Finding("info", name, "wall_s",
                                "scenario missing from fresh timing"))
    for name in sorted(set(fresh_scenarios) - set(base_scenarios)):
        findings.append(Finding("info", name, "wall_s",
                                "scenario not in the timing baseline"))
    for name in sorted(set(base_scenarios) & set(fresh_scenarios)):
        old = float(base_scenarios[name])
        new = float(fresh_scenarios[name])
        if old > 0 and new > old * (1.0 + budget):
            findings.append(Finding(
                severity, name, "wall_s",
                f"over timing budget: {old:g}s -> {new:g}s "
                f"({(new - old) / old:+.0%}, budget +{budget:.0%})",
            ))
    old_total = float(baseline.get("total_wall_s", 0.0))
    new_total = float(fresh.get("total_wall_s", 0.0))
    if old_total > 0 and new_total > old_total * (1.0 + budget):
        findings.append(Finding(
            severity, "-", "total_wall_s",
            f"suite over timing budget: {old_total:g}s -> {new_total:g}s "
            f"({(new_total - old_total) / old_total:+.0%}, budget +{budget:.0%})",
        ))
    return findings


def compare_rss(
    baseline: Mapping[str, object],
    fresh: Mapping[str, object],
    budget: float = 0.25,
    strict: bool = False,
) -> List[Finding]:
    """Soft peak-memory gate: is the fresh run's RSS within budget?

    ``baseline`` and ``fresh`` are per-suite timing entries (the same shape
    :func:`compare_timing` consumes); their per-scenario high-water marks
    live in the ``peak_rss_mb`` map.  ``budget`` is the allowed fractional
    growth (0.25 = a scenario may peak 25% higher than the committed
    baseline).  Like timing, memory is machine-dependent — allocator, page
    size, interpreter version all move it — so violations are ``"warn"``
    findings by default and ``"fail"`` only under ``strict``.  A baseline
    entry predating the ``peak_rss_mb`` field yields one informational
    finding instead of a spurious violation.  Improvements are never
    flagged.
    """
    severity = "fail" if strict else "warn"
    findings: List[Finding] = []
    base_rss: Mapping[str, object] = baseline.get("peak_rss_mb") or {}
    fresh_rss: Mapping[str, object] = fresh.get("peak_rss_mb") or {}
    if not base_rss:
        findings.append(Finding(
            "info", "-", "peak_rss_mb",
            "baseline has no peak_rss_mb map (predates the RSS gate); "
            "refresh the committed timing snapshot",
        ))
        return findings
    for name in sorted(set(base_rss) - set(fresh_rss)):
        findings.append(Finding("info", name, "peak_rss_mb",
                                "scenario missing from fresh RSS map"))
    for name in sorted(set(fresh_rss) - set(base_rss)):
        findings.append(Finding("info", name, "peak_rss_mb",
                                "scenario not in the RSS baseline"))
    for name in sorted(set(base_rss) & set(fresh_rss)):
        old = float(base_rss[name])
        new = float(fresh_rss[name])
        if old > 0 and new > old * (1.0 + budget):
            findings.append(Finding(
                severity, name, "peak_rss_mb",
                f"over memory budget: {old:g}MiB -> {new:g}MiB "
                f"({(new - old) / old:+.0%}, budget +{budget:.0%})",
            ))
    return findings


def gate_passes(findings: List[Finding]) -> bool:
    """True when no finding is fatal (``"warn"`` and ``"info"`` both pass)."""
    return not any(f.severity == "fail" for f in findings)

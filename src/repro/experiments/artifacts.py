"""Artifact store for suite runs: trial JSONL, aggregate snapshot, timing.

A suite run produces three files in the output directory:

* ``BENCH_suite_trials.jsonl`` — one JSON row per trial, in (scenario, trial)
  order, including seeds and per-trial wall-clock.  The full-resolution
  record; ``load_trial_rows`` round-trips it.
* ``BENCH_suite.json`` — the aggregate snapshot: per-scenario summary stats
  (mean/median/p95/min/max) of every numeric metric, plus validity counts.
  **Fully deterministic**: it contains no timing and no backend/ledger knobs,
  so serial and parallel runs — and runs on different transport backends —
  produce byte-identical files.  This is the file that gets committed as the
  regression baseline and diffed by ``repro suite compare``.
* ``BENCH_suite_timing.json`` — wall-clock per scenario and total.  Kept
  separate precisely so the aggregate stays byte-stable.  The timing file is
  **multi-suite**: each run merges its own suite's entry into whatever the
  file already holds (``{"schema": ..., "suites": {name: {total_wall_s,
  scenarios}}}``), so one committed artifact can carry the wall-clock
  baselines of ``smoke``, ``scaling`` and ``scale`` at once — that is the
  file the opt-in ``--timing-budget`` soft gate diffs against.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.runner import NON_METRIC_KEYS, SuiteResult
from repro.metrics.report import aggregate_rows

SCHEMA = "repro-suite/1"
TIMING_SCHEMA = "repro-suite-timing/1"
TRIALS_FILENAME = "BENCH_suite_trials.jsonl"
SUITE_FILENAME = "BENCH_suite.json"
TIMING_FILENAME = "BENCH_suite_timing.json"


def canonical_dumps(payload: object) -> str:
    """Key-sorted, newline-terminated JSON — the byte-stable serialization."""
    return json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"


def aggregate_suite(result: SuiteResult) -> Dict[str, object]:
    """Reduce a suite run to its deterministic aggregate snapshot.

    Faulted scenarios additionally record their canonical fault plan (the
    same encoding that feeds the fault RNG), and a run launched with a
    ``--seed`` override records it at the top level — both so ``suite
    compare`` can refuse to diff runs of genuinely different workloads.
    Fault-free, non-overridden runs keep the historical schema byte for
    byte.

    A digest-enabled run (``--digest``) additionally records each scenario's
    per-trial chained ``state_digest`` list and a top-level ``"digests"``
    marker — both fully deterministic, but *present only on digested runs*,
    so ``suite compare`` refuses to gate a digested aggregate against an
    undigested baseline (and vice versa) rather than silently ignoring the
    strongest determinism signal available.
    """
    scenarios: Dict[str, object] = {}
    digested = all(
        all("state_digest" in row for row in scenario.rows)
        for scenario in result.scenarios
    ) and bool(result.scenarios)
    for scenario in result.scenarios:
        spec = scenario.spec
        entry: Dict[str, object] = {
            "family": spec.family,
            "solver": spec.solver,
            "mode": spec.mode,
            "trials": len(scenario.rows),
            "valid_trials": scenario.valid_trials,
            "metrics": aggregate_rows(scenario.rows, exclude=NON_METRIC_KEYS),
        }
        if digested:
            entry["state_digest"] = [row["state_digest"]
                                     for row in scenario.rows]
        if spec.tags:
            entry["tags"] = sorted(spec.tags)
        if spec.faults:
            from repro.faults import FaultPlan

            # Coerce, don't just encode: an all-default mapping (e.g. the
            # drop=0.0 endpoint of a sweep) runs unwrapped and must produce
            # an aggregate byte-identical to its clean twin's.
            plan = FaultPlan.coerce(spec.faults)
            if plan is not None:
                entry["faults"] = plan.canonical()
        scenarios[spec.name] = entry
    summary: Dict[str, object] = {
        "schema": SCHEMA, "suite": result.suite, "scenarios": scenarios,
    }
    if digested:
        summary["digests"] = True
    seed_override = getattr(result, "seed_override", None)
    if seed_override is not None:
        summary["seed_override"] = seed_override
    return summary


def timing_summary(result: SuiteResult) -> Dict[str, object]:
    """One run's wall-clock + peak-memory entry (merged into the timing file).

    ``peak_rss_mb`` is the per-scenario maximum of the trial rows' process
    high-water marks (see :func:`~repro.experiments.runner.peak_rss_mb`), so
    memory regressions at large n are visible next to the wall-clock they
    usually cause.  Machine state, like timing — hence this artifact, never
    the aggregate.
    """
    return {
        "suite": result.suite,
        "total_wall_s": result.wall_s,
        "scenarios": {
            scenario.spec.name: scenario.wall_s for scenario in result.scenarios
        },
        "peak_rss_mb": {
            scenario.spec.name: scenario.peak_rss_mb
            for scenario in result.scenarios
        },
    }


def merge_timing(path: Path, summary: Mapping[str, object]) -> Dict[str, object]:
    """Merge one run's :func:`timing_summary` into the timing artifact.

    Entries of *other* suites already in the file are preserved; the entry of
    the run's own suite is replaced wholesale.  A missing, malformed, or
    legacy-schema file is simply overwritten — timing is a soft,
    machine-dependent artifact, never a correctness record.
    """
    path = Path(path)
    data: Dict[str, object] = {"schema": TIMING_SCHEMA, "suites": {}}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = None
        if (
            isinstance(existing, dict)
            and existing.get("schema") == TIMING_SCHEMA
            and isinstance(existing.get("suites"), dict)
        ):
            data["suites"].update(existing["suites"])
    entry = {
        "total_wall_s": summary["total_wall_s"],
        "scenarios": dict(summary["scenarios"]),
    }
    if "peak_rss_mb" in summary:
        entry["peak_rss_mb"] = dict(summary["peak_rss_mb"])
    data["suites"][str(summary["suite"])] = entry
    path.write_text(canonical_dumps(data))
    return data


def load_suite_timing(path: Path, suite: Optional[str] = None) -> Dict[str, object]:
    """Load the timing artifact; with ``suite`` given, return that entry only."""
    data = json.loads(Path(path).read_text())
    if data.get("schema") != TIMING_SCHEMA:
        raise ValueError(
            f"{path}: unsupported timing snapshot schema {data.get('schema')!r} "
            f"(expected {TIMING_SCHEMA!r})"
        )
    if suite is None:
        return data
    try:
        return data["suites"][suite]
    except KeyError:
        raise ValueError(f"{path}: no timing entry for suite {suite!r}") from None


def write_suite_artifacts(
    result: SuiteResult,
    out_dir: Path,
    summary: Optional[Mapping[str, object]] = None,
    timing: bool = True,
) -> Dict[str, Path]:
    """Write the suite artifacts; returns the paths keyed by artifact kind.

    ``summary`` accepts an already-built :func:`aggregate_suite` snapshot so
    callers that also display it don't aggregate twice.  ``timing=False``
    skips the timing merge entirely (and omits the ``"timing"`` path) — a
    profiled run's wall-clock includes cProfile overhead and must never
    refresh a timing baseline.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "trials": out_dir / TRIALS_FILENAME,
        "suite": out_dir / SUITE_FILENAME,
    }
    write_trial_rows(paths["trials"], result.rows())
    paths["suite"].write_text(canonical_dumps(summary if summary is not None
                                              else aggregate_suite(result)))
    if timing:
        paths["timing"] = out_dir / TIMING_FILENAME
        merge_timing(paths["timing"], timing_summary(result))
    return paths


def write_trial_rows(path: Path, rows: Sequence[Mapping[str, object]]) -> None:
    lines = [json.dumps(dict(row), sort_keys=True, default=str) for row in rows]
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))


def load_trial_rows(path: Path) -> List[Dict[str, object]]:
    rows: List[Dict[str, object]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            rows.append(json.loads(line))
    return rows


def load_suite_summary(path: Path) -> Dict[str, object]:
    summary = json.loads(Path(path).read_text())
    schema = summary.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: unsupported suite snapshot schema {schema!r} (expected {SCHEMA!r})"
        )
    return summary

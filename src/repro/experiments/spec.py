"""Declarative scenario specifications and deterministic seed derivation.

A :class:`ScenarioSpec` names everything a trial needs — graph family and its
parameters, solver and its parameters, transport backend, ledger kind,
bandwidth/mode, trial count and base seed — as plain data, so scenarios can be
listed, diffed, pickled to worker processes, and re-run bit-identically.

Seed derivation is the determinism backbone of the runner: every trial's
graph seed and solver seed are pure functions of the spec's *workload* fields
(never of execution order, worker count, or scenario name), so

* parallel runs reproduce serial runs byte-for-byte, and
* two scenarios that share a graph family, family parameters and base seed —
  e.g. the D1C pipeline vs the Johansson baseline, or hashed vs naive
  MultiTrial — color the *same* graphs with the *same* solver randomness,
  making head-to-head rows a controlled comparison.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

BACKENDS = ("batch", "dict", "slot")
LEDGERS = ("records", "counters")
MODES = ("congest", "local")


@dataclass(frozen=True)
class ScenarioSpec:
    """One named workload point: graph family × solver × execution knobs.

    ``backend`` and ``ledger`` are performance knobs only — the transport
    engine guarantees identical accounting across them — so they do not feed
    the seed derivation and do not appear in aggregate artifacts.
    """

    name: str
    family: str
    solver: str
    family_params: Mapping[str, object] = field(default_factory=dict)
    solver_params: Mapping[str, object] = field(default_factory=dict)
    backend: str = "batch"
    ledger: str = "counters"
    mode: str = "congest"
    bandwidth_bits: object = None  # Optional[int]
    trials: int = 1
    seed: int = 0
    tags: Tuple[str, ...] = ()

    def describe(self) -> Dict[str, object]:
        """A flat, printable summary row (used by ``repro suite list``)."""
        return {
            "scenario": self.name,
            "family": self.family,
            "solver": self.solver,
            "trials": self.trials,
            "mode": self.mode,
            "bandwidth": self.bandwidth_bits if self.bandwidth_bits is not None else "default",
            "tags": ",".join(self.tags) or "-",
        }


def canonical_params(params: Mapping[str, object]) -> str:
    """Canonical JSON encoding of a parameter mapping (key-order independent)."""
    return json.dumps(dict(params), sort_keys=True, separators=(",", ":"), default=str)


def derive_seed(*parts: object) -> int:
    """Hash arbitrary labelled parts into a stable 31-bit seed.

    Uses SHA-256 rather than ``hash()`` so the value is identical across
    processes and interpreter runs (``hash()`` is salted per process).
    """
    text = ":".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % (2**31 - 1)


def trial_seeds(spec: ScenarioSpec, trial: int) -> Tuple[int, int]:
    """Derive the ``(graph_seed, solver_seed)`` pair for one trial.

    Both seeds depend only on ``spec.seed`` and the trial index — plus, for
    the graph seed, the graph family and its parameters — so scenarios that
    differ only in solver (pipeline vs baseline) or in performance knobs
    (backend/ledger) see identical inputs and identical solver randomness.
    """
    if trial < 0:
        raise ValueError("trial index must be non-negative")
    base = derive_seed("trial", spec.seed, trial)
    graph_seed = derive_seed("graph", spec.family, canonical_params(spec.family_params), base)
    solver_seed = derive_seed("solver", base)
    return graph_seed, solver_seed

"""Declarative scenario specifications and deterministic seed derivation.

A :class:`ScenarioSpec` names everything a trial needs — graph family and its
parameters, solver and its parameters, transport backend, ledger kind,
bandwidth/mode, trial count and base seed — as plain data, so scenarios can be
listed, diffed, pickled to worker processes, and re-run bit-identically.

Seed derivation is the determinism backbone of the runner: every trial's
graph seed and solver seed are pure functions of the spec's *workload* fields
(never of execution order, worker count, or scenario name), so

* parallel runs reproduce serial runs byte-for-byte, and
* two scenarios that share a graph family, family parameters and base seed —
  e.g. the D1C pipeline vs the Johansson baseline, or hashed vs naive
  MultiTrial — color the *same* graphs with the *same* solver randomness,
  making head-to-head rows a controlled comparison.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.utils.rng import derive_seed  # noqa: F401  (re-exported: the
# seed-derivation chain now lives with the other deterministic-rng utilities
# so the fault layer can share it without depending on the experiments layer)

BACKENDS = ("batch", "columnar", "dict", "slot")
LEDGERS = ("records", "counters")
MODES = ("congest", "local")


@dataclass(frozen=True)
class ScenarioSpec:
    """One named workload point: graph family × solver × execution knobs.

    ``backend`` and ``ledger`` are performance knobs only — the transport
    engine guarantees identical accounting across them — so they do not feed
    the seed derivation and do not appear in aggregate artifacts.

    ``faults`` (a ``{"drop": 0.01, "corrupt": 1e-4, ...}`` mapping — see
    :class:`repro.faults.FaultPlan`) perturbs delivery deterministically.
    Like backend/ledger it stays out of the *trial* seed derivation: a
    faulted scenario and its clean twin color the same graphs with the same
    solver randomness, so their rows are a controlled comparison.  The fault
    RNG is instead derived from the trial's solver seed plus the plan's
    canonical encoding, and the plan *does* appear in aggregate artifacts —
    it changes outcomes, not just performance.

    Construction validates all param-mapping keys (family, solver and fault
    params) against the registries: a typo'd key would otherwise silently
    change the seed derivation through ``canonical_params`` and quietly run
    a different workload than the one named.
    """

    name: str
    family: str
    solver: str
    family_params: Mapping[str, object] = field(default_factory=dict)
    solver_params: Mapping[str, object] = field(default_factory=dict)
    backend: str = "batch"
    ledger: str = "counters"
    mode: str = "congest"
    bandwidth_bits: object = None  # Optional[int]
    trials: int = 1
    seed: int = 0
    tags: Tuple[str, ...] = ()
    faults: Mapping[str, object] = field(default_factory=dict)
    #: Partition-parallel execution width — a performance knob exactly like
    #: ``backend``/``ledger``: it does not feed the seed derivation and does
    #: not appear in aggregate artifacts, so a sharded run must (and, tested,
    #: does) produce byte-identical aggregates to a serial one.
    shards: int = 1

    def __post_init__(self):
        # Imported lazily — the registry imports this module at load time.
        from repro.experiments.registry import check_spec_params

        check_spec_params(self)

    def describe(self) -> Dict[str, object]:
        """A flat, printable summary row (used by ``repro suite list``)."""
        return {
            "scenario": self.name,
            "family": self.family,
            "solver": self.solver,
            "trials": self.trials,
            "mode": self.mode,
            "bandwidth": self.bandwidth_bits if self.bandwidth_bits is not None else "default",
            "faults": ",".join(f"{k}={v}" for k, v in sorted(
                self.faults.items(), key=lambda item: item[0])) or "-",
            "tags": ",".join(self.tags) or "-",
        }


def canonical_params(params: Mapping[str, object]) -> str:
    """Canonical JSON encoding of a parameter mapping (key-order independent)."""
    return json.dumps(dict(params), sort_keys=True, separators=(",", ":"), default=str)


def trial_seeds(spec: ScenarioSpec, trial: int) -> Tuple[int, int]:
    """Derive the ``(graph_seed, solver_seed)`` pair for one trial.

    Both seeds depend only on ``spec.seed`` and the trial index — plus, for
    the graph seed, the graph family and its parameters — so scenarios that
    differ only in solver (pipeline vs baseline) or in performance knobs
    (backend/ledger) see identical inputs and identical solver randomness.
    """
    if trial < 0:
        raise ValueError("trial index must be non-negative")
    base = derive_seed("trial", spec.seed, trial)
    graph_seed = derive_seed("graph", spec.family, canonical_params(spec.family_params), base)
    solver_seed = derive_seed("solver", base)
    return graph_seed, solver_seed
